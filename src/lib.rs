//! Umbrella package for the Patty workspace.
//!
//! This crate only re-exports the workspace members so the cross-crate
//! integration tests in `tests/` and the runnable examples in `examples/`
//! have a single dependency root. The actual library lives in the
//! `patty-*` crates.

pub use patty_analysis as analysis;
pub use patty_json as json;
pub use patty_telemetry as telemetry;
pub use patty_chess as chess;
pub use patty_corpus as corpus;
pub use patty_minilang as minilang;
pub use patty_patterns as patterns;
pub use patty_runtime as runtime;
pub use patty_tadl as tadl;
pub use patty_testgen as testgen;
pub use patty_tool as patty;
pub use patty_trace as trace;
pub use patty_transform as transform;
pub use patty_tuning as tuning;
pub use patty_userstudy as userstudy;
