//! Offline shim for the subset of `parking_lot` this workspace uses.
//!
//! The build environment has no access to crates.io, so the external
//! `parking_lot` crate is replaced by this thin wrapper over `std::sync`
//! primitives. Semantics match parking_lot where it matters here:
//! `lock()` returns a guard directly (poisoning is swallowed — a panicked
//! holder does not poison the lock for everyone else), and
//! `Condvar::wait` takes the guard by `&mut` reference.

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// Mutex with parking_lot's panic-free `lock()` signature.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Mutex<T> {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                Some(MutexGuard { inner: Some(p.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// Guard for [`Mutex`]. The inner `Option` exists so [`Condvar::wait`]
/// can move the std guard out and back in around the wait.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

/// Condition variable with parking_lot's `wait(&mut guard)` signature.
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Condvar {
        Condvar { inner: std::sync::Condvar::new() }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present before wait");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

/// Reader-writer lock with parking_lot's panic-free signatures.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> RwLock<T> {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(7);
        assert_eq!(*l.read(), 7);
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }
}
