//! Offline shim for the subset of `crossbeam` this workspace uses: the
//! bounded MPMC channel. Built over `std::sync` (Mutex + Condvar); both
//! `Sender` and `Receiver` are cloneable, sends block when the buffer is
//! full (that backpressure is what makes the pipeline's bounded
//! inter-stage buffers meaningful), and disconnection is reported the
//! crossbeam way: `send` fails once all receivers are gone, `recv` fails
//! once the buffer is drained and all senders are gone.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        capacity: usize,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent value like crossbeam's.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    /// Create a bounded MPMC channel with the given buffer capacity.
    /// Capacity 0 (crossbeam's rendezvous channel) is modeled as
    /// capacity 1 — no caller in this workspace uses rendezvous
    /// semantics.
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
            capacity: capacity.max(1),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender { chan: chan.clone() }, Receiver { chan })
    }

    /// Create an effectively unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        bounded(usize::MAX)
    }

    impl<T> Sender<T> {
        /// Block until buffer space is available, then enqueue `value`.
        /// Fails (returning the value) once every receiver is dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.chan.state.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                if st.queue.len() < self.chan.capacity {
                    st.queue.push_back(value);
                    self.chan.not_empty.notify_one();
                    return Ok(());
                }
                st = self
                    .chan
                    .not_full
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until an element is available. Fails once the buffer is
        /// empty and every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.chan.state.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.chan.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .chan
                    .not_empty
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Block for at most `timeout` waiting for an element. Returns
        /// `Disconnected` once the buffer is empty and every sender is
        /// dropped, `Timeout` if the duration elapses first.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut st = self.chan.state.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.chan.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                let Some(remaining) = deadline.checked_duration_since(now).filter(|d| !d.is_zero())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, _timed_out) = self
                    .chan
                    .not_empty
                    .wait_timeout(st, remaining)
                    .unwrap_or_else(PoisonError::into_inner);
                st = guard;
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.chan.state.lock().unwrap_or_else(PoisonError::into_inner);
            match st.queue.pop_front() {
                Some(v) => {
                    self.chan.not_full.notify_one();
                    Ok(v)
                }
                None if st.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Number of elements currently buffered.
        pub fn len(&self) -> usize {
            self.chan
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .queue
                .len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.chan
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .senders += 1;
            Sender { chan: self.chan.clone() }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.chan
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .receivers += 1;
            Receiver { chan: self.chan.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.chan.state.lock().unwrap_or_else(PoisonError::into_inner);
            st.senders -= 1;
            if st.senders == 0 {
                // Wake blocked receivers so they can observe disconnection.
                self.chan.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.chan.state.lock().unwrap_or_else(PoisonError::into_inner);
            st.receivers -= 1;
            if st.receivers == 0 {
                // Wake blocked senders so they can observe disconnection.
                self.chan.not_full.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_within_single_consumer() {
            let (tx, rx) = bounded(4);
            for i in 0..4 {
                tx.send(i).unwrap();
            }
            drop(tx);
            assert_eq!(
                std::iter::from_fn(|| rx.recv().ok()).collect::<Vec<_>>(),
                vec![0, 1, 2, 3]
            );
        }

        #[test]
        fn recv_fails_after_all_senders_drop() {
            let (tx, rx) = bounded::<i32>(2);
            let tx2 = tx.clone();
            drop(tx);
            tx2.send(9).unwrap();
            drop(tx2);
            assert_eq!(rx.recv(), Ok(9));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_fails_after_all_receivers_drop() {
            let (tx, rx) = bounded::<i32>(1);
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn bounded_send_blocks_until_room() {
            let (tx, rx) = bounded::<i32>(1);
            tx.send(1).unwrap();
            let t = std::thread::spawn(move || tx.send(2).map_err(|_| ()));
            std::thread::sleep(std::time::Duration::from_millis(20));
            assert_eq!(rx.recv(), Ok(1));
            t.join().unwrap().unwrap();
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn recv_timeout_times_out_then_succeeds() {
            let (tx, rx) = bounded::<i32>(2);
            assert_eq!(
                rx.recv_timeout(std::time::Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(5).unwrap();
            assert_eq!(rx.recv_timeout(std::time::Duration::from_millis(10)), Ok(5));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(std::time::Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn mpmc_consumes_every_item_once() {
            let (tx, rx) = bounded::<usize>(8);
            let consumers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || {
                        let mut got = Vec::new();
                        while let Ok(v) = rx.recv() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            drop(rx);
            for i in 0..1000 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let mut all: Vec<usize> = consumers
                .into_iter()
                .flat_map(|t| t.join().unwrap())
                .collect();
            all.sort_unstable();
            assert_eq!(all, (0..1000).collect::<Vec<_>>());
        }
    }
}
