//! Offline shim for the subset of `crossbeam` this workspace uses: the
//! bounded MPMC channel and the work-stealing deque. The channel is
//! built over `std::sync` (Mutex + Condvar); both `Sender` and
//! `Receiver` are cloneable, sends block when the buffer is full (that
//! backpressure is what makes the pipeline's bounded inter-stage
//! buffers meaningful), and disconnection is reported the crossbeam
//! way: `send` fails once all receivers are gone, `recv` fails once the
//! buffer is drained and all senders are gone. The deque module
//! implements the Chase-Lev owner/stealer split plus a shared injector
//! queue, mirroring `crossbeam_deque`'s `Worker`/`Stealer`/`Injector`
//! API subset used by the runtime executor.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        capacity: usize,
        /// Mirror of `state.queue.len()`, updated under the state lock
        /// but readable without it — crossbeam's `len()` is lock-free,
        /// and telemetry samples queue occupancy from hot worker loops,
        /// so `len()` must not contend with senders and receivers.
        depth: AtomicUsize,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent value like crossbeam's.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    /// Create a bounded MPMC channel with the given buffer capacity.
    /// Capacity 0 (crossbeam's rendezvous channel) is modeled as
    /// capacity 1 — no caller in this workspace uses rendezvous
    /// semantics.
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
            capacity: capacity.max(1),
            depth: AtomicUsize::new(0),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender { chan: chan.clone() }, Receiver { chan })
    }

    /// Create an effectively unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        bounded(usize::MAX)
    }

    impl<T> Sender<T> {
        /// Block until buffer space is available, then enqueue `value`.
        /// Fails (returning the value) once every receiver is dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.chan.state.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                if st.queue.len() < self.chan.capacity {
                    st.queue.push_back(value);
                    self.chan.depth.store(st.queue.len(), Ordering::Relaxed);
                    self.chan.not_empty.notify_one();
                    return Ok(());
                }
                st = self
                    .chan
                    .not_full
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until an element is available. Fails once the buffer is
        /// empty and every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.chan.state.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.chan.depth.store(st.queue.len(), Ordering::Relaxed);
                    self.chan.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .chan
                    .not_empty
                    .wait(st)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Block for at most `timeout` waiting for an element. Returns
        /// `Disconnected` once the buffer is empty and every sender is
        /// dropped, `Timeout` if the duration elapses first.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut st = self.chan.state.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = st.queue.pop_front() {
                    self.chan.depth.store(st.queue.len(), Ordering::Relaxed);
                    self.chan.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                let Some(remaining) = deadline.checked_duration_since(now).filter(|d| !d.is_zero())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, _timed_out) = self
                    .chan
                    .not_empty
                    .wait_timeout(st, remaining)
                    .unwrap_or_else(PoisonError::into_inner);
                st = guard;
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.chan.state.lock().unwrap_or_else(PoisonError::into_inner);
            match st.queue.pop_front() {
                Some(v) => {
                    self.chan.depth.store(st.queue.len(), Ordering::Relaxed);
                    self.chan.not_full.notify_one();
                    Ok(v)
                }
                None if st.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Number of elements currently buffered (approximate under
        /// races, like crossbeam's — reads a lock-free mirror rather
        /// than contending with senders and receivers).
        pub fn len(&self) -> usize {
            self.chan.depth.load(Ordering::Relaxed)
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.chan
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .senders += 1;
            Sender { chan: self.chan.clone() }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.chan
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .receivers += 1;
            Receiver { chan: self.chan.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.chan.state.lock().unwrap_or_else(PoisonError::into_inner);
            st.senders -= 1;
            if st.senders == 0 {
                // Wake blocked receivers so they can observe disconnection.
                self.chan.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.chan.state.lock().unwrap_or_else(PoisonError::into_inner);
            st.receivers -= 1;
            if st.receivers == 0 {
                // Wake blocked senders so they can observe disconnection.
                self.chan.not_full.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod channel_tests {
        use super::*;

        #[test]
        fn fifo_within_single_consumer() {
            let (tx, rx) = bounded(4);
            for i in 0..4 {
                tx.send(i).unwrap();
            }
            drop(tx);
            assert_eq!(
                std::iter::from_fn(|| rx.recv().ok()).collect::<Vec<_>>(),
                vec![0, 1, 2, 3]
            );
        }

        #[test]
        fn recv_fails_after_all_senders_drop() {
            let (tx, rx) = bounded::<i32>(2);
            let tx2 = tx.clone();
            drop(tx);
            tx2.send(9).unwrap();
            drop(tx2);
            assert_eq!(rx.recv(), Ok(9));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_fails_after_all_receivers_drop() {
            let (tx, rx) = bounded::<i32>(1);
            drop(rx);
            assert!(tx.send(1).is_err());
        }

        #[test]
        fn bounded_send_blocks_until_room() {
            let (tx, rx) = bounded::<i32>(1);
            tx.send(1).unwrap();
            let t = std::thread::spawn(move || tx.send(2).map_err(|_| ()));
            std::thread::sleep(std::time::Duration::from_millis(20));
            assert_eq!(rx.recv(), Ok(1));
            t.join().unwrap().unwrap();
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn recv_timeout_times_out_then_succeeds() {
            let (tx, rx) = bounded::<i32>(2);
            assert_eq!(
                rx.recv_timeout(std::time::Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(5).unwrap();
            assert_eq!(rx.recv_timeout(std::time::Duration::from_millis(10)), Ok(5));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(std::time::Duration::from_millis(10)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn mpmc_consumes_every_item_once() {
            let (tx, rx) = bounded::<usize>(8);
            let consumers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || {
                        let mut got = Vec::new();
                        while let Ok(v) = rx.recv() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            drop(rx);
            for i in 0..1000 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let mut all: Vec<usize> = consumers
                .into_iter()
                .flat_map(|t| t.join().unwrap())
                .collect();
            all.sort_unstable();
            assert_eq!(all, (0..1000).collect::<Vec<_>>());
        }
    }
}

pub mod deque {
    //! Chase-Lev work-stealing deque plus a shared injector queue.
    //!
    //! The `Worker` owns the bottom end of a fixed-capacity ring: it
    //! pushes and pops there without contention (LIFO, cache-warm).
    //! `Stealer` handles take from the top end (FIFO, oldest first) and
    //! race each other — and the owner's pop of the last element — with
    //! a single CAS on `top`. Memory orderings follow Lê, Pop &
    //! Cohen, "Correct and Efficient Work-Stealing for Weak Memory
    //! Models" (PPoPP 2013). Unlike crossbeam's growable buffer (which
    //! needs epoch reclamation to retire old rings), this shim keeps
    //! one fixed ring and reports overflow from `push` by handing the
    //! value back — callers overflow into the [`Injector`].

    use std::cell::UnsafeCell;
    use std::collections::VecDeque;
    use std::mem::MaybeUninit;
    use std::sync::atomic::{fence, AtomicIsize, Ordering};
    use std::sync::{Arc, Mutex, PoisonError};

    /// Result of a steal attempt.
    #[derive(Debug)]
    pub enum Steal<T> {
        /// The queue was observed empty.
        Empty,
        /// Lost a race with another consumer; worth retrying.
        Retry,
        /// Took this value.
        Success(T),
    }

    impl<T> Steal<T> {
        pub fn is_empty(&self) -> bool {
            matches!(self, Steal::Empty)
        }

        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(v) => Some(v),
                _ => None,
            }
        }
    }

    struct Ring<T> {
        slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
        mask: usize,
        /// Steal end. Monotonically increasing; `slots[top..bottom]`
        /// are initialized.
        top: AtomicIsize,
        /// Owner end. Only the `Worker` writes it (except transiently
        /// during its own pop).
        bottom: AtomicIsize,
    }

    unsafe impl<T: Send> Send for Ring<T> {}
    unsafe impl<T: Send> Sync for Ring<T> {}

    impl<T> Ring<T> {
        fn with_capacity(capacity: usize) -> Ring<T> {
            let cap = capacity.next_power_of_two().max(2);
            let slots = (0..cap)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect::<Vec<_>>()
                .into_boxed_slice();
            Ring { slots, mask: cap - 1, top: AtomicIsize::new(0), bottom: AtomicIsize::new(0) }
        }

        /// Write `value` into the slot for `index`. Caller must hold
        /// the unique right to that slot (owner push below `bottom`).
        unsafe fn write(&self, index: isize, value: T) {
            let slot = &self.slots[(index as usize) & self.mask];
            (*slot.get()).write(value);
        }

        /// Copy the value out of the slot for `index`. The copy is only
        /// valid to use if the caller subsequently wins the CAS (or is
        /// the owner above `top`); losers must `mem::forget` it.
        unsafe fn read(&self, index: isize) -> T {
            let slot = &self.slots[(index as usize) & self.mask];
            (*slot.get()).assume_init_read()
        }
    }

    impl<T> Drop for Ring<T> {
        fn drop(&mut self) {
            let t = *self.top.get_mut();
            let b = *self.bottom.get_mut();
            let mut i = t;
            while i != b {
                unsafe { drop(self.read(i)) };
                i = i.wrapping_add(1);
            }
        }
    }

    /// Owner handle: single-threaded push/pop at the bottom end.
    pub struct Worker<T> {
        ring: Arc<Ring<T>>,
    }

    // The owner may move between threads (a lane handing its deque to a
    // successor) but must never be shared: no `Sync` impl.
    unsafe impl<T: Send> Send for Worker<T> {}

    impl<T> Worker<T> {
        /// Create a deque whose ring holds at least `capacity` items
        /// (rounded up to a power of two).
        pub fn with_capacity(capacity: usize) -> Worker<T> {
            Worker { ring: Arc::new(Ring::with_capacity(capacity)) }
        }

        /// Create a stealer handle for this deque; cloneable and
        /// shareable across threads.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer { ring: self.ring.clone() }
        }

        /// Push at the bottom end. Returns the value back if the ring
        /// is full — the caller overflows into the [`Injector`].
        pub fn push(&self, value: T) -> Result<(), T> {
            let b = self.ring.bottom.load(Ordering::Relaxed);
            let t = self.ring.top.load(Ordering::Acquire);
            if b.wrapping_sub(t) >= self.ring.slots.len() as isize {
                return Err(value);
            }
            unsafe { self.ring.write(b, value) };
            self.ring.bottom.store(b.wrapping_add(1), Ordering::Release);
            Ok(())
        }

        /// Pop from the bottom end (most recently pushed first). Races
        /// stealers only when one element remains.
        pub fn pop(&self) -> Option<T> {
            let b = self.ring.bottom.load(Ordering::Relaxed).wrapping_sub(1);
            self.ring.bottom.store(b, Ordering::Relaxed);
            fence(Ordering::SeqCst);
            let t = self.ring.top.load(Ordering::Relaxed);
            let size = b.wrapping_sub(t);
            if size < 0 {
                // Deque was empty; restore bottom.
                self.ring.bottom.store(b.wrapping_add(1), Ordering::Relaxed);
                return None;
            }
            let value = unsafe { self.ring.read(b) };
            if size > 0 {
                return Some(value);
            }
            // Last element: race stealers for it via the top CAS.
            let won = self
                .ring
                .top
                .compare_exchange(t, t.wrapping_add(1), Ordering::SeqCst, Ordering::Relaxed)
                .is_ok();
            self.ring.bottom.store(b.wrapping_add(1), Ordering::Relaxed);
            if won {
                Some(value)
            } else {
                // A stealer took it; our speculative copy must not drop.
                std::mem::forget(value);
                None
            }
        }

        /// Observed number of queued items (approximate under races).
        pub fn len(&self) -> usize {
            let b = self.ring.bottom.load(Ordering::Relaxed);
            let t = self.ring.top.load(Ordering::Relaxed);
            b.wrapping_sub(t).max(0) as usize
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    /// Thief handle: concurrent FIFO takes from the top end.
    pub struct Stealer<T> {
        ring: Arc<Ring<T>>,
    }

    unsafe impl<T: Send> Send for Stealer<T> {}
    unsafe impl<T: Send> Sync for Stealer<T> {}

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Stealer<T> {
            Stealer { ring: self.ring.clone() }
        }
    }

    impl<T> Stealer<T> {
        /// Try to take the oldest element.
        pub fn steal(&self) -> Steal<T> {
            let t = self.ring.top.load(Ordering::Acquire);
            fence(Ordering::SeqCst);
            let b = self.ring.bottom.load(Ordering::Acquire);
            if b.wrapping_sub(t) <= 0 {
                return Steal::Empty;
            }
            let value = unsafe { self.ring.read(t) };
            if self
                .ring
                .top
                .compare_exchange(t, t.wrapping_add(1), Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
            {
                Steal::Success(value)
            } else {
                // Lost to the owner or another thief; drop the
                // speculative copy without running destructors.
                std::mem::forget(value);
                Steal::Retry
            }
        }

        pub fn len(&self) -> usize {
            let b = self.ring.bottom.load(Ordering::Relaxed);
            let t = self.ring.top.load(Ordering::Relaxed);
            b.wrapping_sub(t).max(0) as usize
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    /// Shared FIFO entry queue: any thread pushes, lanes steal. Backed
    /// by a mutexed `VecDeque` — the injector is the cold path (new
    /// submissions and deque overflow), so lock cost is acceptable and
    /// batch transfer amortizes it further.
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    /// Cap on how many items one `steal_batch_and_pop` moves; keeps a
    /// single lane from draining the shared queue while siblings starve.
    const MAX_BATCH: usize = 16;

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Injector::new()
        }
    }

    impl<T> Injector<T> {
        pub fn new() -> Injector<T> {
            Injector { queue: Mutex::new(VecDeque::new()) }
        }

        pub fn push(&self, value: T) {
            self.queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(value);
        }

        /// Take the oldest element.
        pub fn steal(&self) -> Steal<T> {
            match self
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_front()
            {
                Some(v) => Steal::Success(v),
                None => Steal::Empty,
            }
        }

        /// Take the oldest element and move up to half the remainder
        /// (capped) into `dest`, preserving FIFO order. Items that do
        /// not fit in `dest` stay queued here.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let mut q = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
            let Some(first) = q.pop_front() else {
                return Steal::Empty;
            };
            let batch = (q.len() / 2).min(MAX_BATCH);
            for _ in 0..batch {
                let Some(v) = q.pop_front() else { break };
                if let Err(v) = dest.push(v) {
                    q.push_front(v);
                    break;
                }
            }
            Steal::Success(first)
        }

        pub fn len(&self) -> usize {
            self.queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    #[cfg(test)]
    mod deque_tests {
        use super::*;
        use std::sync::atomic::AtomicUsize;

        #[test]
        fn owner_pop_is_lifo_steal_is_fifo() {
            let w = Worker::with_capacity(8);
            let s = w.stealer();
            for i in 0..4 {
                w.push(i).unwrap();
            }
            assert_eq!(w.pop(), Some(3));
            assert!(matches!(s.steal(), Steal::Success(0)));
            assert!(matches!(s.steal(), Steal::Success(1)));
            assert_eq!(w.pop(), Some(2));
            assert_eq!(w.pop(), None);
            assert!(s.steal().is_empty());
        }

        #[test]
        fn push_reports_overflow_and_recovers_after_pop() {
            let w = Worker::with_capacity(2);
            w.push(1).unwrap();
            w.push(2).unwrap();
            assert_eq!(w.push(3), Err(3));
            assert_eq!(w.pop(), Some(2));
            w.push(4).unwrap();
            assert_eq!(w.len(), 2);
        }

        #[test]
        fn ring_wraps_across_many_cycles() {
            let w = Worker::with_capacity(4);
            let s = w.stealer();
            let mut expected = 0;
            for round in 0..100 {
                w.push(round * 2).unwrap();
                w.push(round * 2 + 1).unwrap();
                assert!(matches!(s.steal(), Steal::Success(v) if v == expected));
                expected += 1;
                assert!(matches!(s.steal(), Steal::Success(v) if v == expected));
                expected += 1;
            }
            assert!(s.steal().is_empty());
        }

        #[test]
        fn drop_releases_unconsumed_items() {
            static DROPS: AtomicUsize = AtomicUsize::new(0);
            #[derive(Debug)]
            struct D;
            impl Drop for D {
                fn drop(&mut self) {
                    DROPS.fetch_add(1, Ordering::SeqCst);
                }
            }
            let w = Worker::with_capacity(8);
            for _ in 0..5 {
                w.push(D).unwrap();
            }
            drop(w.pop());
            drop(w);
            assert_eq!(DROPS.load(Ordering::SeqCst), 5);
        }

        #[test]
        fn injector_batch_pop_moves_items_in_order() {
            let inj = Injector::new();
            for i in 0..10 {
                inj.push(i);
            }
            let w = Worker::with_capacity(16);
            let s = w.stealer();
            assert!(matches!(inj.steal_batch_and_pop(&w), Steal::Success(0)));
            // Half of the remaining nine (4) moved into the worker.
            assert_eq!(w.len(), 4);
            assert_eq!(inj.len(), 5);
            assert!(matches!(s.steal(), Steal::Success(1)));
            assert!(matches!(inj.steal(), Steal::Success(5)));
        }

        #[test]
        fn concurrent_owner_and_stealers_consume_each_item_once() {
            const ITEMS: usize = 10_000;
            let w: Worker<usize> = Worker::with_capacity(64);
            let inj = Arc::new(Injector::new());
            let seen: Arc<Vec<AtomicUsize>> =
                Arc::new((0..ITEMS).map(|_| AtomicUsize::new(0)).collect());
            let done = Arc::new(std::sync::atomic::AtomicBool::new(false));

            let thieves: Vec<_> = (0..3)
                .map(|_| {
                    let s = w.stealer();
                    let seen = seen.clone();
                    let done = done.clone();
                    std::thread::spawn(move || loop {
                        match s.steal() {
                            Steal::Success(v) => {
                                seen[v].fetch_add(1, Ordering::SeqCst);
                            }
                            Steal::Retry => std::hint::spin_loop(),
                            Steal::Empty => {
                                if done.load(Ordering::SeqCst) {
                                    break;
                                }
                                std::thread::yield_now();
                            }
                        }
                    })
                })
                .collect();

            // Owner interleaves pushes with pops; ring overflow spills
            // into the injector exactly like the executor does.
            for i in 0..ITEMS {
                if let Err(v) = w.push(i) {
                    inj.push(v);
                }
                if i % 3 == 0 {
                    if let Some(v) = w.pop() {
                        seen[v].fetch_add(1, Ordering::SeqCst);
                    }
                }
            }
            while let Some(v) = w.pop() {
                seen[v].fetch_add(1, Ordering::SeqCst);
            }
            done.store(true, Ordering::SeqCst);
            for t in thieves {
                t.join().unwrap();
            }
            while let Steal::Success(v) = inj.steal() {
                seen[v].fetch_add(1, Ordering::SeqCst);
            }
            for (i, c) in seen.iter().enumerate() {
                assert_eq!(c.load(Ordering::SeqCst), 1, "item {i} seen wrong number of times");
            }
        }
    }
}
