//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! The build environment has no crates.io access, so the real proptest is
//! replaced by this random-testing harness exposing the same surface the
//! workspace's property tests are written against: the `proptest!` macro
//! with `#![proptest_config(..)]`, `Strategy` with `prop_map` /
//! `prop_recursive` / `boxed`, `prop_oneof!` (weighted and unweighted),
//! `Just`, `any::<T>()`, `proptest::collection::vec`, and
//! `prop_assert!` / `prop_assert_eq!`.
//!
//! Differences from real proptest, deliberately accepted:
//! * **no shrinking** — a failing case reports the generated inputs via
//!   the panic message (every strategy value in this workspace is
//!   `Debug`-renderable through the test body's own assertions);
//! * **derived seeding** — each test derives its RNG seed from the test
//!   function's name, so runs are reproducible without a persistence
//!   file.

use rand::{Rng, RngCore, SeedableRng};
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// Run-time configuration accepted by `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Accepted for compatibility; unused (this shim never shrinks).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256, max_shrink_iters: 0 }
    }
}

/// Failure raised by `prop_assert*` inside a `proptest!` body.
#[derive(Debug)]
pub struct TestCaseError {
    pub message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError { message: message.into() }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

/// The RNG driving value generation, deterministically seeded per test.
pub struct TestRng {
    inner: rand::StdRng,
}

impl TestRng {
    /// Seed from a test name (FNV-1a), so each test is reproducible and
    /// different tests explore different streams.
    pub fn deterministic(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng { inner: rand::StdRng::seed_from_u64(h) }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn below(&mut self, n: usize) -> usize {
        self.inner.gen_range(0..n.max(1))
    }
}

/// A generator of random values (no shrinking).
pub trait Strategy: Clone {
    type Value;

    /// Generate one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> O,
        Self: Sized,
    {
        Map { source: self, f: Arc::new(f) }
    }

    /// Keep only values satisfying `pred` (resamples, bounded tries).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        F: Fn(&Self::Value) -> bool,
        Self: Sized,
    {
        Filter { source: self, whence, pred: Arc::new(pred) }
    }

    /// Recursive structures: `f` receives a strategy for the inner
    /// recursion and returns the composite level. `depth` bounds the
    /// recursion; the remaining two parameters (desired size, expected
    /// branch size) are accepted for API compatibility and unused.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2,
    {
        let leaf = self.boxed();
        let mut level = leaf.clone();
        for _ in 0..depth {
            let composite = f(level).boxed();
            // Mix leaves back in at every level so generated trees vary
            // in depth instead of always bottoming out at `depth`.
            level = Union {
                arms: Arc::new(vec![(1, leaf.clone()), (2, composite)]),
            }
            .boxed();
        }
        level
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy {
            sample: Arc::new(move |rng| self.sample(rng)),
        }
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T> {
    sample: Arc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> BoxedStrategy<T> {
        BoxedStrategy { sample: self.sample.clone() }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.sample)(rng)
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    source: S,
    f: Arc<F>,
}

impl<S: Clone, F> Clone for Map<S, F> {
    fn clone(&self) -> Map<S, F> {
        Map { source: self.source.clone(), f: self.f.clone() }
    }
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.sample(rng))
    }
}

/// `prop_filter` adapter.
pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    pred: Arc<F>,
}

impl<S: Clone, F> Clone for Filter<S, F> {
    fn clone(&self) -> Filter<S, F> {
        Filter { source: self.source.clone(), whence: self.whence, pred: self.pred.clone() }
    }
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.source.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter gave up after 1000 rejections: {}", self.whence);
    }
}

/// Always produces a clone of one value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice among boxed strategies; backs `prop_oneof!`.
pub struct Union<T> {
    arms: Arc<Vec<(u32, BoxedStrategy<T>)>>,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Union<T> {
        Union { arms: self.arms.clone() }
    }
}

impl<T> Union<T> {
    pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms: Arc::new(arms) }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = (rng.next_u64() % total.max(1)) as i64;
        for (w, s) in self.arms.iter() {
            pick -= *w as i64;
            if pick < 0 {
                return s.sample(rng);
            }
        }
        self.arms.last().expect("nonempty").1.sample(rng)
    }
}

/// Types with a canonical `any::<T>()` strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Strategy for `any::<T>()`.
pub struct ArbitraryStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T> Clone for ArbitraryStrategy<T> {
    fn clone(&self) -> Self {
        ArbitraryStrategy { _marker: std::marker::PhantomData }
    }
}

impl<T: Arbitrary> Strategy for ArbitraryStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for a type.
pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
    ArbitraryStrategy { _marker: std::marker::PhantomData }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.inner.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.inner.gen_range(self.clone())
            }
        }
    )*};
}
int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.inner.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Accepted size specifications for [`vec`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        /// inclusive
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "vec size range is empty");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy for vectors of `element` with length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Clone> Clone for VecStrategy<S> {
        fn clone(&self) -> VecStrategy<S> {
            VecStrategy { element: self.element.clone(), size: self.size.clone() }
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi - self.size.lo + 1;
            let len = self.size.lo + rng.below(span);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// Everything the workspace's tests import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new_weighted(vec![
            $((1u32, $crate::Strategy::boxed($strat)),)+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)*)),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: `{:?}` == `{:?}`", l, r),
            ));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: `{:?}` == `{:?}`: {}", l, r, format!($($fmt)*)),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: `{:?}` != `{:?}`", l, r),
            ));
        }
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr)
      $(
          #[test]
          fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
      )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    $( let $arg = $crate::Strategy::sample(&($strat), &mut rng); )*
                    let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name), case + 1, config.cases, e
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec_sample_in_bounds() {
        let mut rng = crate::TestRng::deterministic("shim-self-test");
        for _ in 0..200 {
            let v = crate::Strategy::sample(&(3i64..9), &mut rng);
            assert!((3..9).contains(&v));
            let xs =
                crate::Strategy::sample(&crate::collection::vec(0u8..4, 1..5), &mut rng);
            assert!((1..5).contains(&xs.len()));
            assert!(xs.iter().all(|x| *x < 4));
        }
    }

    #[test]
    fn oneof_respects_weights_loosely() {
        let mut rng = crate::TestRng::deterministic("weights");
        let s = prop_oneof![9 => Just(1u32), 1 => Just(2u32)];
        let ones = (0..1000)
            .filter(|_| crate::Strategy::sample(&s, &mut rng) == 1)
            .count();
        assert!(ones > 700, "{ones}");
    }

    #[test]
    fn recursive_strategies_terminate_and_vary() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf(bool),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = any::<bool>().prop_map(Tree::Leaf).prop_recursive(3, 24, 4, |inner| {
            crate::collection::vec(inner, 2..4).prop_map(Tree::Node)
        });
        let mut rng = crate::TestRng::deterministic("trees");
        let depths: std::collections::BTreeSet<usize> =
            (0..200).map(|_| depth(&crate::Strategy::sample(&strat, &mut rng))).collect();
        assert!(depths.len() > 1, "degenerate recursion: {depths:?}");
        assert!(depths.iter().all(|d| *d <= 4));
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn macro_binds_arguments(x in 0i64..10, flips in crate::collection::vec(any::<bool>(), 0..4)) {
            prop_assert!(x >= 0);
            prop_assert!(x < 10, "x was {}", x);
            prop_assert_eq!(flips.len(), flips.len());
        }
    }
}
