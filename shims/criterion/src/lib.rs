//! Offline shim for the subset of `criterion` this workspace's benches
//! use. No statistics engine — each benchmark runs `sample_size`
//! measured iterations after one warmup and prints min / median / mean
//! wall times. Enough to compare series on one machine, which is what
//! the benches here do; not a replacement for criterion's rigor.

use std::time::{Duration, Instant};

/// Top-level benchmark context.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { default_sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.default_sample_size = n.max(2);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== bench group: {name} ==");
        let sample_size = self.default_sample_size;
        BenchmarkGroup { _parent: self, name, sample_size }
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        run_one("", &id.into_benchmark_id().label, sample_size, f);
        self
    }

    pub fn final_summary(self) {}
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Accepted for compatibility; this shim always runs to completion.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.into_benchmark_id().label, self.sample_size, |b| f(b));
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.label, self.sample_size, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, label: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher { samples: Vec::with_capacity(sample_size) };
    // One warmup sample, discarded.
    f(&mut b);
    b.samples.clear();
    for _ in 0..sample_size {
        f(&mut b);
    }
    let mut per_iter: Vec<Duration> = b.samples;
    per_iter.sort();
    if per_iter.is_empty() {
        println!("  {group}/{label}: no samples recorded");
        return;
    }
    let min = per_iter[0];
    let median = per_iter[per_iter.len() / 2];
    let mean = per_iter.iter().sum::<Duration>() / per_iter.len() as u32;
    println!(
        "  {group}/{label}: min {min:?}  median {median:?}  mean {mean:?}  ({} samples)",
        per_iter.len()
    );
}

/// Passed to the benchmark closure; `iter` times one execution of `f`
/// per sample.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        let t0 = Instant::now();
        black_box(f());
        self.samples.push(t0.elapsed());
    }
}

/// Benchmark identifier: `name/parameter`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId { label: format!("{}/{}", name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId { label: parameter.to_string() }
    }
}

/// Conversion accepted by `bench_function`.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self.to_string() }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

/// Re-export of the standard opaque value barrier.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_each_sample() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3).bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &n| {
            b.iter(|| n * n);
        });
        group.finish();
    }
}
