//! Offline shim for the subset of `rand` 0.8 this workspace uses:
//! `StdRng::seed_from_u64`, `Rng::gen_range` over integer and float
//! ranges, and `Rng::gen_bool`. Everything in this workspace seeds its
//! generators explicitly (reproducible simulations and tuners), so no OS
//! entropy source is needed.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not the
//! ChaCha12 the real `StdRng` uses, but statistically strong far beyond
//! what the simulations here require, and deterministic per seed, which
//! is the property the callers actually depend on.

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniform `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing randomness helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from a range (`lo..hi` or `lo..=hi`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p.clamp(0.0, 1.0)
    }
}

impl<T: RngCore> Rng for T {}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Map a `u64` to `[0, 1)` using the top 53 bits.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The standard generator: xoshiro256++.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> StdRng {
        // SplitMix64 expansion, the canonical way to seed xoshiro.
        let mut sm = state;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        StdRng { s: [next(), next(), next(), next()] }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

pub mod rngs {
    pub use crate::StdRng;
}

/// A range that `Rng::gen_range` can sample from.
pub trait SampleRange<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, span)` without modulo bias worth caring
/// about here (128-bit multiply-shift).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                self.start + (self.end - self.start) * unit_f64(rng.next_u64()) as $t
            }
        }
    )*};
}

// Only f64: an f32 impl would make `{float}` range literals ambiguous.
float_sample_range!(f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i64 = rng.gen_range(-50i64..50);
            assert!((-50..50).contains(&w));
            let x = rng.gen_range(2usize..=4);
            assert!((2..=4).contains(&x));
            let f = rng.gen_range(-0.9f64..0.9);
            assert!((-0.9..0.9).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_the_domain() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "{hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
