//! Cross-crate integration: structured tracing end-to-end — the
//! runtime records per-item events, the collector aggregates them
//! deterministically, the exporter produces valid Chrome trace JSON,
//! and the bottleneck analyzer both identifies a deliberately slowed
//! stage and steers the auto-tuner past the blind per-dimension sweep.

use patty_workspace::patty::Patty;
use patty_workspace::runtime::{ParallelFor, Pipeline, Stage};
use patty_workspace::telemetry::Telemetry;
use patty_workspace::trace::{chrome_trace, StageSummary, TraceReport, Tracer};
use patty_workspace::tuning::{
    Bottleneck, BottleneckAnalyzer, FnEvaluator, FnTracedEvaluator, GuidedSearch, LinearSearch,
    Tuner, TuningConfig, TuningParam,
};

fn avistream_source() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/avistream.mini");
    std::fs::read_to_string(path).expect("examples/avistream.mini")
}

#[test]
fn avistream_trace_covers_every_stage_and_exports_chrome_json() {
    let patty = Patty::new();
    let (trace, report) = patty.trace(&avistream_source()).expect("trace run");
    assert!(!report.stages.is_empty());
    for stage in &report.stages {
        assert!(stage.items > 0, "stage `{}` recorded no items", stage.name);
        assert!(stage.workers > 0, "stage `{}` has no workers", stage.name);
    }
    assert!(report.bottleneck().is_some());
    assert_eq!(report.dropped_events, 0, "default ring must not wrap on avistream");

    // The Chrome export round-trips through the project's own JSON
    // parser and carries at least one complete ("X") slice per stage.
    let json = chrome_trace(&trace).to_string_pretty();
    let doc = patty_workspace::json::parse(&json).expect("chrome trace parses");
    let events = doc.get("traceEvents").and_then(|e| e.as_arr()).expect("traceEvents");
    let mut tid_names = std::collections::BTreeMap::new();
    for e in events {
        if e.get("ph").and_then(|p| p.as_str()) == Some("M")
            && e.get("name").and_then(|n| n.as_str()) == Some("thread_name")
        {
            let tid = e.get("tid").and_then(|t| t.as_i64()).unwrap();
            let name = e
                .get("args")
                .and_then(|a| a.get("name"))
                .and_then(|n| n.as_str())
                .unwrap()
                .to_string();
            tid_names.insert(tid, name);
        }
    }
    for stage in &report.stages {
        let slices = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .filter(|e| {
                let tid = e.get("tid").and_then(|t| t.as_i64()).unwrap_or(-1);
                tid_names
                    .get(&tid)
                    .is_some_and(|n| n.starts_with(&format!("{} ", stage.name)))
            })
            .count();
        assert!(slices > 0, "no Chrome slices for stage `{}`", stage.name);
    }
}

/// The observability acceptance check: artificially slow one stage of a
/// three-stage pipeline and the analyzer must (a) rank it as the
/// bottleneck and (b) suggest widening exactly that stage first.
#[test]
fn analyzer_identifies_artificially_slowed_stage() {
    fn burn(iters: u64, mut x: u64) -> u64 {
        for i in 0..iters {
            x = std::hint::black_box(x.wrapping_mul(31).wrapping_add(i));
        }
        x
    }
    let tracer = Tracer::enabled();
    let pipeline = Pipeline::new(vec![
        Stage::new("decode", |x: u64| burn(200, x)),
        Stage::new("transform", |x: u64| burn(20_000, x)), // deliberately slowed
        Stage::new("encode", |x: u64| burn(200, x)),
    ])
    .with_tracer(tracer.clone());
    pipeline.run((0..64u64).collect());

    let report = tracer.report();
    assert_eq!(report.bottleneck(), Some("transform"));
    let analyzer = BottleneckAnalyzer::new();
    assert_eq!(
        analyzer.classify(&report),
        Bottleneck::StageBound { stage: "transform".into() }
    );

    let mut config = TuningConfig::new("pipeline_main_l1");
    for s in ["decode", "transform", "encode"] {
        config.push(TuningParam::replication(
            format!("pipeline_main_l1.{s}.replication"),
            "main:1",
            8,
        ));
    }
    let suggestions = analyzer.suggest(&report, &config);
    assert!(!suggestions.is_empty());
    assert_eq!(
        suggestions[0].get("pipeline_main_l1.transform.replication").unwrap().as_i64(),
        2,
        "first candidate widens the slowed stage"
    );
    assert_eq!(
        suggestions[0].get("pipeline_main_l1.decode.replication").unwrap().as_i64(),
        1,
        "other stages stay untouched"
    );
}

/// Determinism pinning: two sequential runs under the virtual clock
/// serialize to byte-identical summary JSON.
#[test]
fn deterministic_sequential_runs_pin_summary_bytes() {
    let run = || {
        let tracer = Tracer::deterministic(1024);
        let pipeline = Pipeline::new(vec![
            Stage::new("scale", |x: u64| x * 2),
            Stage::new("emit", |x: u64| x + 1),
        ])
        .sequential(true)
        .with_tracer(tracer.clone());
        pipeline.run((0..16u64).collect());
        tracer.report().to_json()
    };
    let first = run();
    assert_eq!(first, run(), "summary JSON must be byte-identical");
    let doc = patty_workspace::json::parse(&first).unwrap();
    assert_eq!(doc.get("total_items").and_then(|v| v.as_i64()), Some(32));
}

/// Batching is a transport optimization, not an accounting one: the
/// per-stage item counts a trace reports must equal the stream length
/// whatever the batch size, and a data-parallel loop's `chunk_size`
/// histogram must record the real adaptive claim lengths.
#[test]
fn batched_runs_keep_per_element_accounting() {
    const STREAM: u64 = 120;
    for batch in [1usize, 7, 16, 1000] {
        let tracer = Tracer::enabled();
        let pipeline = Pipeline::new(vec![
            Stage::new("scale", |x: u64| x * 2).replicated(2),
            Stage::new("emit", |x: u64| x + 1),
        ])
        .with_batch(batch)
        .with_tracer(tracer.clone());
        let out = pipeline.run((0..STREAM).collect());
        assert_eq!(out.len(), STREAM as usize);
        let report = tracer.report();
        for stage in &report.stages {
            assert_eq!(
                stage.items, STREAM,
                "stage `{}` at batch {batch} must account for every element",
                stage.name
            );
        }
    }

    // Guided self-scheduling: the telemetry histogram carries the real
    // claim lengths — they sum to the iteration count, never exceed the
    // configured chunk, and actually vary (coarse head, fine tail).
    let telemetry = Telemetry::enabled();
    let tracer = Tracer::enabled();
    let pf = ParallelFor::new(2)
        .with_chunk(32)
        .with_telemetry(telemetry.clone())
        .with_tracer(tracer.clone());
    let n = 512usize;
    pf.for_each(n, |_| {});
    let report = telemetry.report();
    let hist = report
        .histograms
        .iter()
        .find(|h| h.name == "parfor.chunk_size")
        .expect("chunk_size histogram");
    assert_eq!(hist.sum, n as u64, "claim lengths sum to the iteration count");
    assert!(hist.max <= 32, "claims never exceed the configured chunk");
    assert!(hist.min < hist.max, "guided claims vary in size");
    // The trace's ItemEnd counts agree with the histogram's totals.
    assert_eq!(tracer.report().stage("parfor").expect("parfor traced").items, n as u64);
}

/// A deterministic three-stage cost model shared by the guided and
/// blind tuners: stage B dominates until replicated, and the synthetic
/// trace reports exactly that shape.
fn sim(config: &TuningConfig) -> (f64, TraceReport) {
    let rep = config.get("p.B.replication").map(|v| v.as_i64()).unwrap_or(1).max(1) as u64;
    let services = [("A", 100u64, 1u64), ("B", 900 / rep, rep), ("C", 100, 1)];
    let stages: Vec<StageSummary> = services
        .iter()
        .map(|(name, service, workers)| StageSummary {
            name: (*name).into(),
            workers: *workers,
            items: 10,
            compute_ns: service * 10 * workers,
            busy_permille: 900,
            service_ns: *service,
            ..StageSummary::default()
        })
        .collect();
    let mut order: Vec<usize> = (0..stages.len()).collect();
    order.sort_by(|&a, &b| stages[b].service_ns.cmp(&stages[a].service_ns).then(a.cmp(&b)));
    let cost = stages.iter().map(|s| s.service_ns).max().unwrap() as f64;
    let report = TraceReport {
        total_items: 30,
        critical_path: order.iter().map(|&i| stages[i].name.clone()).collect(),
        stages,
        ..TraceReport::default()
    };
    (cost, report)
}

fn sim_config() -> TuningConfig {
    let mut c = TuningConfig::new("p");
    c.push(TuningParam::replication("p.A.replication", "main:1", 8));
    c.push(TuningParam::replication("p.B.replication", "main:2", 8));
    c.push(TuningParam::replication("p.C.replication", "main:3", 8));
    c.push(TuningParam::order_preservation("p.B.order", "main:2"));
    c.push(TuningParam::sequential_execution("p.sequential", "main:1"));
    c
}

/// The tuner acceptance check: with the analyzer in the loop the tuner
/// reaches the optimum in fewer evaluations than the paper's blind
/// per-dimension sweep.
#[test]
fn guided_tuner_converges_faster_than_blind_search() {
    let optimum = 112.0; // service floor once B no longer dominates
    let evals_to = |history: &[(u32, f64)]| {
        history
            .iter()
            .find(|(_, best)| *best <= optimum)
            .map(|(i, _)| *i)
            .expect("reaches the optimum")
    };

    let mut guided = GuidedSearch::new();
    let g = guided.tune_traced(sim_config(), &mut FnTracedEvaluator(sim), 300);

    let mut blind = LinearSearch::default();
    let b = blind.tune(sim_config(), &mut FnEvaluator(|c: &TuningConfig| sim(c).0), 300);

    assert!(g.best_score <= optimum, "guided best {}", g.best_score);
    assert!(b.best_score <= optimum, "blind best {}", b.best_score);
    let (g_evals, b_evals) = (evals_to(&g.history), evals_to(&b.history));
    assert!(
        g_evals < b_evals,
        "guided ({g_evals} evals) must beat blind ({b_evals} evals)"
    );
}
