//! Cross-crate integration: the correctness-validation half of the
//! process — every pattern the detector emits on the corpus yields a
//! parallel unit test that is race-free under systematic exploration
//! (the optimistic analysis' debt is paid by CHESS), except where the
//! corpus deliberately plants prefix-blind conflicts.

use patty_workspace::chess::{ChessOptions, FailureKind};
use patty_workspace::corpus::all_programs;
use patty_workspace::patty::Patty;

#[test]
fn detected_patterns_unit_tests_and_verdicts() {
    let patty = Patty::new();
    // ringbuffer is the deliberate blind spot: its detected "DOALLs" are
    // wrong (conflicts beyond the traced prefix). Its per-element unit
    // tests replay only the clean prefix, so CHESS cannot see those
    // conflicts either — that is the documented residual risk of dynamic
    // analysis (Section 6), not a bug in the tester.
    for prog in all_programs() {
        let run = patty.run_automatic(prog.source).unwrap();
        for a in &run.artifacts {
            let Some(test) = &a.unit_test else {
                panic!("{}: profiled instance without unit test", prog.name);
            };
            let report = patty_workspace::testgen::run_unit_test(
                test,
                ChessOptions { max_schedules: 700, ..ChessOptions::default() },
            );
            let raced = report
                .failures
                .iter()
                .any(|f| matches!(f.kind, FailureKind::Race { .. }));
            assert!(
                !raced,
                "{}/{}: unit test raced: {:?}",
                prog.name, a.arch.name, report.failures
            );
            assert!(
                !report.failures.iter().any(|f| f.kind == FailureKind::Deadlock),
                "{}/{}: generated test deadlocked",
                prog.name,
                a.arch.name
            );
        }
    }
}

#[test]
fn over_parallelized_annotation_is_caught() {
    // An engineer wrongly marks a stateful stage replicable; validation
    // must catch it (this is the safety net that makes optimistic
    // detection acceptable).
    let source = r#"
        class Rng { var state = 1; fn next() { this.state = this.state * 75 % 65537; return this.state; } }
        fn main() {
            var rng = new Rng();
            var out = [];
            #region TADL: A+ => B
            foreach (i in range(0, 4)) {
                #region A:
                var v = rng.next();
                #endregion
                #region B:
                out.add(v);
                #endregion
            }
            #endregion
            print(len(out));
        }
    "#;
    let patty = Patty::new();
    let run = patty.run_annotated(source).unwrap();
    let reports = patty.validate_correctness(&run);
    assert_eq!(reports.len(), 1);
    assert!(
        reports[0]
            .1
            .failures
            .iter()
            .any(|f| matches!(f.kind, FailureKind::Race { .. })),
        "replicating the RNG stage must be flagged: {:?}",
        reports[0].1.failures
    );
}

#[test]
fn failure_comes_with_reproducing_schedule() {
    let source = r#"
        class C { var n = 0; fn add(x) { this.n = this.n + x; return this.n; } }
        fn main() {
            var c = new C();
            var log = [];
            #region TADL: A+ => B
            foreach (i in range(0, 3)) {
                #region A:
                var v = c.add(i);
                #endregion
                #region B:
                log.add(v);
                #endregion
            }
            #endregion
            print(len(log));
        }
    "#;
    let patty = Patty::new();
    let run = patty.run_annotated(source).unwrap();
    let (_, report) = &patty.validate_correctness(&run)[0];
    let race = report
        .failures
        .iter()
        .find(|f| matches!(f.kind, FailureKind::Race { .. }))
        .expect("race found");
    assert!(
        !race.schedule.is_empty(),
        "every failure carries its reproducing schedule"
    );
}
