//! Cross-crate integration: the full four-phase process on every corpus
//! program, plus the annotation (mode 2) round trip.

use patty_workspace::corpus::all_programs;
use patty_workspace::minilang::{parse, run, InterpOptions};
use patty_workspace::patty::Patty;
use patty_workspace::transform::extract_annotations;

#[test]
fn automatic_mode_runs_on_every_corpus_program() {
    let patty = Patty::new();
    for prog in all_programs() {
        let result = patty
            .run_automatic(prog.source)
            .unwrap_or_else(|e| panic!("{}: {e}", prog.name));
        for a in &result.artifacts {
            // every artifact set is internally consistent
            a.arch.validate().unwrap_or_else(|e| panic!("{}: {e}", prog.name));
            assert!(
                a.annotated_source.contains("#region TADL:"),
                "{}: annotation missing",
                prog.name
            );
            assert!(!a.tuning_json.is_empty());
            assert!(!a.plan.code.is_empty());
            // the tuning JSON round-trips
            let cfg = patty_workspace::patty::load_tuning(&a.tuning_json).unwrap();
            assert_eq!(cfg, a.instance.tuning, "{}", prog.name);
        }
    }
}

#[test]
fn annotated_source_reanalyzes_identically() {
    // Mode 1 output (annotated source) is valid mode 2 input: extracting
    // the injected annotations yields the same architecture.
    let patty = Patty::new();
    for prog in all_programs() {
        let auto = patty.run_automatic(prog.source).unwrap();
        for a in &auto.artifacts {
            let reparsed = parse(&a.annotated_source)
                .unwrap_or_else(|e| panic!("{}: {e}", prog.name));
            let anns = extract_annotations(&reparsed)
                .unwrap_or_else(|e| panic!("{}: {e}", prog.name));
            assert_eq!(anns.len(), 1, "{}", prog.name);
            assert_eq!(anns[0].expr, a.arch.expr, "{}", prog.name);
        }
    }
}

#[test]
fn annotation_never_changes_program_behaviour() {
    let patty = Patty::new();
    for prog in all_programs() {
        let original = run(&prog.parse(), InterpOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", prog.name));
        let auto = patty.run_automatic(prog.source).unwrap();
        for a in &auto.artifacts {
            let annotated = parse(&a.annotated_source).unwrap();
            let transformed = run(&annotated, InterpOptions::default())
                .unwrap_or_else(|e| panic!("{}: {e}", prog.name));
            assert_eq!(
                original.output, transformed.output,
                "{}: annotating {} changed behaviour",
                prog.name, a.arch.name
            );
        }
    }
}

#[test]
fn tuning_improves_every_pipeline_plan() {
    let patty = Patty::new();
    for prog in all_programs() {
        let auto = patty.run_automatic(prog.source).unwrap();
        for (name, result) in patty.tune_performance(&auto) {
            let initial = result.history.first().map(|h| h.1).unwrap_or(f64::NAN);
            assert!(
                result.best_score <= initial,
                "{}/{name}: tuning must never make things worse ({initial} -> {})",
                prog.name,
                result.best_score
            );
        }
    }
}
