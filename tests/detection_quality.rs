//! Cross-crate integration: the detector's precision/recall on the
//! ground-truth corpus (the Section-5 experiment's underlying machinery).

use patty_workspace::analysis::{collect_loops, SemanticModel};
use patty_workspace::corpus::all_programs;
use patty_workspace::minilang::InterpOptions;
use patty_workspace::patterns::{detect_patterns, DetectOptions};
use std::collections::BTreeSet;

struct Counts {
    tp: usize,
    fp: usize,
    fn_: usize,
}

fn evaluate() -> (Counts, Vec<String>) {
    let mut counts = Counts { tp: 0, fp: 0, fn_: 0 };
    let mut details = Vec::new();
    for prog in all_programs() {
        let p = prog.parse();
        let model = SemanticModel::build(&p, InterpOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", prog.name));
        let loops = collect_loops(&p);
        let truth: BTreeSet<_> = prog.truth_loop_ids(&loops).into_iter().collect();
        let detected: BTreeSet<_> = detect_patterns(&model, &DetectOptions::default())
            .into_iter()
            .map(|i| i.loop_id)
            .collect();
        for id in &detected {
            if truth.contains(id) {
                counts.tp += 1;
            } else {
                counts.fp += 1;
                let l = loops.iter().find(|l| l.id == *id).unwrap();
                details.push(format!("{}: FP at {}:{}", prog.name, l.func, l.span.line));
            }
        }
        for id in &truth {
            if !detected.contains(id) {
                counts.fn_ += 1;
                let l = loops.iter().find(|l| l.id == *id).unwrap();
                details.push(format!("{}: FN at {}:{}", prog.name, l.func, l.span.line));
            }
        }
    }
    (counts, details)
}

#[test]
fn detector_f_score_lands_in_the_paper_band() {
    let (c, details) = evaluate();
    let precision = c.tp as f64 / (c.tp + c.fp).max(1) as f64;
    let recall = c.tp as f64 / (c.tp + c.fn_).max(1) as f64;
    let f = 2.0 * precision * recall / (precision + recall).max(1e-9);
    eprintln!(
        "TP={} FP={} FN={} precision={precision:.3} recall={recall:.3} F={f:.3}",
        c.tp, c.fp, c.fn_
    );
    for d in &details {
        eprintln!("  {d}");
    }
    // Section 5 reports "a balanced F-score of approximately 70%"; our
    // corpus is constructed so the same optimistic detector lands in that
    // band — neither perfect nor unusable.
    assert!((0.60..=0.92).contains(&f), "F-score {f:.3} outside the expected band");
    assert!(c.fp >= 1, "the traced-prefix blind spot must produce false positives");
    assert!(c.fn_ >= 2, "restructuring-required loops must be missed");
}

#[test]
fn detector_finds_all_three_raytracer_locations() {
    let prog = patty_workspace::corpus::raytracer_program();
    let p = prog.parse();
    let model = SemanticModel::build(&p, InterpOptions::default()).unwrap();
    let loops = collect_loops(&p);
    let truth: BTreeSet<_> = prog.truth_loop_ids(&loops).into_iter().collect();
    let detected: BTreeSet<_> = detect_patterns(&model, &DetectOptions::default())
        .into_iter()
        .map(|i| i.loop_id)
        .collect();
    assert_eq!(
        detected, truth,
        "Patty must find exactly the three study locations (Section 4.2: 100% accuracy)"
    );
}
