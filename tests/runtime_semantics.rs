//! Property-based semantics of the parallel runtime library: whatever the
//! tuning values, the patterns must compute exactly what the sequential
//! loop computes — that is the contract that makes the tuning
//! configuration "changeable without recompilation" safe.

use patty_workspace::runtime::{MasterWorker, ParallelFor, Pipeline, Stage};
use proptest::prelude::*;

fn stage_fn(kind: u8) -> impl Fn(i64) -> i64 + Send + Sync + Clone + 'static {
    move |x: i64| match kind % 4 {
        0 => x.wrapping_add(13),
        1 => x.wrapping_mul(3),
        2 => x ^ 0x5f5f,
        _ => x.wrapping_sub(7).rotate_left(3),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn pipeline_equals_sequential_composition(
        input in proptest::collection::vec(-1000i64..1000, 0..60),
        kinds in proptest::collection::vec(0u8..4, 1..5),
        replication in 1usize..4,
        preserve in any::<bool>(),
        fusion_bits in proptest::collection::vec(any::<bool>(), 0..4),
        sequential in any::<bool>(),
        buffer in 1usize..9,
    ) {
        let stages: Vec<Stage<i64>> = kinds
            .iter()
            .enumerate()
            .map(|(i, &k)| {
                let s = Stage::new(format!("s{i}"), stage_fn(k));
                if i == 0 { s.replicated(replication).ordered(preserve) } else { s }
            })
            .collect();
        let mut fusion = fusion_bits.clone();
        fusion.truncate(kinds.len().saturating_sub(1));
        let pipeline = Pipeline::new(stages)
            .with_fusion(fusion)
            .with_buffer(buffer)
            .sequential(sequential);
        let mut out = pipeline.run(input.clone());
        let mut expected: Vec<i64> = input
            .iter()
            .map(|&x| kinds.iter().fold(x, |v, &k| stage_fn(k)(v)))
            .collect();
        // Without order preservation on the replicated stage the order may
        // differ — compare multisets then; otherwise exact order.
        if replication > 1 && !preserve && !sequential {
            out.sort();
            expected.sort();
        }
        prop_assert_eq!(out, expected);
    }

    #[test]
    fn parfor_map_equals_serial_map(
        n in 0usize..200,
        workers in 1usize..6,
        chunk in 1usize..40,
        sequential in any::<bool>(),
    ) {
        let pf = ParallelFor::new(workers).with_chunk(chunk).sequential(sequential);
        let out = pf.map(n, |i| (i as i64).wrapping_mul(31) ^ 7);
        let expected: Vec<i64> = (0..n).map(|i| (i as i64).wrapping_mul(31) ^ 7).collect();
        prop_assert_eq!(out, expected);
    }

    #[test]
    fn parfor_reduce_equals_serial_fold(
        n in 0usize..300,
        workers in 1usize..6,
        chunk in 1usize..50,
    ) {
        let pf = ParallelFor::new(workers).with_chunk(chunk);
        let sum = pf.reduce(n, 0i64, |a, i| a.wrapping_add(i as i64 * 3), |a, b| a.wrapping_add(b));
        let expected: i64 = (0..n).fold(0i64, |a, i| a.wrapping_add(i as i64 * 3));
        prop_assert_eq!(sum, expected);
    }

    #[test]
    fn masterworker_preserves_item_order(
        items in proptest::collection::vec(-500i64..500, 0..80),
        workers in 1usize..6,
    ) {
        let mw = MasterWorker::new(workers);
        let out = mw.run(items.clone(), |x| x.wrapping_mul(x));
        let expected: Vec<i64> = items.iter().map(|x| x.wrapping_mul(*x)).collect();
        prop_assert_eq!(out, expected);
    }
}
