//! Property-based semantics of the parallel runtime library: whatever the
//! tuning values, the patterns must compute exactly what the sequential
//! loop computes — that is the contract that makes the tuning
//! configuration "changeable without recompilation" safe.

use patty_workspace::runtime::{
    FailurePolicy, MasterWorker, ParallelFor, Pipeline, RunOptions, RuntimeError, Stage,
};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn stage_fn(kind: u8) -> impl Fn(i64) -> i64 + Send + Sync + Clone + 'static {
    move |x: i64| match kind % 4 {
        0 => x.wrapping_add(13),
        1 => x.wrapping_mul(3),
        2 => x ^ 0x5f5f,
        _ => x.wrapping_sub(7).rotate_left(3),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn pipeline_equals_sequential_composition(
        input in proptest::collection::vec(-1000i64..1000, 0..60),
        kinds in proptest::collection::vec(0u8..4, 1..5),
        replication in 1usize..4,
        preserve in any::<bool>(),
        fusion_bits in proptest::collection::vec(any::<bool>(), 0..4),
        sequential in any::<bool>(),
        buffer in 1usize..9,
    ) {
        let stages: Vec<Stage<i64>> = kinds
            .iter()
            .enumerate()
            .map(|(i, &k)| {
                let s = Stage::new(format!("s{i}"), stage_fn(k));
                if i == 0 { s.replicated(replication).ordered(preserve) } else { s }
            })
            .collect();
        let mut fusion = fusion_bits.clone();
        fusion.truncate(kinds.len().saturating_sub(1));
        let pipeline = Pipeline::new(stages)
            .with_fusion(fusion)
            .with_buffer(buffer)
            .sequential(sequential);
        let mut out = pipeline.run(input.clone());
        let mut expected: Vec<i64> = input
            .iter()
            .map(|&x| kinds.iter().fold(x, |v, &k| stage_fn(k)(v)))
            .collect();
        // Without order preservation on the replicated stage the order may
        // differ — compare multisets then; otherwise exact order.
        if replication > 1 && !preserve && !sequential {
            out.sort();
            expected.sort();
        }
        prop_assert_eq!(out, expected);
    }

    #[test]
    fn parfor_map_equals_serial_map(
        n in 0usize..200,
        workers in 1usize..6,
        chunk in 1usize..40,
        sequential in any::<bool>(),
    ) {
        let pf = ParallelFor::new(workers).with_chunk(chunk).sequential(sequential);
        let out = pf.map(n, |i| (i as i64).wrapping_mul(31) ^ 7);
        let expected: Vec<i64> = (0..n).map(|i| (i as i64).wrapping_mul(31) ^ 7).collect();
        prop_assert_eq!(out, expected);
    }

    #[test]
    fn parfor_reduce_equals_serial_fold(
        n in 0usize..300,
        workers in 1usize..6,
        chunk in 1usize..50,
    ) {
        let pf = ParallelFor::new(workers).with_chunk(chunk);
        let sum = pf.reduce(n, 0i64, |a, i| a.wrapping_add(i as i64 * 3), |a, b| a.wrapping_add(b));
        let expected: i64 = (0..n).fold(0i64, |a, i| a.wrapping_add(i as i64 * 3));
        prop_assert_eq!(sum, expected);
    }

    // The batching tentpole's core contract: for every combination of
    // stage count, replication, order preservation and batch size —
    // including batch 1 (the per-item schedule) and batches longer than
    // the whole stream — the batched pipeline is byte-identical to the
    // sequential oracle.
    #[test]
    fn batched_pipeline_round_trips_against_the_oracle(
        input in proptest::collection::vec(-1000i64..1000, 0..80),
        kinds in proptest::collection::vec(0u8..4, 1..5),
        replication in 1usize..4,
        preserve in any::<bool>(),
        batch_sel in 0usize..3,
        batch_raw in 2usize..33,
    ) {
        // Force the edge batches into the sampled space: 1 (per-item)
        // and 200 (longer than any generated stream).
        let batch = match batch_sel {
            0 => 1,
            1 => 200,
            _ => batch_raw,
        };
        let stages: Vec<Stage<i64>> = kinds
            .iter()
            .enumerate()
            .map(|(i, &k)| {
                let s = Stage::new(format!("s{i}"), stage_fn(k));
                if i == 0 { s.replicated(replication).ordered(preserve) } else { s }
            })
            .collect();
        let pipeline = Pipeline::new(stages).with_batch(batch);
        let mut out = pipeline.run(input.clone());
        let mut expected: Vec<i64> = input
            .iter()
            .map(|&x| kinds.iter().fold(x, |v, &k| stage_fn(k)(v)))
            .collect();
        if replication > 1 && !preserve {
            out.sort();
            expected.sort();
        }
        prop_assert_eq!(out, expected);
    }

    // Per-item fault attribution inside a batch: a panic on one element
    // of a batched run names that element's true stream sequence, and a
    // transient panic recovered by the sequential fallback still yields
    // the oracle's output.
    #[test]
    fn batched_panic_attribution_and_fallback_round_trip(
        n in 1usize..120,
        batch in 1usize..40,
        replication in 1usize..4,
        panic_at in 0usize..120,
    ) {
        let panic_at = panic_at % n;
        let target = panic_at as i64;

        // Fail-fast: the error's item_seq points at the true element
        // even when it sits mid-batch.
        let boom = Stage::new("boom", move |x: i64| {
            if x == target { panic!("injected") }
            x.wrapping_mul(3)
        })
        .replicated(replication);
        let pipeline = Pipeline::new(vec![boom]).with_batch(batch);
        let err = pipeline
            .run_checked((0..n as i64).collect(), &RunOptions::default())
            .expect_err("injected panic must surface");
        match err {
            RuntimeError::StagePanicked { stage, item_seq, .. } => {
                prop_assert_eq!(stage, "boom".to_string());
                prop_assert_eq!(item_seq, Some(panic_at as u64));
            }
            other => prop_assert!(false, "unexpected error {other:?}"),
        }

        // Transient panic + FallbackSequential: only the missing items
        // are re-executed, and the result equals the oracle.
        let tripped = Arc::new(AtomicBool::new(false));
        let flag = tripped.clone();
        let flaky = Stage::new("flaky", move |x: i64| {
            if x == target && !flag.swap(true, Ordering::SeqCst) {
                panic!("transient")
            }
            x.wrapping_mul(3)
        })
        .replicated(replication);
        let out = Pipeline::new(vec![flaky])
            .with_batch(batch)
            .run_checked(
                (0..n as i64).collect(),
                &RunOptions::new().on_failure(FailurePolicy::FallbackSequential),
            )
            .expect("fallback recovers the transient fault");
        let expected: Vec<i64> = (0..n as i64).map(|x| x.wrapping_mul(3)).collect();
        prop_assert_eq!(out, expected);
    }

    #[test]
    fn masterworker_preserves_item_order(
        items in proptest::collection::vec(-500i64..500, 0..80),
        workers in 1usize..6,
    ) {
        let mw = MasterWorker::new(workers);
        let out = mw.run(items.clone(), |x| x.wrapping_mul(x));
        let expected: Vec<i64> = items.iter().map(|x| x.wrapping_mul(*x)).collect();
        prop_assert_eq!(out, expected);
    }
}
