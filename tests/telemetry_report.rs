//! Regression tests pinning the telemetry layer's observable contract:
//! the counters a profiled run reports are exact, not sampled, and the
//! disabled handle reports nothing at all.

use patty_workspace::runtime::{MasterWorker, ParallelFor, Pipeline, Stage};
use patty_workspace::telemetry::Telemetry;

#[test]
fn two_stage_pipeline_reports_exactly_n_items_per_stage() {
    const N: u64 = 137;
    let telemetry = Telemetry::enabled();
    let pipeline = Pipeline::new(vec![
        Stage::new("decode", |x: u64| x.wrapping_mul(3)),
        Stage::new("encode", |x: u64| x ^ 0xAB),
    ])
    .with_telemetry(telemetry.clone());
    let out = pipeline.run((0..N).collect());
    assert_eq!(out.len(), N as usize);

    let report = telemetry.report();
    assert_eq!(report.counter("pipeline.stage.decode.items"), Some(N));
    assert_eq!(report.counter("pipeline.stage.encode.items"), Some(N));
    // Each threaded stage also times its workers.
    assert!(report.span("pipeline.stage.decode.wall_per_worker").is_some());
    assert!(report.span("pipeline.stage.encode.wall_per_worker").is_some());
}

#[test]
fn sequential_pipeline_reports_the_same_per_stage_totals() {
    const N: u64 = 64;
    let telemetry = Telemetry::enabled();
    let pipeline = Pipeline::new(vec![
        Stage::new("decode", |x: u64| x + 1),
        Stage::new("encode", |x: u64| x * 2),
    ])
    .sequential(true)
    .with_telemetry(telemetry.clone());
    pipeline.run((0..N).collect());
    let report = telemetry.report();
    assert_eq!(report.counter("pipeline.stage.decode.items"), Some(N));
    assert_eq!(report.counter("pipeline.stage.encode.items"), Some(N));
}

#[test]
fn parfor_reports_every_index_and_chunk() {
    let telemetry = Telemetry::enabled();
    let pf = ParallelFor::new(4)
        .with_chunk(16)
        .with_telemetry(telemetry.clone());
    pf.for_each(200, |_| {});
    let report = telemetry.report();
    assert_eq!(report.counter("parfor.items"), Some(200));
    // 200 indices in chunks of 16 → at least ceil(200/16) grabs.
    assert!(report.counter("parfor.chunks").unwrap() >= 13);
    let chunk_hist = report
        .histograms
        .iter()
        .find(|h| h.name == "parfor.chunk_size")
        .expect("chunk-size histogram recorded");
    assert_eq!(chunk_hist.sum, 200);
    assert!(chunk_hist.max <= 16);
}

#[test]
fn masterworker_reports_item_count() {
    let telemetry = Telemetry::enabled();
    let mw = MasterWorker::new(4).with_telemetry(telemetry.clone());
    mw.run((0..50i64).collect(), |x| x * x);
    let report = telemetry.report();
    assert_eq!(report.counter("masterworker.items"), Some(50));
    assert!(report.span("masterworker.run").is_some());
}

#[test]
fn disabled_telemetry_reports_nothing() {
    let telemetry = Telemetry::disabled();
    let pipeline = Pipeline::new(vec![
        Stage::new("decode", |x: u64| x + 1),
        Stage::new("encode", |x: u64| x * 2),
    ])
    .with_telemetry(telemetry.clone());
    pipeline.run((0..100).collect());
    ParallelFor::new(4)
        .with_telemetry(telemetry.clone())
        .for_each(100, |_| {});
    MasterWorker::new(4)
        .with_telemetry(telemetry.clone())
        .run((0..10i64).collect(), |x| x);

    let report = telemetry.report();
    assert!(report.is_empty(), "disabled handle must report nothing: {report:?}");
}

#[test]
fn report_json_is_deterministic_and_parseable() {
    let telemetry = Telemetry::enabled();
    Pipeline::new(vec![Stage::new("s", |x: u64| x)])
        .with_telemetry(telemetry.clone())
        .run((0..10).collect());
    let a = telemetry.report().to_json();
    let b = telemetry.report().to_json();
    assert_eq!(a, b, "snapshots of an idle sink are stable");
    let parsed = patty_workspace::json::parse(&a).expect("report JSON parses");
    assert!(parsed.get("counters").is_some());
    assert!(parsed.get("spans").is_some());
}
