//! The desktop-search index generator (the domain of reference [28]):
//! Patty detects the tokenize → filter → index pipeline in the minilang
//! program, and the same workload runs natively on the runtime library —
//! showing the analysis side and the execution side of the process model
//! together.
//!
//! Run with: `cargo run --release --example desktop_search`

use patty_workspace::analysis::SemanticModel;
use patty_workspace::minilang::{parse, InterpOptions};
use patty_workspace::patterns::{detect_patterns, DetectOptions};
use patty_workspace::runtime::{Pipeline, Stage};
use std::collections::BTreeMap;
use std::time::Instant;

fn main() {
    // 1. Analysis side: detect the pipeline in the corpus program.
    let program = parse(
        patty_workspace::corpus::all_programs()
            .iter()
            .find(|p| p.name == "desktop_search")
            .expect("in corpus")
            .source,
    )
    .expect("parses");
    let model = SemanticModel::build(&program, InterpOptions::default()).expect("runs");
    let found = detect_patterns(&model, &DetectOptions::default());
    println!("detected in minilang source:");
    for inst in &found {
        println!("  {}", inst.summary());
    }

    let cores = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
    if cores < 2 {
        println!("(host has {cores} core(s): wall-clock speedup is not observable here)");
    }

    // 2. Execution side: the same indexing pipeline natively.
    let docs: Vec<String> = (0..20_000)
        .map(|i| {
            format!(
                "doc{} has the word w{} plus the tail t{} and more of the text body {}",
                i,
                i % 50,
                i,
                "lorem ipsum dolor sit amet ".repeat(3)
            )
        })
        .collect();

    type Tokens = Vec<String>;
    let stages = || {
        vec![
            Stage::new("tokenize", |doc: (String, Tokens)| {
                let toks = doc.0.split_whitespace().map(str::to_string).collect();
                (doc.0, toks)
            })
            .replicated(4)
            .ordered(true),
            Stage::new("filter", |(doc, toks): (String, Tokens)| {
                let kept = toks
                    .into_iter()
                    .filter(|t| t != "the" && t != "and" && t.len() > 2)
                    .collect();
                (doc, kept)
            }),
        ]
    };

    let input: Vec<(String, Tokens)> =
        docs.iter().map(|d| (d.clone(), Tokens::new())).collect();

    let t0 = Instant::now();
    let seq = Pipeline::new(stages()).sequential(true).run(input.clone());
    let t_seq = t0.elapsed();

    let t1 = Instant::now();
    let par = Pipeline::new(stages()).with_buffer(64).run(input);
    let t_par = t1.elapsed();

    // The index itself is the order-carrying last stage; build it from
    // the (order-preserved) pipeline output.
    let mut index: BTreeMap<String, u32> = BTreeMap::new();
    for (_, toks) in &par {
        for t in toks {
            *index.entry(t.clone()).or_insert(0) += 1;
        }
    }

    assert_eq!(seq.len(), par.len());
    assert!(seq.iter().zip(&par).all(|(a, b)| a.1 == b.1), "same tokens, same order");
    println!("\nnative index build over {} documents:", docs.len());
    println!("  sequential pipeline: {:>7.1} ms", t_seq.as_secs_f64() * 1e3);
    println!(
        "  parallel pipeline:   {:>7.1} ms  ({:.2}x, tokenizer replicated 4x)",
        t_par.as_secs_f64() * 1e3,
        t_seq.as_secs_f64() / t_par.as_secs_f64()
    );
    println!("  distinct terms: {}", index.len());
}
