//! A native video-processing pipeline on the tunable runtime library
//! (operation mode 3: library-based parallel programming) — the workload
//! the paper's introduction motivates, showing all four PLTP tuning
//! parameters in action on real threads.
//!
//! Run with: `cargo run --release --example video_pipeline`

use patty_workspace::runtime::{Pipeline, Stage};
use std::time::Instant;

/// A toy "frame": a small buffer the filters mangle deterministically.
#[derive(Clone)]
struct Frame {
    id: u64,
    data: Vec<u8>,
}

fn filter(frame: &mut Frame, rounds: u32, salt: u8) {
    for _ in 0..rounds {
        for (i, b) in frame.data.iter_mut().enumerate() {
            *b = b.wrapping_mul(31).wrapping_add(salt ^ (i as u8));
        }
    }
}

fn make_stages() -> Vec<Stage<Frame>> {
    vec![
        Stage::new("crop", |mut f: Frame| {
            filter(&mut f, 2, 11);
            f
        }),
        Stage::new("oil", |mut f: Frame| {
            filter(&mut f, 8, 47); // the expensive one
            f
        })
        .replicated(4)
        .ordered(true),
        Stage::new("convert", |mut f: Frame| {
            filter(&mut f, 1, 3);
            f
        }),
    ]
}

fn frames(n: u64) -> Vec<Frame> {
    (0..n).map(|id| Frame { id, data: vec![id as u8; 4096] }).collect()
}

fn main() {
    let n = 400;
    let cores = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
    if cores < 2 {
        println!("(host has {cores} core(s): wall-clock speedup is not observable here;");
        println!(" the example still demonstrates semantics of all four tuning parameters)\n");
    }

    let t0 = Instant::now();
    let sequential = Pipeline::new(make_stages()).sequential(true).run(frames(n));
    let t_seq = t0.elapsed();

    let t1 = Instant::now();
    let parallel = Pipeline::new(make_stages()).with_buffer(16).run(frames(n));
    let t_par = t1.elapsed();

    // Same results, same order (OrderPreservation is on for the
    // replicated stage).
    assert_eq!(sequential.len(), parallel.len());
    for (a, b) in sequential.iter().zip(&parallel) {
        assert_eq!(a.id, b.id, "order preserved");
        assert_eq!(a.data, b.data, "identical frames");
    }

    println!("frames: {n}");
    println!("sequential: {:>8.1} ms", t_seq.as_secs_f64() * 1e3);
    println!(
        "pipeline:   {:>8.1} ms  ({:.2}x, oil stage replicated 4x, order preserved)",
        t_par.as_secs_f64() * 1e3,
        t_seq.as_secs_f64() / t_par.as_secs_f64()
    );

    // StageFusion: the cheap crop+convert stages fused away.
    let t2 = Instant::now();
    let fused = Pipeline::new(make_stages())
        .with_fusion(vec![false, true])
        .run(frames(n));
    let t_fused = t2.elapsed();
    assert_eq!(fused.len(), parallel.len());
    println!(
        "fused:      {:>8.1} ms  (convert fused into the oil stage's thread)",
        t_fused.as_secs_f64() * 1e3
    );

    // SequentialExecution guard: a 3-frame stream is not worth threads.
    let t3 = Instant::now();
    let _tiny = Pipeline::new(make_stages()).sequential(true).run(frames(3));
    println!(
        "tiny stream sequential fallback: {:>6.2} ms (no thread overhead)",
        t3.elapsed().as_secs_f64() * 1e3
    );
}
