//! Operation mode 2: architecture-based parallel programming.
//!
//! An engineer who already knows where to parallelize writes the TADL
//! annotation directly (like OpenMP pragmas); Patty skips detection but
//! still generates the tuning configuration and — unlike OpenMP — the
//! correctness artifacts: a parallel unit test driven through all
//! interleavings. This example annotates one *correct* and one *broken*
//! architecture and shows CHESS telling them apart.
//!
//! Run with: `cargo run --example annotation_mode`

use patty_workspace::chess::FailureKind;
use patty_workspace::patty::Patty;

const CORRECT: &str = r#"
    class Scale { var g = 3; fn apply(x) { work(80); return x * this.g; } }
    fn main() {
        var scale = new Scale();
        var out = [];
        #region TADL: A+ => B
        foreach (x in range(0, 8)) {
            #region A:
            var v = scale.apply(x);
            #endregion
            #region B:
            out.add(v);
            #endregion
        }
        #endregion
        print(len(out));
    }
"#;

/// The engineer replicated a *stateful* stage: every element bumps the
/// shared counter, so two replicas race.
const BROKEN: &str = r#"
    class Counter { var n = 0; fn bump(x) { this.n = this.n + x; return this.n; } }
    fn main() {
        var counter = new Counter();
        var out = [];
        #region TADL: A+ => B
        foreach (x in range(0, 6)) {
            #region A:
            var v = counter.bump(x);
            #endregion
            #region B:
            out.add(v);
            #endregion
        }
        #endregion
        print(len(out));
    }
"#;

fn main() {
    let patty = Patty::new();
    for (name, source) in [("correct annotation", CORRECT), ("broken annotation", BROKEN)] {
        let run = patty.run_annotated(source).expect("annotation parses");
        let artifact = &run.artifacts[0];
        println!("— {name} —");
        println!("architecture: {}", artifact.arch.expr);
        println!(
            "tuning parameters generated: {}",
            artifact.instance.tuning.params.len()
        );
        for (arch, report) in patty.validate_correctness(&run) {
            let races: Vec<&patty_workspace::chess::Failure> = report
                .failures
                .iter()
                .filter(|f| matches!(f.kind, FailureKind::Race { .. }))
                .collect();
            if races.is_empty() {
                println!(
                    "CHESS[{arch}]: clean across {} schedules\n",
                    report.schedules
                );
            } else {
                println!(
                    "CHESS[{arch}]: DATA RACE — {} (reproducing schedule: {:?})\n",
                    races[0].kind, races[0].schedule
                );
            }
        }
    }
    println!("(mode 2 gives OpenMP-style control with automatic validation on top)");
}
