//! Quickstart: the full Patty process on the paper's AviStream example
//! (Fig. 3) — detect the pipeline, annotate the source, emit the tuning
//! configuration and the parallel plan, validate with CHESS, tune.
//!
//! Run with: `cargo run --example quickstart`

use patty_workspace::patty::{Patty, PattyOptions};

fn main() {
    let source = patty_workspace::corpus::avistream_program().source;
    let patty = Patty { options: PattyOptions::default(), ..Patty::default() };

    // Phases 1–4, fully automatic (operation mode 1).
    let run = patty.run_automatic(source).expect("avistream analyses cleanly");
    println!("detected {} candidate architecture(s)\n", run.artifacts.len());
    let artifact = &run.artifacts[0];

    println!("architecture (Fig. 3b annotation): {}", artifact.arch.expr);
    println!("stream length observed: {} elements", artifact.arch.stream_length);
    println!("\n— annotated source (excerpt) —");
    for line in artifact
        .annotated_source
        .lines()
        .filter(|l| l.contains("#region") || l.contains("#endregion"))
    {
        println!("{line}");
    }

    println!("\n— tuning configuration (Fig. 3c) —");
    println!("{}", artifact.tuning_json);

    println!("— parallel source (Fig. 3d) —");
    println!("{}", artifact.plan.code);

    // Operation mode 4a: correctness validation on the generated parallel
    // unit test (all interleavings).
    for (name, report) in patty.validate_correctness(&run) {
        println!(
            "correctness[{name}]: {} schedules explored, {}",
            report.schedules,
            if report.failures.is_empty() { "no parallel errors" } else { "FAILURES" }
        );
    }

    // Operation mode 4b: the auto-tuning cycle.
    for (name, result) in patty.tune_performance(&run) {
        let initial = result.history.first().map(|h| h.1).unwrap_or(f64::NAN);
        println!(
            "tuning[{name}]: {:.0} → {:.0} simulated cost units in {} evaluations",
            initial, result.best_score, result.evaluations
        );
    }
}
