//! The user-study pipeline end to end (Section 4): run Patty on the
//! RayTracing benchmark, show the three detected locations with overlays,
//! then replay the whole simulated study and print its headline numbers.
//!
//! Run with: `cargo run --example raytracer_study`

use patty_workspace::patty::{render_candidates, Patty};
use patty_workspace::userstudy::{run_study, StudyConfig};

fn main() {
    // What the Patty group's tool actually did during the study.
    let run = Patty::new()
        .run_automatic(patty_workspace::corpus::raytracer_program().source)
        .expect("raytracer analyses cleanly");
    println!("— Patty on the study benchmark (13 classes) —");
    let instances: Vec<_> = run.artifacts.iter().map(|a| a.instance.clone()).collect();
    print!("{}", render_candidates(&instances));

    // The full study.
    let results = run_study(&StudyConfig::default());
    println!("\n— study headline numbers —");
    for e in results.effectivity() {
        println!(
            "  {:<16} found {:.2}/3 ({:>3.0}%), {:.2} false positive(s), {:.1} min",
            e.group.to_string(),
            e.avg_found,
            e.accuracy * 100.0,
            e.avg_false_positives,
            e.avg_total_min
        );
    }
    let (_, patty_total, studio_total) = results.table1();
    println!(
        "\n  comprehensibility: Patty {patty_total:.2} vs Parallel Studio {studio_total:.2} (paper: 2.17 vs 1.00)"
    );
    let (_, p_overall, s_overall) = results.table2();
    println!(
        "  overall assessment: Patty {p_overall:.2} vs Parallel Studio {s_overall:.2} (paper: 2.25 vs 1.40)"
    );
    println!("\n(the Patty group's findings above come from the real detector run)");
}
