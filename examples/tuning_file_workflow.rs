//! The "automatically tunable without the need to recompile" loop of
//! Section 2.1: Patty writes a tuning configuration file next to the
//! parallel code; every execution initializes the patterns from the file;
//! between runs anyone (engineer or auto-tuner) can edit the values.
//!
//! This example runs that loop end to end on disk: generate the file from
//! a detected architecture, execute the native pipeline as configured,
//! let the auto-tuner rewrite the file, execute again — no recompilation
//! anywhere.
//!
//! Run with: `cargo run --example tuning_file_workflow`

use patty_workspace::patty::{load_tuning, Patty};
use patty_workspace::runtime::{PipelineTuning, Stage};
use patty_workspace::transform::{simulate_pipeline, PipelineSimEvaluator, SimParams};
use patty_workspace::tuning::{LinearSearch, Tuner};

fn build_stages() -> Vec<Stage<u64>> {
    vec![
        Stage::new("A", |x: u64| x.wrapping_mul(31) ^ 5),
        Stage::new("B", |x: u64| x.rotate_left(7).wrapping_add(13)),
        Stage::new("C", |x: u64| x ^ (x >> 3)),
        Stage::new("D", |x: u64| x.wrapping_mul(3)),
        Stage::new("E", |x: u64| x.wrapping_sub(1)),
    ]
}

fn main() {
    // 1. Patty generates the architecture + tuning file for AviStream.
    let run = Patty::new()
        .run_automatic(patty_workspace::corpus::avistream_program().source)
        .expect("avistream analyses");
    let artifact = &run.artifacts[0];
    let dir = std::env::temp_dir().join("patty-tuning-demo");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join(format!("{}.tuning.json", artifact.arch.name));
    std::fs::write(&path, &artifact.tuning_json).expect("write tuning file");
    println!("tuning file written: {}", path.display());

    // 2. First execution: load the file, configure the pipeline, run.
    let config1 = load_tuning(&std::fs::read_to_string(&path).expect("read")).expect("parse");
    let values1 = PipelineTuning::from_config(&config1).expect("config decodes");
    let out1 = values1.build_pipeline(build_stages()).run((0..200).collect());
    let sim1 = simulate_pipeline(&artifact.plan, &values1, &SimParams::default());
    println!(
        "run 1 (defaults): {} elements, simulated parallel cost {}",
        out1.len(),
        sim1.parallel_time
    );

    // 3. The auto-tuner edits the file between runs.
    let mut evaluator =
        PipelineSimEvaluator { plan: artifact.plan.clone(), params: SimParams::default() };
    let tuned = LinearSearch::default().tune(config1, &mut evaluator, 80);
    std::fs::write(&path, tuned.best.to_json()).expect("rewrite tuning file");
    println!(
        "auto-tuner rewrote the file after {} evaluations",
        tuned.evaluations
    );

    // 4. Second execution: same binary, new behaviour.
    let config2 = load_tuning(&std::fs::read_to_string(&path).expect("read")).expect("parse");
    let values2 = PipelineTuning::from_config(&config2).expect("config decodes");
    let out2 = values2.build_pipeline(build_stages()).run((0..200).collect());
    let sim2 = simulate_pipeline(&artifact.plan, &values2, &SimParams::default());
    println!(
        "run 2 (tuned):    {} elements, simulated parallel cost {}",
        out2.len(),
        sim2.parallel_time
    );
    assert_eq!(out1, out2, "tuning must never change results");
    assert!(
        sim2.parallel_time <= sim1.parallel_time,
        "tuned configuration must not be slower in the model"
    );
    println!(
        "\nsame results, {:.0}% of the untuned cost — without recompiling",
        100.0 * sim2.parallel_time as f64 / sim1.parallel_time as f64
    );
    for p in &config2.params {
        println!("  {} = {}", p.name, p.value);
    }
}
