//! Statement-level control flow graphs.
//!
//! One CFG per function; nodes are statement ids plus synthetic entry and
//! exit nodes. The CFG is one of the four ingredients of the semantic
//! model (Section 2.1) and powers reachability queries and the control-
//! dependence checks of rule PLCD.

use patty_minilang::ast::{Block, FuncDecl, Stmt, StmtKind};
use patty_minilang::span::NodeId;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A node in the control flow graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CfgNode {
    Entry,
    Stmt(NodeId),
    Exit,
}

/// A per-function control flow graph.
#[derive(Clone, Debug, Default)]
pub struct Cfg {
    pub func: String,
    succs: BTreeMap<CfgNode, BTreeSet<CfgNode>>,
    preds: BTreeMap<CfgNode, BTreeSet<CfgNode>>,
}

impl Cfg {
    /// Build the CFG of a function.
    pub fn build(func: &FuncDecl) -> Cfg {
        let mut cfg = Cfg { func: func.name.clone(), ..Cfg::default() };
        let mut ctx = BuildCtx { cfg: &mut cfg, loop_stack: Vec::new() };
        let after = ctx.block(&func.body, vec![CfgNode::Entry]);
        for n in after {
            ctx.cfg.edge(n, CfgNode::Exit);
        }
        cfg
    }

    fn edge(&mut self, from: CfgNode, to: CfgNode) {
        self.succs.entry(from).or_default().insert(to);
        self.preds.entry(to).or_default().insert(from);
        self.succs.entry(to).or_default();
        self.preds.entry(from).or_default();
    }

    /// Successors of a node.
    pub fn succs(&self, n: CfgNode) -> impl Iterator<Item = CfgNode> + '_ {
        self.succs.get(&n).into_iter().flatten().copied()
    }

    /// Predecessors of a node.
    pub fn preds(&self, n: CfgNode) -> impl Iterator<Item = CfgNode> + '_ {
        self.preds.get(&n).into_iter().flatten().copied()
    }

    /// All nodes.
    pub fn nodes(&self) -> impl Iterator<Item = CfgNode> + '_ {
        self.succs.keys().copied()
    }

    /// Number of statement nodes.
    pub fn stmt_count(&self) -> usize {
        self.succs
            .keys()
            .filter(|n| matches!(n, CfgNode::Stmt(_)))
            .count()
    }

    /// Is `to` reachable from `from` along CFG edges?
    pub fn reaches(&self, from: CfgNode, to: CfgNode) -> bool {
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::from([from]);
        while let Some(n) = queue.pop_front() {
            if n == to {
                return true;
            }
            if !seen.insert(n) {
                continue;
            }
            queue.extend(self.succs(n));
        }
        false
    }
}

struct BuildCtx<'a> {
    cfg: &'a mut Cfg,
    /// (break targets, continue targets) per enclosing loop: nodes that
    /// `break`/`continue` connect to are resolved after the loop body.
    loop_stack: Vec<LoopCtx>,
}

#[derive(Default)]
struct LoopCtx {
    breaks: Vec<CfgNode>,
    continues: Vec<CfgNode>,
}

impl BuildCtx<'_> {
    /// Wire a block starting from `preds` (the dangling out-edges of what
    /// came before); returns the dangling out-edges after the block.
    fn block(&mut self, block: &Block, preds: Vec<CfgNode>) -> Vec<CfgNode> {
        let mut current = preds;
        for stmt in &block.stmts {
            current = self.stmt(stmt, current);
        }
        current
    }

    fn stmt(&mut self, stmt: &Stmt, preds: Vec<CfgNode>) -> Vec<CfgNode> {
        let me = CfgNode::Stmt(stmt.id);
        for p in &preds {
            self.cfg.edge(*p, me);
        }
        match &stmt.kind {
            StmtKind::VarDecl { .. }
            | StmtKind::Assign { .. }
            | StmtKind::Expr(_) => vec![me],
            StmtKind::If { then_blk, else_blk, .. } => {
                let mut out = self.block(then_blk, vec![me]);
                match else_blk {
                    Some(e) => out.extend(self.block(e, vec![me])),
                    None => out.push(me),
                }
                out
            }
            StmtKind::While { body, .. } | StmtKind::Foreach { body, .. } => {
                self.loop_stack.push(LoopCtx::default());
                let body_out = self.block(body, vec![me]);
                let ctx = self.loop_stack.pop().expect("pushed above");
                // back edges: end of body (and continues) to the header
                for n in body_out.iter().chain(&ctx.continues) {
                    self.cfg.edge(*n, me);
                }
                // loop exits: the header (condition false / stream empty)
                // plus any breaks
                let mut out = vec![me];
                out.extend(ctx.breaks);
                out
            }
            StmtKind::For { init, update, body, .. } => {
                // The `for` statement node stands for its header; init and
                // update are separate statement nodes.
                let mut header_preds = preds.clone();
                if let Some(i) = init {
                    // preds -> init -> header
                    let init_node = CfgNode::Stmt(i.id);
                    for p in &preds {
                        self.cfg.edge(*p, init_node);
                    }
                    header_preds = vec![init_node];
                }
                for p in &header_preds {
                    self.cfg.edge(*p, me);
                }
                self.loop_stack.push(LoopCtx::default());
                let body_out = self.block(body, vec![me]);
                let ctx = self.loop_stack.pop().expect("pushed above");
                let back_src = if let Some(u) = update {
                    let u_node = CfgNode::Stmt(u.id);
                    for n in body_out.iter().chain(&ctx.continues) {
                        self.cfg.edge(*n, u_node);
                    }
                    vec![u_node]
                } else {
                    body_out.iter().chain(&ctx.continues).copied().collect()
                };
                for n in back_src {
                    self.cfg.edge(n, me);
                }
                let mut out = vec![me];
                out.extend(ctx.breaks);
                out
            }
            StmtKind::Break => {
                if let Some(ctx) = self.loop_stack.last_mut() {
                    ctx.breaks.push(me);
                }
                vec![]
            }
            StmtKind::Continue => {
                if let Some(ctx) = self.loop_stack.last_mut() {
                    ctx.continues.push(me);
                }
                vec![]
            }
            StmtKind::Return(_) => {
                self.cfg.edge(me, CfgNode::Exit);
                vec![]
            }
            StmtKind::Block(b) | StmtKind::Region { body: b, .. } => self.block(b, vec![me]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use patty_minilang::parse;

    fn cfg_of(src: &str) -> (patty_minilang::Program, Cfg) {
        let p = parse(src).unwrap();
        let cfg = Cfg::build(p.func("main").unwrap());
        (p, cfg)
    }

    #[test]
    fn straight_line_chains_to_exit() {
        let (_, cfg) = cfg_of("fn main() { var a = 1; var b = 2; var c = 3; }");
        assert_eq!(cfg.stmt_count(), 3);
        assert!(cfg.reaches(CfgNode::Entry, CfgNode::Exit));
    }

    #[test]
    fn if_without_else_falls_through() {
        let (p, cfg) = cfg_of("fn main() { if (c) { var a = 1; } var b = 2; }");
        let mut if_id = None;
        let mut b_id = None;
        p.for_each_stmt(&mut |s| match &s.kind {
            StmtKind::If { .. } => if_id = Some(s.id),
            StmtKind::VarDecl { name, .. } if name == "b" => b_id = Some(s.id),
            _ => {}
        });
        let (if_id, b_id) = (if_id.unwrap(), b_id.unwrap());
        // if node has two successors: the then-branch and b (fallthrough)
        assert_eq!(cfg.succs(CfgNode::Stmt(if_id)).count(), 2);
        assert!(cfg.reaches(CfgNode::Stmt(if_id), CfgNode::Stmt(b_id)));
    }

    #[test]
    fn while_has_back_edge() {
        let (p, cfg) = cfg_of("fn main() { while (c) { var x = 1; } }");
        let mut loop_id = None;
        let mut body_id = None;
        p.for_each_stmt(&mut |s| match &s.kind {
            StmtKind::While { .. } => loop_id = Some(s.id),
            StmtKind::VarDecl { .. } => body_id = Some(s.id),
            _ => {}
        });
        let (l, b) = (loop_id.unwrap(), body_id.unwrap());
        assert!(cfg.succs(CfgNode::Stmt(b)).any(|n| n == CfgNode::Stmt(l)), "back edge missing");
        assert!(cfg.succs(CfgNode::Stmt(l)).any(|n| n == CfgNode::Stmt(b)));
    }

    #[test]
    fn break_exits_loop() {
        let (p, cfg) = cfg_of("fn main() { while (true) { break; } var after = 1; }");
        let mut break_id = None;
        let mut after_id = None;
        p.for_each_stmt(&mut |s| match &s.kind {
            StmtKind::Break => break_id = Some(s.id),
            StmtKind::VarDecl { .. } => after_id = Some(s.id),
            _ => {}
        });
        assert!(cfg
            .succs(CfgNode::Stmt(break_id.unwrap()))
            .any(|n| n == CfgNode::Stmt(after_id.unwrap())));
    }

    #[test]
    fn return_goes_to_exit_only() {
        let (p, cfg) = cfg_of("fn main() { return; var dead = 1; }");
        let mut ret = None;
        let mut dead = None;
        p.for_each_stmt(&mut |s| match &s.kind {
            StmtKind::Return(_) => ret = Some(s.id),
            StmtKind::VarDecl { .. } => dead = Some(s.id),
            _ => {}
        });
        let succ: Vec<CfgNode> = cfg.succs(CfgNode::Stmt(ret.unwrap())).collect();
        assert_eq!(succ, vec![CfgNode::Exit]);
        assert!(!cfg.reaches(CfgNode::Entry, CfgNode::Stmt(dead.unwrap())));
    }

    #[test]
    fn for_loop_wires_init_and_update() {
        let (p, cfg) = cfg_of("fn main() { for (var i = 0; i < 3; i = i + 1) { work(1); } }");
        let mut for_id = None;
        let mut init_id = None;
        let mut update_id = None;
        p.for_each_stmt(&mut |s| if let StmtKind::For { init, update, .. } = &s.kind {
            for_id = Some(s.id);
            init_id = init.as_ref().map(|i| i.id);
            update_id = update.as_ref().map(|u| u.id);
        });
        let (f, i, u) = (for_id.unwrap(), init_id.unwrap(), update_id.unwrap());
        assert!(cfg.succs(CfgNode::Stmt(i)).any(|n| n == CfgNode::Stmt(f)));
        assert!(cfg.succs(CfgNode::Stmt(u)).any(|n| n == CfgNode::Stmt(f)));
    }

    #[test]
    fn continue_jumps_to_header() {
        let (p, cfg) = cfg_of("fn main() { foreach (x in xs) { if (x) { continue; } work(1); } }");
        let mut loop_id = None;
        let mut cont = None;
        p.for_each_stmt(&mut |s| match &s.kind {
            StmtKind::Foreach { .. } => loop_id = Some(s.id),
            StmtKind::Continue => cont = Some(s.id),
            _ => {}
        });
        assert!(cfg
            .succs(CfgNode::Stmt(cont.unwrap()))
            .any(|n| n == CfgNode::Stmt(loop_id.unwrap())));
    }
}
