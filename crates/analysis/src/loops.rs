//! Loop inventory and control-effect classification.
//!
//! Rule PLPL considers every loop a pipeline candidate; rule PLCD rejects
//! loop bodies whose statements can affect control flow across stream
//! elements (`break`, `return` escaping the iteration).

use patty_minilang::ast::{Block, FuncDecl, Program, Stmt, StmtKind};
use patty_minilang::span::{NodeId, Span};

/// What kind of loop a candidate is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoopKind {
    While,
    For,
    Foreach,
}

/// One loop in the program.
#[derive(Clone, Debug)]
pub struct LoopInfo {
    /// The loop statement's node id.
    pub id: NodeId,
    /// Enclosing function (qualified `Class.method` for methods).
    pub func: String,
    pub kind: LoopKind,
    pub span: Span,
    /// Ids of the direct body statements (the initial pipeline stages).
    pub body_stmts: Vec<NodeId>,
    /// Nesting depth (0 = outermost in its function).
    pub depth: usize,
    /// The foreach iteration variable, if any.
    pub iter_var: Option<String>,
}

/// Cross-iteration control effects of a statement (rule PLCD).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JumpEffects {
    /// Contains a `break` that escapes the inspected statement into the
    /// surrounding loop.
    pub breaks: bool,
    /// Contains a `continue` that escapes to the surrounding loop header.
    pub continues: bool,
    /// Contains a `return`.
    pub returns: bool,
}

impl JumpEffects {
    /// A statement with any escaping jump violates the fixed processing
    /// order required by pipelines (PLCD).
    pub fn violates_plcd(&self) -> bool {
        self.breaks || self.returns
    }
}

/// Collect every loop in a program.
pub fn collect_loops(program: &Program) -> Vec<LoopInfo> {
    let mut out = Vec::new();
    for f in &program.funcs {
        collect_in_func(&f.name, f, &mut out);
    }
    for c in &program.classes {
        for m in &c.methods {
            collect_in_func(&format!("{}.{}", c.name, m.name), m, &mut out);
        }
    }
    out
}

fn collect_in_func(qualified: &str, func: &FuncDecl, out: &mut Vec<LoopInfo>) {
    collect_in_block(qualified, &func.body, 0, out);
}

fn collect_in_block(func: &str, block: &Block, depth: usize, out: &mut Vec<LoopInfo>) {
    for stmt in &block.stmts {
        collect_in_stmt(func, stmt, depth, out);
    }
}

fn collect_in_stmt(func: &str, stmt: &Stmt, depth: usize, out: &mut Vec<LoopInfo>) {
    match &stmt.kind {
        StmtKind::While { body, .. } => {
            out.push(info(func, stmt, LoopKind::While, body, depth, None));
            collect_in_block(func, body, depth + 1, out);
        }
        StmtKind::For { body, .. } => {
            out.push(info(func, stmt, LoopKind::For, body, depth, None));
            collect_in_block(func, body, depth + 1, out);
        }
        StmtKind::Foreach { var, body, .. } => {
            out.push(info(func, stmt, LoopKind::Foreach, body, depth, Some(var.clone())));
            collect_in_block(func, body, depth + 1, out);
        }
        StmtKind::If { then_blk, else_blk, .. } => {
            collect_in_block(func, then_blk, depth, out);
            if let Some(e) = else_blk {
                collect_in_block(func, e, depth, out);
            }
        }
        StmtKind::Block(b) | StmtKind::Region { body: b, .. } => {
            collect_in_block(func, b, depth, out)
        }
        _ => {}
    }
}

fn info(
    func: &str,
    stmt: &Stmt,
    kind: LoopKind,
    body: &Block,
    depth: usize,
    iter_var: Option<String>,
) -> LoopInfo {
    LoopInfo {
        id: stmt.id,
        func: func.to_string(),
        kind,
        span: stmt.span,
        body_stmts: body.stmts.iter().map(|s| s.id).collect(),
        depth,
        iter_var,
    }
}

/// Compute the jump effects that escape `stmt` (jumps consumed by loops
/// nested inside `stmt` do not escape).
pub fn jump_effects(stmt: &Stmt) -> JumpEffects {
    let mut e = JumpEffects::default();
    walk(stmt, 0, &mut e);
    return e;

    fn walk(stmt: &Stmt, loop_depth: usize, e: &mut JumpEffects) {
        match &stmt.kind {
            StmtKind::Break
                if loop_depth == 0 => {
                    e.breaks = true;
                }
            StmtKind::Continue
                if loop_depth == 0 => {
                    e.continues = true;
                }
            StmtKind::Return(_) => e.returns = true,
            StmtKind::If { then_blk, else_blk, .. } => {
                for s in &then_blk.stmts {
                    walk(s, loop_depth, e);
                }
                if let Some(b) = else_blk {
                    for s in &b.stmts {
                        walk(s, loop_depth, e);
                    }
                }
            }
            StmtKind::While { body, .. }
            | StmtKind::For { body, .. }
            | StmtKind::Foreach { body, .. } => {
                for s in &body.stmts {
                    walk(s, loop_depth + 1, e);
                }
            }
            StmtKind::Block(b) | StmtKind::Region { body: b, .. } => {
                for s in &b.stmts {
                    walk(s, loop_depth, e);
                }
            }
            _ => {}
        }
    }
}

/// Names declared by `var` directly or transitively inside a statement,
/// used to classify which `Var` locations are iteration-local.
pub fn declared_vars(stmt: &Stmt) -> Vec<String> {
    let mut out = Vec::new();
    patty_minilang::ast::visit_stmt(stmt, &mut |s| {
        if let StmtKind::VarDecl { name, .. } = &s.kind {
            out.push(name.clone());
        }
        if let StmtKind::Foreach { var, .. } = &s.kind {
            out.push(var.clone());
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use patty_minilang::parse;

    #[test]
    fn collects_nested_loops_with_depth() {
        let src = "fn main() { foreach (a in xs) { while (c) { } } for (;;) { break; } }";
        let loops = collect_loops(&parse(src).unwrap());
        assert_eq!(loops.len(), 3);
        let depths: Vec<(LoopKind, usize)> = loops.iter().map(|l| (l.kind, l.depth)).collect();
        assert!(depths.contains(&(LoopKind::Foreach, 0)));
        assert!(depths.contains(&(LoopKind::While, 1)));
        assert!(depths.contains(&(LoopKind::For, 0)));
    }

    #[test]
    fn collects_loops_in_methods() {
        let src = "class C { fn m() { foreach (x in this.items) { } } } fn main() { }";
        let loops = collect_loops(&parse(src).unwrap());
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].func, "C.m");
        assert_eq!(loops[0].iter_var.as_deref(), Some("x"));
    }

    #[test]
    fn body_stmts_are_direct_children() {
        let src = "fn main() { foreach (x in xs) { var a = 1; if (a > 0) { var b = 2; } } }";
        let loops = collect_loops(&parse(src).unwrap());
        assert_eq!(loops[0].body_stmts.len(), 2);
    }

    #[test]
    fn escaping_break_detected() {
        let src = "fn main() { foreach (x in xs) { if (x > 3) { break; } } }";
        let p = parse(src).unwrap();
        let loops = collect_loops(&p);
        let body_stmt = p.find_stmt(loops[0].body_stmts[0]).unwrap();
        let e = jump_effects(body_stmt);
        assert!(e.breaks && e.violates_plcd());
    }

    #[test]
    fn nested_loop_consumes_its_own_break() {
        let src = "fn main() { foreach (x in xs) { while (true) { break; } } }";
        let p = parse(src).unwrap();
        let loops = collect_loops(&p);
        let outer = loops.iter().find(|l| l.kind == LoopKind::Foreach).unwrap();
        let body_stmt = p.find_stmt(outer.body_stmts[0]).unwrap();
        let e = jump_effects(body_stmt);
        assert!(!e.breaks && !e.violates_plcd());
    }

    #[test]
    fn continue_alone_does_not_violate_plcd() {
        let src = "fn main() { foreach (x in xs) { if (x < 0) { continue; } work(1); } }";
        let p = parse(src).unwrap();
        let loops = collect_loops(&p);
        let body_stmt = p.find_stmt(loops[0].body_stmts[0]).unwrap();
        let e = jump_effects(body_stmt);
        assert!(e.continues && !e.violates_plcd());
    }

    #[test]
    fn return_violates_plcd() {
        let src = "fn main() { foreach (x in xs) { if (x == 7) { return; } } }";
        let p = parse(src).unwrap();
        let loops = collect_loops(&p);
        let body_stmt = p.find_stmt(loops[0].body_stmts[0]).unwrap();
        assert!(jump_effects(body_stmt).violates_plcd());
    }

    #[test]
    fn declared_vars_includes_nested_and_foreach() {
        let src = "fn main() { foreach (x in xs) { var a = 1; foreach (y in ys) { var b = 2; } } }";
        let p = parse(src).unwrap();
        let loops = collect_loops(&p);
        let outer = &loops[0];
        let mut names = Vec::new();
        for id in &outer.body_stmts {
            names.extend(declared_vars(p.find_stmt(*id).unwrap()));
        }
        assert!(names.contains(&"a".to_string()));
        assert!(names.contains(&"y".to_string()));
        assert!(names.contains(&"b".to_string()));
    }
}
