//! The semantic model: "the cross product from the control flow graph, the
//! data dependencies, the call graph, and runtime information"
//! (Section 2.1). This is the single input artifact the pattern detector
//! consumes, and what the Patty tool visualizes after phase 1.

use crate::callgraph::CallGraph;
use crate::cfg::Cfg;
use crate::deps::LoopDeps;
use crate::effects::SummaryTable;
use crate::loops::{collect_loops, LoopInfo};
use crate::rw::{stmt_effects, Effects};
use patty_minilang::ast::Program;
use patty_minilang::interp::{run, InterpOptions};
use patty_minilang::profile::Profile;
use patty_minilang::span::NodeId;
use patty_minilang::LangError;
use std::collections::BTreeMap;

/// The joined static × dynamic model of one program.
#[derive(Clone, Debug)]
pub struct SemanticModel {
    /// The analyzed program (owned; the model outlives the parse).
    pub program: Program,
    /// Interprocedural side-effect summaries.
    pub summaries: SummaryTable,
    /// One CFG per function/method, keyed by qualified name.
    pub cfgs: BTreeMap<String, Cfg>,
    /// The static call graph.
    pub callgraph: CallGraph,
    /// Every loop in the program.
    pub loops: Vec<LoopInfo>,
    /// Static dependence summaries per loop (keyed by loop id).
    pub loop_deps: BTreeMap<NodeId, LoopDeps>,
    /// Runtime information from the dynamic analysis, when available.
    pub profile: Option<Profile>,
}

impl SemanticModel {
    /// Build the model from static analysis only.
    pub fn build_static(program: &Program) -> SemanticModel {
        let summaries = SummaryTable::build(program);
        let mut cfgs = BTreeMap::new();
        for f in &program.funcs {
            cfgs.insert(f.name.clone(), Cfg::build(f));
        }
        for c in &program.classes {
            for m in &c.methods {
                cfgs.insert(format!("{}.{}", c.name, m.name), Cfg::build(m));
            }
        }
        let callgraph = CallGraph::build(program);
        let loops = collect_loops(program);
        let mut loop_deps = BTreeMap::new();
        for l in &loops {
            loop_deps.insert(l.id, LoopDeps::compute(program, l, &summaries));
        }
        SemanticModel {
            program: program.clone(),
            summaries,
            cfgs,
            callgraph,
            loops,
            loop_deps,
            profile: None,
        }
    }

    /// Build the full model: static analyses plus one profiled execution of
    /// `main()` (the paper's dynamic analysis step; the Patty wizard asks
    /// the engineer for input data — here the program's `main` provides it).
    pub fn build(program: &Program, options: InterpOptions) -> Result<SemanticModel, LangError> {
        let mut model = SemanticModel::build_static(program);
        let outcome = run(program, options)?;
        model.profile = Some(outcome.profile);
        Ok(model)
    }

    /// Attach an existing profile (e.g. from a custom entry point).
    pub fn with_profile(mut self, profile: Profile) -> SemanticModel {
        self.profile = Some(profile);
        self
    }

    /// The loop info for a loop id.
    pub fn loop_info(&self, id: NodeId) -> Option<&LoopInfo> {
        self.loops.iter().find(|l| l.id == id)
    }

    /// Static effects of an arbitrary statement.
    pub fn effects_of(&self, stmt_id: NodeId) -> Option<Effects> {
        let stmt = self.program.find_stmt(stmt_id)?;
        Some(stmt_effects(stmt, &self.summaries))
    }

    /// Runtime share of a statement (0.0 without a profile).
    pub fn runtime_share(&self, stmt_id: NodeId) -> f64 {
        self.profile.as_ref().map(|p| p.share(stmt_id)).unwrap_or(0.0)
    }

    /// Cost share of a direct body statement within its loop: dynamic when
    /// profiled, uniform otherwise.
    pub fn stage_cost_share(&self, loop_id: NodeId, stmt_id: NodeId) -> f64 {
        if let Some(p) = &self.profile {
            if let Some(t) = p.loop_traces.get(&loop_id) {
                let s = t.cost_share(stmt_id);
                if t.stmt_cost.values().sum::<u64>() > 0 {
                    return s;
                }
            }
        }
        let n = self
            .loop_info(loop_id)
            .map(|l| l.body_stmts.len())
            .unwrap_or(1)
            .max(1);
        1.0 / n as f64
    }

    /// Did the dynamic analysis observe this loop executing at all?
    pub fn loop_observed(&self, loop_id: NodeId) -> bool {
        self.profile
            .as_ref()
            .and_then(|p| p.loop_traces.get(&loop_id))
            .map(|t| t.iterations > 0)
            .unwrap_or(false)
    }

    /// Observed iteration count of a loop (0 without a profile).
    pub fn loop_iterations(&self, loop_id: NodeId) -> u64 {
        self.profile
            .as_ref()
            .and_then(|p| p.loop_traces.get(&loop_id))
            .map(|t| t.iterations)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use patty_minilang::parse;

    const PIPE: &str = r#"
        class Filter { var g = 2; fn apply(x) { work(50); return x * this.g; } }
        fn main() {
            var f1 = new Filter();
            var f2 = new Filter();
            var out = [];
            foreach (x in range(0, 10)) {
                var a = f1.apply(x);
                var b = f2.apply(a);
                out.add(b);
            }
            print(len(out));
        }
    "#;

    #[test]
    fn builds_all_ingredients() {
        let p = parse(PIPE).unwrap();
        let m = SemanticModel::build(&p, InterpOptions::default()).unwrap();
        assert!(m.cfgs.contains_key("main"));
        assert!(m.cfgs.contains_key("Filter.apply"));
        assert_eq!(m.loops.len(), 1);
        assert!(m.profile.is_some());
        assert!(m.callgraph.callees("main").any(|c| c == "Filter.apply"));
        assert!(m.loop_deps.contains_key(&m.loops[0].id));
    }

    #[test]
    fn stage_cost_share_prefers_dynamic() {
        let p = parse(PIPE).unwrap();
        let m = SemanticModel::build(&p, InterpOptions::default()).unwrap();
        let l = &m.loops[0];
        // first two statements call work(50): dominant cost vs out.add
        let a = m.stage_cost_share(l.id, l.body_stmts[0]);
        let c = m.stage_cost_share(l.id, l.body_stmts[2]);
        assert!(a > 0.3, "filter stage share {a}");
        assert!(c < 0.2, "cheap stage share {c}");
    }

    #[test]
    fn static_model_uses_uniform_shares() {
        let p = parse(PIPE).unwrap();
        let m = SemanticModel::build_static(&p);
        let l = &m.loops[0];
        let share = m.stage_cost_share(l.id, l.body_stmts[0]);
        assert!((share - 1.0 / 3.0).abs() < 1e-9);
        assert!(!m.loop_observed(l.id));
    }

    #[test]
    fn loop_iterations_from_profile() {
        let p = parse(PIPE).unwrap();
        let m = SemanticModel::build(&p, InterpOptions::default()).unwrap();
        assert_eq!(m.loop_iterations(m.loops[0].id), 10);
    }
}
