//! Static call graph.
//!
//! Nodes are function names (`main`) and qualified methods
//! (`Image.apply`). Call sites that cannot be resolved to a unique class
//! are connected to every class declaring the method — the optimistic
//! variant of class-hierarchy analysis, sufficient for the semantic model.

use patty_minilang::ast::{Expr, ExprKind, Program};
use std::collections::{BTreeMap, BTreeSet};

/// The static call graph of a program.
#[derive(Clone, Debug, Default)]
pub struct CallGraph {
    edges: BTreeMap<String, BTreeSet<String>>,
}

impl CallGraph {
    /// Build the call graph.
    pub fn build(program: &Program) -> CallGraph {
        let mut cg = CallGraph::default();
        let method_owners: BTreeMap<&str, Vec<&str>> = {
            let mut m: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
            for c in &program.classes {
                for meth in &c.methods {
                    m.entry(meth.name.as_str()).or_default().push(c.name.as_str());
                }
            }
            m
        };
        fn add_edges(
            edges: &mut BTreeMap<String, BTreeSet<String>>,
            program: &Program,
            method_owners: &BTreeMap<&str, Vec<&str>>,
            caller: &str,
            expr: &Expr,
        ) {
            patty_minilang::ast::visit_expr(expr, &mut |e| match &e.kind {
                ExprKind::Call { callee, .. }
                    if program.func(callee).is_some() => {
                        edges.entry(caller.to_string()).or_default().insert(callee.clone());
                    }
                ExprKind::MethodCall { method, .. } => {
                    for owner in method_owners.get(method.as_str()).into_iter().flatten() {
                        edges
                            .entry(caller.to_string())
                            .or_default()
                            .insert(format!("{owner}.{method}"));
                    }
                }
                ExprKind::New { class, .. }
                    if program.method(class, "init").is_some() => {
                        edges
                            .entry(caller.to_string())
                            .or_default()
                            .insert(format!("{class}.init"));
                    }
                _ => {}
            });
        }
        for f in &program.funcs {
            let caller = f.name.clone();
            cg.edges.entry(caller.clone()).or_default();
            patty_minilang::ast::visit_block(&f.body, &mut |s| {
                patty_minilang::ast::visit_stmt_exprs(s, &mut |e| {
                    add_edges(&mut cg.edges, program, &method_owners, &caller, e)
                });
            });
        }
        for c in &program.classes {
            for m in &c.methods {
                let caller = format!("{}.{}", c.name, m.name);
                cg.edges.entry(caller.clone()).or_default();
                patty_minilang::ast::visit_block(&m.body, &mut |s| {
                    patty_minilang::ast::visit_stmt_exprs(s, &mut |e| {
                        add_edges(&mut cg.edges, program, &method_owners, &caller, e)
                    });
                });
            }
        }
        cg
    }

    /// Direct callees of a node.
    pub fn callees(&self, caller: &str) -> impl Iterator<Item = &str> {
        self.edges.get(caller).into_iter().flatten().map(|s| s.as_str())
    }

    /// All nodes.
    pub fn nodes(&self) -> impl Iterator<Item = &str> {
        self.edges.keys().map(|s| s.as_str())
    }

    /// Transitive closure of callees from `root`.
    pub fn reachable(&self, root: &str) -> BTreeSet<String> {
        let mut seen = BTreeSet::new();
        let mut stack = vec![root.to_string()];
        while let Some(n) = stack.pop() {
            if !seen.insert(n.clone()) {
                continue;
            }
            for c in self.callees(&n) {
                stack.push(c.to_string());
            }
        }
        seen.remove(root);
        seen
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.values().map(|s| s.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use patty_minilang::parse;

    #[test]
    fn resolves_free_functions_and_methods() {
        let src = r#"
            class Filter { fn apply(x) { return helper(x); } }
            fn helper(x) { return x; }
            fn main() { var f = new Filter(); f.apply(1); }
        "#;
        let cg = CallGraph::build(&parse(src).unwrap());
        let mains: Vec<&str> = cg.callees("main").collect();
        assert!(mains.contains(&"Filter.apply"));
        assert!(cg.callees("Filter.apply").any(|c| c == "helper"));
    }

    #[test]
    fn ambiguous_methods_fan_out() {
        let src = r#"
            class A { fn go() { } }
            class B { fn go() { } }
            fn main() { x.go(); }
        "#;
        let cg = CallGraph::build(&parse(src).unwrap());
        let callees: BTreeSet<&str> = cg.callees("main").collect();
        assert!(callees.contains("A.go") && callees.contains("B.go"));
    }

    #[test]
    fn constructor_with_init_is_an_edge() {
        let src = "class C { var n = 0; fn init(v) { this.n = v; } } fn main() { var c = new C(1); }";
        let cg = CallGraph::build(&parse(src).unwrap());
        assert!(cg.callees("main").any(|c| c == "C.init"));
    }

    #[test]
    fn reachable_is_transitive() {
        let src = "fn a() { b(); } fn b() { c(); } fn c() { } fn main() { a(); }";
        let cg = CallGraph::build(&parse(src).unwrap());
        let r = cg.reachable("main");
        assert!(r.contains("a") && r.contains("b") && r.contains("c"));
    }

    #[test]
    fn builtins_are_not_nodes() {
        let cg = CallGraph::build(&parse("fn main() { print(1); work(5); }").unwrap());
        assert_eq!(cg.callees("main").count(), 0);
    }
}
