//! Read/write-set computation for statements and expressions.
//!
//! The caller-side view: given the function summaries from
//! [`crate::effects`], compute which abstract locations a statement may
//! read, may write, and whether it performs order-sensitive I/O (printing,
//! random-number state). These sets feed the dependence computation
//! (rules PLDD/PLDS) and the replication-safety check (rule PLTP).

use crate::effects::SummaryTable;
use crate::loc::StaticLoc;
use patty_minilang::ast::*;
use std::collections::BTreeSet;

/// The may-effects of evaluating a statement or expression.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Effects {
    pub reads: BTreeSet<StaticLoc>,
    pub writes: BTreeSet<StaticLoc>,
    /// Order-sensitive external effect (`print`, `rand`, ...).
    pub io: bool,
}

impl Effects {
    /// Merge another effect set into this one.
    pub fn merge(&mut self, other: Effects) {
        self.reads.extend(other.reads);
        self.writes.extend(other.writes);
        self.io |= other.io;
    }

    /// True when this computation writes no non-local state and does no
    /// I/O — the precondition for replicating a pipeline stage ("if this
    /// stage has no side effects on other stages", Section 2.2).
    pub fn is_observationally_pure(&self) -> bool {
        !self.io && self.writes.is_empty()
    }

    fn read(&mut self, loc: StaticLoc) {
        self.reads.insert(loc);
    }

    fn write(&mut self, loc: StaticLoc) {
        self.writes.insert(loc);
    }
}

/// Effects of one statement, including everything statements nested inside
/// it do (a loop body statement that is itself an `if` contributes the
/// effects of both branches).
pub fn stmt_effects(stmt: &Stmt, table: &SummaryTable) -> Effects {
    let mut e = Effects::default();
    collect_stmt(stmt, table, &mut e);
    e
}

fn collect_block(block: &Block, table: &SummaryTable, e: &mut Effects) {
    for s in &block.stmts {
        collect_stmt(s, table, e);
    }
}

fn collect_stmt(stmt: &Stmt, table: &SummaryTable, e: &mut Effects) {
    match &stmt.kind {
        StmtKind::VarDecl { name, init } => {
            collect_expr(init, table, e);
            e.write(StaticLoc::Var(name.clone()));
        }
        StmtKind::Assign { target, op, value } => {
            collect_expr(value, table, e);
            let loc = lvalue_loc(target, table, e);
            if *op != AssignOp::Set {
                e.read(loc.clone());
            }
            e.write(loc);
        }
        StmtKind::Expr(expr) => collect_expr(expr, table, e),
        StmtKind::If { cond, then_blk, else_blk } => {
            collect_expr(cond, table, e);
            collect_block(then_blk, table, e);
            if let Some(b) = else_blk {
                collect_block(b, table, e);
            }
        }
        StmtKind::While { cond, body } => {
            collect_expr(cond, table, e);
            collect_block(body, table, e);
        }
        StmtKind::For { init, cond, update, body } => {
            if let Some(i) = init {
                collect_stmt(i, table, e);
            }
            if let Some(c) = cond {
                collect_expr(c, table, e);
            }
            if let Some(u) = update {
                collect_stmt(u, table, e);
            }
            collect_block(body, table, e);
        }
        StmtKind::Foreach { var, iter, body } => {
            collect_expr(iter, table, e);
            if let Some(p) = iter.path() {
                e.read(StaticLoc::Struct(p.clone()));
                e.read(StaticLoc::Elem(p));
            }
            e.write(StaticLoc::Var(var.clone()));
            collect_block(body, table, e);
        }
        StmtKind::Break | StmtKind::Continue => {}
        StmtKind::Return(v) => {
            if let Some(v) = v {
                collect_expr(v, table, e);
            }
        }
        StmtKind::Block(b) | StmtKind::Region { body: b, .. } => collect_block(b, table, e),
    }
}

fn lvalue_loc(target: &LValue, table: &SummaryTable, e: &mut Effects) -> StaticLoc {
    match &target.kind {
        LValueKind::Var(name) => StaticLoc::Var(name.clone()),
        LValueKind::Field { base, field } => {
            collect_expr(base, table, e);
            match base.path() {
                Some(p) => StaticLoc::Path(format!("{p}.{field}")),
                None => StaticLoc::Unknown,
            }
        }
        LValueKind::Index { base, index } => {
            collect_expr(base, table, e);
            collect_expr(index, table, e);
            match base.path() {
                Some(p) => StaticLoc::Elem(p),
                None => StaticLoc::Unknown,
            }
        }
    }
}

fn collect_expr(expr: &Expr, table: &SummaryTable, e: &mut Effects) {
    match &expr.kind {
        ExprKind::Int(_)
        | ExprKind::Float(_)
        | ExprKind::Str(_)
        | ExprKind::Bool(_)
        | ExprKind::Null => {}
        ExprKind::Var(name) => e.read(StaticLoc::Var(name.clone())),
        ExprKind::Unary { expr, .. } => collect_expr(expr, table, e),
        ExprKind::Binary { lhs, rhs, .. } => {
            collect_expr(lhs, table, e);
            collect_expr(rhs, table, e);
        }
        ExprKind::Field { base, field } => {
            collect_expr(base, table, e);
            if let Some(p) = base.path() {
                e.read(StaticLoc::Path(format!("{p}.{field}")));
            }
            // No path: optimistic — the object was produced by an
            // expression and is assumed fresh/unaliased.
        }
        ExprKind::Index { base, index } => {
            collect_expr(base, table, e);
            collect_expr(index, table, e);
            if let Some(p) = base.path() {
                e.read(StaticLoc::Elem(p));
            }
        }
        ExprKind::Call { callee, args } => {
            for a in args {
                collect_expr(a, table, e);
            }
            match table.free_function(callee) {
                Some(summary) => {
                    let arg_paths: Vec<Option<String>> = args.iter().map(|a| a.path()).collect();
                    summary.apply(None, &arg_paths, e);
                }
                None => builtin_call_effects(callee, e),
            }
        }
        ExprKind::MethodCall { base, method, args } => {
            collect_expr(base, table, e);
            for a in args {
                collect_expr(a, table, e);
            }
            let base_path = base.path();
            let arg_paths: Vec<Option<String>> = args.iter().map(|a| a.path()).collect();
            let candidates = table.methods(method);
            if candidates.is_empty() {
                builtin_method_effects(method, base_path.as_deref(), e);
            } else {
                for summary in candidates {
                    summary.apply(base_path.as_deref(), &arg_paths, e);
                }
            }
        }
        ExprKind::New { args, .. } => {
            for a in args {
                collect_expr(a, table, e);
            }
            // Construction yields a fresh object; `init` side effects on
            // `this` touch only fresh memory, but effects on arguments and
            // globals must still be visible.
            // (Handled via summaries keyed as methods named "init" — the
            // receiver is fresh, so this-rooted effects are dropped.)
            let arg_paths: Vec<Option<String>> = args.iter().map(|a| a.path()).collect();
            for summary in table.methods("init") {
                summary.apply_fresh(&arg_paths, e);
            }
        }
        ExprKind::ListLit(items) => {
            for a in items {
                collect_expr(a, table, e);
            }
        }
    }
}

/// Effects of a builtin free function.
fn builtin_call_effects(name: &str, e: &mut Effects) {
    match name {
        // Order-sensitive external effects.
        "print" | "rand" => e.io = true,
        // Pure computations over their (already collected) arguments.
        "work" | "range" | "list" | "len" | "str" | "int" | "float" | "abs" | "sqrt"
        | "floor" | "min" | "max" | "pow" | "assert" => {}
        // Unknown name: will fail at runtime; no memory effect.
        _ => {}
    }
}

/// Effects of a builtin method (list/string operations).
fn builtin_method_effects(method: &str, base_path: Option<&str>, e: &mut Effects) {
    let elem = |p: Option<&str>| match p {
        Some(p) => StaticLoc::Elem(p.to_string()),
        None => StaticLoc::Unknown,
    };
    let strct = |p: Option<&str>| match p {
        Some(p) => StaticLoc::Struct(p.to_string()),
        None => StaticLoc::Unknown,
    };
    match method {
        "add" => {
            e.write(strct(base_path));
            e.write(elem(base_path));
        }
        "set" => e.write(elem(base_path)),
        "clear" => {
            e.write(strct(base_path));
            e.write(elem(base_path));
        }
        "get" => e.read(elem(base_path)),
        "len" => e.read(strct(base_path)),
        "contains" | "clone" => {
            e.read(strct(base_path));
            e.read(elem(base_path));
        }
        // String methods are pure.
        "upper" | "lower" | "trim" | "split" | "substr" | "startsWith" => {}
        // Unknown method on a non-object: no memory model; be conservative
        // only if it could mutate. We treat it as unknown-write.
        _ => e.write(StaticLoc::Unknown),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::effects::SummaryTable;
    use patty_minilang::parse;

    fn effects_of_first_stmt(src: &str) -> Effects {
        let p = parse(src).unwrap();
        let table = SummaryTable::build(&p);
        let f = p.func("main").unwrap();
        stmt_effects(&f.body.stmts[0], &table)
    }

    #[test]
    fn var_decl_reads_rhs_writes_var() {
        let e = effects_of_first_stmt("fn main() { var x = a + b.c; }");
        assert!(e.reads.contains(&StaticLoc::Var("a".into())));
        assert!(e.reads.contains(&StaticLoc::Path("b.c".into())));
        assert!(e.writes.contains(&StaticLoc::Var("x".into())));
        assert!(!e.io);
    }

    #[test]
    fn compound_assign_reads_target() {
        let e = effects_of_first_stmt("fn main() { s += 1; }");
        assert!(e.reads.contains(&StaticLoc::Var("s".into())));
        assert!(e.writes.contains(&StaticLoc::Var("s".into())));
    }

    #[test]
    fn list_add_writes_structure_and_elements() {
        let e = effects_of_first_stmt("fn main() { out.items.add(x); }");
        assert!(e.writes.contains(&StaticLoc::Struct("out.items".into())));
        assert!(e.writes.contains(&StaticLoc::Elem("out.items".into())));
        assert!(e.reads.contains(&StaticLoc::Var("x".into())));
    }

    #[test]
    fn index_assignment_writes_elements() {
        let e = effects_of_first_stmt("fn main() { a[i] = b[i]; }");
        assert!(e.writes.contains(&StaticLoc::Elem("a".into())));
        assert!(e.reads.contains(&StaticLoc::Elem("b".into())));
        assert!(e.reads.contains(&StaticLoc::Var("i".into())));
    }

    #[test]
    fn print_is_io() {
        let e = effects_of_first_stmt("fn main() { print(x); }");
        assert!(e.io);
        assert!(!e.is_observationally_pure());
    }

    #[test]
    fn pure_method_chain_is_pure() {
        let e = effects_of_first_stmt(r#"fn main() { var t = "a,b".split(",").len(); }"#);
        // writes only the local t
        assert!(e.writes.iter().all(|w| matches!(w, StaticLoc::Var(_))));
        assert!(!e.io);
    }

    #[test]
    fn user_method_effects_rebased_to_receiver() {
        let src = r#"
            class Acc { var total = 0; fn bump(v) { this.total += v; } }
            fn main() { acc.bump(3); }
        "#;
        let e = effects_of_first_stmt(src);
        assert!(e.writes.contains(&StaticLoc::Path("acc.total".into())));
        assert!(e.reads.contains(&StaticLoc::Path("acc.total".into())));
    }

    #[test]
    fn method_mutating_param_list_rebases_to_arg() {
        let src = r#"
            class W { fn push(buf, v) { buf.add(v); } }
            fn main() { w.push(queue, 1); }
        "#;
        let e = effects_of_first_stmt(src);
        assert!(e.writes.contains(&StaticLoc::Struct("queue".into())));
    }

    #[test]
    fn pure_user_method_is_pure_at_callsite() {
        let src = r#"
            class Filter { var gain = 2; fn apply(x) { work(10); return x * this.gain; } }
            fn main() { var y = f.apply(3); }
        "#;
        let e = effects_of_first_stmt(src);
        assert!(e.writes.iter().all(|w| matches!(w, StaticLoc::Var(_))), "{:?}", e.writes);
        assert!(e.reads.contains(&StaticLoc::Path("f.gain".into())));
        assert!(!e.io);
    }

    #[test]
    fn if_collects_both_branches() {
        let e = effects_of_first_stmt("fn main() { if (c) { a = 1; } else { b = 2; } }");
        assert!(e.writes.contains(&StaticLoc::Var("a".into())));
        assert!(e.writes.contains(&StaticLoc::Var("b".into())));
        assert!(e.reads.contains(&StaticLoc::Var("c".into())));
    }
}
