//! Abstract memory locations for the *static* analyses.
//!
//! Patty's static side is deliberately **optimistic** (Section 2.1: "our
//! process is geared to reveal a high amount of parallel potential, so we
//! use optimistic parallelization analyses"): heap locations are identified
//! by their syntactic access path, and two distinct paths are assumed not
//! to alias. This over-reports parallel potential; the correctness
//! validation phase (parallel unit tests + systematic race testing)
//! recovers soundness, exactly as the paper prescribes.

use std::fmt;

/// A static abstract location.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StaticLoc {
    /// A local variable (function-scoped by construction — dependence
    /// queries never cross function boundaries on `Var`).
    Var(String),
    /// A field reached through a syntactic path, e.g. `aviOut.Images` or
    /// `this.total`.
    Path(String),
    /// The elements of the collection at a path (index-insensitive).
    Elem(String),
    /// The structure (length) of the collection at a path.
    Struct(String),
    /// Anything — the conservative top element; conflicts with everything.
    Unknown,
}

impl StaticLoc {
    /// Do two locations possibly name the same memory?
    pub fn conflicts(&self, other: &StaticLoc) -> bool {
        use StaticLoc::*;
        match (self, other) {
            (Unknown, _) | (_, Unknown) => true,
            (Var(a), Var(b)) => a == b,
            (Path(a), Path(b)) => a == b,
            (Elem(a), Elem(b)) => a == b,
            (Struct(a), Struct(b)) => a == b,
            // Growing a list (structure write) moves/creates elements, so
            // structure and elements of the same collection conflict.
            (Elem(a), Struct(b)) | (Struct(a), Elem(b)) => a == b,
            _ => false,
        }
    }

    /// The root variable of the access path, if any (`a.b.c` → `a`).
    pub fn root(&self) -> Option<&str> {
        match self {
            StaticLoc::Var(v) => Some(v),
            StaticLoc::Path(p) | StaticLoc::Elem(p) | StaticLoc::Struct(p) => {
                Some(p.split('.').next().unwrap_or(p))
            }
            StaticLoc::Unknown => None,
        }
    }

    /// Rebase a callee-namespace location into the caller's namespace:
    /// a path rooted at `this` is re-rooted at `receiver`, a path rooted at
    /// a parameter name is re-rooted at the corresponding argument path.
    ///
    /// `None` argument paths (the argument was not a simple path) degrade
    /// to [`StaticLoc::Unknown`].
    pub fn rebase(
        &self,
        receiver: Option<&str>,
        params: &[String],
        arg_paths: &[Option<String>],
    ) -> StaticLoc {
        let rebase_path = |p: &str| -> Option<String> {
            let mut parts = p.splitn(2, '.');
            let root = parts.next().unwrap_or(p);
            let rest = parts.next();
            let new_root: Option<String> = if root == "this" {
                receiver.map(|r| r.to_string())
            } else if let Some(idx) = params.iter().position(|q| q == root) {
                arg_paths.get(idx).cloned().flatten()
            } else {
                // A callee-local root should have been dropped by the
                // summary; treat defensively as unknown.
                None
            };
            new_root.map(|r| match rest {
                Some(rest) => format!("{r}.{rest}"),
                None => r,
            })
        };
        match self {
            StaticLoc::Unknown => StaticLoc::Unknown,
            StaticLoc::Var(v) => match rebase_path(v) {
                Some(p) if !p.contains('.') => StaticLoc::Var(p),
                Some(p) => StaticLoc::Path(p),
                None => StaticLoc::Unknown,
            },
            StaticLoc::Path(p) => rebase_path(p).map(StaticLoc::Path).unwrap_or(StaticLoc::Unknown),
            StaticLoc::Elem(p) => rebase_path(p).map(StaticLoc::Elem).unwrap_or(StaticLoc::Unknown),
            StaticLoc::Struct(p) => {
                rebase_path(p).map(StaticLoc::Struct).unwrap_or(StaticLoc::Unknown)
            }
        }
    }
}

impl fmt::Display for StaticLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StaticLoc::Var(v) => write!(f, "{v}"),
            StaticLoc::Path(p) => write!(f, "{p}"),
            StaticLoc::Elem(p) => write!(f, "{p}[*]"),
            StaticLoc::Struct(p) => write!(f, "{p}.#"),
            StaticLoc::Unknown => write!(f, "?"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_paths_do_not_conflict() {
        // The optimistic assumption: different syntactic paths are assumed
        // to be different memory.
        let a = StaticLoc::Path("a.x".into());
        let b = StaticLoc::Path("b.x".into());
        assert!(!a.conflicts(&b));
        assert!(a.conflicts(&a.clone()));
    }

    #[test]
    fn unknown_conflicts_with_everything() {
        let u = StaticLoc::Unknown;
        assert!(u.conflicts(&StaticLoc::Var("x".into())));
        assert!(StaticLoc::Elem("xs".into()).conflicts(&u));
    }

    #[test]
    fn struct_and_elem_of_same_collection_conflict() {
        let e = StaticLoc::Elem("out.items".into());
        let s = StaticLoc::Struct("out.items".into());
        assert!(e.conflicts(&s));
        assert!(!e.conflicts(&StaticLoc::Struct("other".into())));
    }

    #[test]
    fn root_extraction() {
        assert_eq!(StaticLoc::Path("a.b.c".into()).root(), Some("a"));
        assert_eq!(StaticLoc::Var("x".into()).root(), Some("x"));
        assert_eq!(StaticLoc::Unknown.root(), None);
    }

    #[test]
    fn rebase_this_to_receiver() {
        let loc = StaticLoc::Path("this.total".into());
        let out = loc.rebase(Some("acc"), &[], &[]);
        assert_eq!(out, StaticLoc::Path("acc.total".into()));
    }

    #[test]
    fn rebase_param_to_argument_path() {
        let loc = StaticLoc::Elem("buf.items".into());
        let out = loc.rebase(None, &["buf".into()], &[Some("queue".into())]);
        assert_eq!(out, StaticLoc::Elem("queue.items".into()));
    }

    #[test]
    fn rebase_unknown_argument_degrades_to_unknown() {
        let loc = StaticLoc::Path("p.f".into());
        let out = loc.rebase(None, &["p".into()], &[None]);
        assert_eq!(out, StaticLoc::Unknown);
    }

    #[test]
    fn rebase_var_param_to_simple_arg() {
        let loc = StaticLoc::Var("p".into());
        assert_eq!(
            loc.rebase(None, &["p".into()], &[Some("x".into())]),
            StaticLoc::Var("x".into())
        );
        assert_eq!(
            loc.rebase(None, &["p".into()], &[Some("a.b".into())]),
            StaticLoc::Path("a.b".into())
        );
    }
}
