//! # patty-analysis
//!
//! Static and dynamic program analyses for Patty, culminating in the
//! [`SemanticModel`]: the "cross product from the control flow graph, the
//! data dependencies, the call graph, and runtime information" of
//! Section 2.1 of the PMAM'15 paper.
//!
//! The analyses are deliberately **optimistic** — syntactic paths are
//! assumed unaliased and callee locals fresh — because Patty's process
//! model trades static soundness for recall and recovers correctness via
//! generated parallel unit tests and systematic race testing (the
//! `patty-testgen` and `patty-chess` crates).
//!
//! ```
//! use patty_analysis::SemanticModel;
//! use patty_minilang::{parse, InterpOptions};
//!
//! let program = parse(
//!     "fn main() { var s = 0; foreach (x in range(0, 8)) { s += x; } print(s); }",
//! ).unwrap();
//! let model = SemanticModel::build(&program, InterpOptions::default()).unwrap();
//! assert_eq!(model.loops.len(), 1);
//! assert_eq!(model.loop_iterations(model.loops[0].id), 8);
//! ```

pub mod callgraph;
pub mod cfg;
pub mod deps;
pub mod effects;
pub mod loc;
pub mod loops;
pub mod rw;
pub mod semantic;

pub use callgraph::CallGraph;
pub use cfg::{Cfg, CfgNode};
pub use deps::{LoopDeps, StaticDep};
pub use effects::{FnSummary, SummaryTable};
pub use loc::StaticLoc;
pub use loops::{collect_loops, jump_effects, JumpEffects, LoopInfo, LoopKind};
pub use rw::{stmt_effects, Effects};
pub use semantic::SemanticModel;
