//! Static data-dependence analysis over loop bodies (rules PLDD / PLDS).
//!
//! For a loop body we compute, per pair of direct body statements, the
//! may-dependencies (flow / anti / output) and classify each as
//! intra-iteration (preserved for free by a pipeline's fixed processing
//! order) or possibly loop-carried (forces stage fusion per rule PLDD).

use crate::effects::SummaryTable;
use crate::loc::StaticLoc;
use crate::loops::{declared_vars, LoopInfo};
use crate::rw::{stmt_effects, Effects};
use patty_minilang::ast::Program;
use patty_minilang::profile::DepKind;
use patty_minilang::span::NodeId;
use std::collections::{BTreeMap, BTreeSet};

/// A statically derived may-dependence between two direct body statements
/// of a loop (possibly the same statement, for self-carried dependencies).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct StaticDep {
    pub src: NodeId,
    pub dst: NodeId,
    pub kind: DepKind,
    pub loc: StaticLoc,
    /// May this dependence cross iterations?
    pub carried: bool,
}

/// The static dependence summary of one loop.
#[derive(Clone, Debug, Default)]
pub struct LoopDeps {
    /// Effects of each direct body statement, in body order.
    pub stmt_effects: BTreeMap<NodeId, Effects>,
    /// All may-dependencies.
    pub deps: Vec<StaticDep>,
    /// Variables that are iteration-local (declared inside the body or the
    /// loop's own iteration variable).
    pub iteration_locals: BTreeSet<String>,
}

impl LoopDeps {
    /// Compute the dependence summary of `loop_info` in `program`.
    pub fn compute(program: &Program, loop_info: &LoopInfo, table: &SummaryTable) -> LoopDeps {
        let mut out = LoopDeps::default();
        if let Some(v) = &loop_info.iter_var {
            out.iteration_locals.insert(v.clone());
        }
        let stmts: Vec<_> = loop_info
            .body_stmts
            .iter()
            .filter_map(|id| program.find_stmt(*id))
            .collect();
        for s in &stmts {
            for v in declared_vars(s) {
                out.iteration_locals.insert(v);
            }
            out.stmt_effects.insert(s.id, stmt_effects(s, table));
        }
        // For `for` loops the induction variable updated in the header is a
        // carried dependence by construction; the header is handled as the
        // StreamGenerator stage (rule PLPL), so body deps on header-written
        // vars are *reads of the stream element* rather than carried deps.
        // We therefore treat the induction variable like an iteration-local.
        if let Some(stmt) = program.find_stmt(loop_info.id) {
            if let patty_minilang::ast::StmtKind::For { init, update, .. } = &stmt.kind {
                for h in [init, update].into_iter().flatten() {
                    match &h.kind {
                        patty_minilang::ast::StmtKind::VarDecl { name, .. } => {
                            out.iteration_locals.insert(name.clone());
                        }
                        patty_minilang::ast::StmtKind::Assign { target, .. } => {
                            if let patty_minilang::ast::LValueKind::Var(name) = &target.kind {
                                out.iteration_locals.insert(name.clone());
                            }
                        }
                        _ => {}
                    }
                }
            }
        }

        let ids: Vec<NodeId> = stmts.iter().map(|s| s.id).collect();
        for (i, &a) in ids.iter().enumerate() {
            for &b in ids.iter().skip(i) {
                let ea = &out.stmt_effects[&a];
                let eb = &out.stmt_effects[&b];
                let push = |src: NodeId,
                                dst: NodeId,
                                kind: DepKind,
                                loc: &StaticLoc,
                                deps: &mut Vec<StaticDep>,
                                locals: &BTreeSet<String>| {
                    let carried = match loc {
                        StaticLoc::Var(v) => !locals.contains(v),
                        _ => true,
                    };
                    // Same-statement intra-iteration "dependence" is not a
                    // dependence at all; only the carried direction counts.
                    if src == dst && !carried {
                        return;
                    }
                    deps.push(StaticDep { src, dst, kind, loc: loc.clone(), carried });
                };
                let mut deps = Vec::new();
                for w in &ea.writes {
                    for r in &eb.reads {
                        if w.conflicts(r) {
                            push(a, b, DepKind::Flow, w, &mut deps, &out.iteration_locals);
                        }
                    }
                    for w2 in &eb.writes {
                        if w.conflicts(w2) {
                            push(a, b, DepKind::Output, w, &mut deps, &out.iteration_locals);
                        }
                    }
                }
                for r in &ea.reads {
                    for w in &eb.writes {
                        if r.conflicts(w) {
                            push(a, b, DepKind::Anti, w, &mut deps, &out.iteration_locals);
                        }
                    }
                }
                out.deps.extend(deps);
            }
        }
        out.deps.sort();
        out.deps.dedup();
        out
    }

    /// The carried dependencies only.
    pub fn carried(&self) -> impl Iterator<Item = &StaticDep> {
        self.deps.iter().filter(|d| d.carried)
    }

    /// The intra-iteration dependencies only (these define the dataflow
    /// along the pipeline, rule PLDS).
    pub fn intra(&self) -> impl Iterator<Item = &StaticDep> {
        self.deps.iter().filter(|d| !d.carried)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loops::collect_loops;
    use patty_minilang::parse;

    fn deps_of(src: &str) -> (patty_minilang::Program, LoopInfo, LoopDeps) {
        let p = parse(src).unwrap();
        let table = SummaryTable::build(&p);
        let loops = collect_loops(&p);
        let l = loops[0].clone();
        let d = LoopDeps::compute(&p, &l, &table);
        (p, l, d)
    }

    #[test]
    fn accumulator_is_carried_flow_dep() {
        let (_, l, d) = deps_of("fn main() { var s = 0; foreach (x in xs) { s = s + x; } }");
        let stmt = l.body_stmts[0];
        assert!(d
            .carried()
            .any(|dep| dep.src == stmt && dep.dst == stmt && dep.kind == DepKind::Flow));
    }

    #[test]
    fn iteration_local_chain_is_intra_only() {
        let src = r#"
            fn main() {
                foreach (x in xs) {
                    var a = x * 2;
                    var b = a + 1;
                }
            }
        "#;
        let (_, l, d) = deps_of(src);
        let (s1, s2) = (l.body_stmts[0], l.body_stmts[1]);
        // flow dep a: s1 -> s2, intra-iteration
        assert!(d
            .intra()
            .any(|dep| dep.src == s1 && dep.dst == s2 && dep.kind == DepKind::Flow));
        // but nothing carried between them
        assert!(!d.carried().any(|dep| dep.src == s1 && dep.dst == s2));
    }

    #[test]
    fn list_append_is_carried_on_collection() {
        let src = "fn main() { foreach (x in xs) { out.add(x); } }";
        let (_, l, d) = deps_of(src);
        let s = l.body_stmts[0];
        assert!(d
            .carried()
            .any(|dep| dep.src == s && dep.dst == s && matches!(dep.loc, StaticLoc::Struct(_))));
    }

    #[test]
    fn for_induction_variable_not_carried_into_body() {
        let src = "fn main() { var a = [0,0,0]; for (var i = 0; i < 3; i = i + 1) { a[i] = i; } }";
        let (_, _l, d) = deps_of(src);
        // body statement a[i] = i reads i, but i is header-managed
        // (StreamGenerator), so no carried Var("i") dependence on the body.
        assert!(!d.carried().any(|dep| dep.loc == StaticLoc::Var("i".into())));
        // The write to a's elements *is* statically carried (index-
        // insensitive static view) — dynamic evidence refines this later.
        assert!(d.carried().any(|dep| matches!(&dep.loc, StaticLoc::Elem(p) if p == "a")));
    }

    #[test]
    fn distinct_filters_have_no_mutual_deps() {
        let src = r#"
            class Filter { var g = 2; fn apply(x) { return x * this.g; } }
            fn main() {
                foreach (x in xs) {
                    var a = cropFilter.apply(x);
                    var b = histoFilter.apply(x);
                }
            }
        "#;
        let (_, l, d) = deps_of(src);
        let (s1, s2) = (l.body_stmts[0], l.body_stmts[1]);
        // The optimistic analysis sees different receivers → no deps in
        // either direction between the two filter statements.
        assert!(!d.deps.iter().any(|dep| (dep.src == s1 && dep.dst == s2)
            || (dep.src == s2 && dep.dst == s1)));
    }

    #[test]
    fn write_after_read_is_anti_dep() {
        let src = r#"
            fn main() {
                foreach (x in xs) {
                    var a = shared.v;
                    shared.v = x;
                }
            }
        "#;
        let (_, l, d) = deps_of(src);
        let (s1, s2) = (l.body_stmts[0], l.body_stmts[1]);
        assert!(d
            .deps
            .iter()
            .any(|dep| dep.src == s1 && dep.dst == s2 && dep.kind == DepKind::Anti));
    }
}
