//! Interprocedural side-effect summaries.
//!
//! Each function/method is summarized by the non-local locations it may
//! read and write, expressed in its own namespace (paths rooted at `this`
//! or at parameter names), plus an I/O flag. Summaries are computed as a
//! fixpoint over the call structure, then *rebased* into the caller's
//! namespace at each call site by [`crate::rw`].
//!
//! Locations rooted at callee locals are dropped: the optimistic analysis
//! assumes locals hold fresh, unaliased objects. This deliberately
//! under-approximates (paper Section 2.1) — the correctness validation
//! phase catches the cases where the assumption was wrong.

use crate::loc::StaticLoc;
use crate::rw::{stmt_effects, Effects};
use patty_minilang::ast::{FuncDecl, Program};
use std::collections::BTreeMap;

/// Maximum path depth kept in summaries; longer paths widen to `Unknown`
/// so the fixpoint terminates even for recursive structures.
const MAX_PATH_SEGMENTS: usize = 6;

/// Summary of one function or method.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FnSummary {
    /// Parameter names, for rebasing at call sites.
    pub params: Vec<String>,
    /// Non-local locations possibly read (callee namespace).
    pub reads: Vec<StaticLoc>,
    /// Non-local locations possibly written (callee namespace).
    pub writes: Vec<StaticLoc>,
    /// Performs order-sensitive I/O somewhere (transitively).
    pub io: bool,
}

impl FnSummary {
    /// Rebase this summary into a caller's [`Effects`] for a call with the
    /// given receiver path (`None` = unknown receiver) and argument paths.
    pub fn apply(&self, receiver: Option<&str>, arg_paths: &[Option<String>], e: &mut Effects) {
        self.apply_inner(Receiver::Known(receiver), arg_paths, e);
    }

    /// Like [`FnSummary::apply`] but for constructors: the receiver is a
    /// freshly allocated object, so `this`-rooted effects touch memory no
    /// one else can see yet and are dropped.
    pub fn apply_fresh(&self, arg_paths: &[Option<String>], e: &mut Effects) {
        self.apply_inner(Receiver::Fresh, arg_paths, e);
    }

    fn apply_inner(&self, receiver: Receiver<'_>, arg_paths: &[Option<String>], e: &mut Effects) {
        e.io |= self.io;
        let rebase = |loc: &StaticLoc| -> Option<StaticLoc> {
            match receiver {
                Receiver::Fresh if loc.root() == Some("this") => None,
                Receiver::Fresh => Some(loc.rebase(None, &self.params, arg_paths)),
                Receiver::Known(r) => Some(loc.rebase(r, &self.params, arg_paths)),
            }
        };
        for r in &self.reads {
            if let Some(loc) = rebase(r) {
                e.reads.insert(loc);
            }
        }
        for w in &self.writes {
            if let Some(loc) = rebase(w) {
                e.writes.insert(loc);
            }
        }
    }
}

#[derive(Clone, Copy)]
enum Receiver<'a> {
    Known(Option<&'a str>),
    Fresh,
}

/// All summaries of a program: free functions by name, methods by
/// `Class.method` and grouped by bare method name (call sites resolve
/// optimistically over all classes declaring the method).
#[derive(Clone, Debug, Default)]
pub struct SummaryTable {
    free: BTreeMap<String, FnSummary>,
    methods_by_name: BTreeMap<String, Vec<FnSummary>>,
}

impl SummaryTable {
    /// Compute summaries for every function and method by fixpoint
    /// iteration.
    pub fn build(program: &Program) -> SummaryTable {
        let mut table = SummaryTable::default();
        // Seed with empty summaries so call sites resolve during iteration.
        for f in &program.funcs {
            table.free.insert(f.name.clone(), FnSummary {
                params: f.params.clone(),
                ..FnSummary::default()
            });
        }
        for c in &program.classes {
            for m in &c.methods {
                table
                    .methods_by_name
                    .entry(m.name.clone())
                    .or_default()
                    .push(FnSummary { params: m.params.clone(), ..FnSummary::default() });
            }
        }
        // Fixpoint. The loc universe is finite (path depth capped), so this
        // terminates; bound iterations defensively anyway.
        for _round in 0..32 {
            let mut changed = false;
            for f in &program.funcs {
                let s = summarize(f, &table);
                let slot = table.free.get_mut(&f.name).expect("seeded");
                if *slot != s {
                    *slot = s;
                    changed = true;
                }
            }
            for c in &program.classes {
                // Methods are stored grouped by bare name; recompute the
                // group entry for this class's method by position.
                for m in &c.methods {
                    let s = summarize(m, &table);
                    let group = table
                        .methods_by_name
                        .get(&m.name)
                        .expect("seeded")
                        .clone();
                    // Find the entry with matching params belonging to this
                    // class: positions are stable because build order is
                    // deterministic; match by index of (class, method).
                    let idx = method_index(program, &c.name, &m.name);
                    if group.get(idx).map(|g| g != &s).unwrap_or(false) {
                        table.methods_by_name.get_mut(&m.name).expect("seeded")[idx] = s;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        table
    }

    /// Summary of a free (non-method) function, if declared.
    pub fn free_function(&self, name: &str) -> Option<&FnSummary> {
        self.free.get(name)
    }

    /// All summaries of methods with this bare name, across classes.
    pub fn methods(&self, name: &str) -> &[FnSummary] {
        self.methods_by_name
            .get(name)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }
}

/// Index of `(class, method)` within the by-name method group, matching
/// the deterministic seeding order in [`SummaryTable::build`].
fn method_index(program: &Program, class: &str, method: &str) -> usize {
    let mut idx = 0;
    for c in &program.classes {
        for m in &c.methods {
            if m.name == method {
                if c.name == class {
                    return idx;
                }
                idx += 1;
            }
        }
    }
    idx
}

/// Compute the summary of one function body under the current table.
fn summarize(func: &FuncDecl, table: &SummaryTable) -> FnSummary {
    let mut raw = Effects::default();
    for s in &func.body.stmts {
        raw.merge(stmt_effects(s, table));
    }
    let keep = |loc: &StaticLoc| -> Option<StaticLoc> {
        match loc {
            StaticLoc::Unknown => Some(StaticLoc::Unknown),
            StaticLoc::Var(_) => None, // callee-local by-value cells
            StaticLoc::Path(p) | StaticLoc::Elem(p) | StaticLoc::Struct(p) => {
                let root = p.split('.').next().unwrap_or(p);
                if root != "this" && !func.params.iter().any(|q| q == root) {
                    return None; // optimistic: local roots are fresh
                }
                if p.split('.').count() > MAX_PATH_SEGMENTS {
                    return Some(StaticLoc::Unknown);
                }
                Some(loc.clone())
            }
        }
    };
    FnSummary {
        params: func.params.clone(),
        reads: raw.reads.iter().filter_map(keep).collect(),
        writes: raw.writes.iter().filter_map(keep).collect(),
        io: raw.io,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use patty_minilang::parse;

    #[test]
    fn pure_method_has_empty_summary() {
        let p = parse("class F { var g = 2; fn apply(x) { return x * this.g; } } fn main() { }").unwrap();
        let t = SummaryTable::build(&p);
        let s = &t.methods("apply")[0];
        assert!(s.writes.is_empty());
        assert!(!s.io);
        assert!(s.reads.contains(&StaticLoc::Path("this.g".into())));
    }

    #[test]
    fn mutating_method_writes_this_field() {
        let p = parse("class A { var n = 0; fn bump() { this.n += 1; } } fn main() { }").unwrap();
        let t = SummaryTable::build(&p);
        let s = &t.methods("bump")[0];
        assert!(s.writes.contains(&StaticLoc::Path("this.n".into())));
    }

    #[test]
    fn io_propagates_transitively() {
        let src = r#"
            fn log(x) { print(x); }
            fn outer(x) { log(x); }
            fn main() { }
        "#;
        let t = SummaryTable::build(&parse(src).unwrap());
        assert!(t.free_function("log").unwrap().io);
        assert!(t.free_function("outer").unwrap().io, "io must flow through the call chain");
    }

    #[test]
    fn effects_on_param_collections_kept() {
        let src = "fn push(buf, v) { buf.add(v); } fn main() { }";
        let t = SummaryTable::build(&parse(src).unwrap());
        let s = t.free_function("push").unwrap();
        assert!(s.writes.contains(&StaticLoc::Struct("buf".into())));
    }

    #[test]
    fn local_fresh_objects_are_dropped() {
        let src = r#"
            class P { var x = 0; }
            fn make() { var p = new P(); p.x = 1; return p; }
            fn main() { }
        "#;
        let t = SummaryTable::build(&parse(src).unwrap());
        let s = t.free_function("make").unwrap();
        assert!(s.writes.is_empty(), "writes to fresh locals must be dropped: {:?}", s.writes);
    }

    #[test]
    fn transitive_field_effects_through_methods() {
        let src = r#"
            class Inner { var n = 0; fn inc() { this.n += 1; } }
            class Outer { var inner = null; fn touch() { this.inner.inc(); } }
            fn main() { }
        "#;
        let t = SummaryTable::build(&parse(src).unwrap());
        let s = &t.methods("touch")[method_index(&parse(src).unwrap(), "Outer", "touch")];
        assert!(
            s.writes.contains(&StaticLoc::Path("this.inner.n".into())),
            "nested effect must be rebased through this.inner: {:?}",
            s.writes
        );
    }

    #[test]
    fn recursion_terminates() {
        let src = "fn f(n) { if (n > 0) { f(n - 1); } print(n); } fn main() { }";
        let t = SummaryTable::build(&parse(src).unwrap());
        assert!(t.free_function("f").unwrap().io);
    }
}
