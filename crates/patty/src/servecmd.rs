//! `patty serve` — the daemon mode — plus the artifact-cache plumbing
//! shared with the one-shot CLI.
//!
//! The serve infrastructure (sharded cache, admission control, line
//! protocol) lives in `patty-serve`, generic over a [`JobRunner`];
//! this module supplies the real runner that maps `analyze | tune |
//! faultcheck | trace` jobs onto the language pipeline, and renders
//! each result as a patty-json artifact so it is cacheable by the
//! program's content hash.
//!
//! `patty tune` routes through the same cache (`tune_cached`): the
//! artifact spills to `$PATTY_CACHE_DIR` (default: a `patty-cache`
//! directory under the system temp dir), so repeated tuning of an
//! unchanged file is served from disk instead of recomputed — even
//! across processes.

use crate::process::{Patty, PattyError, PattyRun};
use patty_json::Json;
use patty_serve::{
    job_hash, AdmissionConfig, CacheConfig, JobCtl, JobKind, JobRunner, ServeConfig, Service,
    ShardedCache,
};
use std::path::PathBuf;
use std::time::Duration;

/// Run the process model the same way the one-shot CLI does: TADL
/// annotations select mode 2, plain files run mode 1.
fn run_for(patty: &Patty, source: &str) -> Result<PattyRun, PattyError> {
    if source.contains("#region TADL:") {
        patty.run_annotated(source)
    } else {
        patty.run_automatic(source)
    }
}

/// The `analyze` artifact: detected candidates with their parsed
/// tuning configuration.
pub fn analyze_artifact(patty: &Patty, source: &str) -> Result<Json, PattyError> {
    let run = run_for(patty, source)?;
    let candidates = run
        .artifacts
        .iter()
        .map(|a| {
            let tuning = patty_json::parse(&a.tuning_json).unwrap_or(Json::Null);
            Json::obj()
                .with("name", Json::Str(a.arch.name.clone()))
                .with("expr", Json::Str(a.arch.expr.to_string()))
                .with("tuning", tuning)
        })
        .collect();
    Ok(Json::obj()
        .with(
            "mode",
            Json::Str(if source.contains("#region TADL:") {
                "annotated".into()
            } else {
                "automatic".into()
            }),
        )
        .with("candidates", Json::Arr(candidates)))
}

/// The `tune` artifact: per-architecture tuning outcomes, carrying
/// everything `render_tune_artifact` needs to reproduce the CLI output.
pub fn tune_artifact(patty: &Patty, run: &PattyRun) -> Json {
    let archs = patty
        .tune_performance(run)
        .into_iter()
        .map(|(name, result)| {
            let initial = result.history.first().map(|h| h.1).unwrap_or(f64::NAN);
            let params = result
                .best
                .params
                .iter()
                .map(|p| {
                    Json::obj()
                        .with("name", Json::Str(p.name.clone()))
                        .with("value", Json::Str(p.value.to_string()))
                        .with("location", Json::Str(p.location.clone()))
                })
                .collect();
            Json::obj()
                .with("name", Json::Str(name))
                .with("evaluations", Json::Int(i64::from(result.evaluations)))
                .with("initial_cost", Json::Float(initial))
                .with("best_cost", Json::Float(result.best_score))
                .with("params", Json::Arr(params))
        })
        .collect();
    Json::obj().with("archs", Json::Arr(archs))
}

/// Render a `tune` artifact exactly as the pre-cache CLI printed live
/// results, so cached and fresh invocations are byte-identical.
pub fn render_tune_artifact(artifact: &Json) -> String {
    let mut out = String::new();
    let archs = artifact.get("archs").and_then(Json::as_arr).unwrap_or(&[]);
    for arch in archs {
        let name = arch.get("name").and_then(Json::as_str).unwrap_or("?");
        let evals = arch.get("evaluations").and_then(Json::as_i64).unwrap_or(0);
        let initial = arch.get("initial_cost").and_then(Json::as_f64).unwrap_or(f64::NAN);
        let best = arch.get("best_cost").and_then(Json::as_f64).unwrap_or(f64::NAN);
        out.push_str(&format!("{name}: {evals} evaluations\n"));
        out.push_str(&format!("  initial cost: {initial:.0}\n"));
        out.push_str(&format!("  best cost:    {best:.0}\n"));
        for p in arch.get("params").and_then(Json::as_arr).unwrap_or(&[]) {
            let pname = p.get("name").and_then(Json::as_str).unwrap_or("?");
            let value = p.get("value").and_then(Json::as_str).unwrap_or("?");
            let location = p.get("location").and_then(Json::as_str).unwrap_or("?");
            out.push_str(&format!("    {pname} = {value} ({location})\n"));
        }
    }
    out
}

/// The `faultcheck` artifact: matrix verdicts plus the chess sweep's
/// pass/fail, compact enough to cache and diff.
pub fn faultcheck_artifact(patty: &Patty, source: &str) -> Result<Json, PattyError> {
    let report = crate::faultcheck::faultcheck(patty, source)?;
    let scenarios = report
        .scenarios
        .iter()
        .map(|s| {
            let outcome = match &s.outcome {
                crate::faultcheck::Outcome::Recovered => "recovered".to_string(),
                crate::faultcheck::Outcome::StructuredError(e) => format!("structured: {e}"),
                crate::faultcheck::Outcome::Diverged => "diverged".to_string(),
            };
            Json::obj()
                .with("arch", Json::Str(s.arch.clone()))
                .with("stage", Json::Str(s.stage.clone()))
                .with("nth", Json::Int(s.nth as i64))
                .with("outcome", Json::Str(outcome))
        })
        .collect();
    Ok(Json::obj()
        .with("passed", Json::Bool(report.passed()))
        .with("scenarios", Json::Arr(scenarios))
        .with("chess_passed", Json::Bool(report.chess.passed())))
}

/// The `trace` artifact: the deterministic per-stage trace summary.
pub fn trace_artifact(patty: &Patty, source: &str) -> Result<Json, PattyError> {
    let (_trace, report) = patty.trace(source)?;
    Ok(report.to_json_value())
}

/// The real job runner behind `patty serve`: maps each job kind onto
/// the language pipeline, with a cooperative cancellation checkpoint
/// between the analysis and execution phases.
pub struct PattyJobRunner {
    patty: Patty,
}

impl PattyJobRunner {
    pub fn new() -> PattyJobRunner {
        PattyJobRunner { patty: Patty::new() }
    }
}

impl Default for PattyJobRunner {
    fn default() -> PattyJobRunner {
        PattyJobRunner::new()
    }
}

impl JobRunner for PattyJobRunner {
    fn run(&self, kind: JobKind, source: &str, ctl: &JobCtl) -> Result<Json, String> {
        ctl.checkpoint()?;
        let result = match kind {
            JobKind::Analyze => analyze_artifact(&self.patty, source),
            JobKind::Tune => {
                let run = run_for(&self.patty, source).map_err(|e| e.to_string())?;
                ctl.checkpoint()?;
                Ok(tune_artifact(&self.patty, &run))
            }
            JobKind::Faultcheck => faultcheck_artifact(&self.patty, source),
            JobKind::Trace => trace_artifact(&self.patty, source),
        };
        result.map_err(|e| e.to_string())
    }
}

/// The persistent CLI-side artifact cache: spills to
/// `$PATTY_CACHE_DIR` (or `<tmp>/patty-cache`), so repeat invocations
/// of the same binary on the same file hit disk instead of recomputing.
fn cli_cache() -> ShardedCache {
    let dir = std::env::var_os("PATTY_CACHE_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| std::env::temp_dir().join("patty-cache"));
    ShardedCache::new(CacheConfig {
        shards: 4,
        capacity: 256,
        spill_dir: Some(dir),
    })
}

/// `patty tune <file.mini>`, routed through the artifact cache.
pub fn tune_cached(patty: &Patty, source: &str) -> i32 {
    let cache = cli_cache();
    let hash = job_hash(JobKind::Tune, source);
    if let Some((artifact, from)) = cache.get(JobKind::Tune, hash) {
        print!("{}", render_tune_artifact(&artifact));
        eprintln!(
            "patty tune: served from artifact cache ({}, key {hash:016x})",
            from.as_str()
        );
        return 0;
    }
    let run = match run_for(patty, source) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("patty: {e}");
            return 1;
        }
    };
    let artifact = tune_artifact(patty, &run);
    cache.insert(JobKind::Tune, hash, &artifact);
    print!("{}", render_tune_artifact(&artifact));
    0
}

/// `patty serve [--addr HOST:PORT] [--stdin] [--cache-dir DIR]
/// [--no-spill] [--cache-capacity N] [--shards N] [--max-concurrent N]
/// [--queue-limit N] [--deadline-ms N]`.
pub fn serve(args: &[String]) -> i32 {
    let mut addr = "127.0.0.1:7465".to_string();
    let mut use_stdin = false;
    let mut cache_dir: Option<PathBuf> = std::env::var_os("PATTY_CACHE_DIR").map(PathBuf::from);
    let mut no_spill = false;
    let mut capacity: usize = 1024;
    let mut shards: usize = 8;
    let mut max_concurrent: usize = 4;
    let mut queue_limit: usize = 16;
    let mut deadline_ms: u64 = 30_000;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--stdin" => {
                use_stdin = true;
                i += 1;
            }
            "--no-spill" => {
                no_spill = true;
                i += 1;
            }
            flag @ ("--addr" | "--cache-dir" | "--cache-capacity" | "--shards"
            | "--max-concurrent" | "--queue-limit" | "--deadline-ms") => {
                let Some(value) = args.get(i + 1).map(String::as_str) else {
                    eprintln!("patty serve: `{flag}` needs a value");
                    return 2;
                };
                let mut bad = false;
                match flag {
                    "--addr" => addr = value.to_string(),
                    "--cache-dir" => cache_dir = Some(PathBuf::from(value)),
                    "--cache-capacity" => bad = value.parse().map(|v| capacity = v).is_err(),
                    "--shards" => bad = value.parse().map(|v| shards = v).is_err(),
                    "--max-concurrent" => bad = value.parse().map(|v| max_concurrent = v).is_err(),
                    "--queue-limit" => bad = value.parse().map(|v| queue_limit = v).is_err(),
                    _ => bad = value.parse().map(|v| deadline_ms = v).is_err(),
                }
                if bad {
                    eprintln!("patty serve: `{flag}` needs a number, got `{value}`");
                    return 2;
                }
                i += 2;
            }
            other => {
                eprintln!("patty serve: unknown flag `{other}`");
                return 2;
            }
        }
    }
    let spill_dir = if no_spill {
        None
    } else {
        Some(cache_dir.unwrap_or_else(|| std::env::temp_dir().join("patty-cache")))
    };
    let cfg = ServeConfig {
        cache: CacheConfig {
            shards,
            capacity,
            spill_dir,
        },
        admission: AdmissionConfig {
            max_concurrent,
            queue_limit,
            ..AdmissionConfig::default()
        },
        job_deadline: Duration::from_millis(deadline_ms),
        use_executor: true,
    };
    let service = Service::new(PattyJobRunner::new(), cfg);
    if use_stdin {
        eprintln!("patty serve: line protocol on stdin/stdout (send {{\"op\":\"shutdown\"}} to stop)");
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        return match service.serve_lines(stdin.lock(), stdout.lock()) {
            Ok(()) => 0,
            Err(e) => {
                eprintln!("patty serve: io error: {e}");
                1
            }
        };
    }
    let listener = match std::net::TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("patty serve: cannot bind {addr}: {e}");
            return 1;
        }
    };
    match listener.local_addr() {
        Ok(local) => eprintln!("patty serve: listening on {local}"),
        Err(_) => eprintln!("patty serve: listening on {addr}"),
    }
    match service.serve_tcp(listener) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("patty serve: io error: {e}");
            1
        }
    }
}
