//! `patty faultcheck` — validate the runtime's failure paths for a
//! program the way `patty validate` validates its interleavings.
//!
//! The generated plan is executed under a matrix of deterministic
//! [`FaultPlan`]s: one panic planted at every stage × {first, middle,
//! last} item. Each scenario must end in one of the two contractual
//! outcomes:
//!
//! * **recovered** — the sequential fallback absorbed the fault and the
//!   output is byte-identical to the sequential oracle, or
//! * **structured error** — the run failed fast with a
//!   [`RuntimeError`](patty_runtime::RuntimeError) naming the stage.
//!
//! Anything else (wrong output, an unwinding panic) fails the check.
//! The report carries the `fault.*` telemetry counters accumulated
//! across all scenarios, so the recovery machinery is observable from
//! the CLI exactly like stage throughput is in `patty profile`.
//!
//! The wall-clock matrix is complemented by the joint schedule×fault
//! exploration on the virtual-time chess scheduler (see
//! [`crate::chesscmd`]): every failing scenario there prints its
//! `sched_trace_hash`, and `patty faultcheck --replay <hash>` (or
//! `patty chess --replay <hash>`) re-executes exactly that interleaving
//! byte-stably.

use crate::chesscmd::{chess_explore, ChessReport};
use crate::process::{InstanceArtifacts, Patty, PattyError};
use patty_faultsim::FaultPlan;
use patty_runtime::{FailurePolicy, MasterWorker, Pipeline, RunOptions, Stage};
use patty_telemetry::Telemetry;
use std::time::Duration;

/// Items streamed per scenario — small enough that a full matrix stays
/// interactive, large enough that every stage sees first/middle/last.
const FAULTCHECK_STREAM_CAP: u64 = 64;

/// Guard deadline per scenario; a hung recovery is itself a failure.
const SCENARIO_DEADLINE: Duration = Duration::from_secs(30);

/// How one fault scenario ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Fallback completed; output matched the sequential oracle.
    Recovered,
    /// The run failed fast with the structured error's display string.
    StructuredError(String),
    /// Output diverged from the oracle — a real fault-tolerance bug.
    Diverged,
}

/// One executed scenario of the fault matrix.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Architecture the fault was injected into.
    pub arch: String,
    /// Stage (or task label) that hosted the fault.
    pub stage: String,
    /// 0-based call index the fault fired at.
    pub nth: u64,
    pub outcome: Outcome,
}

impl Scenario {
    pub fn passed(&self) -> bool {
        self.outcome != Outcome::Diverged
    }
}

/// The aggregated result of `patty faultcheck`.
#[derive(Debug)]
pub struct FaultcheckReport {
    pub scenarios: Vec<Scenario>,
    /// The joint schedule×fault exploration on the chess scheduler —
    /// every failure there carries a replayable `sched_trace_hash`.
    pub chess: ChessReport,
    /// `fault.*` (and pattern) counters accumulated across the matrix.
    pub telemetry: patty_telemetry::TelemetryReport,
}

impl FaultcheckReport {
    pub fn passed(&self) -> bool {
        !self.scenarios.is_empty()
            && self.scenarios.iter().all(Scenario::passed)
            && self.chess.passed()
    }

    /// Human-readable rendering; the telemetry report is appended as
    /// JSON so scripts can scrape the `fault.*` counters.
    pub fn render(&self) -> String {
        let mut out = String::from("— fault matrix —\n");
        for s in &self.scenarios {
            let verdict = match &s.outcome {
                Outcome::Recovered => "recovered via sequential fallback".to_string(),
                Outcome::StructuredError(e) => format!("structured error: {e}"),
                Outcome::Diverged => "FAILED: output diverged from sequential oracle".to_string(),
            };
            out.push_str(&format!("  {}::{}@{}: {}\n", s.arch, s.stage, s.nth, verdict));
        }
        let recovered = self.scenarios.iter().filter(|s| s.outcome == Outcome::Recovered).count();
        let errored = self
            .scenarios
            .iter()
            .filter(|s| matches!(s.outcome, Outcome::StructuredError(_)))
            .count();
        let failed = self.scenarios.iter().filter(|s| !s.passed()).count();
        out.push_str(&format!(
            "scenarios: {}, recovered: {recovered}, structured errors: {errored}, failures: {failed}\n",
            self.scenarios.len(),
        ));
        out.push('\n');
        out.push_str(&self.chess.render());
        out.push_str("\n[fault telemetry]\n");
        out.push_str(&self.telemetry.to_json());
        out.push('\n');
        out
    }
}

/// Run the fault matrix for every architecture detected in `source`.
pub fn faultcheck(patty: &Patty, source: &str) -> Result<FaultcheckReport, PattyError> {
    let run = if source.contains("#region TADL:") {
        patty.run_annotated(source)?
    } else {
        patty.run_automatic(source)?
    };
    let telemetry = Telemetry::enabled();
    let mut scenarios = Vec::new();
    for artifacts in &run.artifacts {
        check_instance(artifacts, &telemetry, &mut scenarios);
    }
    let chess = chess_explore(patty, &run);
    Ok(FaultcheckReport { scenarios, chess, telemetry: telemetry.report() })
}

fn fallback_opts() -> RunOptions {
    RunOptions::new()
        .on_failure(FailurePolicy::FallbackSequential)
        .with_deadline(SCENARIO_DEADLINE)
}

/// First, middle and last call index for a stream of `n` items.
fn positions(n: u64) -> Vec<u64> {
    let mut p = vec![0, n / 2, n.saturating_sub(1)];
    p.dedup();
    p
}

/// The busy-work stage body shared with `patty profile`: replays the
/// profiled per-element cost, deterministically per input.
fn busy(cost: u64, x: u64) -> u64 {
    let mut acc = x;
    for i in 0..cost.min(512) {
        acc = std::hint::black_box(acc.wrapping_mul(31).wrapping_add(i));
    }
    acc
}

fn check_instance(
    artifacts: &InstanceArtifacts,
    telemetry: &Telemetry,
    scenarios: &mut Vec<Scenario>,
) {
    let plan = &artifacts.plan;
    let arch = artifacts.arch.name.clone();
    let n = plan.stream_length.clamp(1, FAULTCHECK_STREAM_CAP);
    match plan.kind {
        patty_tadl::PatternKind::Pipeline => {
            let costs: Vec<(String, u64)> = plan
                .stages
                .iter()
                .map(|ps| (ps.name.clone(), ps.cost_per_element))
                .collect();
            // Sequential oracle: the stage chain folded on one thread.
            let oracle: Vec<u64> = (0..n)
                .map(|x| costs.iter().fold(x, |v, (_, c)| busy(*c, v)))
                .collect();
            for (stage_name, _) in &costs {
                for nth in positions(n) {
                    let fault = FaultPlan::new().panic_at(stage_name.clone(), nth);
                    let stages: Vec<Stage<u64>> = costs
                        .iter()
                        .map(|(name, cost)| {
                            let cost = *cost;
                            fault.wrap_stage(Stage::new(name.clone(), move |x: u64| busy(cost, x)))
                        })
                        .collect();
                    let pipeline =
                        Pipeline::new(stages).with_telemetry(telemetry.clone());
                    let outcome = match pipeline.run_checked((0..n).collect(), &fallback_opts()) {
                        Ok(out) if out == oracle => Outcome::Recovered,
                        Ok(_) => Outcome::Diverged,
                        Err(e) => Outcome::StructuredError(e.to_string()),
                    };
                    scenarios.push(Scenario {
                        arch: arch.clone(),
                        stage: stage_name.clone(),
                        nth,
                        outcome,
                    });
                }
            }
        }
        patty_tadl::PatternKind::MasterWorker | patty_tadl::PatternKind::DataParallelLoop => {
            let cost = plan.element_cost;
            let oracle: Vec<u64> = (0..n).map(|x| busy(cost, x)).collect();
            for nth in positions(n) {
                let fault = FaultPlan::new().panic_at("worker", nth);
                let task = fault.instrument("worker", move |x: u64| busy(cost, x));
                let mw = MasterWorker::new(4).with_telemetry(telemetry.clone());
                let outcome = match mw.run_checked((0..n).collect(), task, &fallback_opts()) {
                    Ok(out) if out == oracle => Outcome::Recovered,
                    Ok(_) => Outcome::Diverged,
                    Err(e) => Outcome::StructuredError(e.to_string()),
                };
                scenarios.push(Scenario {
                    arch: arch.clone(),
                    stage: "worker".to_string(),
                    nth,
                    outcome,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use patty_corpus::avistream_program;

    #[test]
    fn avistream_fault_matrix_passes_and_reports_counters() {
        let patty = Patty::new();
        let report = faultcheck(&patty, avistream_program().source).unwrap();
        assert!(report.passed(), "{}", report.render());
        // 4 pipeline stages × 3 positions.
        assert!(report.scenarios.len() >= 9, "only {} scenarios", report.scenarios.len());
        let caught = report.telemetry.counter("fault.panics_caught").unwrap_or(0);
        assert_eq!(caught, report.scenarios.len() as u64, "one injection per scenario");
        let rendered = report.render();
        assert!(rendered.contains("fault.panics_caught"));
        assert!(rendered.contains("fault.fallbacks"));
        // The chess section prints a replayable sched_trace_hash for
        // every failing schedule×fault scenario.
        assert!(rendered.contains("schedule×fault"), "{rendered}");
        assert!(rendered.contains("hash=0x"), "{rendered}");
    }

    #[test]
    fn positions_collapse_for_tiny_streams() {
        assert_eq!(positions(1), vec![0]);
        assert_eq!(positions(2), vec![0, 1]);
        assert_eq!(positions(24), vec![0, 12, 23]);
    }
}
