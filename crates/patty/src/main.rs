//! The `patty` command-line tool.
//!
//! The paper's Patty is a Visual Studio plugin; the CLI exposes the same
//! process model and operation modes on the terminal:
//!
//! ```text
//! patty analyze  <file.mini>    # phases 1–2: candidates + overlay
//! patty annotate <file.mini>    # phase 3: print TADL-annotated source
//! patty transform <file.mini>   # phase 4: plan + tuning config + Fig.3d code
//! patty validate <file.mini>    # mode 4: CHESS on generated unit tests
//! patty tune     <file.mini>    # mode 4: auto-tuning cycle (linear search)
//! patty profile  <file.mini>    # run with telemetry: JSON report of
//!                               # per-stage item counts, per-phase span
//!                               # timings and tuner iteration logs
//! patty faultcheck <file.mini> [--replay HASH]
//!                               # run the generated plan under a matrix
//!                               # of injected faults; every scenario must
//!                               # recover to the sequential oracle or
//!                               # fail with a structured error. Also runs
//!                               # the joint schedule×fault exploration:
//!                               # every failing scenario prints its
//!                               # sched_trace_hash; --replay re-executes
//!                               # that interleaving byte-stably
//! patty chess <file.mini> [--mode dpor|dfs] [--replay HASH]
//!                               # joint schedule×fault exploration of the
//!                               # generated unit tests on the virtual-time
//!                               # chess scheduler (DPOR by default, DFS as
//!                               # the exhaustive oracle); zero OS threads,
//!                               # byte-reproducible
//! patty trace <file.mini> [--out FILE] [--format chrome|flame|summary]
//!                               # run with structured tracing: Chrome
//!                               # trace_event JSON (load in Perfetto),
//!                               # plain-text flame summary, or the
//!                               # stable per-stage summary JSON
//! patty stats <file.mini> [--format prom|json] [--watch]
//!             [--deterministic] [--interval MS] [--iterations N]
//!                               # unified observability snapshot:
//!                               # executor lane counters, telemetry,
//!                               # trace aggregates and VM profiler
//!                               # stats in one registry. Prometheus
//!                               # text exposition by default; --watch
//!                               # renders a live terminal dashboard;
//!                               # --deterministic makes the output
//!                               # byte-stable (virtual clock, no
//!                               # wall-clock pool execution)
//! patty serve [--addr HOST:PORT] [--stdin] [--cache-dir DIR]
//!             [--no-spill] [--cache-capacity N] [--shards N]
//!             [--max-concurrent N] [--queue-limit N] [--deadline-ms N]
//!                               # daemon mode: a patty-json line protocol
//!                               # over TCP (or stdin/stdout loopback)
//!                               # accepting analyze|tune|faultcheck|trace
//!                               # jobs, content-addressed artifact cache,
//!                               # admission control, live `stats` scrape
//! patty modes                   # describe the four operation modes
//! ```
//!
//! Exit codes: 0 success, 1 processing/runtime failure, 2 usage error,
//! 3 internal error (a panic that escaped — reported as one line on
//! stderr, never a backtrace).
//!
//! Files with TADL `#region` annotations are processed in mode 2
//! (annotations drive the transformation); plain files run mode 1
//! (fully automatic).

use patty_tool::{render_candidates, render_overlay, Patty, PattyRun};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // A panic that escapes the fault-tolerant runtime is an internal
    // error: report it as a single stderr line, never a backtrace.
    // Panics on worker threads are caught and structured by the runtime,
    // so the hook only speaks for the main thread.
    std::panic::set_hook(Box::new(|info| {
        if std::thread::current().name() == Some("main") {
            let msg = patty_runtime::fault::panic_payload(info.payload());
            eprintln!("patty: internal error: {msg}");
        }
    }));
    let code = std::panic::catch_unwind(|| run(&args)).unwrap_or(3);
    std::process::exit(code);
}

fn run(args: &[String]) -> i32 {
    let usage = "usage: patty <analyze|annotate|transform|validate|tune|profile|faultcheck|chess|trace|stats|serve|modes> [file.mini]\n       patty trace <file.mini> [--out FILE] [--format chrome|flame|summary]\n       patty chess <file.mini> [--mode dpor|dfs] [--replay HASH]\n       patty faultcheck <file.mini> [--replay HASH]\n       patty stats <file.mini> [--format prom|json] [--watch] [--deterministic] [--interval MS] [--iterations N]\n       patty serve [--addr HOST:PORT] [--stdin] [--cache-dir DIR] [--no-spill] [--cache-capacity N] [--shards N] [--max-concurrent N] [--queue-limit N] [--deadline-ms N]";
    let Some(cmd) = args.first() else {
        eprintln!("{usage}");
        return 2;
    };
    if cmd == "modes" {
        print!("{}", patty_tool::describe_modes());
        return 0;
    }
    // `serve` takes no input file: jobs arrive over the wire.
    if cmd == "serve" {
        return patty_tool::servecmd::serve(&args[1..]);
    }
    let known = [
        "analyze", "annotate", "transform", "validate", "tune", "profile", "faultcheck", "chess",
        "trace", "stats",
    ];
    if !known.contains(&cmd.as_str()) {
        eprintln!("unknown command `{cmd}`\n{usage}");
        return 2;
    }
    let Some(path) = args.get(1) else {
        eprintln!("{usage}");
        return 2;
    };
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return 1;
        }
    };
    let patty = Patty::new();
    if cmd == "tune" {
        // Tuning routes through the content-addressed artifact cache:
        // repeat invocations over an unchanged file are served from the
        // spilled artifact instead of re-running the search.
        return patty_tool::tune_cached(&patty, &source);
    }
    if cmd == "trace" {
        return trace(&patty, &source, &args[2..]);
    }
    if cmd == "chess" {
        return chess(&patty, &source, &args[2..]);
    }
    if cmd == "faultcheck" {
        return faultcheck(&patty, &source, &args[2..]);
    }
    if cmd == "stats" {
        return stats(&patty, path, &source, &args[2..]);
    }
    if cmd == "profile" {
        // Telemetry profile: the process runs inside `Patty::profile` with
        // an enabled sink, so skip the plain run below.
        return match patty.profile(&source) {
            Ok(report) => {
                println!("{}", report.to_json());
                0
            }
            Err(e) => {
                eprintln!("patty: {e}");
                1
            }
        };
    }
    let annotated_input = source.contains("#region TADL:");
    let run = if annotated_input {
        patty.run_annotated(&source)
    } else {
        patty.run_automatic(&source)
    };
    let run = match run {
        Ok(r) => r,
        Err(e) => {
            eprintln!("patty: {e}");
            return 1;
        }
    };
    match cmd.as_str() {
        "analyze" => analyze(&run),
        "annotate" => annotate(&run),
        "transform" => transform(&run),
        "validate" => validate(&patty, &run),
        other => unreachable!("command `{other}` validated above"),
    }
    0
}

/// Parse a `sched_trace_hash` CLI argument (hex, optional `0x` prefix).
fn parse_hash(s: &str) -> Option<u64> {
    u64::from_str_radix(s.trim_start_matches("0x"), 16).ok()
}

/// `patty chess <file.mini> [--mode dpor|dfs] [--replay HASH]`.
fn chess(patty: &Patty, source: &str, flags: &[String]) -> i32 {
    let mut mode = patty_chess::SearchMode::Dpor;
    let mut replay: Option<u64> = None;
    let mut i = 0;
    while i < flags.len() {
        let value = flags.get(i + 1).map(String::as_str);
        match (flags[i].as_str(), value) {
            ("--mode", Some("dpor")) => mode = patty_chess::SearchMode::Dpor,
            ("--mode", Some("dfs")) => mode = patty_chess::SearchMode::Dfs,
            ("--mode", Some(other)) => {
                eprintln!("patty chess: unknown mode `{other}` (expected dpor or dfs)");
                return 2;
            }
            ("--replay", Some(hash)) => match parse_hash(hash) {
                Some(h) => replay = Some(h),
                None => {
                    eprintln!("patty chess: `--replay` needs a hex trace hash, got `{hash}`");
                    return 2;
                }
            },
            (flag @ ("--mode" | "--replay"), None) => {
                eprintln!("patty chess: `{flag}` needs a value");
                return 2;
            }
            (other, _) => {
                eprintln!("patty chess: unknown flag `{other}`");
                return 2;
            }
        }
        i += 2;
    }
    let mut patty = patty.clone();
    patty.options.chess.mode = mode;
    let run = match patty_tool::chess_run(&patty, source) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("patty: {e}");
            return 1;
        }
    };
    if let Some(hash) = replay {
        return match patty_tool::chess_replay(&patty, &run, hash) {
            Some((arch, outcome)) => {
                print!("{}", patty_tool::render_replay(&arch, &outcome));
                i32::from(!outcome.byte_stable)
            }
            None => {
                eprintln!("patty chess: no explored failure carries hash {hash:#018x}");
                1
            }
        };
    }
    let report = patty_tool::chess_explore(&patty, &run);
    print!("{}", report.render());
    if report.is_empty() {
        eprintln!("patty: chess: no parallel architectures with unit tests detected");
        return 1;
    }
    i32::from(!report.passed())
}

/// `patty stats <file.mini> [--format prom|json] [--watch]
/// [--deterministic] [--interval MS] [--iterations N]`.
///
/// `--iterations` bounds the `--watch` loop (0 = forever) so scripted
/// and test invocations terminate; `--interval` is the refresh period
/// in milliseconds.
fn stats(patty: &Patty, path: &str, source: &str, flags: &[String]) -> i32 {
    let mut format = "prom";
    let mut watch = false;
    let mut deterministic = false;
    let mut interval_ms: u64 = 1000;
    let mut iterations: u64 = 0;
    let mut i = 0;
    while i < flags.len() {
        match flags[i].as_str() {
            "--watch" => {
                watch = true;
                i += 1;
            }
            "--deterministic" => {
                deterministic = true;
                i += 1;
            }
            flag @ ("--format" | "--interval" | "--iterations") => {
                let Some(value) = flags.get(i + 1).map(String::as_str) else {
                    eprintln!("patty stats: `{flag}` needs a value");
                    return 2;
                };
                match flag {
                    "--format" => {
                        if !["prom", "json"].contains(&value) {
                            eprintln!(
                                "patty stats: unknown format `{value}` (expected prom or json)"
                            );
                            return 2;
                        }
                        format = value;
                    }
                    "--interval" => match value.parse() {
                        Ok(ms) => interval_ms = ms,
                        Err(_) => {
                            eprintln!("patty stats: `--interval` needs milliseconds, got `{value}`");
                            return 2;
                        }
                    },
                    _ => match value.parse() {
                        Ok(n) => iterations = n,
                        Err(_) => {
                            eprintln!("patty stats: `--iterations` needs a count, got `{value}`");
                            return 2;
                        }
                    },
                }
                i += 2;
            }
            other => {
                eprintln!("patty stats: unknown flag `{other}`");
                return 2;
            }
        }
    }
    if watch {
        let mut frame = 0u64;
        loop {
            let reg = match patty_tool::stats_registry(patty, source, deterministic) {
                Ok(reg) => reg,
                Err(e) => {
                    eprintln!("patty: {e}");
                    return 1;
                }
            };
            if frame > 0 {
                // Repaint in place; the first frame scrolls normally so
                // piped output keeps every frame.
                print!("\x1b[2J\x1b[H");
            }
            print!("{}", patty_obs::render_dashboard(&reg, path, frame));
            frame += 1;
            if iterations > 0 && frame >= iterations {
                return 0;
            }
            std::thread::sleep(std::time::Duration::from_millis(interval_ms));
        }
    }
    match patty_tool::stats_registry(patty, source, deterministic) {
        Ok(reg) => {
            match format {
                "prom" => print!("{}", reg.prometheus()),
                _ => println!("{}", reg.to_json()),
            }
            0
        }
        Err(e) => {
            eprintln!("patty: {e}");
            1
        }
    }
}

/// `patty faultcheck <file.mini> [--replay HASH]`.
fn faultcheck(patty: &Patty, source: &str, flags: &[String]) -> i32 {
    let mut replay: Option<u64> = None;
    let mut i = 0;
    while i < flags.len() {
        let value = flags.get(i + 1).map(String::as_str);
        match (flags[i].as_str(), value) {
            ("--replay", Some(hash)) => match parse_hash(hash) {
                Some(h) => replay = Some(h),
                None => {
                    eprintln!("patty faultcheck: `--replay` needs a hex trace hash, got `{hash}`");
                    return 2;
                }
            },
            ("--replay", None) => {
                eprintln!("patty faultcheck: `--replay` needs a value");
                return 2;
            }
            (other, _) => {
                eprintln!("patty faultcheck: unknown flag `{other}`");
                return 2;
            }
        }
        i += 2;
    }
    if let Some(hash) = replay {
        let run = match patty_tool::chess_run(patty, source) {
            Ok(run) => run,
            Err(e) => {
                eprintln!("patty: {e}");
                return 1;
            }
        };
        return match patty_tool::chess_replay(patty, &run, hash) {
            Some((arch, outcome)) => {
                print!("{}", patty_tool::render_replay(&arch, &outcome));
                i32::from(!outcome.byte_stable)
            }
            None => {
                eprintln!("patty faultcheck: no explored failure carries hash {hash:#018x}");
                1
            }
        };
    }
    match patty_tool::faultcheck(patty, source) {
        Ok(report) => {
            print!("{}", report.render());
            if report.passed() {
                0
            } else if report.scenarios.is_empty() {
                eprintln!("patty: faultcheck: no parallel architectures detected");
                1
            } else if report.scenarios.iter().any(|s| !s.passed()) {
                eprintln!("patty: faultcheck failed: output diverged from sequential oracle");
                1
            } else {
                eprintln!(
                    "patty: faultcheck failed: unexpected schedule×fault failures \
                     (re-execute one with `patty faultcheck <file> --replay <hash>`)"
                );
                1
            }
        }
        Err(e) => {
            eprintln!("patty: {e}");
            1
        }
    }
}

/// `patty trace <file.mini> [--out FILE] [--format chrome|flame|summary]`.
fn trace(patty: &Patty, source: &str, flags: &[String]) -> i32 {
    let mut out: Option<&str> = None;
    let mut format = "chrome";
    let mut i = 0;
    while i < flags.len() {
        let value = flags.get(i + 1).map(String::as_str);
        match (flags[i].as_str(), value) {
            ("--out", Some(path)) => out = Some(path),
            ("--format", Some(f)) => format = f,
            (flag @ ("--out" | "--format"), None) => {
                eprintln!("patty trace: `{flag}` needs a value");
                return 2;
            }
            (other, _) => {
                eprintln!("patty trace: unknown flag `{other}`");
                return 2;
            }
        }
        i += 2;
    }
    if !["chrome", "flame", "summary"].contains(&format) {
        eprintln!("patty trace: unknown format `{format}` (expected chrome, flame or summary)");
        return 2;
    }
    let (trace, report) = match patty.trace(source) {
        Ok(result) => result,
        Err(e) => {
            eprintln!("patty: {e}");
            return 1;
        }
    };
    let rendered = match format {
        "chrome" => patty_trace::chrome_trace(&trace).to_string_pretty(),
        "flame" => patty_trace::flame_summary(&report),
        _ => report.to_json(),
    };
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, rendered + "\n") {
                eprintln!("cannot write {path}: {e}");
                return 1;
            }
            eprintln!("wrote {path}");
        }
        None => println!("{rendered}"),
    }
    0
}

fn analyze(run: &PattyRun) {
    println!("— process (Fig. 4a) —");
    print!(
        "{}",
        patty_tool::render_process_chart(patty_tool::Phase::PatternAnalysis)
    );
    let instances: Vec<_> = run.artifacts.iter().map(|a| a.instance.clone()).collect();
    println!("\n— detected candidates —");
    print!("{}", render_candidates(&instances));
    for a in &run.artifacts {
        println!("\n— overlay: {} —", a.arch.name);
        print!("{}", render_overlay(&run.model.program, &a.instance));
    }
}

fn annotate(run: &PattyRun) {
    for a in &run.artifacts {
        println!("// —— annotated source for {} ——", a.arch.name);
        println!("{}", a.annotated_source);
    }
}

fn transform(run: &PattyRun) {
    for a in &run.artifacts {
        println!("— {} —", a.arch.name);
        println!("architecture: {}", a.arch.expr);
        println!("\n[tuning configuration]\n{}", a.tuning_json);
        println!("\n[parallel source]\n{}", a.plan.code);
    }
}

fn validate(patty: &Patty, run: &PattyRun) {
    if !run.test_inputs.is_empty() {
        println!("— path-coverage inputs for unit tests —");
        for (func, report) in &run.test_inputs {
            println!(
                "  {func}: {} input set(s), {}/{} branch goals covered",
                report.inputs.len(),
                report.covered,
                report.total
            );
        }
    }
    for (name, report) in patty.validate_correctness(run) {
        println!(
            "{name}: {} schedule(s), {}",
            report.schedules,
            if report.failures.is_empty() {
                "no parallel errors found".to_string()
            } else {
                format!(
                    "{} failure(s): {}",
                    report.failures.len(),
                    report
                        .failures
                        .iter()
                        .map(|f| f.kind.to_string())
                        .collect::<Vec<_>>()
                        .join("; ")
                )
            }
        );
    }
}

