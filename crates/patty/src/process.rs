//! The four-phase process model (Fig. 1) and the four operation modes
//! (Section 3, R3).
//!
//! Phases: **1. Model Creation** (semantic model from static + dynamic
//! analyses) → **2. Pattern Analysis** (source pattern detection, tuning
//! parameter derivation) → **3. Tunable Architecture** (TADL annotations
//! and architecture descriptions) → **4. Code Transform** (parallel plan,
//! tuning configuration file, parallel unit tests).
//!
//! Every phase's artifacts are kept and exposed (requirement R2: "the
//! necessity to visualize the phase artifacts after each step").

use patty_analysis::SemanticModel;
use patty_chess::{ChessOptions, Report, SearchMode};
use patty_minilang::{parse, InterpOptions, LangError};
use patty_patterns::{detect_patterns, DetectOptions, PatternInstance};
use patty_tadl::ArchitectureDescription;
use patty_testgen::{generate_unit_test, run_unit_test, ParallelUnitTest};
use patty_transform::{
    annotate_source, extract_annotations, generate_plan, instance_from_annotation,
    ParallelPlan, PipelineSimEvaluator, SimParams,
};
use patty_telemetry::Telemetry;
use patty_trace::{Trace, TraceReport, Tracer};
use patty_tuning::{LinearSearch, TelemetryEvaluator, Tuner, TuningConfig, TuningResult};

/// Configuration of a Patty run.
#[derive(Clone, Debug)]
pub struct PattyOptions {
    pub interp: InterpOptions,
    pub detect: DetectOptions,
    pub sim: SimParams,
    /// Elements modeled per generated parallel unit test.
    pub unit_test_elements: usize,
    pub chess: ChessOptions,
    /// Evaluation budget of the auto-tuning cycle.
    pub tuning_budget: u32,
}

impl Default for PattyOptions {
    fn default() -> PattyOptions {
        PattyOptions {
            interp: InterpOptions::default(),
            detect: DetectOptions::default(),
            sim: SimParams::default(),
            unit_test_elements: 2,
            // DPOR prunes happens-before-equivalent interleavings, so the
            // default budget covers the same behaviours as a much larger
            // DFS budget; `patty chess --mode dfs` restores the oracle.
            chess: ChessOptions {
                max_schedules: 2_000,
                mode: SearchMode::Dpor,
                ..ChessOptions::default()
            },
            tuning_budget: 60,
        }
    }
}

/// Everything one detected instance produced in phases 3–4.
#[derive(Clone, Debug)]
pub struct InstanceArtifacts {
    pub instance: PatternInstance,
    /// Phase-3 artifact: the architecture description (TADL interface).
    pub arch: ArchitectureDescription,
    /// Phase-3 artifact: the source with TADL annotations (Fig. 3b).
    pub annotated_source: String,
    /// Phase-4 artifact: the parallel plan and source rendering (Fig. 3d).
    pub plan: ParallelPlan,
    /// Phase-4 artifact: the tuning configuration file (Fig. 3c).
    pub tuning_json: String,
    /// Phase-4 artifact: the generated parallel unit test.
    pub unit_test: Option<ParallelUnitTest>,
}

/// The result of running the Patty process on a program.
#[derive(Debug)]
pub struct PattyRun {
    /// Phase-1 artifact: the semantic model.
    pub model: SemanticModel,
    /// Per-instance artifacts, best candidate first.
    pub artifacts: Vec<InstanceArtifacts>,
    /// Phase-4 artifact: path-coverage input sets for every parameterized
    /// free function ("we perform a path coverage analysis to generate a
    /// set of input data for each unit test", Section 2.1).
    pub test_inputs: Vec<(String, patty_testgen::CoverageReport)>,
}

/// Errors of the Patty process.
#[derive(Debug)]
pub enum PattyError {
    Lang(LangError),
    Annotation(String),
    /// A generated plan failed while executing on the runtime library
    /// (config decode failure, worker panic, deadline, …).
    Runtime(String),
}

impl std::fmt::Display for PattyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PattyError::Lang(e) => write!(f, "{e}"),
            PattyError::Annotation(e) => write!(f, "annotation error: {e}"),
            PattyError::Runtime(e) => write!(f, "runtime error: {e}"),
        }
    }
}

impl std::error::Error for PattyError {}

impl From<LangError> for PattyError {
    fn from(e: LangError) -> PattyError {
        PattyError::Lang(e)
    }
}

/// The Patty tool.
#[derive(Clone, Debug, Default)]
pub struct Patty {
    pub options: PattyOptions,
    /// Telemetry sink; disabled by default. When enabled, every process
    /// phase emits a `phase.*` span and the auto-tuning cycle logs each
    /// evaluated configuration.
    pub telemetry: Telemetry,
}

impl Patty {
    /// A tool instance with default options.
    pub fn new() -> Patty {
        Patty::default()
    }

    /// Attach a telemetry sink (see [`patty_telemetry::Telemetry`]).
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Patty {
        self.telemetry = telemetry;
        self
    }

    /// **Operation mode 1 — automatic parallelization**: all four phases,
    /// no user action required.
    pub fn run_automatic(&self, source: &str) -> Result<PattyRun, PattyError> {
        let (model, instances) = self.telemetry.timed("phase.detect", || {
            let program = parse(source)?;
            let model = SemanticModel::build(&program, self.options.interp.clone())?;
            let instances = detect_patterns(&model, &self.options.detect);
            Ok::<_, PattyError>((model, instances))
        })?;
        let artifacts = instances
            .into_iter()
            .map(|inst| self.transform_instance(&model, inst))
            .collect::<Result<Vec<_>, _>>()?;
        let test_inputs = generate_test_inputs(&model.program);
        Ok(PattyRun { model, artifacts, test_inputs })
    }

    /// **Operation mode 2 — architecture-based parallel programming**:
    /// the engineer wrote TADL annotations; detection is bypassed and the
    /// annotations drive transformation (tuning and correctness artifacts
    /// are still generated automatically).
    pub fn run_annotated(&self, source: &str) -> Result<PattyRun, PattyError> {
        let (model, annotations) = self.telemetry.timed("phase.detect", || {
            let program = parse(source)?;
            let model = SemanticModel::build(&program, self.options.interp.clone())?;
            let annotations =
                extract_annotations(&program).map_err(PattyError::Annotation)?;
            Ok::<_, PattyError>((model, annotations))
        })?;
        let artifacts = annotations
            .iter()
            .map(|ann| {
                let inst = instance_from_annotation(&model, ann)
                    .map_err(PattyError::Annotation)?;
                self.transform_instance(&model, inst)
            })
            .collect::<Result<Vec<_>, _>>()?;
        let test_inputs = generate_test_inputs(&model.program);
        Ok(PattyRun { model, artifacts, test_inputs })
    }

    /// Phases 3–4 for one instance.
    fn transform_instance(
        &self,
        model: &SemanticModel,
        instance: PatternInstance,
    ) -> Result<InstanceArtifacts, PattyError> {
        let annotated_source = self
            .telemetry
            .timed("phase.annotate", || annotate_source(&model.program, &instance))?;
        let _span = self.telemetry.span("phase.transform");
        let body_cost = loop_body_cost(model, &instance);
        let plan = generate_plan(&instance, body_cost);
        let tuning_json = instance.tuning.to_json();
        let unit_test = generate_unit_test(model, &instance, self.options.unit_test_elements);
        Ok(InstanceArtifacts {
            arch: instance.arch.clone(),
            annotated_source,
            plan,
            tuning_json,
            unit_test,
            instance,
        })
    }

    /// **`patty profile`** — run the full process with telemetry enabled,
    /// execute every generated plan on the runtime library over its
    /// observed stream, and return the aggregated report: per-stage item
    /// counts, per-phase span timings and the auto-tuner's iteration log.
    pub fn profile(&self, source: &str) -> Result<patty_telemetry::TelemetryReport, PattyError> {
        let telemetry = Telemetry::enabled();
        // Pre-register the fault.* counter family: the report's schema
        // must not depend on whether any plan actually executed (a
        // program with no detected architectures still reports
        // `fault.panics_caught: 0`).
        patty_runtime::register_fault_counters(&telemetry);
        let patty = self.clone().with_telemetry(telemetry.clone());
        let run = if source.contains("#region TADL:") {
            patty.run_annotated(source)?
        } else {
            patty.run_automatic(source)?
        };
        for a in &run.artifacts {
            execute_plan(a, &telemetry, &Tracer::disabled())?;
        }
        patty.validate_correctness(&run);
        patty.tune_performance(&run);
        // Executor introspection rides along in the same report: the
        // `executor.*` family is always registered (like `fault.*`), so
        // the schema is identical whether or not any plan ran on the
        // pool.
        patty_runtime::annotate_executor_telemetry(
            &telemetry,
            patty_runtime::Executor::global(),
        );
        Ok(telemetry.report())
    }

    /// **`patty trace`** — run the full process, execute every generated
    /// plan on the runtime library with structured tracing attached, and
    /// return the raw [`Trace`] (for the Chrome exporter) plus its
    /// aggregated [`TraceReport`] (for the summary/flame views).
    pub fn trace(&self, source: &str) -> Result<(Trace, TraceReport), PattyError> {
        let tracer = Tracer::enabled();
        let run = if source.contains("#region TADL:") {
            self.run_annotated(source)?
        } else {
            self.run_automatic(source)?
        };
        for a in &run.artifacts {
            execute_plan(a, &self.telemetry, &tracer)?;
        }
        let trace = tracer.snapshot();
        let report = TraceReport::from_trace(&trace);
        Ok((trace, report))
    }

    /// **Operation mode 4 — program validation**, correctness half:
    /// run the generated parallel unit tests on the CHESS explorer.
    pub fn validate_correctness(&self, run: &PattyRun) -> Vec<(String, Report)> {
        let _span = self.telemetry.span("phase.validate");
        run.artifacts
            .iter()
            .filter_map(|a| {
                let t = a.unit_test.as_ref()?;
                Some((a.arch.name.clone(), run_unit_test(t, self.options.chess.clone())))
            })
            .collect()
    }

    /// **Operation mode 4 — program validation**, performance half:
    /// the auto-tuning cycle (Fig. 4c) over the performance model, using
    /// the paper's linear per-dimension search.
    pub fn tune_performance(&self, run: &PattyRun) -> Vec<(String, TuningResult)> {
        let _span = self.telemetry.span("phase.tune");
        run.artifacts
            .iter()
            .filter(|a| a.arch.kind != patty_tadl::PatternKind::DataParallelLoop)
            .map(|a| {
                let mut evaluator = PipelineSimEvaluator {
                    plan: a.plan.clone(),
                    params: self.options.sim.clone(),
                };
                let mut evaluator =
                    TelemetryEvaluator::new(&mut evaluator, self.telemetry.clone());
                let mut tuner = LinearSearch::default();
                let result = tuner.tune(
                    a.instance.tuning.clone(),
                    &mut evaluator,
                    self.options.tuning_budget,
                );
                (a.arch.name.clone(), result)
            })
            .collect()
    }
}

/// Items profiled per plan: enough for stable per-stage counts, bounded
/// so `patty profile` stays interactive on long observed streams.
pub(crate) const PROFILE_STREAM_CAP: u64 = 256;

/// Execute one generated plan on the real runtime library with telemetry
/// attached, so the profile reports measured per-stage item counts rather
/// than model predictions. Stage bodies replay the profiled per-element
/// cost as busy work.
///
/// Runs through the checked entry points under
/// [`FailurePolicy::FallbackSequential`](patty_runtime::FailurePolicy)
/// with a guard deadline, so a faulty plan degrades or reports a
/// [`PattyError::Runtime`] instead of unwinding through the CLI — and so
/// the profile report always carries the `fault.*` counter family.
pub(crate) fn execute_plan(
    artifacts: &InstanceArtifacts,
    telemetry: &patty_telemetry::Telemetry,
    tracer: &Tracer,
) -> Result<(), PattyError> {
    use patty_runtime::{
        FailurePolicy, LoopTuning, MasterWorker, PipelineTuning, RunOptions, Stage,
    };
    let plan = &artifacts.plan;
    let n = plan.stream_length.clamp(1, PROFILE_STREAM_CAP);
    let opts = RunOptions::new()
        .on_failure(FailurePolicy::FallbackSequential)
        .with_deadline(std::time::Duration::from_secs(30));
    let busy = |cost: u64, x: u64| -> u64 {
        let mut acc = x;
        for i in 0..cost.min(512) {
            acc = std::hint::black_box(acc.wrapping_mul(31).wrapping_add(i));
        }
        acc
    };
    match plan.kind {
        patty_tadl::PatternKind::DataParallelLoop => {
            let tuning = LoopTuning::from_config(&artifacts.instance.tuning)
                .map_err(PattyError::Runtime)?;
            let cost = plan.element_cost;
            let pf = tuning
                .build()
                .with_telemetry(telemetry.clone())
                .with_tracer(tracer.clone());
            pf.for_each_checked(
                n as usize,
                |i| {
                    std::hint::black_box(busy(cost, i as u64));
                },
                &opts,
            )
            .map_err(|e| PattyError::Runtime(e.to_string()))?;
        }
        patty_tadl::PatternKind::MasterWorker => {
            let tuning = LoopTuning::from_config(&artifacts.instance.tuning)
                .map_err(PattyError::Runtime)?;
            let cost = plan.element_cost;
            let mw = MasterWorker::new(tuning.workers)
                .sequential(tuning.sequential)
                .with_telemetry(telemetry.clone())
                .with_tracer(tracer.clone());
            mw.run_checked((0..n).collect(), |x| busy(cost, x), &opts)
                .map_err(|e| PattyError::Runtime(e.to_string()))?;
        }
        patty_tadl::PatternKind::Pipeline => {
            let stages: Vec<Stage<u64>> = plan
                .stages
                .iter()
                .map(|ps| {
                    let cost = ps.cost_per_element;
                    Stage::new(ps.name.clone(), move |x: u64| busy(cost, x))
                })
                .collect();
            let tuning = PipelineTuning::from_config(&artifacts.instance.tuning)
                .map_err(PattyError::Runtime)?;
            let pipeline = tuning
                .build_pipeline(stages)
                .with_telemetry(telemetry.clone())
                .with_tracer(tracer.clone());
            pipeline
                .run_checked((0..n).collect(), &opts)
                .map_err(|e| PattyError::Runtime(e.to_string()))?;
        }
    }
    Ok(())
}

/// Path-coverage input generation for every parameterized free function
/// (the inputs the generated unit tests run on).
fn generate_test_inputs(
    program: &patty_minilang::Program,
) -> Vec<(String, patty_testgen::CoverageReport)> {
    program
        .funcs
        .iter()
        .filter(|f| !f.params.is_empty() && f.name != "main")
        .map(|f| {
            let report = patty_testgen::path_coverage_inputs(
                program,
                &f.name,
                &[-3, -1, 0, 1, 2, 7],
                4,
                512,
            );
            (f.name.clone(), report)
        })
        .collect()
}

/// Per-element virtual cost of the instance's loop body.
fn loop_body_cost(model: &SemanticModel, instance: &PatternInstance) -> u64 {
    let Some(profile) = &model.profile else { return 1 };
    let Some(trace) = profile.loop_traces.get(&instance.loop_id) else { return 1 };
    let total: u64 = trace.stmt_cost.values().sum();
    (total / trace.iterations.max(1)).max(1)
}

/// Load a tuning configuration back from its JSON artifact (the
/// "no recompilation" loop of Section 2.1).
pub fn load_tuning(json: &str) -> Result<TuningConfig, String> {
    TuningConfig::from_json(json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use patty_corpus::{avistream_program, raytracer_program};
    use patty_tadl::PatternKind;

    #[test]
    fn automatic_mode_produces_all_artifacts_for_avistream() {
        let patty = Patty::new();
        let run = patty.run_automatic(avistream_program().source).unwrap();
        assert_eq!(run.artifacts.len(), 1);
        let a = &run.artifacts[0];
        assert_eq!(a.arch.kind, PatternKind::Pipeline);
        assert!(a.annotated_source.contains("#region TADL:"));
        assert!(a.tuning_json.contains("StageReplication"));
        assert!(a.plan.code.contains("build_pipeline"));
        assert!(a.unit_test.is_some());
    }

    #[test]
    fn raytracer_automatic_finds_three_locations() {
        let patty = Patty::new();
        let run = patty.run_automatic(raytracer_program().source).unwrap();
        assert_eq!(run.artifacts.len(), 3, "Section 4.2: Patty finds 3.0 of 3 locations");
    }

    #[test]
    fn validation_passes_for_correct_detection() {
        let patty = Patty::new();
        let run = patty.run_automatic(avistream_program().source).unwrap();
        let reports = patty.validate_correctness(&run);
        assert_eq!(reports.len(), 1);
        let (_, report) = &reports[0];
        assert!(
            !report
                .failures
                .iter()
                .any(|f| matches!(f.kind, patty_chess::FailureKind::Race { .. })),
            "{:?}",
            report.failures
        );
    }

    #[test]
    fn tuning_cycle_improves_the_pipeline() {
        let patty = Patty::new();
        let run = patty.run_automatic(avistream_program().source).unwrap();
        let results = patty.tune_performance(&run);
        assert_eq!(results.len(), 1);
        let (_, r) = &results[0];
        // the tuned configuration must beat the untuned default
        let first = r.history.first().unwrap().1;
        assert!(r.best_score < first, "tuning must improve: {} -> {}", first, r.best_score);
        assert!(r.evaluations > 5);
    }

    #[test]
    fn mode2_annotated_source_runs_end_to_end() {
        let src = r#"
            class F { var g = 2; fn apply(x) { work(120); return x * this.g; } }
            fn main() {
                var f = new F();
                var out = [];
                #region TADL: A+ => B
                foreach (x in range(0, 6)) {
                    #region A:
                    var v = f.apply(x);
                    #endregion
                    #region B:
                    out.add(v);
                    #endregion
                }
                #endregion
                print(len(out));
            }
        "#;
        let patty = Patty::new();
        let run = patty.run_annotated(src).unwrap();
        assert_eq!(run.artifacts.len(), 1);
        assert_eq!(run.artifacts[0].arch.expr.to_string(), "A+ => B");
        assert!(run.artifacts[0].unit_test.is_some());
    }

    #[test]
    fn coverage_inputs_generated_for_parameterized_functions() {
        let patty = Patty::new();
        let run = patty.run_automatic(raytracer_program().source).unwrap();
        // the ray tracer has the free function pickBetter(best, t, color)
        let (name, report) = run
            .test_inputs
            .iter()
            .find(|(n, _)| n == "pickBetter")
            .expect("inputs for pickBetter");
        assert_eq!(name, "pickBetter");
        assert!(!report.inputs.is_empty());
        assert!(report.covered > 0);
        assert!(report.covered <= report.total);
    }

    #[test]
    fn tuning_json_round_trips() {
        let patty = Patty::new();
        let run = patty.run_automatic(avistream_program().source).unwrap();
        let cfg = load_tuning(&run.artifacts[0].tuning_json).unwrap();
        assert_eq!(cfg, run.artifacts[0].instance.tuning);
    }

    #[test]
    fn parse_errors_surface() {
        let patty = Patty::new();
        assert!(matches!(
            patty.run_automatic("fn main() { let oops"),
            Err(PattyError::Lang(_))
        ));
    }
}
