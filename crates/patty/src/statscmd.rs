//! `patty stats` — the unified observability snapshot of one run.
//!
//! Runs the full process on a source file, executes every generated
//! plan on the runtime library, and folds every measurement surface —
//! executor lane counters, telemetry, the structured trace, the VM
//! profiler's retention stats — into one [`MetricsRegistry`], rendered
//! as Prometheus text exposition (`--format prom`, the default),
//! deterministic JSON (`--format json`), or a live terminal dashboard
//! (`--watch`).
//!
//! `--deterministic` trades live numbers for byte-stability: nothing
//! executes on the wall-clock pool, the trace is synthesized
//! single-threaded under the virtual clock (like
//! [`Tracer::deterministic`]), and two runs over the same source render
//! byte-identical output. Executor families stay in the scrape (at
//! zero) so the schema never depends on the mode.

use crate::process::{execute_plan, Patty, PattyError, PattyRun, PROFILE_STREAM_CAP};
use patty_obs::MetricsRegistry;
use patty_runtime::Executor;
use patty_tadl::PatternKind;
use patty_telemetry::{Telemetry, TelemetryReport};
use patty_trace::{TraceReport, Tracer};

/// Build `source`'s process run with an enabled telemetry sink attached
/// (fault counters pre-registered, like `patty profile`).
fn stats_run(patty: &Patty, source: &str) -> Result<(Patty, Telemetry, PattyRun), PattyError> {
    let telemetry = Telemetry::enabled();
    patty_runtime::register_fault_counters(&telemetry);
    let patty = patty.clone().with_telemetry(telemetry.clone());
    let run = if source.contains("#region TADL:") {
        patty.run_annotated(source)?
    } else {
        patty.run_automatic(source)?
    };
    Ok((patty, telemetry, run))
}

/// Synthesize each plan's trace single-threaded under the virtual
/// clock: one stage per pipeline stage (or one per architecture for the
/// loop patterns), the profiled stream length capped like the live
/// executor path. Call sequences depend only on the plans, so the
/// resulting report is byte-stable.
fn synthesize_trace(run: &PattyRun) -> TraceReport {
    let tracer = Tracer::deterministic(1024);
    for a in &run.artifacts {
        let n = a.plan.stream_length.clamp(1, PROFILE_STREAM_CAP);
        let stage_names: Vec<String> = match a.plan.kind {
            PatternKind::Pipeline => a.plan.stages.iter().map(|s| s.name.clone()).collect(),
            _ => vec![a.arch.name.clone()],
        };
        for name in stage_names {
            let stage = tracer.stage(&name);
            let worker = tracer.worker(stage, 0);
            for item in 0..n {
                let t = worker.item_start(item);
                worker.item_end(item, t);
            }
        }
    }
    TraceReport::from_trace(&tracer.snapshot())
}

/// Build the unified metrics registry for one source file. See the
/// module docs for what `deterministic` changes.
pub fn stats_registry(
    patty: &Patty,
    source: &str,
    deterministic: bool,
) -> Result<MetricsRegistry, PattyError> {
    let (_patty, telemetry, run) = stats_run(patty, source)?;
    let mut reg = MetricsRegistry::new();
    if deterministic {
        // Schema-faithful zeros for the schedule-dependent families;
        // only sources that are functions of the program survive.
        reg.ingest_executor(&patty_runtime::ExecutorStats::default(), &[]);
        let report = telemetry.report();
        reg.ingest_telemetry(&TelemetryReport {
            counters: report.counters,
            ..TelemetryReport::default()
        });
        reg.ingest_trace(&synthesize_trace(&run));
    } else {
        let tracer = Tracer::enabled();
        for a in &run.artifacts {
            execute_plan(a, &telemetry, &tracer)?;
        }
        let executor = Executor::global();
        reg.ingest_executor(&executor.stats(), &executor.lane_snapshots());
        reg.ingest_telemetry(&telemetry.report());
        reg.ingest_trace(&TraceReport::from_trace(&tracer.snapshot()));
    }
    if let Some(profile) = &run.model.profile {
        reg.ingest_vm_profile(&profile.stats());
    }
    // The PGO picture: lower the model's program to bytecode, measure an
    // opcode/pair profile, and report what the optimizer does with it.
    // The pipeline is deterministic (same program → same counts → same
    // rewrites), so these families are safe under `--deterministic` too.
    let compiled = patty_minilang::bytecode::compile(&run.model.program);
    let (_, op_profile) = patty_minilang::vm::profile_ops(
        &compiled,
        "main",
        vec![],
        patty_minilang::InterpOptions::default(),
    )
    .map_err(PattyError::Lang)?;
    let (_, pgo_report) =
        patty_minilang::optimize(&compiled, &op_profile, &patty_minilang::PgoOptions::traced());
    reg.ingest_vm_pgo(&pgo_report);
    Ok(reg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use patty_corpus::avistream_program;
    use patty_obs::lint_prometheus;

    #[test]
    fn live_registry_covers_every_required_family_prefix() {
        let patty = Patty::new();
        let reg = stats_registry(&patty, avistream_program().source, false).unwrap();
        let text = reg.prometheus();
        lint_prometheus(&text).expect(&text);
        for prefix in ["patty_executor_", "patty_runtime_", "patty_vm_", "patty_trace_"] {
            assert!(
                reg.names().iter().any(|n| n.starts_with(prefix)),
                "missing {prefix}* family in:\n{text}"
            );
        }
        // The pipeline really executed: the pool did work and the trace
        // saw items.
        assert!(reg.value("patty_executor_tasks_executed_total").unwrap_or(0) > 0, "{text}");
        assert!(reg.value("patty_trace_items_total").unwrap_or(0) > 0, "{text}");
        assert!(reg.value("patty_vm_traced_iterations_total").unwrap_or(0) > 0, "{text}");
        // The PGO families carry the optimizer's picture of the run.
        assert!(reg.value("patty_vm_dispatch_ops_total").unwrap_or(0) > 0, "{text}");
        assert!(!reg.samples("patty_vm_superinstruction_hits").is_empty(), "{text}");
        assert!(!reg.samples("patty_vm_dispatch_rank").is_empty(), "{text}");
    }

    #[test]
    fn deterministic_registries_render_byte_identically() {
        let patty = Patty::new();
        let a = stats_registry(&patty, avistream_program().source, true).unwrap();
        let b = stats_registry(&patty, avistream_program().source, true).unwrap();
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.prometheus(), b.prometheus());
        // Executor families stay in the schema at zero.
        assert_eq!(a.value("patty_executor_tasks_executed_total"), Some(0));
        // The synthetic trace still carries the stage structure.
        assert!(a.value("patty_trace_items_total").unwrap_or(0) > 0);
        assert!(!a.samples("patty_trace_stage_items_total").is_empty());
    }
}
