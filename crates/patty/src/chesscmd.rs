//! `patty chess` — joint schedule×fault exploration of the generated
//! parallel unit tests.
//!
//! `patty validate` explores schedules; `patty faultcheck` explores
//! faults on wall-clock runs. This mode fuses the two on the virtual-time
//! scheduler: every generated unit test is explored under a matrix of
//! fault scenarios (no-fault plus every stage × {first, middle, last}
//! element × {panic, delay, drop}), so one command validates thousands of
//! schedule×fault combinations deterministically, with zero OS threads.
//!
//! Every failure carries its `sched_trace_hash`; `patty chess
//! --replay <hash>` re-executes exactly that interleaving under exactly
//! that fault scenario, twice, and reports whether the replays were
//! byte-identical.

use crate::process::{Patty, PattyError, PattyRun};
use patty_chess::{FaultScenario, JointReport, ReplayOutcome};
use patty_faultsim::chess::scenario_matrix;
use patty_testgen::{fault_labels, replay_unit_test_hash, run_unit_test_joint};

/// Failures rendered per scenario before eliding the rest.
const MAX_RENDERED_FAILURES: usize = 4;

/// Schedule budget per fault scenario of the joint matrix. The matrix
/// multiplies ~30 scenarios by this budget, so the per-scenario cap is
/// what keeps the full sweep interactive; DPOR at this budget covers the
/// same failure set as a 15× larger preemption-bounded DFS on the
/// corpus. `--replay` re-explores under the identical budget so hashes
/// printed by an exploration are always found again.
const MATRIX_SCHEDULES_PER_SCENARIO: u64 = 128;

/// The session's chess options clamped to the joint-matrix budget.
fn matrix_options(patty: &Patty) -> patty_chess::ChessOptions {
    let mut options = patty.options.chess.clone();
    options.max_schedules = options.max_schedules.min(MATRIX_SCHEDULES_PER_SCENARIO);
    options
}

/// The joint exploration of every detected architecture.
#[derive(Clone, Debug, Default)]
pub struct ChessReport {
    /// `(architecture name, joint report)`, best candidate first.
    pub architectures: Vec<(String, JointReport)>,
}

impl ChessReport {
    /// Total schedule×fault combinations executed.
    pub fn combos(&self) -> u64 {
        self.architectures.iter().map(|(_, j)| j.combos).sum()
    }

    /// Did every scenario of every architecture behave as its fault
    /// model predicts?
    pub fn passed(&self) -> bool {
        !self.architectures.is_empty()
            && self.architectures.iter().all(|(_, j)| j.passed())
    }

    /// True when nothing was explored (no architecture had a unit test).
    pub fn is_empty(&self) -> bool {
        self.architectures.is_empty()
    }

    /// Human-readable rendering; every failure line carries the
    /// `sched_trace_hash` that `--replay` accepts.
    pub fn render(&self) -> String {
        let mut out = String::from("— chess: schedule×fault exploration —\n");
        for (name, joint) in &self.architectures {
            out.push_str(&format!(
                "{name}: {} scenario(s), {} schedule×fault combination(s), {} step(s)\n",
                joint.scenarios.len(),
                joint.combos,
                joint.total_steps
            ));
            out.push_str(&format!(
                "  coverage: {}‰ of ~{} estimated combination(s){}\n",
                joint.coverage_permille(),
                joint.estimated_combos.max(joint.combos),
                if joint.all_complete() {
                    String::from(" (exhaustive)")
                } else {
                    format!(" ({} frontier branch(es) open)", joint.frontier_open)
                }
            ));
            for sr in &joint.scenarios {
                if sr.report.failures.is_empty() {
                    continue;
                }
                let unexpected = sr.unexpected().len();
                out.push_str(&format!(
                    "  {}: {} schedule(s), {} failure(s){}\n",
                    sr.scenario.encode(),
                    sr.report.schedules,
                    sr.report.failures.len(),
                    if unexpected > 0 {
                        format!(", {unexpected} UNEXPECTED")
                    } else {
                        String::from(", all fault-induced")
                    }
                ));
                for f in sr.report.failures.iter().take(MAX_RENDERED_FAILURES) {
                    let tag = if sr.scenario.faults.is_empty() || !f.fault_induced {
                        "UNEXPECTED"
                    } else {
                        "fault-induced"
                    };
                    out.push_str(&format!(
                        "    {} [{tag}] hash=0x{:016x}\n",
                        f.kind, f.trace_hash
                    ));
                }
                if sr.report.failures.len() > MAX_RENDERED_FAILURES {
                    out.push_str(&format!(
                        "    … {} more\n",
                        sr.report.failures.len() - MAX_RENDERED_FAILURES
                    ));
                }
            }
        }
        out.push_str(&format!(
            "verdict: {}\n",
            if self.is_empty() {
                "no parallel architectures with unit tests"
            } else if self.passed() {
                "pass (every failure explained by its injected fault)"
            } else {
                "FAIL (failures not explained by any injected fault)"
            }
        ));
        out
    }
}

/// First, middle and last element index of a unit test's stream.
fn positions(elements: usize) -> Vec<u64> {
    let n = elements.max(1) as u64;
    let mut p = vec![0, n / 2, n - 1];
    p.dedup();
    p
}

/// The fault scenario matrix of one generated unit test: no-fault plus
/// every stage label × stream position × injection kind.
pub fn unit_test_scenarios(test: &patty_testgen::ParallelUnitTest) -> Vec<FaultScenario> {
    scenario_matrix(&fault_labels(test), &positions(test.elements))
}

/// Run the joint schedule×fault explorer on every generated unit test.
pub fn chess_explore(patty: &Patty, run: &PattyRun) -> ChessReport {
    let _span = patty.telemetry.span("phase.chess");
    let options = matrix_options(patty);
    ChessReport {
        architectures: run
            .artifacts
            .iter()
            .filter_map(|a| {
                let t = a.unit_test.as_ref()?;
                let scenarios = unit_test_scenarios(t);
                Some((a.arch.name.clone(), run_unit_test_joint(t, &scenarios, &options)))
            })
            .collect(),
    }
}

/// Replay one failure from its `sched_trace_hash` alone, searching every
/// architecture's scenario matrix. Returns the architecture name and the
/// replay outcome, or `None` when no explored failure carries the hash.
pub fn chess_replay(patty: &Patty, run: &PattyRun, hash: u64) -> Option<(String, ReplayOutcome)> {
    let options = matrix_options(patty);
    run.artifacts.iter().find_map(|a| {
        let t = a.unit_test.as_ref()?;
        let scenarios = unit_test_scenarios(t);
        replay_unit_test_hash(t, &scenarios, &options, hash)
            .map(|outcome| (a.arch.name.clone(), outcome))
    })
}

/// Render a replay outcome for the CLI.
pub fn render_replay(arch: &str, outcome: &ReplayOutcome) -> String {
    let mut out = String::new();
    out.push_str(&format!("— replay: {arch} —\n"));
    out.push_str(&format!("scenario: {}\n", outcome.scenario.encode()));
    out.push_str(&format!(
        "schedule: [{}]\n",
        outcome
            .schedule
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    for f in &outcome.failures {
        out.push_str(&format!("  {} hash=0x{:016x}\n", f.kind, f.trace_hash));
    }
    out.push_str(&format!(
        "replay: {}\n",
        if outcome.byte_stable { "byte-stable (two identical re-executions)" } else { "DIVERGED" }
    ));
    out
}

/// Build the run (mode 2 on annotated sources, mode 1 otherwise) for the
/// chess and faultcheck commands.
pub fn chess_run(patty: &Patty, source: &str) -> Result<PattyRun, PattyError> {
    if source.contains("#region TADL:") {
        patty.run_annotated(source)
    } else {
        patty.run_automatic(source)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use patty_corpus::avistream_program;

    /// One exploration of the avistream matrix backs every assertion:
    /// pass verdict, fault-induced failures, hash replay, and the
    /// unknown-hash miss. A single test keeps the (deliberately bounded)
    /// matrix cost paid once.
    #[test]
    fn avistream_matrix_passes_and_failures_replay_from_their_hashes() {
        let patty = Patty::new();
        let run = chess_run(&patty, avistream_program().source).unwrap();
        let report = chess_explore(&patty, &run);
        assert!(!report.is_empty(), "avistream must have a unit test");
        assert!(report.passed(), "{}", report.render());
        let (_, joint) = &report.architectures[0];
        // no-fault plus stages × positions × 3 kinds.
        assert!(joint.scenarios.len() > 1, "matrix must cover fault scenarios");
        assert!(report.combos() > joint.scenarios.len() as u64);
        let rendered = report.render();
        assert!(rendered.contains("schedule×fault"), "{rendered}");
        assert!(rendered.contains("verdict: pass"), "{rendered}");
        assert!(rendered.contains("coverage: "), "{rendered}");
        assert!(rendered.contains("‰"), "{rendered}");

        let hash = report
            .architectures
            .iter()
            .flat_map(|(_, j)| &j.scenarios)
            .flat_map(|s| &s.report.failures)
            .map(|f| f.trace_hash)
            .next()
            .expect("the fault matrix must produce at least one (expected) failure");
        let (arch, outcome) = chess_replay(&patty, &run, hash).expect("hash must be found");
        assert!(outcome.byte_stable, "replay must be byte-stable");
        let replay = render_replay(&arch, &outcome);
        assert!(replay.contains("byte-stable"), "{replay}");
        assert!(replay.contains(&format!("{hash:016x}")), "{replay}");

        assert!(chess_replay(&patty, &run, 0xdead_beef_0bad_f00d).is_none());
    }

    #[test]
    fn positions_collapse_for_tiny_streams() {
        assert_eq!(positions(1), vec![0]);
        assert_eq!(positions(2), vec![0, 1]);
        assert_eq!(positions(9), vec![0, 4, 8]);
    }
}
