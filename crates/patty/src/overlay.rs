//! Terminal rendering of pattern overlays.
//!
//! The IDE plugin draws color marks over the code annotations so "the
//! engineer's attention is directly drawn to the detected parallel
//! architecture" (Section 3, R1, Fig. 4b). The CLI equivalent prefixes
//! each source line with the stage it belongs to and summarizes the
//! architecture above the loop.

use patty_patterns::PatternInstance;
use patty_minilang::Program;

/// Render `source` with the instance's stages marked line by line.
pub fn render_overlay(program: &Program, instance: &PatternInstance) -> String {
    let source = &program.source;
    // line → stage marker
    let mut markers: Vec<Option<String>> = vec![None; source.lines().count() + 2];
    for stage in &instance.stages {
        for stmt_id in &stage.stmts {
            if let Some(stmt) = program.find_stmt(*stmt_id) {
                let line = stmt.span.line as usize;
                if line < markers.len() {
                    let suffix = if stage.replicable { "+" } else { "" };
                    markers[line] = Some(format!("{}{}", stage.name, suffix));
                }
            }
        }
    }
    let loop_line = program
        .find_stmt(instance.loop_id)
        .map(|s| s.span.line as usize)
        .unwrap_or(0);

    let mut out = String::new();
    for (i, line) in source.lines().enumerate() {
        let lineno = i + 1;
        if lineno == loop_line {
            out.push_str(&format!(
                "      ┌─ {} :: {}\n",
                instance.arch.kind, instance.arch.expr
            ));
        }
        let mark = markers
            .get(lineno)
            .and_then(|m| m.clone())
            .map(|m| format!("[{m:>2}]"))
            .unwrap_or_else(|| "    ".to_string());
        out.push_str(&format!("{mark} {lineno:>3} | {line}\n"));
    }
    out
}

/// The phases of the process chart (Fig. 1 / Fig. 4a).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    ModelCreation,
    PatternAnalysis,
    TunableArchitecture,
    CodeTransform,
}

impl Phase {
    /// All phases in process order.
    pub const ALL: [Phase; 4] = [
        Phase::ModelCreation,
        Phase::PatternAnalysis,
        Phase::TunableArchitecture,
        Phase::CodeTransform,
    ];

    fn title(self) -> &'static str {
        match self {
            Phase::ModelCreation => "1. Model Creation",
            Phase::PatternAnalysis => "2. Pattern Analysis",
            Phase::TunableArchitecture => "3. Tunable Architecture",
            Phase::CodeTransform => "4. Code Transform",
        }
    }

    fn artifact(self) -> &'static str {
        match self {
            Phase::ModelCreation => "semantic model",
            Phase::PatternAnalysis => "pattern instances + tuning params",
            Phase::TunableArchitecture => "TADL annotations + architecture descriptions",
            Phase::CodeTransform => "parallel code + tuning file + unit tests",
        }
    }
}

/// Render the process chart with the current phase highlighted — the
/// CLI's version of Fig. 4a ("The process chart always highlights the
/// current state of processing, its input and output data").
pub fn render_process_chart(current: Phase) -> String {
    let mut out = String::new();
    for (i, phase) in Phase::ALL.iter().enumerate() {
        let marker = match (*phase).cmp(&current) {
            std::cmp::Ordering::Less => "✔",
            std::cmp::Ordering::Equal => "▶",
            std::cmp::Ordering::Greater => " ",
        };
        out.push_str(&format!("{marker} {:<24} → {}\n", phase.title(), phase.artifact()));
        if i + 1 < Phase::ALL.len() {
            out.push_str("  │\n");
        }
    }
    out
}

/// Plain runtime-profiler view: statements ranked by runtime share — what
/// the built-in VS profiler (or VTune) shows. In the user study this view
/// reveals only the hottest location, which is exactly why the manual
/// group missed the colder ones (Section 4.2).
pub fn render_hotspots(
    model: &patty_analysis::SemanticModel,
    top: usize,
) -> String {
    let Some(profile) = &model.profile else {
        return "no dynamic profile available\n".to_string();
    };
    let mut out = String::new();
    out.push_str("runtime share  location\n");
    let mut shown = 0;
    for (stmt_id, _) in profile.hotspots() {
        if shown >= top {
            break;
        }
        let Some(stmt) = model.program.find_stmt(stmt_id) else { continue };
        // Show loops and calls, not every expression statement.
        if !stmt.is_loop() {
            continue;
        }
        let share = model.runtime_share(stmt_id);
        if share < 0.005 {
            continue;
        }
        out.push_str(&format!(
            "{:>11.1}%  line {:>4} | {}\n",
            share * 100.0,
            stmt.span.line,
            stmt.describe(&model.program.source)
        ));
        shown += 1;
    }
    out
}

/// One-line candidate list (the wizard's result view).
pub fn render_candidates(instances: &[PatternInstance]) -> String {
    let mut out = String::new();
    for (i, inst) in instances.iter().enumerate() {
        out.push_str(&format!("{:>2}. {}\n", i + 1, inst.summary()));
    }
    if instances.is_empty() {
        out.push_str("no parallelization candidates found\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use patty_analysis::SemanticModel;
    use patty_minilang::{parse, InterpOptions};
    use patty_patterns::{detect_loop, DetectOptions};

    #[test]
    fn overlay_marks_stage_lines() {
        let src = "class F { var g = 2; fn apply(x) { work(90); return x * this.g; } }\nfn main() {\n    var f = new F();\n    var out = [];\n    foreach (x in range(0, 6)) {\n        var a = f.apply(x);\n        out.add(a);\n    }\n    print(len(out));\n}\n";
        let p = parse(src).unwrap();
        let m = SemanticModel::build(&p, InterpOptions::default()).unwrap();
        let inst = detect_loop(&m, &m.loops[0].clone(), &DetectOptions::default()).unwrap();
        let overlay = render_overlay(&m.program, &inst);
        assert!(overlay.contains("[A+]") || overlay.contains("[ A]"), "{overlay}");
        assert!(overlay.contains("Pipeline ::"), "{overlay}");
        assert!(overlay.contains("var a = f.apply(x);"));
    }

    #[test]
    fn process_chart_highlights_current_phase() {
        let chart = render_overlay_chart_for_test();
        assert!(chart.contains("✔ 1. Model Creation"));
        assert!(chart.contains("▶ 3. Tunable Architecture"));
        assert!(chart.contains("  4. Code Transform"));
    }

    fn render_overlay_chart_for_test() -> String {
        render_process_chart(Phase::TunableArchitecture)
    }

    #[test]
    fn candidate_list_renders() {
        let src = "class F { var g = 2; fn apply(x) { work(90); return x * this.g; } }\nfn main() { var f = new F(); var out = []; foreach (x in range(0, 6)) { var a = f.apply(x); out.add(a); } print(len(out)); }";
        let p = parse(src).unwrap();
        let m = SemanticModel::build(&p, InterpOptions::default()).unwrap();
        let insts = patty_patterns::detect_patterns(&m, &DetectOptions::default());
        let listing = render_candidates(&insts);
        assert!(listing.contains("1. Pipeline"));
        assert!(render_candidates(&[]).contains("no parallelization candidates"));
    }
}
