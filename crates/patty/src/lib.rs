//! # patty-tool
//!
//! The Patty tool (PMAM'15, Section 3): the pattern-based parallelization
//! process model of Fig. 1 orchestrated end to end, with the paper's four
//! operation modes (requirement R3) and per-phase artifacts (requirement
//! R2). The IDE chrome of the original is replaced by a CLI and terminal
//! overlays (requirement R1's comprehensibility goals — process state,
//! reflected results, reproducibility — are preserved).
//!
//! ```
//! use patty_tool::Patty;
//!
//! let source = r#"
//!     class F { var g = 2; fn apply(x) { work(100); return x * this.g; } }
//!     fn main() {
//!         var f = new F();
//!         var out = [];
//!         foreach (x in range(0, 8)) {
//!             var a = f.apply(x);
//!             out.add(a);
//!         }
//!         print(len(out));
//!     }
//! "#;
//! let run = Patty::new().run_automatic(source).unwrap();
//! assert_eq!(run.artifacts.len(), 1);
//! assert!(run.artifacts[0].annotated_source.contains("#region TADL:"));
//! ```

pub mod chesscmd;
pub mod faultcheck;
pub mod overlay;
pub mod process;
pub mod servecmd;
pub mod statscmd;

pub use chesscmd::{chess_explore, chess_replay, chess_run, render_replay, ChessReport};
pub use servecmd::{
    analyze_artifact, faultcheck_artifact, render_tune_artifact, trace_artifact, tune_artifact,
    tune_cached, PattyJobRunner,
};
pub use faultcheck::{faultcheck, FaultcheckReport, Outcome, Scenario};
pub use overlay::{render_candidates, render_hotspots, render_overlay, render_process_chart, Phase};
pub use statscmd::stats_registry;
pub use process::{
    load_tuning, InstanceArtifacts, Patty, PattyError, PattyOptions, PattyRun,
};

/// Description of the four operation modes (Section 3, R3).
pub fn describe_modes() -> String {
    "\
Patty operation modes (R3 — flexible parallelization):

1. Automatic parallelization
   No user action required: model creation, pattern analysis, tunable
   architecture annotation and code transformation run end to end.
   (CLI: run any command on a plain source file.)

2. Architecture-based parallel programming
   Engineers who know where to parallelize write TADL annotations
   (#region TADL: (A || B || C+) => D => E) and bypass detection; Patty
   still generates the tuning configuration, the parallel code and the
   correctness tests from the annotation.
   (CLI: run any command on a file containing TADL regions.)

3. Library-based parallel programming
   Skilled engineers instantiate the parallel runtime library directly
   (patty-runtime: Pipeline, MasterWorker, ParallelFor) — the lowest
   abstraction level, no automatic assistance, but no manual thread
   synchronization either.

4. Program validation
   Repeated execution with varying tuning parameter values (auto-tuning)
   and systematic data race detection on the generated parallel unit
   tests; needs no source code insight.
   (CLI: `patty validate`, `patty tune`.)
"
    .to_string()
}
