//! End-to-end tests of the `patty` binary: the CLI is the substitute for
//! the paper's IDE integration, so its commands must work on real files.

use patty_json::Json;
use std::path::PathBuf;
use std::process::Command;

fn patty_bin() -> PathBuf {
    // target/debug/patty, next to the test binary's directory.
    let mut p = std::env::current_exe().expect("test exe path");
    p.pop(); // deps/
    p.pop(); // debug/
    p.push(format!("patty{}", std::env::consts::EXE_SUFFIX));
    p
}

fn write_temp(name: &str, contents: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("patty-cli-tests");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(name);
    std::fs::write(&path, contents).expect("write temp source");
    path
}

const PIPELINE_SRC: &str = r#"
class F { var g = 2; fn apply(x) { work(150); return x * this.g; } }
fn main() {
    var f = new F();
    var out = [];
    foreach (x in range(0, 8)) {
        var a = f.apply(x);
        out.add(a);
    }
    print(len(out));
}
"#;

fn run_patty(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(patty_bin())
        .args(args)
        .output()
        .expect("patty binary runs (build with `cargo build -p patty-tool` first)");
    (
        String::from_utf8_lossy(&out.stdout).to_string(),
        String::from_utf8_lossy(&out.stderr).to_string(),
        out.status.success(),
    )
}

#[test]
fn analyze_prints_candidates_and_overlay() {
    let file = write_temp("pipeline.mini", PIPELINE_SRC);
    let (stdout, stderr, ok) = run_patty(&["analyze", file.to_str().unwrap()]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("Pipeline"), "{stdout}");
    assert!(stdout.contains("A+ => B"), "{stdout}");
    assert!(stdout.contains("var a = f.apply(x);"), "overlay shows source: {stdout}");
}

#[test]
fn annotate_emits_reparseable_tadl_source() {
    let file = write_temp("annotate.mini", PIPELINE_SRC);
    let (stdout, _, ok) = run_patty(&["annotate", file.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("#region TADL: A+ => B"), "{stdout}");
    assert!(stdout.contains("#endregion"));
}

#[test]
fn transform_prints_tuning_config_and_parallel_code() {
    let file = write_temp("transform.mini", PIPELINE_SRC);
    let (stdout, _, ok) = run_patty(&["transform", file.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("StageReplication"), "{stdout}");
    assert!(stdout.contains("SequentialExecution"));
    assert!(stdout.contains("build_pipeline"), "{stdout}");
}

#[test]
fn validate_reports_clean_for_correct_detection() {
    let file = write_temp("validate.mini", PIPELINE_SRC);
    let (stdout, _, ok) = run_patty(&["validate", file.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("no parallel errors found"), "{stdout}");
}

#[test]
fn tune_reports_improvement() {
    let file = write_temp("tune.mini", PIPELINE_SRC);
    let (stdout, _, ok) = run_patty(&["tune", file.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("initial cost"), "{stdout}");
    assert!(stdout.contains("best cost"));
    assert!(stdout.contains("replication"));
}

/// The tune bugfix: a second invocation over an unchanged file must be
/// served from the content-addressed artifact cache — byte-identical
/// output, no recomputation.
#[test]
fn tune_repeat_is_served_from_the_artifact_cache() {
    let file = write_temp("tune_cached.mini", PIPELINE_SRC);
    let cache_dir = std::env::temp_dir().join("patty-cli-tests").join("tune-cache");
    let _ = std::fs::remove_dir_all(&cache_dir);
    let run = || {
        let out = Command::new(patty_bin())
            .args(["tune", file.to_str().unwrap()])
            .env("PATTY_CACHE_DIR", &cache_dir)
            .output()
            .expect("patty runs");
        (
            String::from_utf8_lossy(&out.stdout).to_string(),
            String::from_utf8_lossy(&out.stderr).to_string(),
            out.status.success(),
        )
    };
    let (cold, cold_err, ok) = run();
    assert!(ok, "stderr: {cold_err}");
    assert!(!cold_err.contains("artifact cache"), "first run computes: {cold_err}");
    assert!(cold.contains("initial cost"), "{cold}");
    let (warm, warm_err, ok2) = run();
    assert!(ok2, "stderr: {warm_err}");
    assert!(
        warm_err.contains("served from artifact cache"),
        "second run must hit the cache: {warm_err}"
    );
    assert_eq!(cold, warm, "cached output is byte-identical to the computed one");
}

/// `patty serve --stdin` is the loopback daemon: one JSON request per
/// line in, one response per line out, `shutdown` ends the session.
#[test]
fn serve_stdin_round_trips_analyze_tune_and_stats() {
    use std::io::Write as _;
    let mut child = Command::new(patty_bin())
        .args(["serve", "--stdin", "--no-spill"])
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("patty serve spawns");
    let req = |id: i64, op: &str, source: Option<&str>| {
        let mut r = Json::obj()
            .with("id", Json::Int(id))
            .with("op", Json::Str(op.to_string()));
        if let Some(s) = source {
            r = r.with("source", Json::Str(s.to_string()));
        }
        format!("{r}\n")
    };
    {
        let stdin = child.stdin.as_mut().expect("piped stdin");
        stdin.write_all(req(1, "analyze", Some(PIPELINE_SRC)).as_bytes()).unwrap();
        stdin.write_all(req(2, "tune", Some(PIPELINE_SRC)).as_bytes()).unwrap();
        stdin.write_all(req(3, "tune", Some(PIPELINE_SRC)).as_bytes()).unwrap();
        stdin.write_all(req(4, "stats", None).as_bytes()).unwrap();
        stdin.write_all(req(5, "shutdown", None).as_bytes()).unwrap();
    }
    let out = child.wait_with_output().expect("serve exits");
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let lines: Vec<Json> = String::from_utf8_lossy(&out.stdout)
        .lines()
        .map(|l| patty_json::parse(l).expect("every response line is JSON"))
        .collect();
    assert_eq!(lines.len(), 5, "one response per request");
    let analyze = &lines[0];
    assert_eq!(analyze.get("status").and_then(|s| s.as_str()), Some("ok"));
    let candidates = analyze
        .get("result")
        .and_then(|r| r.get("candidates"))
        .and_then(|c| c.as_arr())
        .expect("analyze artifact lists candidates");
    assert!(!candidates.is_empty(), "pipeline detected over the wire");
    assert_eq!(lines[1].get("cached").and_then(|c| c.as_str()), Some("no"));
    assert_eq!(
        lines[2].get("cached").and_then(|c| c.as_str()),
        Some("memory"),
        "repeat tune is a cache hit: {}",
        lines[2]
    );
    let stats = lines[3].get("result").and_then(|r| r.as_obj()).expect("stats families");
    assert!(
        stats.iter().any(|(k, _)| k.starts_with("patty_serve_")),
        "stats exposes patty_serve_* families"
    );
    assert_eq!(lines[4].get("op").and_then(|o| o.as_str()), Some("shutdown"));
}

/// The real daemon path: bind an ephemeral loopback port, learn it from
/// the stderr banner, round-trip analyze + repeat tune + stats over a
/// TCP connection, and shut the daemon down cleanly over the wire.
#[test]
fn serve_tcp_round_trips_over_loopback() {
    use std::io::{BufRead as _, BufReader, Write as _};
    use std::net::TcpStream;

    let mut child = Command::new(patty_bin())
        .args(["serve", "--addr", "127.0.0.1:0", "--no-spill"])
        .stdin(std::process::Stdio::null())
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("patty serve spawns");
    let mut stderr = BufReader::new(child.stderr.take().expect("piped stderr"));
    let addr = loop {
        let mut line = String::new();
        assert!(stderr.read_line(&mut line).unwrap() > 0, "daemon exited before binding");
        if let Some(pos) = line.find("listening on ") {
            break line[pos + "listening on ".len()..].trim().to_string();
        }
    };

    let stream = TcpStream::connect(&addr).expect("connect to daemon");
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut send = |req: Json| -> Json {
        let mut w = &stream;
        w.write_all(format!("{req}\n").as_bytes()).unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        patty_json::parse(line.trim()).expect("response line is JSON")
    };
    let req = |id: i64, op: &str, source: Option<&str>| {
        let mut r = Json::obj()
            .with("id", Json::Int(id))
            .with("op", Json::Str(op.to_string()));
        if let Some(s) = source {
            r = r.with("source", Json::Str(s.to_string()));
        }
        r
    };

    let analyze = send(req(1, "analyze", Some(PIPELINE_SRC)));
    assert_eq!(analyze.get("status").and_then(|s| s.as_str()), Some("ok"), "{analyze}");
    let cold = send(req(2, "tune", Some(PIPELINE_SRC)));
    assert_eq!(cold.get("cached").and_then(|c| c.as_str()), Some("no"));
    let warm = send(req(3, "tune", Some(PIPELINE_SRC)));
    assert_eq!(warm.get("cached").and_then(|c| c.as_str()), Some("memory"), "{warm}");
    let stats = send(req(4, "stats", None));
    let families = stats.get("result").and_then(|r| r.as_obj()).expect("stats families");
    assert!(
        families.iter().any(|(k, _)| k.starts_with("patty_serve_")),
        "stats exposes patty_serve_* families over TCP"
    );
    let bye = send(req(5, "shutdown", None));
    assert_eq!(bye.get("status").and_then(|s| s.as_str()), Some("ok"), "{bye}");

    let status = child.wait().expect("daemon exits after shutdown");
    assert!(status.success(), "daemon exits cleanly");
}

#[test]
fn annotated_file_runs_in_mode_2() {
    let src = r#"
class F { var g = 2; fn apply(x) { work(100); return x * this.g; } }
fn main() {
    var f = new F();
    var out = [];
    #region TADL: A+ => B
    foreach (x in range(0, 6)) {
        #region A:
        var v = f.apply(x);
        #endregion
        #region B:
        out.add(v);
        #endregion
    }
    #endregion
    print(len(out));
}
"#;
    let file = write_temp("mode2.mini", src);
    let (stdout, _, ok) = run_patty(&["analyze", file.to_str().unwrap()]);
    assert!(ok);
    assert!(stdout.contains("A+ => B"), "{stdout}");
}

#[test]
fn modes_command_describes_all_four() {
    let (stdout, _, ok) = run_patty(&["modes"]);
    assert!(ok);
    for needle in [
        "Automatic parallelization",
        "Architecture-based",
        "Library-based",
        "Program validation",
    ] {
        assert!(stdout.contains(needle), "missing {needle}: {stdout}");
    }
}

#[test]
fn bad_usage_and_bad_files_fail_cleanly() {
    let (_, stderr, ok) = run_patty(&[]);
    assert!(!ok);
    assert!(stderr.contains("usage"));
    let (_, stderr2, ok2) = run_patty(&["analyze", "/nonexistent/x.mini"]);
    assert!(!ok2);
    assert!(stderr2.contains("cannot read"));
    let bad = write_temp("bad.mini", "fn main() { var x = ; }");
    let (_, stderr3, ok3) = run_patty(&["analyze", bad.to_str().unwrap()]);
    assert!(!ok3);
    assert!(stderr3.contains("parse error"), "{stderr3}");
}

/// Exit codes are part of the CLI contract: 2 for usage errors, 1 for
/// processing failures, and every diagnostic is a line on stderr — no
/// panic backtraces.
#[test]
fn failures_use_distinct_exit_codes_without_backtraces() {
    let run_with_code = |args: &[&str]| {
        let out = Command::new(patty_bin()).args(args).output().expect("patty runs");
        (out.status.code(), String::from_utf8_lossy(&out.stderr).to_string())
    };
    let (code, stderr) = run_with_code(&[]);
    assert_eq!(code, Some(2), "usage error: {stderr}");
    let (code, stderr) = run_with_code(&["frobnicate", "x.mini"]);
    assert_eq!(code, Some(2), "unknown command: {stderr}");
    let (code, stderr) = run_with_code(&["analyze", "/nonexistent/x.mini"]);
    assert_eq!(code, Some(1), "unreadable file: {stderr}");
    let bad = write_temp("bad_exit.mini", "fn main() { var x = ; }");
    let (code, stderr) = run_with_code(&["analyze", bad.to_str().unwrap()]);
    assert_eq!(code, Some(1), "parse error: {stderr}");
    assert!(
        !stderr.contains("stack backtrace") && !stderr.contains("thread 'main' panicked"),
        "diagnostics must be one-line, not a panic dump: {stderr}"
    );
}

#[test]
fn faultcheck_passes_on_detected_pipeline_and_reports_fault_counters() {
    let file = write_temp("faultcheck.mini", PIPELINE_SRC);
    let (stdout, stderr, ok) = run_patty(&["faultcheck", file.to_str().unwrap()]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("recovered via sequential fallback"), "{stdout}");
    assert!(stdout.contains("failures: 0"), "{stdout}");
    for counter in ["fault.panics_caught", "fault.fallbacks", "fault.items_retried"] {
        assert!(stdout.contains(counter), "missing {counter}: {stdout}");
    }
}

/// Schema-stability pinning: `patty profile` must emit the whole
/// `fault.*` counter family (value 0) even when the program has no
/// detectable parallel architecture, so downstream consumers never see
/// the keys appear and disappear between runs.
#[test]
fn profile_reports_fault_counters_without_parallel_architectures() {
    let src = "fn main() { var x = 1; print(x); }";
    let file = write_temp("profile_no_patterns.mini", src);
    let (stdout, stderr, ok) = run_patty(&["profile", file.to_str().unwrap()]);
    assert!(ok, "stderr: {stderr}");
    let report = patty_json::parse(&stdout).expect("profile output is valid JSON");
    let counters = report.get("counters").and_then(|c| c.as_arr()).expect("counters array");
    for name in [
        "fault.panics_caught",
        "fault.fallbacks",
        "fault.items_retried",
        "fault.deadline_aborts",
        "fault.cancellations",
    ] {
        let counter = counters
            .iter()
            .find(|c| c.get("name").and_then(|n| n.as_str()) == Some(name))
            .unwrap_or_else(|| panic!("missing {name} in {stdout}"));
        assert_eq!(counter.get("value").and_then(|v| v.as_i64()), Some(0), "{stdout}");
    }
}

#[test]
fn stats_emits_linted_prometheus_with_every_family_prefix() {
    let file = write_temp("stats.mini", PIPELINE_SRC);
    let (stdout, stderr, ok) = run_patty(&["stats", file.to_str().unwrap()]);
    assert!(ok, "stderr: {stderr}");
    let lint = patty_obs::lint_prometheus(&stdout).expect("scrape must pass the format lint");
    assert!(lint.families >= 20, "thin scrape ({lint:?}): {stdout}");
    for prefix in ["patty_executor_", "patty_runtime_", "patty_vm_", "patty_trace_"] {
        assert!(
            stdout.lines().any(|l| l.starts_with(prefix)),
            "no {prefix}* sample in: {stdout}"
        );
    }
    // The pipeline really ran on the pool: executed tasks are non-zero.
    let executed = stdout
        .lines()
        .find(|l| l.starts_with("patty_executor_tasks_executed_total "))
        .and_then(|l| l.split(' ').nth(1))
        .and_then(|v| v.parse::<u64>().ok())
        .expect("tasks_executed sample");
    assert!(executed > 0, "{stdout}");
}

/// `--deterministic --format json` is the machine-readable snapshot
/// contract: two sequential invocations must be byte-identical.
#[test]
fn stats_deterministic_json_is_byte_identical_across_runs() {
    let file = write_temp("stats_det.mini", PIPELINE_SRC);
    let path = file.to_str().unwrap();
    let (a, stderr, ok) = run_patty(&["stats", path, "--format", "json", "--deterministic"]);
    assert!(ok, "stderr: {stderr}");
    let (b, _, ok2) = run_patty(&["stats", path, "--format", "json", "--deterministic"]);
    assert!(ok2);
    assert_eq!(a, b, "deterministic stats runs must be byte-identical");
    let doc = patty_json::parse(&a).expect("stats JSON parses");
    let obj = doc.as_obj().expect("top-level object");
    assert!(obj.iter().any(|(k, _)| k.starts_with("patty_trace_stage_")), "{a}");
    // Schedule-dependent families stay in the schema, at zero.
    let executed = doc
        .get("patty_executor_tasks_executed_total")
        .and_then(|f| f.get("samples"))
        .and_then(|s| s.as_arr())
        .and_then(|s| s.first())
        .and_then(|s| s.get("value"))
        .and_then(|v| v.as_i64());
    assert_eq!(executed, Some(0), "{a}");
}

/// `--watch --iterations N` renders N dashboard frames and exits 0, so
/// the live mode is scriptable and testable.
#[test]
fn stats_watch_renders_bounded_dashboard_frames() {
    let file = write_temp("stats_watch.mini", PIPELINE_SRC);
    let (stdout, stderr, ok) = run_patty(&[
        "stats",
        file.to_str().unwrap(),
        "--watch",
        "--iterations",
        "2",
        "--interval",
        "0",
    ]);
    assert!(ok, "stderr: {stderr}");
    assert!(stdout.contains("frame 0"), "{stdout}");
    assert!(stdout.contains("frame 1"), "{stdout}");
    assert!(!stdout.contains("frame 2"), "--iterations 2 must stop after two frames");
    assert!(stdout.contains("lanes: "), "{stdout}");
    assert!(stdout.contains("steals: "), "{stdout}");
    assert!(stdout.contains("health: "), "{stdout}");
}

#[test]
fn stats_flag_errors_are_usage_errors() {
    let file = write_temp("stats_flags.mini", PIPELINE_SRC);
    let path = file.to_str().unwrap();
    for args in [
        vec!["stats", path, "--format", "yaml"],
        vec!["stats", path, "--format"],
        vec!["stats", path, "--interval", "soon"],
        vec!["stats", path, "--iterations", "-1"],
        vec!["stats", path, "--frobnicate"],
    ] {
        let out = Command::new(patty_bin()).args(&args).output().expect("patty runs");
        assert_eq!(out.status.code(), Some(2), "{args:?}");
    }
}

/// The `executor.*` family joins `fault.*` in the profile schema: always
/// present, even when no plan executed on the pool.
#[test]
fn profile_reports_executor_counters_alongside_faults() {
    let plain = write_temp("profile_exec_plain.mini", "fn main() { var x = 1; print(x); }");
    let pipeline = write_temp("profile_exec_pipe.mini", PIPELINE_SRC);
    for (path, expect_work) in [(&plain, false), (&pipeline, true)] {
        let (stdout, stderr, ok) = run_patty(&["profile", path.to_str().unwrap()]);
        assert!(ok, "stderr: {stderr}");
        let report = patty_json::parse(&stdout).expect("profile output is valid JSON");
        let counters = report.get("counters").and_then(|c| c.as_arr()).expect("counters");
        let value = |name: &str| {
            counters
                .iter()
                .find(|c| c.get("name").and_then(|n| n.as_str()) == Some(name))
                .unwrap_or_else(|| panic!("missing {name} in {stdout}"))
                .get("value")
                .and_then(|v| v.as_i64())
                .unwrap()
        };
        for name in [
            "executor.lanes_spawned",
            "executor.lanes_live",
            "executor.short_submitted",
            "executor.tasks_executed",
            "executor.steals_attempted",
            "executor.injector_pops",
            "executor.parks",
        ] {
            assert!(value(name) >= 0, "{stdout}");
        }
        if expect_work {
            assert!(
                value("executor.tasks_executed") + value("executor.tasks_helped") > 0,
                "pipeline must have executed tasks on the pool: {stdout}"
            );
        }
    }
}

#[test]
fn trace_emits_chrome_json_with_events_per_stage() {
    let file = write_temp("trace.mini", PIPELINE_SRC);
    let (stdout, stderr, ok) = run_patty(&["trace", file.to_str().unwrap()]);
    assert!(ok, "stderr: {stderr}");
    let doc = patty_json::parse(&stdout).expect("chrome trace is valid JSON");
    let events = doc.get("traceEvents").and_then(|e| e.as_arr()).expect("traceEvents array");
    // Thread metadata names every (stage, worker) lane; the detected
    // A+ => B pipeline must produce at least one slice per stage.
    let mut tid_names = std::collections::BTreeMap::new();
    for e in events {
        if e.get("name").and_then(|n| n.as_str()) == Some("thread_name") {
            let tid = e.get("tid").and_then(|t| t.as_i64()).unwrap();
            let name =
                e.get("args").and_then(|a| a.get("name")).and_then(|n| n.as_str()).unwrap();
            tid_names.insert(tid, name.to_string());
        }
    }
    for stage in ["A", "B"] {
        let slices = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .filter(|e| {
                let tid = e.get("tid").and_then(|t| t.as_i64()).unwrap_or(-1);
                tid_names.get(&tid).is_some_and(|n| n.starts_with(&format!("{stage} ")))
            })
            .count();
        assert!(slices > 0, "no slices for stage {stage}: {stdout}");
    }
}

#[test]
fn trace_formats_and_flags() {
    let file = write_temp("trace_fmt.mini", PIPELINE_SRC);
    let path = file.to_str().unwrap();

    let (stdout, _, ok) = run_patty(&["trace", path, "--format", "summary"]);
    assert!(ok);
    let doc = patty_json::parse(&stdout).expect("summary is valid JSON");
    for key in ["wall_ns", "total_items", "dropped_events", "bottleneck", "stages"] {
        assert!(doc.get(key).is_some(), "missing {key}: {stdout}");
    }

    let (stdout, _, ok) = run_patty(&["trace", path, "--format", "flame"]);
    assert!(ok);
    assert!(stdout.contains("critical path:"), "{stdout}");

    let out_file = std::env::temp_dir().join("patty-cli-tests").join("trace_out.json");
    let out_path = out_file.to_str().unwrap().to_string();
    let (_, stderr, ok) = run_patty(&["trace", path, "--out", &out_path]);
    assert!(ok, "stderr: {stderr}");
    assert!(stderr.contains("wrote"), "{stderr}");
    let written = std::fs::read_to_string(&out_file).expect("trace file written");
    assert!(patty_json::parse(&written).is_ok());

    let out = Command::new(patty_bin())
        .args(["trace", path, "--format", "bogus"])
        .output()
        .expect("patty runs");
    assert_eq!(out.status.code(), Some(2), "unknown format is a usage error");
    let out = Command::new(patty_bin())
        .args(["trace", path, "--out"])
        .output()
        .expect("patty runs");
    assert_eq!(out.status.code(), Some(2), "missing flag value is a usage error");
}

#[test]
fn profile_emits_json_telemetry_report() {
    let file = write_temp("profile.mini", PIPELINE_SRC);
    let (stdout, stderr, ok) = run_patty(&["profile", file.to_str().unwrap()]);
    assert!(ok, "stderr: {stderr}");
    let report = patty_json::parse(&stdout).expect("profile output is valid JSON");
    let counters = report.get("counters").and_then(|c| c.as_arr()).expect("counters array");
    // The detected A+ => B pipeline runs over 8 elements per stage.
    let stage_items: Vec<_> = counters
        .iter()
        .filter(|c| {
            c.get("name")
                .and_then(|n| n.as_str())
                .is_some_and(|n| n.starts_with("pipeline.stage.") && n.ends_with(".items"))
        })
        .collect();
    assert!(!stage_items.is_empty(), "{stdout}");
    for c in &stage_items {
        assert_eq!(c.get("value").and_then(|v| v.as_i64()), Some(8), "{stdout}");
    }
    let spans: Vec<String> = report
        .get("spans")
        .and_then(|s| s.as_arr())
        .expect("spans array")
        .iter()
        .filter_map(|s| s.get("name").and_then(|n| n.as_str()).map(str::to_string))
        .collect();
    for phase in ["phase.detect", "phase.annotate", "phase.transform", "phase.validate", "phase.tune"] {
        assert!(spans.iter().any(|s| s == phase), "missing {phase} in {spans:?}");
    }
    let iterations = report
        .get("tuner_iterations")
        .and_then(|t| t.as_arr())
        .expect("tuner_iterations array");
    assert!(!iterations.is_empty(), "{stdout}");
    assert!(iterations[0].get("objective").is_some());
    assert!(iterations[0].get("params").is_some());
    // The plan executes through the checked runtime entry points, so the
    // fault counter family is present (all zero on a healthy run).
    let fault_counters: Vec<_> = counters
        .iter()
        .filter(|c| {
            c.get("name").and_then(|n| n.as_str()).is_some_and(|n| n.starts_with("fault."))
        })
        .collect();
    assert!(fault_counters.len() >= 5, "{stdout}");
    for c in &fault_counters {
        assert_eq!(c.get("value").and_then(|v| v.as_i64()), Some(0), "{stdout}");
    }
}
