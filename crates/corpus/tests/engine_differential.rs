//! Differential oracle over the full corpus: every corpus program must
//! produce an identical `Outcome` and a byte-identical profile JSON on the
//! tree-walking interpreter and the bytecode VM, under several option
//! profiles (default, tiny trace budget, injected step limits).

use patty_corpus::all_programs;
use patty_minilang::{run, Engine, InterpOptions, Program};

fn assert_identical(name: &str, program: &Program, opts: &InterpOptions, label: &str) {
    let ast = run(program, InterpOptions { engine: Engine::Ast, ..opts.clone() });
    let vm = run(program, InterpOptions { engine: Engine::Vm, ..opts.clone() });
    match (ast, vm) {
        (Ok(a), Ok(v)) => {
            assert_eq!(
                format!("{:?}", a.result),
                format!("{:?}", v.result),
                "{name} [{label}]: results differ"
            );
            assert_eq!(a.output, v.output, "{name} [{label}]: outputs differ");
            assert_eq!(
                a.profile.to_json(),
                v.profile.to_json(),
                "{name} [{label}]: profiles differ"
            );
        }
        (Err(a), Err(v)) => {
            assert_eq!(a, v, "{name} [{label}]: errors differ");
        }
        (a, v) => panic!(
            "{name} [{label}]: engines disagree: ast={:?} vm={:?}",
            a.map(|o| o.output),
            v.map(|o| o.output)
        ),
    }
}

#[test]
fn engines_agree_on_every_corpus_program() {
    for p in all_programs() {
        let program = p.parse();
        assert_identical(p.name, &program, &InterpOptions::default(), "default");
    }
}

#[test]
fn engines_agree_with_tiny_trace_budget() {
    let opts = InterpOptions { trace_iters: 1, ..InterpOptions::default() };
    for p in all_programs() {
        let program = p.parse();
        assert_identical(p.name, &program, &opts, "trace_iters=1");
    }
}

#[test]
fn engines_agree_with_tracing_disabled() {
    let opts = InterpOptions { trace_loops: false, ..InterpOptions::default() };
    for p in all_programs() {
        let program = p.parse();
        assert_identical(p.name, &program, &opts, "trace off");
    }
}

#[test]
fn engines_agree_on_injected_step_limit_errors() {
    // Kill each program at several points mid-run; the resulting
    // `step limit exceeded` error must carry the same line from both
    // engines (profiles are discarded on error).
    for p in all_programs() {
        let program = p.parse();
        for limit in [50u64, 500, 5_000, 50_000] {
            let opts = InterpOptions { step_limit: limit, ..InterpOptions::default() };
            assert_identical(p.name, &program, &opts, &format!("step_limit={limit}"));
        }
    }
}

#[test]
fn engines_agree_with_alternate_seed() {
    let opts = InterpOptions { seed: 0xDEAD_BEEF, ..InterpOptions::default() };
    for p in all_programs() {
        let program = p.parse();
        assert_identical(p.name, &program, &opts, "seed=0xDEADBEEF");
    }
}
