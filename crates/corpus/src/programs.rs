//! The multi-domain benchmark corpus (Section 5: "a set of benchmark
//! tools from different application domains"), each program carrying
//! ground-truth labels of which loops are appropriate candidates for
//! parallel execution.
//!
//! The corpus deliberately contains all four confusion-matrix cases for
//! the detector: clean hits, true rejections (carried dependencies,
//! control flow, shared-state traps), *misses* (loops a human would
//! parallelize after privatizing an accumulator or restructuring — the
//! optimistic detector keeps the dependence), and *false alarms* (loops
//! whose conflict lies beyond the traced iteration prefix, the inherent
//! blind spot of dynamic analysis the paper concedes in Section 6).

/// The AviStream video-processing program of Fig. 3.
pub const AVISTREAM: &str = r#"
class Filter {
    var gain = 2;
    var cost = 300;
    fn init(g, c) { this.gain = g; this.cost = c; }
    fn apply(x) { work(this.cost); return x * this.gain % 251; }
}
class Converter {
    fn apply(a, b, c) { work(60); return (a + b + c) % 256; }
}
fn main() {
    var cropFilter = new Filter(3, 300);
    var histogramFilter = new Filter(5, 280);
    var oilFilter = new Filter(7, 620);
    var convTo32bpp = new Converter();
    var aviIn = range(0, 24);
    var aviOut = [];
    foreach (i in aviIn) {
        var c = cropFilter.apply(i);
        var h = histogramFilter.apply(i);
        var o = oilFilter.apply(i);
        var r = convTo32bpp.apply(c, h, o);
        aviOut.add(r);
    }
    print(len(aviOut), aviOut[0], aviOut[23]);
}
"#;

/// Desktop-search index generator (Meder & Tichy, ref. \[28\]).
pub const DESKTOP_SEARCH: &str = r#"
class Tokenizer {
    var sep = " ";
    fn split(doc) { work(120); return doc.split(this.sep); }
}
class StopwordFilter {
    var stop = "the";
    fn filter(tokens) {
        work(80);
        var kept = [];
        foreach (t in tokens) {
            if (t != this.stop) { kept.add(t); }
        }
        return kept;
    }
}
class Index {
    var entries = [];
    fn add(tokens) { foreach (t in tokens) { this.entries.add(t); } }
}
fn makeDoc(i) {
    return "doc" + i + " has the word w" + (i % 5) + " and the tail t" + i;
}
fn main() {
    var docs = [];
    var i = 0;
    while (i < 16) {
        docs.add(makeDoc(i));
        i = i + 1;
    }
    var tokenizer = new Tokenizer();
    var stopwords = new StopwordFilter();
    var index = new Index();
    foreach (d in docs) {
        var toks = tokenizer.split(d);
        var kept = stopwords.filter(toks);
        index.add(kept);
    }
    var hits = 0;
    foreach (e in index.entries) {
        if (e == "w3") {
            hits += 1;
            if (hits > 2) { break; }
        }
    }
    print(len(index.entries), hits);
}
"#;

/// Dense matrix multiplication.
pub const MATMUL: &str = r#"
fn cell(a, b, i, j, n) {
    var sum = 0;
    for (var k = 0; k < n; k = k + 1) {
        sum += a[i * n + k] * b[k * n + j];
    }
    return sum;
}
fn mulRow(a, b, i, n) {
    var row = [];
    for (var j = 0; j < n; j = j + 1) {
        row.add(cell(a, b, i, j, n));
    }
    return row;
}
fn main() {
    var n = 6;
    var a = [];
    var b = [];
    for (var i = 0; i < 36; i = i + 1) {
        a.add(i % 7);
        b.add(i % 5);
    }
    var c = [0, 0, 0, 0, 0, 0];
    for (var i = 0; i < 6; i = i + 1) {
        c[i] = mulRow(a, b, i, n);
    }
    var trace = 0;
    for (var i = 0; i < 6; i = i + 1) {
        trace += c[i][i];
    }
    print(trace);
}
"#;

/// Word statistics over a token stream.
pub const WORDSTATS: &str = r#"
class Counters {
    var buckets = [0, 0, 0, 0, 0, 0, 0, 0];
    fn bump(t) {
        var b = t.len() % 8;
        this.buckets[b] = this.buckets[b] + 1;
    }
}
fn weigh(t) { work(40); return t.len() * 3 + 1; }
fn main() {
    var words = "alpha beta gamma delta epsilon zeta eta theta iota kappa la mu".split(" ");
    var counters = new Counters();
    foreach (w in words) {
        counters.bump(w);
    }
    var total = 0;
    foreach (w in words) {
        total += weigh(w);
    }
    var a = [1, 5, 2, 9, 4, 7, 3, 8, 0, 6, 2, 4];
    var b = [4, 2, 8, 1, 6, 3, 9, 2, 5, 1, 7, 0];
    var mins = [];
    for (var i = 0; i < 12; i = i + 1) {
        mins.add(min(a[i], b[i]));
    }
    print(total, counters.buckets[1], mins[3]);
}
"#;

/// A ring-buffer cache simulation — the dynamic analysis' blind spot:
/// conflicts appear only beyond the traced iteration prefix.
pub const RINGBUFFER: &str = r#"
fn main() {
    var ring = [];
    for (var i = 0; i < 30; i = i + 1) {
        ring.add(0);
    }
    var hits = [];
    for (var i = 0; i < 30; i = i + 1) {
        hits.add(0);
    }
    // Writes wrap around after 30 iterations: iterations 30..39 collide
    // with 0..9, far beyond the traced prefix.
    for (var i = 0; i < 40; i = i + 1) {
        ring[i % 30] = i * 2;
    }
    // The shared total is only touched after iteration 25 — also
    // invisible in the traced prefix.
    var lateTotal = 0;
    for (var i = 0; i < 40; i = i + 1) {
        if (i > 25) { lateTotal = lateTotal + ring[i % 30]; }
        hits[i % 30] = i;
    }
    print(ring[5], lateTotal, hits[3]);
}
"#;

/// N-body simulation step.
pub const NBODY: &str = r#"
class Body {
    var pos = 0;
    var vel = 0;
    var mass = 1;
    fn init(p, v, m) { this.pos = p; this.vel = v; this.mass = m; }
}
fn force(bodies, i, n) {
    work(80);
    var f = 0;
    for (var j = 0; j < n; j = j + 1) {
        if (j != i) {
            var d = bodies[j].pos - bodies[i].pos;
            if (d != 0) { f += bodies[j].mass * d; }
        }
    }
    return f;
}
fn main() {
    var n = 8;
    var bodies = [];
    for (var i = 0; i < 8; i = i + 1) {
        bodies.add(new Body(i * 10, 8 - i, 1 + i % 3));
    }
    var forces = [0, 0, 0, 0, 0, 0, 0, 0];
    for (var i = 0; i < 8; i = i + 1) {
        forces[i] = force(bodies, i, n);
    }
    for (var i = 0; i < 8; i = i + 1) {
        bodies[i].vel = bodies[i].vel + forces[i] / 100;
    }
    var momentum = 0;
    for (var i = 0; i < 8; i = i + 1) {
        momentum += bodies[i].vel * bodies[i].mass;
    }
    var collided = 0;
    for (var i = 0; i < 7; i = i + 1) {
        if (abs(bodies[i].pos - bodies[i + 1].pos) < 2) {
            collided = 1;
            break;
        }
    }
    print(forces[0], momentum, collided);
}
"#;

/// Image convolution pipeline with an in-place smoothing pass whose
/// element conflict *is* visible in the traced prefix.
pub const IMAGEPIPE: &str = r#"
class Blur {
    var radius = 1;
    fn apply(v) { work(150); return (v * 3 + this.radius) % 255; }
}
class Sharpen {
    var amount = 2;
    fn apply(v) { work(90); return (v * this.amount + 1) % 255; }
}
fn main() {
    var img = [];
    for (var i = 0; i < 20; i = i + 1) {
        img.add(i * 11 % 200);
    }
    var blur = new Blur();
    var sharpen = new Sharpen();
    var out = [];
    foreach (p in img) {
        var b = blur.apply(p);
        var s = sharpen.apply(b);
        out.add(s);
    }
    // In-place prefix smoothing: reads the element written by the
    // previous iteration (a real carried dependence the dynamic trace
    // observes immediately).
    for (var i = 1; i < 20; i = i + 1) {
        out[i] = (out[i - 1] + out[i]) / 2;
    }
    print(out[0], out[19]);
}
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use patty_minilang::{parse, run, InterpOptions};

    #[test]
    fn all_sources_parse_and_run() {
        for (name, src) in [
            ("avistream", AVISTREAM),
            ("desktop_search", DESKTOP_SEARCH),
            ("matmul", MATMUL),
            ("wordstats", WORDSTATS),
            ("ringbuffer", RINGBUFFER),
            ("nbody", NBODY),
            ("imagepipe", IMAGEPIPE),
        ] {
            let p = parse(src).unwrap_or_else(|e| panic!("{name}: {e}"));
            let out = run(&p, InterpOptions::default())
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(!out.output.is_empty(), "{name} must print");
        }
    }

    #[test]
    fn avistream_output_is_deterministic() {
        let p = parse(AVISTREAM).unwrap();
        let a = run(&p, InterpOptions::default()).unwrap();
        let b = run(&p, InterpOptions::default()).unwrap();
        assert_eq!(a.output, b.output);
        assert!(a.output[0].starts_with("24 "));
    }

    #[test]
    fn matmul_trace_is_correct() {
        let p = parse(MATMUL).unwrap();
        let out = run(&p, InterpOptions::default()).unwrap();
        // reference value computed by the sequential semantics
        let n = 6i64;
        let a: Vec<i64> = (0..36).map(|i| i % 7).collect();
        let b: Vec<i64> = (0..36).map(|i| i % 5).collect();
        let mut trace = 0;
        for i in 0..n {
            let mut sum = 0;
            for k in 0..n {
                sum += a[(i * n + k) as usize] * b[(k * n + i) as usize];
            }
            trace += sum;
        }
        assert_eq!(out.output[0], trace.to_string());
    }
}
