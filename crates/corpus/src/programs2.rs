//! Corpus extension: more application domains for the Section-5
//! detection-quality suite (the paper's suite spans 26,580 LoC of
//! benchmark tools; this module grows ours in the same spirit — every
//! program is a small but complete tool with realistic loop structures,
//! not a synthetic kernel).

/// CSV-style sales analytics: parse → filter → aggregate → report.
pub const CSV_ANALYTICS: &str = r#"
class Row {
    var region = "";
    var amount = 0;
    var year = 0;
    fn init(r, a, y) { this.region = r; this.amount = a; this.year = y; }
}
class Parser {
    var sep = ",";
    fn parse(line) {
        work(60);
        var parts = line.split(this.sep);
        return new Row(parts[0], int(parts[1]), int(parts[2]));
    }
}
class Report {
    var lines = [];
    fn emit(text) { this.lines.add(text); }
}
fn makeLine(i) {
    var region = "north";
    if (i % 3 == 1) { region = "south"; }
    if (i % 3 == 2) { region = "west"; }
    return region + "," + (i * 13 % 500) + "," + (2010 + i % 6);
}
fn main() {
    var raw = [];
    var i = 0;
    while (i < 18) {
        raw.add(makeLine(i));
        i = i + 1;
    }
    var parser = new Parser();
    var rows = [];
    // parse pipeline: hot pure parse + ordered append
    foreach (line in raw) {
        var row = parser.parse(line);
        rows.add(row);
    }
    // revenue reduction
    var revenue = 0;
    foreach (r in rows) {
        revenue += r.amount;
    }
    // running balance: true sequential chain
    var balance = 100;
    foreach (r in rows) {
        balance = balance + r.amount - balance / 10;
    }
    var report = new Report();
    foreach (r in rows) {
        if (r.year > 2012) {
            report.emit(r.region + ": " + r.amount);
        }
    }
    print(revenue, balance, len(report.lines));
}
"#;

/// Run-length compression and verification.
pub const RLE_COMPRESS: &str = r#"
fn encode(data) {
    var out = [];
    var i = 0;
    while (i < len(data)) {
        var v = data[i];
        var runLen = 1;
        while (i + runLen < len(data) && data[i + runLen] == v) {
            runLen = runLen + 1;
        }
        out.add(v);
        out.add(runLen);
        i = i + runLen;
    }
    return out;
}
fn decode(enc) {
    var out = [];
    var i = 0;
    while (i < len(enc)) {
        var v = enc[i];
        var n = enc[i + 1];
        for (var k = 0; k < n; k = k + 1) {
            out.add(v);
        }
        i = i + 2;
    }
    return out;
}
fn checksum(xs) {
    var sum = 0;
    foreach (x in xs) {
        sum += x * 7 % 1001;
    }
    return sum;
}
fn main() {
    var blocks = [];
    for (var b = 0; b < 6; b = b + 1) {
        var block = [];
        for (var i = 0; i < 24; i = i + 1) {
            block.add((i + b) / 4);
        }
        blocks.add(block);
    }
    // block-parallel encode: each block is independent
    var encoded = [0, 0, 0, 0, 0, 0];
    for (var b = 0; b < 6; b = b + 1) {
        encoded[b] = encode(blocks[b]);
    }
    var ok = 0;
    for (var b = 0; b < 6; b = b + 1) {
        if (checksum(decode(encoded[b])) == checksum(blocks[b])) {
            ok += 1;
        }
    }
    print(ok, len(encoded[0]));
}
"#;

/// Mandelbrot-style escape-time fractal over an integer grid.
pub const MANDELBROT: &str = r#"
class Plane {
    var scale = 40;
    fn escape(cx, cy) {
        work(30);
        var x = 0;
        var y = 0;
        var iter = 0;
        while (iter < 12 && x * x + y * y < 4 * this.scale * this.scale) {
            var nx = (x * x - y * y) / this.scale + cx;
            var ny = (2 * x * y) / this.scale + cy;
            x = nx;
            y = ny;
            iter = iter + 1;
        }
        return iter;
    }
}
fn main() {
    var plane = new Plane();
    var w = 12;
    var h = 8;
    var img = [];
    for (var i = 0; i < 96; i = i + 1) {
        img.add(0);
    }
    // pixel-parallel escape computation
    for (var p = 0; p < 96; p = p + 1) {
        img[p] = plane.escape(p % w - 6, p / w - 4);
    }
    var inside = 0;
    foreach (v in img) {
        if (v == 12) { inside += 1; }
    }
    print(inside, img[0], img[95]);
}
"#;

/// Monte-Carlo pi estimation: the RNG makes the draw loop inherently
/// order-sensitive (the deterministic stream must not be consumed
/// concurrently), but the counting over pre-drawn samples is parallel.
pub const MONTECARLO: &str = r#"
fn main() {
    var xs = [];
    var ys = [];
    // order-sensitive RNG consumption: not a candidate
    for (var i = 0; i < 64; i = i + 1) {
        xs.add(rand(1000));
        ys.add(rand(1000));
    }
    // hit counting over the pre-drawn samples: a reduction
    var hits = 0;
    for (var i = 0; i < 64; i = i + 1) {
        hits += inCircle(xs[i], ys[i]);
    }
    print(hits * 4 / 64);
}
fn inCircle(x, y) {
    work(15);
    var dx = x - 500;
    var dy = y - 500;
    if (dx * dx + dy * dy < 250000) { return 1; }
    return 0;
}
"#;

/// Spell checking against a dictionary: lookup pipeline plus a
/// first-match search (early exit — PLCD).
pub const SPELLCHECK: &str = r#"
class Dictionary {
    var words = [];
    fn load() {
        var base = "the cat sat on a mat with hat and bat for food".split(" ");
        foreach (w in base) {
            this.words.add(w);
        }
    }
    fn has(w) { work(45); return this.words.contains(w); }
}
fn main() {
    var dict = new Dictionary();
    dict.load();
    var text = "the cat zat on a mqt with hat and bat for fod again".split(" ");
    var flags = [];
    // check pipeline: hot dictionary probe + ordered append
    foreach (w in text) {
        var bad = 0;
        if (!dict.has(w)) { bad = 1; }
        flags.add(bad);
    }
    var errors = 0;
    foreach (f in flags) {
        errors += f;
    }
    // first misspelling (early exit)
    var firstBad = "";
    var i = 0;
    while (i < len(text)) {
        if (flags[i] == 1) {
            firstBad = text[i];
            break;
        }
        i = i + 1;
    }
    print(errors, firstBad);
}
"#;

/// One k-means iteration: assignment is pointwise parallel, the centroid
/// update accumulates into shared sums (parallel only after
/// privatization — a classic detector miss).
pub const KMEANS: &str = r#"
fn dist(a, b) { work(25); return abs(a - b); }
fn main() {
    var points = [];
    for (var i = 0; i < 30; i = i + 1) {
        points.add(i * 7 % 90);
    }
    var centroids = [10, 45, 80];
    var assign = [];
    for (var i = 0; i < 30; i = i + 1) {
        assign.add(0);
    }
    // assignment step: each point independent
    for (var i = 0; i < 30; i = i + 1) {
        assign[i] = nearest(points[i], centroids);
    }
    // update step: shared per-cluster accumulators
    var sums = [0, 0, 0];
    var counts = [0, 0, 0];
    for (var i = 0; i < 30; i = i + 1) {
        var c = assign[i];
        sums[c] = sums[c] + points[i];
        counts[c] = counts[c] + 1;
    }
    var moved = 0;
    for (var c = 0; c < 3; c = c + 1) {
        if (counts[c] > 0) {
            var next = sums[c] / counts[c];
            if (next != centroids[c]) { moved += 1; }
            centroids[c] = next;
        }
    }
    print(moved, centroids[0], centroids[1], centroids[2]);
}
fn nearest(p, centroids) {
    var best = 0;
    var bestD = dist(p, centroids[0]);
    for (var c = 1; c < 3; c = c + 1) {
        var d = dist(p, centroids[c]);
        if (d < bestD) { bestD = d; best = c; }
    }
    return best;
}
"#;

/// FIR audio filter bank: per-sample convolution is parallel over the
/// output (reads only the input window), the feedback echo is not.
pub const AUDIOFIR: &str = r#"
class Fir {
    var taps = [3, 5, 7, 5, 3];
    fn apply(signal, i) {
        work(35);
        var acc = 0;
        for (var t = 0; t < 5; t = t + 1) {
            if (i >= t) {
                acc += signal[i - t] * this.taps[t];
            }
        }
        return acc / 23;
    }
}
fn main() {
    var signal = [];
    for (var i = 0; i < 40; i = i + 1) {
        signal.add((i * 17 + 3) % 100);
    }
    var fir = new Fir();
    var filtered = [];
    for (var i = 0; i < 40; i = i + 1) {
        filtered.add(0);
    }
    // convolution: output element i reads only the input — parallel
    for (var i = 0; i < 40; i = i + 1) {
        filtered[i] = fir.apply(signal, i);
    }
    // feedback echo: output feeds back into later outputs — sequential
    var echoed = [];
    for (var i = 0; i < 40; i = i + 1) {
        echoed.add(filtered[i]);
    }
    for (var i = 4; i < 40; i = i + 1) {
        echoed[i] = echoed[i] + echoed[i - 4] / 2;
    }
    var energy = 0;
    foreach (v in echoed) {
        energy += v * v;
    }
    print(energy % 100000);
}
"#;

/// Web-server log triage: parse, sessionize (stateful), rank.
pub const LOGTRIAGE: &str = r#"
class Entry {
    var path = "";
    var status = 0;
    var ms = 0;
    fn init(p, s, m) { this.path = p; this.status = s; this.ms = m; }
}
class Sessions {
    var current = 0;
    var count = 0;
    fn feed(e) {
        if (e.status >= 400) {
            this.current = 0;
        } else {
            this.current = this.current + 1;
            if (this.current == 3) { this.count = this.count + 1; }
        }
    }
}
fn parseLine(line) {
    work(55);
    var parts = line.split(" ");
    return new Entry(parts[0], int(parts[1]), int(parts[2]));
}
fn makeLogLine(i) {
    var status = 200;
    if (i % 7 == 3) { status = 500; }
    return "/p" + (i % 5) + " " + status + " " + (i * 9 % 300);
}
fn main() {
    var raw = [];
    var i = 0;
    while (i < 20) {
        raw.add(makeLogLine(i));
        i = i + 1;
    }
    // parse pipeline
    var entries = [];
    foreach (line in raw) {
        var e = parseLine(line);
        entries.add(e);
    }
    // sessionization: inherently stateful scan
    var sessions = new Sessions();
    foreach (e in entries) {
        sessions.feed(e);
    }
    // slow-request count: reduction
    var slow = 0;
    foreach (e in entries) {
        if (e.ms > 150) { slow += 1; }
    }
    print(sessions.count, slow);
}
"#;

#[cfg(test)]
mod tests {
    use patty_minilang::{parse, run, InterpOptions};

    #[test]
    fn extension_programs_parse_and_run() {
        for (name, src) in [
            ("csv_analytics", super::CSV_ANALYTICS),
            ("rle_compress", super::RLE_COMPRESS),
            ("mandelbrot", super::MANDELBROT),
            ("montecarlo", super::MONTECARLO),
            ("spellcheck", super::SPELLCHECK),
            ("kmeans", super::KMEANS),
            ("audiofir", super::AUDIOFIR),
            ("logtriage", super::LOGTRIAGE),
        ] {
            let p = parse(src).unwrap_or_else(|e| panic!("{name}: {e}"));
            let out = run(&p, InterpOptions::default())
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(!out.output.is_empty(), "{name} must print");
        }
    }

    #[test]
    fn rle_round_trip_is_verified_inside_the_program() {
        let p = parse(super::RLE_COMPRESS).unwrap();
        let out = run(&p, InterpOptions::default()).unwrap();
        assert!(out.output[0].starts_with("6 "), "all 6 blocks verify: {}", out.output[0]);
    }

    #[test]
    fn spellcheck_finds_the_misspellings() {
        let p = parse(super::SPELLCHECK).unwrap();
        let out = run(&p, InterpOptions::default()).unwrap();
        assert_eq!(out.output[0], "4 zat", "{}", out.output[0]);
    }
}
