//! # patty-corpus
//!
//! The benchmark corpus: minilang programs from different application
//! domains with ground-truth parallelization labels.
//!
//! Two roles, mirroring the paper:
//!
//! * the **RayTracing** program is the user-study benchmark of Section 4
//!   (13 classes, ~170 LoC, exactly three locations with parallel
//!   potential, plus the racy-looking traps behind the manual group's
//!   false positives);
//! * the full corpus is the Section-5 detection-quality suite on which
//!   precision, recall and the balanced F-score of the detector are
//!   measured.

pub mod programs;
pub mod programs2;
pub mod programs3;
pub mod raytracer;

pub use raytracer::RAYTRACER;

/// Ground truth for one loop of a corpus program.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TruthLabel {
    /// Qualified function name (`main`, `Class.method`).
    pub func: &'static str,
    /// Ordinal of the loop within that function, in
    /// [`patty_analysis::collect_loops`] pre-order.
    pub ordinal: usize,
    /// A human parallelization expert considers this loop an appropriate
    /// candidate for parallel execution.
    pub parallelizable: bool,
    /// Why (documentation; shown in reports).
    pub note: &'static str,
}

/// A corpus program with its labels. Loops without a label are implicitly
/// `parallelizable = false`.
#[derive(Clone, Debug)]
pub struct CorpusProgram {
    pub name: &'static str,
    pub domain: &'static str,
    pub source: &'static str,
    pub labels: &'static [TruthLabel],
}

impl CorpusProgram {
    /// Parse the program.
    pub fn parse(&self) -> patty_minilang::Program {
        patty_minilang::parse(self.source)
            .unwrap_or_else(|e| panic!("corpus program {} is invalid: {e}", self.name))
    }

    /// Loop ids labeled parallelizable, resolved against a parsed program.
    pub fn truth_loop_ids(
        &self,
        loops: &[patty_analysis::LoopInfo],
    ) -> Vec<patty_minilang::NodeId> {
        let mut out = Vec::new();
        for label in self.labels.iter().filter(|l| l.parallelizable) {
            let mut ordinal = 0usize;
            for l in loops {
                if l.func == label.func {
                    if ordinal == label.ordinal {
                        out.push(l.id);
                        break;
                    }
                    ordinal += 1;
                }
            }
        }
        out
    }
}


/// Every corpus program with its ground truth.
pub fn all_programs() -> Vec<CorpusProgram> {
    vec![
        CorpusProgram {
            name: "raytracer",
            domain: "graphics",
            source: raytracer::RAYTRACER,
            labels: &[
                TruthLabel { func: "main", ordinal: 0, parallelizable: true, note: "hot row-render DOALL (profiler-visible)" },
                TruthLabel { func: "main", ordinal: 4, parallelizable: true, note: "gamma post-processing pipeline" },
                TruthLabel { func: "main", ordinal: 5, parallelizable: true, note: "brightness reduction (cold)" },
            ],
        },
        CorpusProgram {
            name: "avistream",
            domain: "video",
            source: programs::AVISTREAM,
            labels: &[TruthLabel {
                func: "main",
                ordinal: 0,
                parallelizable: true,
                note: "the Fig. 3 filter pipeline",
            }],
        },
        CorpusProgram {
            name: "desktop_search",
            domain: "text indexing",
            source: programs::DESKTOP_SEARCH,
            labels: &[TruthLabel {
                func: "main",
                ordinal: 1,
                parallelizable: true,
                note: "tokenize → filter → index pipeline",
            }],
        },
        CorpusProgram {
            name: "matmul",
            domain: "linear algebra",
            source: programs::MATMUL,
            labels: &[
                TruthLabel { func: "cell", ordinal: 0, parallelizable: true, note: "dot-product reduction" },
                TruthLabel { func: "mulRow", ordinal: 0, parallelizable: true, note: "row build — needs index-write restructuring (expected detector miss)" },
                TruthLabel { func: "main", ordinal: 0, parallelizable: true, note: "independent appends to two arrays" },
                TruthLabel { func: "main", ordinal: 1, parallelizable: true, note: "row-wise DOALL" },
                TruthLabel { func: "main", ordinal: 2, parallelizable: true, note: "trace reduction" },
            ],
        },
        CorpusProgram {
            name: "wordstats",
            domain: "text analytics",
            source: programs::WORDSTATS,
            labels: &[
                TruthLabel { func: "main", ordinal: 0, parallelizable: true, note: "histogram — parallel after privatization (expected detector miss)" },
                TruthLabel { func: "main", ordinal: 1, parallelizable: true, note: "weight reduction" },
                TruthLabel { func: "main", ordinal: 2, parallelizable: true, note: "elementwise min — needs index-write restructuring (expected detector miss)" },
            ],
        },
        CorpusProgram {
            name: "ringbuffer",
            domain: "systems simulation",
            source: programs::RINGBUFFER,
            // No parallelizable loops: the wrap-around conflicts are real,
            // just invisible in the traced prefix (expected detector
            // false positives).
            labels: &[],
        },
        CorpusProgram {
            name: "nbody",
            domain: "scientific computing",
            source: programs::NBODY,
            labels: &[
                TruthLabel { func: "force", ordinal: 0, parallelizable: true, note: "force accumulation — reduction behind a guard (expected detector miss)" },
                TruthLabel { func: "main", ordinal: 1, parallelizable: true, note: "force DOALL" },
                TruthLabel { func: "main", ordinal: 2, parallelizable: true, note: "integration DOALL" },
                TruthLabel { func: "main", ordinal: 3, parallelizable: true, note: "momentum reduction" },
            ],
        },
        CorpusProgram {
            name: "imagepipe",
            domain: "image processing",
            source: programs::IMAGEPIPE,
            labels: &[TruthLabel {
                func: "main",
                ordinal: 1,
                parallelizable: true,
                note: "blur → sharpen → emit pipeline",
            }],
        },
        CorpusProgram {
            name: "csv_analytics",
            domain: "business analytics",
            source: programs2::CSV_ANALYTICS,
            labels: &[
                TruthLabel { func: "main", ordinal: 1, parallelizable: true, note: "parse pipeline" },
                TruthLabel { func: "main", ordinal: 2, parallelizable: true, note: "revenue reduction" },
            ],
        },
        CorpusProgram {
            name: "rle_compress",
            domain: "compression",
            source: programs2::RLE_COMPRESS,
            // decode's stream loop is a marginal pipeline the detector
            // claims (est ≈ 1.3); a human would not bother → an expected
            // near-threshold false positive.
            labels: &[
                TruthLabel { func: "checksum", ordinal: 0, parallelizable: true, note: "checksum reduction" },
                TruthLabel { func: "main", ordinal: 2, parallelizable: true, note: "block-parallel encode" },
                TruthLabel { func: "main", ordinal: 3, parallelizable: true, note: "verification — reduction behind a guard (expected detector miss)" },
            ],
        },
        CorpusProgram {
            name: "mandelbrot",
            domain: "fractals",
            source: programs2::MANDELBROT,
            labels: &[TruthLabel {
                func: "main",
                ordinal: 1,
                parallelizable: true,
                note: "pixel-parallel escape computation",
            }],
        },
        CorpusProgram {
            name: "montecarlo",
            domain: "stochastic simulation",
            source: programs2::MONTECARLO,
            labels: &[TruthLabel {
                func: "main",
                ordinal: 1,
                parallelizable: true,
                note: "hit-count reduction over pre-drawn samples",
            }],
        },
        CorpusProgram {
            name: "spellcheck",
            domain: "text tooling",
            source: programs2::SPELLCHECK,
            labels: &[
                TruthLabel { func: "main", ordinal: 0, parallelizable: true, note: "dictionary-probe pipeline" },
                TruthLabel { func: "main", ordinal: 1, parallelizable: true, note: "error-count reduction" },
            ],
        },
        CorpusProgram {
            name: "kmeans",
            domain: "machine learning",
            source: programs2::KMEANS,
            labels: &[
                TruthLabel { func: "main", ordinal: 2, parallelizable: true, note: "pointwise assignment DOALL" },
                TruthLabel { func: "main", ordinal: 3, parallelizable: true, note: "centroid update pipeline (sums ∥ counts stages)" },
                TruthLabel { func: "nearest", ordinal: 0, parallelizable: true, note: "distance pipeline with min-selection stage" },
            ],
        },
        CorpusProgram {
            name: "audiofir",
            domain: "signal processing",
            source: programs2::AUDIOFIR,
            labels: &[
                TruthLabel { func: "main", ordinal: 2, parallelizable: true, note: "FIR convolution DOALL" },
                TruthLabel { func: "main", ordinal: 3, parallelizable: true, note: "copy loop — needs index-write restructuring (expected detector miss)" },
                TruthLabel { func: "main", ordinal: 5, parallelizable: true, note: "energy reduction" },
            ],
        },
        CorpusProgram {
            name: "logtriage",
            domain: "operations tooling",
            source: programs2::LOGTRIAGE,
            labels: &[
                TruthLabel { func: "main", ordinal: 1, parallelizable: true, note: "log-parse pipeline" },
                TruthLabel { func: "main", ordinal: 3, parallelizable: true, note: "slow-request count — reduction behind a guard (expected detector miss)" },
            ],
        },
        CorpusProgram {
            name: "graph_bfs",
            domain: "graph algorithms",
            source: programs3::GRAPH_BFS,
            labels: &[TruthLabel {
                func: "main",
                ordinal: 5,
                parallelizable: true,
                note: "distance-sum reduction (frontier expansion itself carries conflicts)",
            }],
        },
        CorpusProgram {
            name: "primes",
            domain: "number theory",
            source: programs3::PRIMES,
            labels: &[
                TruthLabel { func: "main", ordinal: 2, parallelizable: true, note: "inner sieve strides are disjoint for a fixed prime" },
                TruthLabel { func: "main", ordinal: 4, parallelizable: true, note: "pointwise primality audit" },
                TruthLabel { func: "main", ordinal: 5, parallelizable: true, note: "agreement count — reduction behind a guard (expected detector miss)" },
            ],
        },
        CorpusProgram {
            name: "polyeval",
            domain: "numerics",
            source: programs3::POLYEVAL,
            labels: &[
                TruthLabel { func: "main", ordinal: 1, parallelizable: true, note: "pointwise polynomial evaluation" },
                TruthLabel { func: "main", ordinal: 3, parallelizable: true, note: "forward differences read only the input series" },
                TruthLabel { func: "main", ordinal: 4, parallelizable: true, note: "difference-sum reduction" },
            ],
        },
        CorpusProgram {
            name: "sensor_smooth",
            domain: "time series",
            source: programs3::SENSOR_SMOOTH,
            labels: &[
                TruthLabel { func: "window", ordinal: 0, parallelizable: true, note: "window accumulation is a pair of reductions" },
                TruthLabel { func: "main", ordinal: 2, parallelizable: true, note: "windowed smoothing reads only the input" },
            ],
        },
        CorpusProgram {
            name: "transpose",
            domain: "dense linear algebra",
            source: programs3::TRANSPOSE,
            labels: &[
                TruthLabel { func: "main", ordinal: 2, parallelizable: true, note: "transpose writes each output cell once" },
                TruthLabel { func: "main", ordinal: 3, parallelizable: true, note: "asymmetry reduction" },
            ],
        },
        CorpusProgram {
            name: "tokenizer",
            domain: "parsing",
            source: programs3::TOKENIZER,
            labels: &[
                TruthLabel { func: "main", ordinal: 1, parallelizable: true, note: "pointwise token classification" },
                TruthLabel { func: "main", ordinal: 2, parallelizable: true, note: "operator count — reduction behind a guard (expected detector miss)" },
            ],
        },
    ]
}

/// The user-study benchmark.
pub fn raytracer_program() -> CorpusProgram {
    all_programs().into_iter().find(|p| p.name == "raytracer").expect("raytracer in corpus")
}

/// The AviStream program of Fig. 3 (quickstart example).
pub fn avistream_program() -> CorpusProgram {
    all_programs().into_iter().find(|p| p.name == "avistream").expect("avistream in corpus")
}

#[cfg(test)]
mod tests {
    use super::*;
    use patty_analysis::collect_loops;

    #[test]
    fn every_program_parses_and_labels_resolve() {
        for prog in all_programs() {
            let p = prog.parse();
            let loops = collect_loops(&p);
            let truth = prog.truth_loop_ids(&loops);
            let expected = prog.labels.iter().filter(|l| l.parallelizable).count();
            assert_eq!(
                truth.len(),
                expected,
                "{}: labels must resolve to loops (got {}, want {})",
                prog.name,
                truth.len(),
                expected
            );
        }
    }

    #[test]
    fn corpus_covers_multiple_domains() {
        let domains: std::collections::BTreeSet<&str> =
            all_programs().iter().map(|p| p.domain).collect();
        assert!(domains.len() >= 6, "domains: {domains:?}");
    }

    #[test]
    fn raytracer_has_three_truth_locations() {
        let rt = raytracer_program();
        let loops = collect_loops(&rt.parse());
        assert_eq!(rt.truth_loop_ids(&loops).len(), 3);
    }
}
