//! The RayTracing study benchmark (Section 4.1).
//!
//! "We selected RayTracing as single benchmark program. The implementation
//! consisted of 13 classes and 173 lines of code. We manually analyzed
//! this program before to identify all locations that could profit from
//! parallelization" — three locations, of which the built-in profiler
//! reveals only one (the hot render loop), which is why the manual
//! control group missed the other two and why they produced
//! false positives on racy-looking loops.
//!
//! Our version mirrors that structure: 13 classes, ~170 lines, exactly
//! three ground-truth parallel locations with very different runtime
//! shares (a hot row-render DOALL, a medium gamma pipeline, a cold
//! brightness reduction), plus two "trap" loops that look parallel but
//! carry real dependencies (the source of the manual group's false
//! positives).

/// The ray tracer source (minilang).
pub const RAYTRACER: &str = r#"
class Vec3 {
    var x = 0;
    var y = 0;
    var z = 0;
    fn init(a, b, c) { this.x = a; this.y = b; this.z = c; }
    fn dot(o) { return this.x * o.x + this.y * o.y + this.z * o.z; }
    fn scale(s) { return new Vec3(this.x * s, this.y * s, this.z * s); }
    fn sub(o) { return new Vec3(this.x - o.x, this.y - o.y, this.z - o.z); }
}
class Ray {
    var origin = null;
    var dir = null;
    fn init(o, d) { this.origin = o; this.dir = d; }
}
class Sphere {
    var center = null;
    var radius = 0;
    var color = 0;
    fn init(c, r, col) { this.center = c; this.radius = r; this.color = col; }
    fn hit(ray) {
        work(12);
        var oc = ray.origin.sub(this.center);
        var b = oc.dot(ray.dir);
        var c = oc.dot(oc) - this.radius * this.radius;
        var disc = b * b - c;
        if (disc < 0) { return 0 - 1; }
        return abs(0 - b - floor(sqrt(float(abs(disc)))));
    }
}
class Camera {
    var fov = 90;
    fn makeRay(px, py) {
        return new Ray(new Vec3(0, 0, 0), new Vec3(px - 8, py - 8, 16));
    }
}
class Scene {
    var spheres = [];
    fn add(s) { this.spheres.add(s); }
}
class SceneBuilder {
    var built = 0;
    fn build() {
        var scene = new Scene();
        var i = 0;
        while (i < 6) {
            scene.add(new Sphere(new Vec3(i * 3 - 9, 0, 20 + i), 2 + i % 2, i * 40));
            i = i + 1;
        }
        this.built = 1;
        return scene;
    }
}
class Shader {
    var ambient = 10;
    fn shade(score) {
        work(8);
        if (score < 0) { return this.ambient; }
        return this.ambient + score % 64;
    }
}
class Tracer {
    var scene = null;
    var shader = null;
    fn init(sc, sh) { this.scene = sc; this.shader = sh; }
    fn trace(ray) {
        var bestScore = 0 - 1;
        foreach (s in this.scene.spheres) {
            bestScore = pickBetter(bestScore, s.hit(ray), s.color);
        }
        return this.shader.shade(bestScore);
    }
}
class Image {
    var pixels = [];
    var width = 0;
    fn init(w) { this.width = w; }
    fn set(p) { this.pixels.add(p); }
}
class Histogram {
    var buckets = [0, 0, 0, 0];
    var total = 0;
    fn record(v) {
        var b = v % 4;
        this.buckets[b] = this.buckets[b] + 1;
        this.total = this.total + 1;
    }
}
class GammaFilter {
    var gamma = 2;
    fn apply(v) { work(3); return v * this.gamma % 256; }
}
class Smoother {
    var value = 0;
    fn fold(p) { this.value = (this.value + p) / 2; }
}
class Renderer {
    var camera = null;
    var tracer = null;
    fn init(cam, tr) { this.camera = cam; this.tracer = tr; }
    fn renderRow(y, width) {
        var row = [];
        for (var x = 0; x < width; x = x + 1) {
            row.add(this.tracer.trace(this.camera.makeRay(x, y)));
        }
        return row;
    }
}
fn pickBetter(best, t, color) {
    if (t < 0) { return best; }
    var score = t * 1000 + color;
    if (best < 0) { return score; }
    if (score < best) { return score; }
    return best;
}
fn main() {
    var builder = new SceneBuilder();
    var scene = builder.build();
    var shader = new Shader();
    var tracer = new Tracer(scene, shader);
    var camera = new Camera();
    var renderer = new Renderer(camera, tracer);
    var width = 16;
    var height = 12;
    var rows = [0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0];

    // Location 1 (HOT — the one the profiler reveals): independent rows.
    for (var y = 0; y < height; y = y + 1) {
        rows[y] = renderer.renderRow(y, width);
    }

    // Flatten rows into the image (ordered append: not a candidate).
    var image = new Image(width);
    foreach (r in rows) {
        foreach (p in r) {
            image.set(p);
        }
    }

    // Trap A: looks parallel, but every iteration bumps the shared
    // histogram (the manual group's false positive).
    var histo = new Histogram();
    foreach (p in image.pixels) {
        histo.record(p);
    }

    // Location 2 (medium): two-stage post-processing pipeline.
    var gamma = new GammaFilter();
    var output = [];
    foreach (p in image.pixels) {
        var g = gamma.apply(p);
        output.add(g);
    }

    // Location 3 (cold, easy to overlook): brightness reduction.
    var brightness = 0;
    foreach (p in output) {
        brightness += p;
    }

    // Trap B: sequential smoothing chain (carried dependence).
    var smoother = new Smoother();
    foreach (p in output) {
        smoother.fold(p);
    }

    print(histo.total, brightness, smoother.value);
}
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use patty_minilang::{parse, run, InterpOptions};

    #[test]
    fn raytracer_parses_and_runs() {
        let p = parse(RAYTRACER).unwrap();
        let out = run(&p, InterpOptions::default()).unwrap();
        assert_eq!(out.output.len(), 1);
        // histogram total = number of pixels (16 × 12)
        assert!(out.output[0].starts_with("192 "), "{}", out.output[0]);
    }

    #[test]
    fn raytracer_has_paper_scale() {
        let p = parse(RAYTRACER).unwrap();
        assert_eq!(p.classes.len(), 13, "the paper's benchmark has 13 classes");
        let loc = RAYTRACER
            .lines()
            .filter(|l| {
                let t = l.trim();
                !t.is_empty() && !t.starts_with("//")
            })
            .count();
        assert!(
            (150..=200).contains(&loc),
            "paper reports 173 lines; ours has {loc}"
        );
    }

    #[test]
    fn render_loop_dominates_runtime() {
        let p = parse(RAYTRACER).unwrap();
        let out = run(&p, InterpOptions::default()).unwrap();
        let model = patty_analysis::SemanticModel::build_static(&p).with_profile(out.profile);
        let mut best = (0.0f64, 0u32);
        for l in &model.loops {
            if l.func != "main" {
                continue;
            }
            let share = model.runtime_share(l.id);
            if share > best.0 {
                best = (share, l.span.line);
            }
        }
        assert!(best.0 > 0.5, "render loop share {}", best.0);
    }
}
