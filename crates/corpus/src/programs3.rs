//! Corpus extension, batch 3: graph, sorting, numeric and text domains.

/// Breadth-first distance labeling on a small graph. Frontier expansion
/// mutates shared `dist`/frontier state — a classic "looks parallel"
/// workload whose per-level inner loop carries real conflicts through
/// `dist`, while the edge-weight audit below is a clean reduction.
pub const GRAPH_BFS: &str = r#"
class Graph {
    var adj = [];
    fn init(n) {
        for (var i = 0; i < n; i = i + 1) {
            this.adj.add([]);
        }
    }
    fn edge(a, b) {
        this.adj[a].add(b);
        this.adj[b].add(a);
    }
}
fn main() {
    var n = 10;
    var g = new Graph(n);
    for (var i = 0; i < 9; i = i + 1) {
        g.edge(i, i + 1);
    }
    g.edge(0, 5);
    g.edge(2, 7);

    var dist = [];
    for (var i = 0; i < 10; i = i + 1) {
        dist.add(0 - 1);
    }
    dist[0] = 0;
    var frontier = [0];
    var level = 0;
    while (len(frontier) > 0) {
        var next = [];
        foreach (u in frontier) {
            foreach (v in g.adj[u]) {
                if (dist[v] < 0) {
                    dist[v] = level + 1;
                    next.add(v);
                }
            }
        }
        frontier = next;
        level = level + 1;
    }

    // audit: total distance (clean reduction)
    var total = 0;
    foreach (d in dist) {
        total += d;
    }
    print(level, total);
}
"#;

/// Prime sieve plus per-number primality audit: the sieve writes overlap
/// (multiples), the audit is pointwise independent.
pub const PRIMES: &str = r#"
fn isPrime(n) {
    work(20);
    if (n < 2) { return 0; }
    for (var d = 2; d * d <= n; d = d + 1) {
        if (n % d == 0) { return 0; }
    }
    return 1;
}
fn main() {
    var limit = 40;
    var mark = [];
    for (var i = 0; i < 41; i = i + 1) {
        mark.add(1);
    }
    mark[0] = 0;
    mark[1] = 0;
    // sieve: writes to shared multiples (overlapping strides)
    for (var p = 2; p * p <= limit; p = p + 1) {
        if (mark[p] == 1) {
            for (var m = p * p; m <= limit; m = m + p) {
                mark[m] = 0;
            }
        }
    }
    // pointwise audit (parallel)
    var flags = [];
    for (var i = 0; i < 41; i = i + 1) {
        flags.add(0);
    }
    for (var i = 0; i < 41; i = i + 1) {
        flags[i] = isPrime(i);
    }
    var agreed = 0;
    for (var i = 0; i < 41; i = i + 1) {
        if (flags[i] == mark[i]) { agreed += 1; }
    }
    print(agreed);
}
"#;

/// Polynomial evaluation over a point grid (Horner inside, pointwise
/// outside) and a derivative check.
pub const POLYEVAL: &str = r#"
class Poly {
    var coeffs = [];
    fn init(cs) { this.coeffs = cs; }
    fn eval(x) {
        work(30);
        var acc = 0;
        foreach (c in this.coeffs) {
            acc = acc * x + c;
        }
        return acc;
    }
}
fn main() {
    var p = new Poly([2, 0, 0 - 3, 1]);
    var ys = [];
    for (var i = 0; i < 16; i = i + 1) {
        ys.add(0);
    }
    // pointwise evaluation (parallel)
    for (var i = 0; i < 16; i = i + 1) {
        ys[i] = p.eval(i - 8);
    }
    // forward differences: reads neighbour written the iteration before
    var diffs = [];
    for (var i = 0; i < 16; i = i + 1) {
        diffs.add(0);
    }
    for (var i = 1; i < 16; i = i + 1) {
        diffs[i] = ys[i] - ys[i - 1];
    }
    var sum = 0;
    foreach (d in diffs) {
        sum += d;
    }
    print(ys[0], ys[15], sum);
}
"#;

/// Moving-average smoothing of a sensor series: window reads only the
/// input (parallel); the cumulative drift is a scan (sequential).
pub const SENSOR_SMOOTH: &str = r#"
fn window(series, i) {
    work(25);
    var lo = max(0, i - 2);
    var hi = min(len(series) - 1, i + 2);
    var acc = 0;
    var count = 0;
    for (var k = lo; k <= hi; k = k + 1) {
        acc += series[k];
        count += 1;
    }
    return acc / count;
}
fn main() {
    var series = [];
    for (var i = 0; i < 32; i = i + 1) {
        series.add((i * 23 + 11) % 97);
    }
    var smooth = [];
    for (var i = 0; i < 32; i = i + 1) {
        smooth.add(0);
    }
    // windowed smoothing: reads input only (parallel)
    for (var i = 0; i < 32; i = i + 1) {
        smooth[i] = window(series, i);
    }
    // cumulative drift: a prefix scan (sequential)
    var drift = 0;
    var maxDrift = 0;
    for (var i = 0; i < 32; i = i + 1) {
        drift = drift + series[i] - smooth[i];
        maxDrift = max(maxDrift, abs(drift));
    }
    print(smooth[0], smooth[31], maxDrift);
}
"#;

/// Matrix transpose and symmetric check — disjoint index writes vs a
/// reduction over pairs.
pub const TRANSPOSE: &str = r#"
fn idx(r, c, n) { return r * n + c; }
fn main() {
    var n = 8;
    var m = [];
    for (var i = 0; i < 64; i = i + 1) {
        m.add((i * 7 + 3) % 29);
    }
    var t = [];
    for (var i = 0; i < 64; i = i + 1) {
        t.add(0);
    }
    // transpose: each output cell written once (parallel)
    for (var i = 0; i < 64; i = i + 1) {
        t[i] = m[idx(i % n, i / n, n)];
    }
    // asymmetry measure: reduction
    var asym = 0;
    for (var i = 0; i < 64; i = i + 1) {
        asym += abs(m[i] - t[i]);
    }
    print(asym);
}
"#;

/// Tiny expression tokenizer: the scanner is a stateful character walk
/// (sequential), token classification afterwards is pointwise.
pub const TOKENIZER: &str = r#"
fn classify(tok) {
    work(35);
    if (tok == "+" || tok == "*" || tok == "-") { return 1; }
    if (tok == "(" || tok == ")") { return 2; }
    return 0;
}
fn main() {
    var text = "12 + ( 34 * 5 ) - 678";
    var toks = text.split(" ");
    var kinds = [];
    for (var i = 0; i < len(toks); i = i + 1) {
        kinds.add(0);
    }
    // pointwise classification (parallel)
    for (var i = 0; i < len(toks); i = i + 1) {
        kinds[i] = classify(toks[i]);
    }
    // paren balance: stateful scan (sequential)
    var depth = 0;
    var balanced = 1;
    foreach (t in toks) {
        if (t == "(") { depth = depth + 1; }
        if (t == ")") {
            depth = depth - 1;
            if (depth < 0) { balanced = 0; }
        }
    }
    if (depth != 0) { balanced = 0; }
    var operators = 0;
    foreach (k in kinds) {
        if (k == 1) { operators += 1; }
    }
    print(balanced, operators);
}
"#;

#[cfg(test)]
mod tests {
    use patty_minilang::{parse, run, InterpOptions};

    #[test]
    fn batch3_programs_parse_and_run() {
        for (name, src) in [
            ("graph_bfs", super::GRAPH_BFS),
            ("primes", super::PRIMES),
            ("polyeval", super::POLYEVAL),
            ("sensor_smooth", super::SENSOR_SMOOTH),
            ("transpose", super::TRANSPOSE),
            ("tokenizer", super::TOKENIZER),
        ] {
            let p = parse(src).unwrap_or_else(|e| panic!("{name}: {e}"));
            let out = run(&p, InterpOptions::default())
                .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(!out.output.is_empty(), "{name} must print");
        }
    }

    #[test]
    fn primes_audit_agrees_with_sieve() {
        let p = parse(super::PRIMES).unwrap();
        let out = run(&p, InterpOptions::default()).unwrap();
        assert_eq!(out.output[0], "41", "sieve and trial division must agree");
    }

    #[test]
    fn transpose_of_transpose_detects_asymmetry() {
        let p = parse(super::TRANSPOSE).unwrap();
        let out = run(&p, InterpOptions::default()).unwrap();
        let asym: i64 = out.output[0].parse().unwrap();
        assert!(asym > 0, "the matrix is not symmetric");
    }

    #[test]
    fn tokenizer_finds_balance_and_operators() {
        let p = parse(super::TOKENIZER).unwrap();
        let out = run(&p, InterpOptions::default()).unwrap();
        assert_eq!(out.output[0], "1 3");
    }
}
