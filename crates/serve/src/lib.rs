//! patty-serve — the long-running job service behind `patty serve`.
//!
//! The one-shot CLI re-analyzes, re-tunes and re-traces a program on
//! every invocation. This crate turns that work into a resident
//! service: every artifact (detection result, tuned config, fault
//! report, trace report) is content-addressed by a stable FNV-1a hash
//! of `(job kind, program source)` into a sharded in-memory cache with
//! an on-disk patty-json spill and an LRU bound, so a repeat job is a
//! sub-millisecond hit instead of a recompute.
//!
//! The crate is deliberately generic over *what* a job computes: the
//! [`JobRunner`] trait is implemented by `patty-tool` (which owns the
//! language pipeline), while this crate owns everything a service
//! needs around it —
//!
//! - [`ShardedCache`]: N shard locks, LRU per shard, write-through
//!   spill to `<dir>/<kind>-<hash>.json`, per-kind hit/miss counters;
//! - [`Admission`]: bounded concurrency + bounded queue with a
//!   structured `retry_after` load-shed reject;
//! - single-flight dedup: identical in-flight jobs coalesce onto one
//!   computation, waiters share the leader's result;
//! - per-job deadlines enforced by a watchdog thread through the
//!   runtime's `CancelToken` machinery;
//! - a patty-json line protocol (one request object per line, one
//!   response object per line) served over TCP or any `BufRead`
//!   loopback, with jobs executing on the shared
//!   `patty_runtime::executor` pool;
//! - a live `patty_serve_*` scrape of the whole plane through
//!   `patty_obs::MetricsRegistry`.

mod admission;
mod cache;
mod metrics;
mod protocol;
mod service;

pub use admission::{Admission, AdmissionConfig, Permit, Shed};
pub use cache::{CacheConfig, CacheSource, CacheStats, ShardedCache};
pub use metrics::{ServeMetrics, STATS_OP};
pub use protocol::{error_response, ok_response, parse_request, shed_response, Request};
pub use service::{JobCtl, JobRunner, ServeConfig, Served, Service};

/// The cacheable job kinds a service accepts. `stats` and `shutdown`
/// are protocol ops handled by the service itself, not job kinds —
/// they never touch the artifact cache.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum JobKind {
    Analyze,
    Tune,
    Faultcheck,
    Trace,
}

impl JobKind {
    pub const ALL: [JobKind; 4] = [
        JobKind::Analyze,
        JobKind::Tune,
        JobKind::Faultcheck,
        JobKind::Trace,
    ];

    pub fn as_str(self) -> &'static str {
        match self {
            JobKind::Analyze => "analyze",
            JobKind::Tune => "tune",
            JobKind::Faultcheck => "faultcheck",
            JobKind::Trace => "trace",
        }
    }

    pub fn parse(op: &str) -> Option<JobKind> {
        match op {
            "analyze" => Some(JobKind::Analyze),
            "tune" => Some(JobKind::Tune),
            "faultcheck" => Some(JobKind::Faultcheck),
            "trace" => Some(JobKind::Trace),
            _ => None,
        }
    }

    /// Dense index for per-kind counter arrays.
    pub fn index(self) -> usize {
        match self {
            JobKind::Analyze => 0,
            JobKind::Tune => 1,
            JobKind::Faultcheck => 2,
            JobKind::Trace => 3,
        }
    }
}

/// Incremental 64-bit FNV-1a. The artifact cache keys on this hash, so
/// it must stay byte-stable across releases: on-disk spill files are
/// named after it and survive process restarts.
#[derive(Clone, Copy)]
pub struct Fnv(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv {
    pub fn new() -> Fnv {
        Fnv(FNV_OFFSET)
    }

    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for Fnv {
    fn default() -> Fnv {
        Fnv::new()
    }
}

/// One-shot FNV-1a over a byte slice.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv::new();
    h.update(bytes);
    h.finish()
}

/// The content address of a job: kind tag, NUL separator, then the
/// program source, so the same source analyzed and tuned lands on two
/// distinct artifacts.
pub fn job_hash(kind: JobKind, source: &str) -> u64 {
    let mut h = Fnv::new();
    h.update(kind.as_str().as_bytes());
    h.update(&[0]);
    h.update(source.as_bytes());
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn job_hash_separates_kinds_and_sources() {
        let h = job_hash(JobKind::Analyze, "x = 1");
        assert_ne!(h, job_hash(JobKind::Tune, "x = 1"));
        assert_ne!(h, job_hash(JobKind::Analyze, "x = 2"));
        assert_eq!(h, job_hash(JobKind::Analyze, "x = 1"));
    }
}
