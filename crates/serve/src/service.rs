//! The service proper: single-flight dedup, deadline watchdog, job
//! execution on the shared executor pool, the line protocol loop, and
//! the live metrics scrape.

use crate::admission::{Admission, AdmissionConfig};
use crate::cache::{CacheConfig, CacheSource, ShardedCache};
use crate::metrics::{ServeMetrics, OPS, STATS_OP};
use crate::protocol::{error_response, ok_response, parse_request, shed_response, Request};
use crate::{job_hash, JobKind};
use patty_json::Json;
use patty_obs::{MetricKind, MetricsRegistry};
use patty_runtime::fault::panic_payload;
use patty_runtime::{CancelToken, Executor, SpawnMode};
use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// What a job implementation gets to cooperate with the service:
/// the job's cancel token (the deadline watchdog cancels it when the
/// budget runs out) and the remaining time, for passing into
/// `RunOptions` of any plan the job executes.
pub struct JobCtl {
    cancel: CancelToken,
    deadline: Duration,
    started: Instant,
}

impl JobCtl {
    /// A detached control for direct runner tests.
    pub fn unbounded() -> JobCtl {
        JobCtl {
            cancel: CancelToken::new(),
            deadline: Duration::from_secs(3600),
            started: Instant::now(),
        }
    }

    pub fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }

    /// Time left in the job's budget (zero when overdrawn).
    pub fn remaining(&self) -> Duration {
        self.deadline.saturating_sub(self.started.elapsed())
    }

    /// Cooperative cancellation point: call between phases; an `Err`
    /// means the deadline watchdog (or shutdown) cancelled this job.
    pub fn checkpoint(&self) -> Result<(), String> {
        if self.cancel.is_cancelled() || self.remaining().is_zero() {
            Err("job cancelled: deadline exceeded".to_string())
        } else {
            Ok(())
        }
    }
}

/// Computes one job. Implementations must be panic-tolerant callers:
/// the service catches panics and turns them into error responses,
/// and the admission permit is released either way.
pub trait JobRunner: Send + Sync + 'static {
    fn run(&self, kind: JobKind, source: &str, ctl: &JobCtl) -> Result<Json, String>;
}

impl<F> JobRunner for F
where
    F: Fn(JobKind, &str, &JobCtl) -> Result<Json, String> + Send + Sync + 'static,
{
    fn run(&self, kind: JobKind, source: &str, ctl: &JobCtl) -> Result<Json, String> {
        self(kind, source, ctl)
    }
}

#[derive(Clone, Debug)]
pub struct ServeConfig {
    pub cache: CacheConfig,
    pub admission: AdmissionConfig,
    /// Wall budget per job; the watchdog cancels the job's token past it.
    pub job_deadline: Duration,
    /// Run job bodies inside the shared executor pool (the default).
    /// Off runs them on the calling thread — for deterministic tests.
    pub use_executor: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            cache: CacheConfig::default(),
            admission: AdmissionConfig::default(),
            job_deadline: Duration::from_secs(30),
            use_executor: true,
        }
    }
}

/// The outcome of one submitted job.
#[derive(Clone, Debug)]
pub enum Served {
    /// Served from the artifact cache.
    Hit {
        result: Json,
        source: CacheSource,
        micros: u64,
    },
    /// Computed fresh (and now cached).
    Computed { result: Json, micros: u64 },
    /// Coalesced onto an identical in-flight job; shares its result.
    Coalesced { result: Json, micros: u64 },
    /// Load-shed by admission control.
    Shed { retry_after_ms: u64 },
    /// The job failed; `deadline` distinguishes budget exhaustion.
    Failed {
        error: String,
        deadline: bool,
        micros: u64,
    },
}

impl Served {
    /// The `cached` field of the wire response.
    pub fn cached_tag(&self) -> &'static str {
        match self {
            Served::Hit { source, .. } => source.as_str(),
            Served::Computed { .. } => "no",
            Served::Coalesced { .. } => "coalesced",
            _ => "-",
        }
    }
}

enum FlightResult {
    Ok(Json),
    Shed(u64),
    Fail { error: String, deadline: bool },
}

struct Flight {
    slot: Mutex<Option<FlightResult>>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Flight {
        Flight {
            slot: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    fn fill(&self, result: FlightResult) {
        *self.slot.lock().unwrap() = Some(result);
        self.cv.notify_all();
    }

    fn wait(&self) -> FlightResult {
        let mut slot = self.slot.lock().unwrap();
        loop {
            if let Some(res) = slot.take() {
                // Put a clone back for any other waiter.
                let copy = match &res {
                    FlightResult::Ok(v) => FlightResult::Ok(v.clone()),
                    FlightResult::Shed(r) => FlightResult::Shed(*r),
                    FlightResult::Fail { error, deadline } => FlightResult::Fail {
                        error: error.clone(),
                        deadline: *deadline,
                    },
                };
                *slot = Some(copy);
                return res;
            }
            slot = self.cv.wait(slot).unwrap();
        }
    }
}

/// Deadline watchdog: one thread cancelling expired job tokens, so a
/// wedged job body cannot hold its admission slot past the budget.
struct WatchdogInner {
    jobs: Mutex<HashMap<u64, (Instant, CancelToken)>>,
    cv: Condvar,
    stop: AtomicBool,
    fired: AtomicU64,
}

struct Watchdog {
    inner: Arc<WatchdogInner>,
    seq: AtomicU64,
    handle: Mutex<Option<JoinHandle<()>>>,
}

impl Watchdog {
    fn new() -> Watchdog {
        let inner = Arc::new(WatchdogInner {
            jobs: Mutex::new(HashMap::new()),
            cv: Condvar::new(),
            stop: AtomicBool::new(false),
            fired: AtomicU64::new(0),
        });
        let thread_inner = Arc::clone(&inner);
        let handle = std::thread::Builder::new()
            .name("patty-serve-watchdog".into())
            .spawn(move || watchdog_main(&thread_inner))
            .expect("spawn watchdog thread");
        Watchdog {
            inner,
            seq: AtomicU64::new(0),
            handle: Mutex::new(Some(handle)),
        }
    }

    fn register(&self, deadline_at: Instant, token: CancelToken) -> u64 {
        let id = self.seq.fetch_add(1, Ordering::Relaxed);
        self.inner
            .jobs
            .lock()
            .unwrap()
            .insert(id, (deadline_at, token));
        self.inner.cv.notify_all();
        id
    }

    fn unregister(&self, id: u64) {
        self.inner.jobs.lock().unwrap().remove(&id);
    }

    fn fired_total(&self) -> u64 {
        self.inner.fired.load(Ordering::Relaxed)
    }
}

impl Drop for Watchdog {
    fn drop(&mut self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        self.inner.cv.notify_all();
        if let Some(handle) = self.handle.lock().unwrap().take() {
            let _ = handle.join();
        }
    }
}

fn watchdog_main(inner: &WatchdogInner) {
    let mut jobs = inner.jobs.lock().unwrap();
    loop {
        if inner.stop.load(Ordering::SeqCst) {
            return;
        }
        let now = Instant::now();
        let mut next: Option<Instant> = None;
        let expired: Vec<u64> = jobs
            .iter()
            .filter_map(|(&id, (at, _))| {
                if *at <= now {
                    Some(id)
                } else {
                    next = Some(next.map_or(*at, |n| n.min(*at)));
                    None
                }
            })
            .collect();
        for id in expired {
            if let Some((_, token)) = jobs.remove(&id) {
                token.cancel();
                inner.fired.fetch_add(1, Ordering::Relaxed);
            }
        }
        let wait = next
            .map(|at| at.saturating_duration_since(now))
            .unwrap_or(Duration::from_millis(100))
            .min(Duration::from_millis(100));
        let (next_jobs, _) = inner.cv.wait_timeout(jobs, wait).unwrap();
        jobs = next_jobs;
    }
}

pub struct Service<R: JobRunner> {
    runner: R,
    cfg: ServeConfig,
    cache: ShardedCache,
    admission: Admission,
    metrics: ServeMetrics,
    inflight: Mutex<HashMap<u64, Arc<Flight>>>,
    watchdog: Watchdog,
    stop: AtomicBool,
}

fn elapsed_us(start: Instant) -> u64 {
    start.elapsed().as_micros() as u64
}

impl<R: JobRunner> Service<R> {
    pub fn new(runner: R, cfg: ServeConfig) -> Service<R> {
        Service {
            cache: ShardedCache::new(cfg.cache.clone()),
            admission: Admission::new(cfg.admission.clone()),
            metrics: ServeMetrics::new(),
            inflight: Mutex::new(HashMap::new()),
            watchdog: Watchdog::new(),
            stop: AtomicBool::new(false),
            runner,
            cfg,
        }
    }

    pub fn cache(&self) -> &ShardedCache {
        &self.cache
    }

    pub fn admission(&self) -> &Admission {
        &self.admission
    }

    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// Deadlines the watchdog has enforced.
    pub fn deadlines_fired(&self) -> u64 {
        self.watchdog.fired_total()
    }

    /// Ask the serve loops to wind down.
    pub fn request_shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    pub fn shutdown_requested(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Submit one job: cache → single-flight → admission → compute.
    pub fn submit(&self, kind: JobKind, source: &str) -> Served {
        let start = Instant::now();
        let op = kind.index();
        self.metrics.bump_job(op);
        let hash = job_hash(kind, source);
        if let Some((result, cache_source)) = self.cache.get(kind, hash) {
            let micros = elapsed_us(start);
            self.metrics.record(op, micros);
            return Served::Hit {
                result,
                source: cache_source,
                micros,
            };
        }

        // Single-flight: exactly one leader computes; identical
        // concurrent requests wait on the leader's flight.
        let (flight, leader) = {
            let mut inflight = self.inflight.lock().unwrap();
            match inflight.get(&hash) {
                Some(f) => (Arc::clone(f), false),
                None => {
                    let f = Arc::new(Flight::new());
                    inflight.insert(hash, Arc::clone(&f));
                    (f, true)
                }
            }
        };

        if !leader {
            self.metrics.bump_singleflight();
            let micros_of = |s: Instant| elapsed_us(s);
            return match flight.wait() {
                FlightResult::Ok(result) => {
                    let micros = micros_of(start);
                    self.metrics.record(op, micros);
                    Served::Coalesced { result, micros }
                }
                FlightResult::Shed(retry_after_ms) => Served::Shed { retry_after_ms },
                FlightResult::Fail { error, deadline } => Served::Failed {
                    error,
                    deadline,
                    micros: micros_of(start),
                },
            };
        }

        let outcome = self.lead(kind, hash, source, start);
        let flight_result = match &outcome {
            Served::Computed { result, .. } => FlightResult::Ok(result.clone()),
            Served::Shed { retry_after_ms } => FlightResult::Shed(*retry_after_ms),
            Served::Failed {
                error, deadline, ..
            } => FlightResult::Fail {
                error: error.clone(),
                deadline: *deadline,
            },
            // The leader took the miss path; hits happen before the
            // flight is registered.
            Served::Hit { .. } | Served::Coalesced { .. } => unreachable!(),
        };
        self.inflight.lock().unwrap().remove(&hash);
        flight.fill(flight_result);
        outcome
    }

    fn lead(&self, kind: JobKind, hash: u64, source: &str, start: Instant) -> Served {
        let permit = match self.admission.admit() {
            Ok(p) => p,
            Err(shed) => {
                return Served::Shed {
                    retry_after_ms: shed.retry_after_ms,
                }
            }
        };
        let ctl = JobCtl {
            cancel: CancelToken::new(),
            deadline: self.cfg.job_deadline,
            started: Instant::now(),
        };
        let watch_id = self
            .watchdog
            .register(ctl.started + self.cfg.job_deadline, ctl.cancel.clone());
        let result = self.run_job(kind, source, &ctl);
        self.watchdog.unregister(watch_id);
        let overdrawn = ctl.cancel.is_cancelled() || ctl.remaining().is_zero();
        drop(permit);

        let micros = elapsed_us(start);
        match result {
            Ok(result) => {
                self.cache.insert(kind, hash, &result);
                self.metrics.record(kind.index(), micros);
                Served::Computed { result, micros }
            }
            Err(error) => {
                if overdrawn {
                    self.metrics.bump_deadline();
                } else {
                    self.metrics.bump_error();
                }
                Served::Failed {
                    error,
                    deadline: overdrawn,
                    micros,
                }
            }
        }
    }

    /// Run the job body on the shared executor pool (dogfooding the
    /// runtime this service exists to serve), catching panics.
    fn run_job(&self, kind: JobKind, source: &str, ctl: &JobCtl) -> Result<Json, String> {
        let body = || {
            std::panic::catch_unwind(AssertUnwindSafe(|| self.runner.run(kind, source, ctl)))
                .unwrap_or_else(|payload| Err(format!("job panicked: {}", panic_payload(&*payload))))
        };
        if !self.cfg.use_executor {
            return body();
        }
        let slot: Mutex<Option<Result<Json, String>>> = Mutex::new(None);
        Executor::global().scope(SpawnMode::Pooled, |scope| {
            scope.spawn_resident(|| {
                *slot.lock().unwrap() = Some(body());
            });
        });
        slot.into_inner()
            .unwrap()
            .expect("executor scope returned before the job task ran")
    }

    /// The live `patty_serve_*` scrape plus the executor's own families.
    pub fn scrape(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        let cs = self.cache.stats();
        for kind in JobKind::ALL {
            let labels = [("kind", kind.as_str())];
            let i = kind.index();
            reg.set(
                "patty_serve_cache_hits_total",
                MetricKind::Counter,
                "Jobs served from the in-memory artifact cache.",
                &labels,
                cs.hits[i],
            );
            reg.set(
                "patty_serve_cache_disk_hits_total",
                MetricKind::Counter,
                "Jobs served from the on-disk artifact spill.",
                &labels,
                cs.disk_hits[i],
            );
            reg.set(
                "patty_serve_cache_misses_total",
                MetricKind::Counter,
                "Jobs that required a fresh computation.",
                &labels,
                cs.misses[i],
            );
        }
        reg.set(
            "patty_serve_cache_entries",
            MetricKind::Gauge,
            "Artifacts resident in memory across all shards.",
            &[],
            cs.entries as u64,
        );
        reg.set(
            "patty_serve_cache_evictions_total",
            MetricKind::Counter,
            "LRU evictions across all shards.",
            &[],
            cs.evictions,
        );
        reg.set(
            "patty_serve_cache_inserts_total",
            MetricKind::Counter,
            "Artifacts inserted after a computed job.",
            &[],
            cs.inserts,
        );
        reg.set(
            "patty_serve_cache_spill_errors_total",
            MetricKind::Counter,
            "Failed on-disk spill writes (artifact stays memory-only).",
            &[],
            cs.spill_errors,
        );
        let (running, queued) = self.admission.depth();
        reg.set(
            "patty_serve_running_jobs",
            MetricKind::Gauge,
            "Jobs holding an admission permit right now.",
            &[],
            running as u64,
        );
        reg.set(
            "patty_serve_queue_depth",
            MetricKind::Gauge,
            "Jobs waiting for an admission permit right now.",
            &[],
            queued as u64,
        );
        reg.set(
            "patty_serve_queue_highwater",
            MetricKind::Gauge,
            "Deepest admission queue observed since start.",
            &[],
            self.admission.queue_highwater(),
        );
        reg.set(
            "patty_serve_admitted_total",
            MetricKind::Counter,
            "Jobs granted an admission permit.",
            &[],
            self.admission.admitted_total(),
        );
        reg.set(
            "patty_serve_shed_total",
            MetricKind::Counter,
            "Jobs rejected by admission control with a retry hint.",
            &[],
            self.admission.shed_total(),
        );
        reg.set(
            "patty_serve_singleflight_waits_total",
            MetricKind::Counter,
            "Requests coalesced onto an identical in-flight job.",
            &[],
            self.metrics.singleflight_total(),
        );
        reg.set(
            "patty_serve_job_errors_total",
            MetricKind::Counter,
            "Jobs that failed (panic or language/runtime error).",
            &[],
            self.metrics.errors_total(),
        );
        reg.set(
            "patty_serve_deadline_exceeded_total",
            MetricKind::Counter,
            "Jobs cancelled by the deadline watchdog.",
            &[],
            self.metrics.deadlines_total(),
        );
        for (i, op) in OPS.iter().enumerate() {
            let labels = [("op", *op)];
            reg.set(
                "patty_serve_jobs_total",
                MetricKind::Counter,
                "Requests received, by endpoint.",
                &labels,
                self.metrics.jobs_total(i),
            );
            if let Some(lat) = self.metrics.latency(i) {
                reg.set(
                    "patty_serve_latency_count_total",
                    MetricKind::Counter,
                    "Latency samples recorded, by endpoint.",
                    &labels,
                    lat.count,
                );
                reg.set(
                    "patty_serve_latency_sum_us_total",
                    MetricKind::Counter,
                    "Total request latency in microseconds, by endpoint.",
                    &labels,
                    lat.sum_us,
                );
                for (stat, value) in [
                    ("p50", lat.p50_us),
                    ("p95", lat.p95_us),
                    ("p99", lat.p99_us),
                    ("max", lat.max_us),
                ] {
                    reg.set(
                        "patty_serve_latency_us",
                        MetricKind::Gauge,
                        "Request latency quantiles over the sliding window, by endpoint.",
                        &[("op", op), ("stat", stat)],
                        value,
                    );
                }
            }
        }
        let executor = Executor::global();
        reg.ingest_executor(&executor.stats(), &executor.lane_snapshots());
        reg
    }

    /// Handle one request line; returns the response and whether this
    /// was a shutdown request.
    pub fn handle_line(&self, line: &str) -> (Json, bool) {
        match parse_request(line) {
            Err(e) => (error_response(0, "?", &e, false), false),
            Ok(req) => self.handle_request(&req),
        }
    }

    pub fn handle_request(&self, req: &Request) -> (Json, bool) {
        match req.op.as_str() {
            "stats" => {
                let start = Instant::now();
                self.metrics.bump_job(STATS_OP);
                let reg = self.scrape();
                let micros = elapsed_us(start);
                self.metrics.record(STATS_OP, micros);
                (
                    ok_response(req.id, "stats", "live", micros, reg.to_json_value()),
                    false,
                )
            }
            "shutdown" => {
                self.request_shutdown();
                (
                    Json::obj()
                        .with("id", Json::Int(req.id))
                        .with("op", Json::Str("shutdown".into()))
                        .with("status", Json::Str("ok".into())),
                    true,
                )
            }
            op => match JobKind::parse(op) {
                None => (
                    error_response(
                        req.id,
                        op,
                        &format!(
                            "unknown op {op:?} (expected analyze|tune|faultcheck|trace|stats|shutdown)"
                        ),
                        false,
                    ),
                    false,
                ),
                Some(kind) => {
                    let Some(source) = req.source.as_deref() else {
                        return (
                            error_response(req.id, op, "job request missing `source`", false),
                            false,
                        );
                    };
                    let served = self.submit(kind, source);
                    let cached = served.cached_tag();
                    let resp = match served {
                        Served::Hit { result, micros, .. }
                        | Served::Computed { result, micros }
                        | Served::Coalesced { result, micros } => {
                            ok_response(req.id, op, cached, micros, result)
                        }
                        Served::Shed { retry_after_ms } => {
                            shed_response(req.id, op, retry_after_ms)
                        }
                        Served::Failed {
                            error, deadline, ..
                        } => error_response(req.id, op, &error, deadline),
                    };
                    (resp, false)
                }
            },
        }
    }

    /// Serve the line protocol sequentially from any reader/writer
    /// pair — the `--stdin` loopback and the smoke tests.
    pub fn serve_lines<Rd: BufRead, W: Write>(&self, reader: Rd, mut out: W) -> io::Result<()> {
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let (resp, shutdown) = self.handle_line(line.trim());
            writeln!(out, "{resp}")?;
            out.flush()?;
            if shutdown || self.shutdown_requested() {
                break;
            }
        }
        Ok(())
    }

    /// Accept loop: each connection is a resident task on the shared
    /// executor pool. Returns once a `shutdown` op arrives (or
    /// `request_shutdown` is called) and live connections wind down.
    pub fn serve_tcp(&self, listener: TcpListener) -> io::Result<()> {
        listener.set_nonblocking(true)?;
        Executor::global().scope(SpawnMode::Pooled, |scope| -> io::Result<()> {
            loop {
                if self.shutdown_requested() {
                    return Ok(());
                }
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        scope.spawn_resident(move || {
                            let _ = self.serve_conn(stream);
                        });
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(e) => return Err(e),
                }
            }
        })
    }

    fn serve_conn(&self, stream: TcpStream) -> io::Result<()> {
        // A short read timeout lets the handler notice shutdown while
        // idle; partial lines accumulate across timeouts.
        stream.set_read_timeout(Some(Duration::from_millis(100)))?;
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut out = stream;
        let mut line = String::new();
        loop {
            if self.shutdown_requested() {
                return Ok(());
            }
            match reader.read_line(&mut line) {
                Ok(0) => return Ok(()), // client hung up
                Ok(_) => {
                    if !line.trim().is_empty() {
                        let (resp, shutdown) = self.handle_line(line.trim());
                        writeln!(out, "{resp}")?;
                        out.flush()?;
                        if shutdown {
                            return Ok(());
                        }
                    }
                    line.clear();
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
    }
}
