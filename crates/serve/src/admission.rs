//! Admission control: a concurrency bound plus a bounded wait queue.
//!
//! A job either gets a [`Permit`] (possibly after queueing), or a
//! structured [`Shed`] reject telling the client when to retry. The
//! queue is bounded by construction — under overload the service
//! sheds instead of stalling, and `queue_highwater` proves the bound
//! held.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

#[derive(Clone, Debug)]
pub struct AdmissionConfig {
    /// Jobs running at once.
    pub max_concurrent: usize,
    /// Jobs allowed to wait for a slot; one more is shed.
    pub queue_limit: usize,
    /// How long a queued job waits before it is shed anyway.
    pub max_queue_wait: Duration,
    /// Base retry hint; scaled by the queue depth at shed time.
    pub retry_after: Duration,
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig {
            max_concurrent: 4,
            queue_limit: 16,
            max_queue_wait: Duration::from_secs(5),
            retry_after: Duration::from_millis(25),
        }
    }
}

/// The structured load-shed reject.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Shed {
    pub retry_after_ms: u64,
}

#[derive(Default)]
struct State {
    running: usize,
    queued: usize,
}

pub struct Admission {
    cfg: AdmissionConfig,
    state: Mutex<State>,
    cv: Condvar,
    admitted: AtomicU64,
    shed: AtomicU64,
    queue_hwm: AtomicU64,
}

impl Admission {
    pub fn new(cfg: AdmissionConfig) -> Admission {
        Admission {
            cfg,
            state: Mutex::new(State::default()),
            cv: Condvar::new(),
            admitted: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            queue_hwm: AtomicU64::new(0),
        }
    }

    fn shed_reply(&self, queued: usize) -> Shed {
        self.shed.fetch_add(1, Ordering::Relaxed);
        let base = self.cfg.retry_after.as_millis().max(1) as u64;
        Shed {
            retry_after_ms: base * (queued as u64 + 1),
        }
    }

    /// Try to enter: a free slot admits immediately, a full queue
    /// sheds immediately, otherwise wait (bounded) for a slot.
    pub fn admit(&self) -> Result<Permit<'_>, Shed> {
        let mut st = self.state.lock().unwrap();
        if st.running < self.cfg.max_concurrent {
            st.running += 1;
            self.admitted.fetch_add(1, Ordering::Relaxed);
            return Ok(Permit { adm: self });
        }
        if st.queued >= self.cfg.queue_limit {
            return Err(self.shed_reply(st.queued));
        }
        st.queued += 1;
        self.queue_hwm.fetch_max(st.queued as u64, Ordering::Relaxed);
        let deadline = Instant::now() + self.cfg.max_queue_wait;
        loop {
            if st.running < self.cfg.max_concurrent {
                st.queued -= 1;
                st.running += 1;
                self.admitted.fetch_add(1, Ordering::Relaxed);
                return Ok(Permit { adm: self });
            }
            let now = Instant::now();
            if now >= deadline {
                st.queued -= 1;
                return Err(self.shed_reply(st.queued));
            }
            let (next, _) = self.cv.wait_timeout(st, deadline - now).unwrap();
            st = next;
        }
    }

    fn release(&self) {
        let mut st = self.state.lock().unwrap();
        st.running -= 1;
        drop(st);
        self.cv.notify_all();
    }

    /// `(running, queued)` right now.
    pub fn depth(&self) -> (usize, usize) {
        let st = self.state.lock().unwrap();
        (st.running, st.queued)
    }

    pub fn admitted_total(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    pub fn shed_total(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    pub fn queue_highwater(&self) -> u64 {
        self.queue_hwm.load(Ordering::Relaxed)
    }
}

/// A running-job slot; releasing on drop keeps the count correct even
/// when a job panics.
pub struct Permit<'a> {
    adm: &'a Admission,
}

impl std::fmt::Debug for Permit<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Permit")
    }
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.adm.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn tight(max_concurrent: usize, queue_limit: usize) -> AdmissionConfig {
        AdmissionConfig {
            max_concurrent,
            queue_limit,
            max_queue_wait: Duration::from_millis(50),
            retry_after: Duration::from_millis(10),
        }
    }

    #[test]
    fn admits_up_to_the_bound_then_sheds_past_the_queue() {
        let adm = Admission::new(tight(2, 0));
        let p1 = adm.admit().unwrap();
        let p2 = adm.admit().unwrap();
        // No queue slots: the third caller is shed with a retry hint.
        let shed = adm.admit().unwrap_err();
        assert!(shed.retry_after_ms >= 10);
        assert_eq!(adm.shed_total(), 1);
        drop(p1);
        let _p3 = adm.admit().unwrap();
        drop(p2);
        assert_eq!(adm.admitted_total(), 3);
    }

    #[test]
    fn queued_caller_gets_the_slot_when_it_frees() {
        let adm = Arc::new(Admission::new(tight(1, 4)));
        let p = adm.admit().unwrap();
        let adm2 = Arc::clone(&adm);
        let waiter = std::thread::spawn(move || adm2.admit().map(drop).is_ok());
        // Let the waiter queue up, then free the slot.
        while adm.depth().1 == 0 {
            std::thread::yield_now();
        }
        drop(p);
        assert!(waiter.join().unwrap());
        assert_eq!(adm.queue_highwater(), 1);
        assert_eq!(adm.depth(), (0, 0));
    }

    #[test]
    fn queued_caller_is_shed_after_the_wait_budget() {
        let adm = Admission::new(tight(1, 4));
        let _p = adm.admit().unwrap();
        let t = Instant::now();
        let shed = adm.admit().unwrap_err();
        assert!(t.elapsed() >= Duration::from_millis(40));
        assert!(shed.retry_after_ms > 0);
        assert_eq!(adm.depth().1, 0, "shed caller left the queue");
    }
}
