//! Per-endpoint service counters and latency windows.
//!
//! Latency is recorded into a bounded ring per op (request arrival to
//! response ready, cache hits included — that *is* the service's
//! latency), and quantiles are computed over the window at scrape
//! time, so a scrape is cheap and the memory bound is fixed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Ops with latency series: the four job kinds (by `JobKind::index`)
/// plus the `stats` scrape itself.
pub(crate) const OPS: [&str; 5] = ["analyze", "tune", "faultcheck", "trace", "stats"];

/// Op index of the `stats` endpoint in [`OPS`].
pub const STATS_OP: usize = 4;

const WINDOW: usize = 4096;

#[derive(Default)]
struct LatWindow {
    ring: Vec<u64>,
    next: usize,
    count: u64,
    sum_us: u64,
    max_us: u64,
}

impl LatWindow {
    fn record(&mut self, micros: u64) {
        if self.ring.len() < WINDOW {
            self.ring.push(micros);
        } else {
            self.ring[self.next] = micros;
            self.next = (self.next + 1) % WINDOW;
        }
        self.count += 1;
        self.sum_us += micros;
        self.max_us = self.max_us.max(micros);
    }

    fn quantiles(&self) -> Option<LatSummary> {
        if self.ring.is_empty() {
            return None;
        }
        let mut sorted = self.ring.clone();
        sorted.sort_unstable();
        let pick = |q: usize| sorted[(sorted.len() - 1) * q / 100];
        Some(LatSummary {
            count: self.count,
            sum_us: self.sum_us,
            max_us: self.max_us,
            p50_us: pick(50),
            p95_us: pick(95),
            p99_us: pick(99),
        })
    }
}

/// One op's latency picture at scrape time.
#[derive(Clone, Copy, Debug)]
pub struct LatSummary {
    pub count: u64,
    pub sum_us: u64,
    pub max_us: u64,
    pub p50_us: u64,
    pub p95_us: u64,
    pub p99_us: u64,
}

pub struct ServeMetrics {
    jobs: [AtomicU64; 5],
    errors: AtomicU64,
    deadlines: AtomicU64,
    singleflight: AtomicU64,
    lat: [Mutex<LatWindow>; 5],
}

impl ServeMetrics {
    pub(crate) fn new() -> ServeMetrics {
        ServeMetrics {
            jobs: Default::default(),
            errors: AtomicU64::new(0),
            deadlines: AtomicU64::new(0),
            singleflight: AtomicU64::new(0),
            lat: Default::default(),
        }
    }

    pub(crate) fn bump_job(&self, op: usize) {
        self.jobs[op].fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn bump_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn bump_deadline(&self) {
        self.deadlines.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn bump_singleflight(&self) {
        self.singleflight.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record(&self, op: usize, micros: u64) {
        self.lat[op].lock().unwrap().record(micros);
    }

    pub fn jobs_total(&self, op: usize) -> u64 {
        self.jobs[op].load(Ordering::Relaxed)
    }

    pub fn errors_total(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    pub fn deadlines_total(&self) -> u64 {
        self.deadlines.load(Ordering::Relaxed)
    }

    pub fn singleflight_total(&self) -> u64 {
        self.singleflight.load(Ordering::Relaxed)
    }

    pub fn latency(&self, op: usize) -> Option<LatSummary> {
        self.lat[op].lock().unwrap().quantiles()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_quantiles_track_the_distribution() {
        let m = ServeMetrics::new();
        for us in 1..=100 {
            m.record(0, us);
        }
        let s = m.latency(0).unwrap();
        assert_eq!(s.count, 100);
        assert_eq!(s.max_us, 100);
        assert!((49..=51).contains(&s.p50_us), "p50 {}", s.p50_us);
        assert!((94..=96).contains(&s.p95_us), "p95 {}", s.p95_us);
        assert!(s.p99_us >= 98);
        assert!(m.latency(1).is_none());
    }
}
