//! Sharded, content-addressed artifact cache with an on-disk spill.
//!
//! Keys are the 64-bit [`crate::job_hash`] of `(kind, source)`. The
//! key hash picks the shard, so concurrent jobs on different programs
//! contend on different locks. Each shard holds an LRU-bounded map;
//! inserts write through to the spill directory (when configured) so
//! artifacts survive eviction *and* process restarts — a memory miss
//! re-reads the spill before declaring a full miss.

use crate::JobKind;
use patty_json::Json;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Cache geometry. `capacity` is the total in-memory entry bound,
/// split evenly across shards (each shard keeps at least one entry).
#[derive(Clone, Debug)]
pub struct CacheConfig {
    pub shards: usize,
    pub capacity: usize,
    pub spill_dir: Option<PathBuf>,
}

impl Default for CacheConfig {
    fn default() -> CacheConfig {
        CacheConfig {
            shards: 8,
            capacity: 1024,
            spill_dir: None,
        }
    }
}

/// Where a hit was served from.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CacheSource {
    Memory,
    Disk,
}

impl CacheSource {
    pub fn as_str(self) -> &'static str {
        match self {
            CacheSource::Memory => "memory",
            CacheSource::Disk => "disk",
        }
    }
}

struct Entry {
    value: Json,
    /// Monotonic use stamp; the shard evicts the minimum.
    stamp: u64,
}

#[derive(Default)]
struct Shard {
    map: HashMap<u64, Entry>,
}

/// Coherent counter snapshot, indexed by [`JobKind::index`] where
/// per-kind.
#[derive(Clone, Debug, Default)]
pub struct CacheStats {
    pub hits: [u64; 4],
    pub misses: [u64; 4],
    pub disk_hits: [u64; 4],
    pub evictions: u64,
    pub inserts: u64,
    pub spill_errors: u64,
    pub entries: usize,
}

pub struct ShardedCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_cap: usize,
    clock: AtomicU64,
    spill: Option<PathBuf>,
    hits: [AtomicU64; 4],
    misses: [AtomicU64; 4],
    disk_hits: [AtomicU64; 4],
    evictions: AtomicU64,
    inserts: AtomicU64,
    spill_errors: AtomicU64,
}

impl ShardedCache {
    pub fn new(cfg: CacheConfig) -> ShardedCache {
        let shards = cfg.shards.max(1);
        ShardedCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_cap: (cfg.capacity / shards).max(1),
            clock: AtomicU64::new(0),
            spill: cfg.spill_dir,
            hits: Default::default(),
            misses: Default::default(),
            disk_hits: Default::default(),
            evictions: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            spill_errors: AtomicU64::new(0),
        }
    }

    fn shard(&self, hash: u64) -> &Mutex<Shard> {
        &self.shards[(hash as usize) % self.shards.len()]
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Look the artifact up, memory first, then the on-disk spill
    /// (repopulating memory on a disk hit).
    pub fn get(&self, kind: JobKind, hash: u64) -> Option<(Json, CacheSource)> {
        {
            let mut shard = self.shard(hash).lock().unwrap();
            if let Some(entry) = shard.map.get_mut(&hash) {
                entry.stamp = self.tick();
                self.hits[kind.index()].fetch_add(1, Ordering::Relaxed);
                return Some((entry.value.clone(), CacheSource::Memory));
            }
        }
        if let Some(value) = self.read_spill(kind, hash) {
            self.disk_hits[kind.index()].fetch_add(1, Ordering::Relaxed);
            self.admit(hash, value.clone());
            return Some((value, CacheSource::Disk));
        }
        self.misses[kind.index()].fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Insert a freshly computed artifact: write-through to the spill
    /// (if configured), then admit to memory, evicting LRU entries
    /// past the shard bound.
    pub fn insert(&self, kind: JobKind, hash: u64, value: &Json) {
        self.inserts.fetch_add(1, Ordering::Relaxed);
        self.write_spill(kind, hash, value);
        self.admit(hash, value.clone());
    }

    fn admit(&self, hash: u64, value: Json) {
        let stamp = self.tick();
        let mut shard = self.shard(hash).lock().unwrap();
        shard.map.insert(hash, Entry { value, stamp });
        while shard.map.len() > self.per_shard_cap {
            let victim = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    shard.map.remove(&k);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => break,
            }
        }
    }

    fn spill_path(&self, kind: JobKind, hash: u64) -> Option<PathBuf> {
        self.spill
            .as_ref()
            .map(|dir| dir.join(format!("{}-{hash:016x}.json", kind.as_str())))
    }

    fn read_spill(&self, kind: JobKind, hash: u64) -> Option<Json> {
        let path = self.spill_path(kind, hash)?;
        let text = std::fs::read_to_string(path).ok()?;
        patty_json::parse(&text).ok()
    }

    fn write_spill(&self, kind: JobKind, hash: u64, value: &Json) {
        let Some(path) = self.spill_path(kind, hash) else {
            return;
        };
        let write = || -> std::io::Result<()> {
            if let Some(dir) = path.parent() {
                std::fs::create_dir_all(dir)?;
            }
            // Write-then-rename so a concurrent reader never parses a
            // half-written artifact.
            let tmp = path.with_extension("json.tmp");
            std::fs::write(&tmp, value.to_string_pretty() + "\n")?;
            std::fs::rename(&tmp, &path)
        };
        if write().is_err() {
            self.spill_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Total in-memory entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().map.len())
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn stats(&self) -> CacheStats {
        let load = |a: &[AtomicU64; 4]| {
            let mut out = [0u64; 4];
            for (o, v) in out.iter_mut().zip(a.iter()) {
                *o = v.load(Ordering::Relaxed);
            }
            out
        };
        CacheStats {
            hits: load(&self.hits),
            misses: load(&self.misses),
            disk_hits: load(&self.disk_hits),
            evictions: self.evictions.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            spill_errors: self.spill_errors.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job_hash;

    fn artifact(n: i64) -> Json {
        Json::obj().with("n", Json::Int(n))
    }

    #[test]
    fn hit_after_insert_and_miss_before() {
        let cache = ShardedCache::new(CacheConfig::default());
        let h = job_hash(JobKind::Analyze, "p");
        assert!(cache.get(JobKind::Analyze, h).is_none());
        cache.insert(JobKind::Analyze, h, &artifact(1));
        let (v, src) = cache.get(JobKind::Analyze, h).unwrap();
        assert_eq!(v, artifact(1));
        assert_eq!(src, CacheSource::Memory);
        let s = cache.stats();
        assert_eq!(s.hits[JobKind::Analyze.index()], 1);
        assert_eq!(s.misses[JobKind::Analyze.index()], 1);
    }

    #[test]
    fn lru_eviction_keeps_recently_used_entries() {
        // One shard of capacity 2 makes the LRU order observable.
        let cache = ShardedCache::new(CacheConfig {
            shards: 1,
            capacity: 2,
            spill_dir: None,
        });
        cache.insert(JobKind::Tune, 1, &artifact(1));
        cache.insert(JobKind::Tune, 2, &artifact(2));
        // Touch 1 so 2 is the LRU victim when 3 arrives.
        assert!(cache.get(JobKind::Tune, 1).is_some());
        cache.insert(JobKind::Tune, 3, &artifact(3));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(JobKind::Tune, 1).is_some());
        assert!(cache.get(JobKind::Tune, 2).is_none());
        assert!(cache.get(JobKind::Tune, 3).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn spill_survives_eviction_and_a_fresh_cache() {
        let dir = std::env::temp_dir().join(format!(
            "patty-serve-spill-test-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = CacheConfig {
            shards: 1,
            capacity: 1,
            spill_dir: Some(dir.clone()),
        };
        let cache = ShardedCache::new(cfg.clone());
        let h1 = job_hash(JobKind::Trace, "a");
        let h2 = job_hash(JobKind::Trace, "b");
        cache.insert(JobKind::Trace, h1, &artifact(1));
        cache.insert(JobKind::Trace, h2, &artifact(2)); // evicts h1 from memory
        let (v, src) = cache.get(JobKind::Trace, h1).unwrap();
        assert_eq!(v, artifact(1));
        assert_eq!(src, CacheSource::Disk);

        // A brand-new cache over the same spill dir serves both.
        let fresh = ShardedCache::new(cfg);
        assert_eq!(
            fresh.get(JobKind::Trace, h2).unwrap().1,
            CacheSource::Disk
        );
        assert_eq!(fresh.stats().spill_errors, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
