//! The patty-json line protocol.
//!
//! One request object per line, one response object per line, both
//! rendered compact (patty-json's `to_string` never emits newlines).
//!
//! Request grammar:
//!
//! ```text
//! {"id": <int>, "op": "analyze"|"tune"|"faultcheck"|"trace"|"stats"|"shutdown",
//!  "source": "<minilang program>"}        // required for job ops
//! ```
//!
//! Responses always echo `id` and `op` and carry a `status`:
//!
//! ```text
//! {"id":1,"op":"analyze","status":"ok","cached":"memory"|"disk"|"coalesced"|"no",
//!  "micros":N,"result":{...}}
//! {"id":1,"op":"tune","status":"shed","retry_after_ms":N}
//! {"id":1,"op":"trace","status":"error"|"deadline","error":"..."}
//! ```

use patty_json::{de, Json};

/// A parsed request line. `id` defaults to 0 when absent so replies
/// can always echo something.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    pub id: i64,
    pub op: String,
    pub source: Option<String>,
}

pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = patty_json::parse(line).map_err(|e| format!("bad request json: {e}"))?;
    if v.as_obj().is_none() {
        return Err(format!("request must be a json object, got {}", v.type_name()));
    }
    let op = de::str_field(&v, "op", "request")?;
    let id = v.get("id").and_then(Json::as_i64).unwrap_or(0);
    let source = de::opt_str_field(&v, "source");
    Ok(Request { id, op, source })
}

pub fn ok_response(id: i64, op: &str, cached: &str, micros: u64, result: Json) -> Json {
    Json::obj()
        .with("id", Json::Int(id))
        .with("op", Json::Str(op.into()))
        .with("status", Json::Str("ok".into()))
        .with("cached", Json::Str(cached.into()))
        .with("micros", Json::Int(micros as i64))
        .with("result", result)
}

pub fn shed_response(id: i64, op: &str, retry_after_ms: u64) -> Json {
    Json::obj()
        .with("id", Json::Int(id))
        .with("op", Json::Str(op.into()))
        .with("status", Json::Str("shed".into()))
        .with("retry_after_ms", Json::Int(retry_after_ms as i64))
}

pub fn error_response(id: i64, op: &str, error: &str, deadline: bool) -> Json {
    let status = if deadline { "deadline" } else { "error" };
    Json::obj()
        .with("id", Json::Int(id))
        .with("op", Json::Str(op.into()))
        .with("status", Json::Str(status.into()))
        .with("error", Json::Str(error.into()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_request_line() {
        let req = parse_request(r#"{"id": 7, "op": "analyze", "source": "x = 1"}"#).unwrap();
        assert_eq!(
            req,
            Request {
                id: 7,
                op: "analyze".into(),
                source: Some("x = 1".into()),
            }
        );
    }

    #[test]
    fn id_and_source_are_optional_op_is_not() {
        let req = parse_request(r#"{"op": "stats"}"#).unwrap();
        assert_eq!(req.id, 0);
        assert_eq!(req.source, None);
        assert!(parse_request(r#"{"id": 1}"#).is_err());
        assert!(parse_request("[1,2]").is_err());
        assert!(parse_request("{nope").is_err());
    }

    #[test]
    fn responses_are_single_line_and_round_trip() {
        let ok = ok_response(3, "tune", "memory", 42, Json::obj().with("k", Json::Int(1)));
        let line = ok.to_string();
        assert!(!line.contains('\n'));
        let back = patty_json::parse(&line).unwrap();
        assert_eq!(back.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(back.get("micros").and_then(Json::as_i64), Some(42));

        let shed = shed_response(1, "tune", 50).to_string();
        assert!(shed.contains("\"retry_after_ms\":50"));
        let err = error_response(1, "trace", "boom", true);
        assert_eq!(err.get("status").and_then(Json::as_str), Some("deadline"));
    }
}
