//! Service-level integration tests: cache round-trips, single-flight
//! coalescing, deadline enforcement, load-shed, the line-protocol
//! loopback, and a full TCP round-trip with clean shutdown.

use patty_json::Json;
use patty_serve::{
    AdmissionConfig, CacheConfig, JobCtl, JobKind, ServeConfig, Served, Service,
};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A runner that counts invocations and fabricates a JSON artifact.
fn counting_runner(
    calls: Arc<AtomicU64>,
    delay: Duration,
) -> impl Fn(JobKind, &str, &JobCtl) -> Result<Json, String> + Send + Sync + 'static {
    move |kind, source, ctl| {
        calls.fetch_add(1, Ordering::SeqCst);
        let deadline = std::time::Instant::now() + delay;
        while std::time::Instant::now() < deadline {
            ctl.checkpoint()?;
            std::thread::sleep(Duration::from_millis(1));
        }
        Ok(Json::obj()
            .with("kind", Json::Str(kind.as_str().into()))
            .with("len", Json::Int(source.len() as i64)))
    }
}

fn quick_config() -> ServeConfig {
    ServeConfig {
        cache: CacheConfig {
            shards: 4,
            capacity: 64,
            spill_dir: None,
        },
        admission: AdmissionConfig {
            max_concurrent: 2,
            queue_limit: 2,
            max_queue_wait: Duration::from_millis(200),
            retry_after: Duration::from_millis(5),
        },
        job_deadline: Duration::from_secs(5),
        use_executor: false,
    }
}

#[test]
fn repeat_job_is_a_cache_hit_and_runs_once() {
    let calls = Arc::new(AtomicU64::new(0));
    let svc = Service::new(counting_runner(Arc::clone(&calls), Duration::ZERO), quick_config());
    let first = svc.submit(JobKind::Analyze, "x = 1");
    assert!(matches!(first, Served::Computed { .. }), "{first:?}");
    let second = svc.submit(JobKind::Analyze, "x = 1");
    match second {
        Served::Hit { result, .. } => {
            assert_eq!(result.get("len").and_then(Json::as_i64), Some(5));
        }
        other => panic!("expected a cache hit, got {other:?}"),
    }
    assert_eq!(calls.load(Ordering::SeqCst), 1);
    // A different kind over the same source is a distinct artifact.
    let tune = svc.submit(JobKind::Tune, "x = 1");
    assert!(matches!(tune, Served::Computed { .. }));
    assert_eq!(calls.load(Ordering::SeqCst), 2);
}

#[test]
fn identical_inflight_jobs_coalesce_onto_one_computation() {
    let calls = Arc::new(AtomicU64::new(0));
    let svc = Arc::new(Service::new(
        counting_runner(Arc::clone(&calls), Duration::from_millis(80)),
        quick_config(),
    ));
    let mut handles = Vec::new();
    for _ in 0..4 {
        let svc = Arc::clone(&svc);
        handles.push(std::thread::spawn(move || {
            svc.submit(JobKind::Trace, "same program")
        }));
    }
    let outcomes: Vec<Served> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let computed = outcomes
        .iter()
        .filter(|o| matches!(o, Served::Computed { .. }))
        .count();
    let coalesced = outcomes
        .iter()
        .filter(|o| matches!(o, Served::Coalesced { .. }))
        .count();
    assert_eq!(computed, 1, "{outcomes:?}");
    assert_eq!(coalesced, 3, "{outcomes:?}");
    assert_eq!(calls.load(Ordering::SeqCst), 1, "single-flight ran the job once");
    assert_eq!(svc.metrics().singleflight_total(), 3);
}

#[test]
fn watchdog_cancels_a_job_past_its_deadline() {
    let calls = Arc::new(AtomicU64::new(0));
    let mut cfg = quick_config();
    cfg.job_deadline = Duration::from_millis(60);
    // The job wants 10 s; the watchdog must cancel it far earlier.
    let svc = Service::new(
        counting_runner(Arc::clone(&calls), Duration::from_secs(10)),
        cfg,
    );
    let t = std::time::Instant::now();
    let out = svc.submit(JobKind::Faultcheck, "slow");
    assert!(t.elapsed() < Duration::from_secs(5), "deadline did not bite");
    match out {
        Served::Failed { deadline, .. } => assert!(deadline, "expected a deadline failure"),
        other => panic!("expected a deadline failure, got {other:?}"),
    }
    assert_eq!(svc.metrics().deadlines_total(), 1);
    assert!(svc.deadlines_fired() >= 1);
}

#[test]
fn overload_sheds_with_a_retry_hint_instead_of_queueing_unboundedly() {
    let calls = Arc::new(AtomicU64::new(0));
    let mut cfg = quick_config();
    cfg.admission = AdmissionConfig {
        max_concurrent: 1,
        queue_limit: 1,
        max_queue_wait: Duration::from_millis(400),
        retry_after: Duration::from_millis(7),
    };
    let svc = Arc::new(Service::new(
        counting_runner(Arc::clone(&calls), Duration::from_millis(120)),
        cfg,
    ));
    // Distinct sources so single-flight cannot coalesce them.
    let mut handles = Vec::new();
    for i in 0..6 {
        let svc = Arc::clone(&svc);
        handles.push(std::thread::spawn(move || {
            svc.submit(JobKind::Analyze, &format!("program {i}"))
        }));
    }
    let outcomes: Vec<Served> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let shed: Vec<u64> = outcomes
        .iter()
        .filter_map(|o| match o {
            Served::Shed { retry_after_ms } => Some(*retry_after_ms),
            _ => None,
        })
        .collect();
    assert!(!shed.is_empty(), "expected sheds under 6x overload: {outcomes:?}");
    assert!(shed.iter().all(|&ms| ms >= 7), "retry hints present: {shed:?}");
    assert!(svc.admission().queue_highwater() <= 1, "queue stayed bounded");
    assert_eq!(svc.admission().depth(), (0, 0), "all permits released");
}

#[test]
fn jobs_run_on_the_shared_executor_pool() {
    let calls = Arc::new(AtomicU64::new(0));
    let mut cfg = quick_config();
    cfg.use_executor = true;
    let svc = Service::new(counting_runner(calls, Duration::ZERO), cfg);
    match svc.submit(JobKind::Analyze, "pooled") {
        Served::Computed { result, .. } => {
            assert_eq!(result.get("kind").and_then(Json::as_str), Some("analyze"));
        }
        other => panic!("expected a computed result, got {other:?}"),
    }
}

#[test]
fn panicking_job_becomes_an_error_response_and_releases_its_permit() {
    let svc = Service::new(
        |_: JobKind, source: &str, _: &JobCtl| -> Result<Json, String> {
            if source == "boom" {
                panic!("runner exploded");
            }
            Ok(Json::Null)
        },
        quick_config(),
    );
    match svc.submit(JobKind::Analyze, "boom") {
        Served::Failed {
            error, deadline, ..
        } => {
            assert!(error.contains("runner exploded"), "{error}");
            assert!(!deadline);
        }
        other => panic!("expected a failure, got {other:?}"),
    }
    assert_eq!(svc.admission().depth(), (0, 0));
    // The error is not cached: a good job under the same kind works.
    assert!(matches!(
        svc.submit(JobKind::Analyze, "fine"),
        Served::Computed { .. }
    ));
}

#[test]
fn line_loopback_round_trips_jobs_stats_and_shutdown() {
    let calls = Arc::new(AtomicU64::new(0));
    let svc = Service::new(counting_runner(calls, Duration::ZERO), quick_config());
    let input = "\
{\"id\":1,\"op\":\"analyze\",\"source\":\"x = 1\"}\n\
{\"id\":2,\"op\":\"analyze\",\"source\":\"x = 1\"}\n\
{\"id\":3,\"op\":\"nonsense\"}\n\
{\"id\":4,\"op\":\"stats\"}\n\
{\"id\":5,\"op\":\"shutdown\"}\n\
{\"id\":6,\"op\":\"analyze\",\"source\":\"never reached\"}\n";
    let mut out: Vec<u8> = Vec::new();
    svc.serve_lines(BufReader::new(input.as_bytes()), &mut out).unwrap();
    let lines: Vec<Json> = String::from_utf8(out)
        .unwrap()
        .lines()
        .map(|l| patty_json::parse(l).unwrap())
        .collect();
    assert_eq!(lines.len(), 5, "shutdown stops the loop");
    assert_eq!(lines[0].get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(lines[0].get("cached").and_then(Json::as_str), Some("no"));
    assert_eq!(lines[1].get("cached").and_then(Json::as_str), Some("memory"));
    assert_eq!(lines[2].get("status").and_then(Json::as_str), Some("error"));
    let stats = &lines[3];
    assert_eq!(stats.get("status").and_then(Json::as_str), Some("ok"));
    let families = stats.get("result").unwrap();
    assert!(
        families.get("patty_serve_cache_hits_total").is_some()
            || families
                .as_obj()
                .is_some_and(|o| o.iter().any(|(k, _)| k.starts_with("patty_serve_"))),
        "stats carries patty_serve_* families: {families}"
    );
    assert_eq!(lines[4].get("op").and_then(Json::as_str), Some("shutdown"));
}

#[test]
fn tcp_server_round_trips_and_shuts_down_cleanly() {
    let calls = Arc::new(AtomicU64::new(0));
    let mut cfg = quick_config();
    cfg.use_executor = true;
    let svc = Arc::new(Service::new(counting_runner(calls, Duration::ZERO), cfg));
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = {
        let svc = Arc::clone(&svc);
        std::thread::spawn(move || svc.serve_tcp(listener))
    };

    let mut stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut ask = |req: &str| -> Json {
        writeln!(stream, "{req}").unwrap();
        stream.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        patty_json::parse(line.trim()).unwrap()
    };

    let first = ask("{\"id\":1,\"op\":\"trace\",\"source\":\"pipeline here\"}");
    assert_eq!(first.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(first.get("cached").and_then(Json::as_str), Some("no"));
    let warm = ask("{\"id\":2,\"op\":\"trace\",\"source\":\"pipeline here\"}");
    assert_eq!(warm.get("cached").and_then(Json::as_str), Some("memory"));
    let stats = ask("{\"id\":3,\"op\":\"stats\"}");
    assert_eq!(stats.get("op").and_then(Json::as_str), Some("stats"));
    let bye = ask("{\"id\":4,\"op\":\"shutdown\"}");
    assert_eq!(bye.get("status").and_then(Json::as_str), Some("ok"));

    server.join().unwrap().unwrap();
    assert!(svc.shutdown_requested());
}
