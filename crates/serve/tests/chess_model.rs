//! A patty-chess model of the serve-side sharded artifact cache.
//!
//! The model mirrors the production structure of `ShardedCache` +
//! single-flight: two shards, each a vector of `(key, stamp)` entries
//! guarded by its own lock with an LRU bound of two, plus an in-flight
//! flag (guarded by the shard lock) and a result channel implementing
//! single-flight dedup of identical concurrent gets.
//!
//! Exploration must prove the design race- and deadlock-free under
//! DPOR across concurrent get/insert/evict on both shards, and a
//! deliberately broken variant (a shard read outside the lock) must
//! produce a race whose `sched_trace_hash` replays byte-stably.

use patty_chess::sched::{FaultScenario, Shared, ThreadCtx};
use patty_chess::{explore, explore_dpor, explore_joint, ChessOptions, FailureKind, SearchMode};

/// LRU bound per modeled shard.
const CAP: usize = 2;

fn options() -> ChessOptions {
    ChessOptions {
        max_schedules: 200_000,
        ..ChessOptions::default()
    }
}

fn dpor_options() -> ChessOptions {
    ChessOptions {
        mode: SearchMode::Dpor,
        ..options()
    }
}

fn lookup(entries: &[(i64, i64)], key: i64) -> bool {
    entries.iter().any(|&(k, _)| k == key)
}

/// Insert `key` with the next stamp and evict the LRU entry past the
/// bound — the caller must hold the shard's lock.
fn insert_lru(ctx: &ThreadCtx, data: &Shared<Vec<(i64, i64)>>, clock: &Shared<i64>, key: i64) {
    let stamp = clock.read(ctx) + 1;
    clock.write(ctx, stamp);
    let mut entries = data.read(ctx);
    entries.retain(|&(k, _)| k != key);
    entries.push((key, stamp));
    while entries.len() > CAP {
        let lru = entries
            .iter()
            .enumerate()
            .min_by_key(|(_, &(_, s))| s)
            .map(|(i, _)| i)
            .unwrap();
        entries.remove(lru);
    }
    data.write(ctx, entries);
}

/// The model. `locked_reader` toggles the seeded bug: when false, the
/// auditing thread reads shard 0 without taking its lock.
fn cache_model(ctx: &ThreadCtx, locked_reader: bool) {
    // Shard 0 starts full (stamps 1 and 2) so both inserts evict.
    let d0 = ctx.shared("shard0", vec![(8i64, 1i64), (9, 2)]);
    let clock0 = ctx.shared("clock0", 2i64);
    let m0 = ctx.mutex("m0");
    let d1 = ctx.shared("shard1", Vec::<(i64, i64)>::new());
    let clock1 = ctx.shared("clock1", 0i64);
    let m1 = ctx.mutex("m1");
    // Single-flight state for key 1, guarded by shard 0's lock.
    let inflight = ctx.shared("inflight_k1", 0i64);
    let computes = ctx.shared("computes_k1", 0i64);
    let flight = ctx.channel::<i64>("flight_k1");

    // Two identical concurrent gets of key 1: one computes, the other
    // either coalesces onto the flight or (if it arrives late) hits.
    let mut getters = Vec::new();
    for _ in 0..2 {
        let (d0, clock0, m0) = (d0.clone(), clock0.clone(), m0.clone());
        let (inflight, computes, flight) = (inflight.clone(), computes.clone(), flight.clone());
        getters.push(ctx.spawn(move |ctx| {
            m0.lock(ctx);
            let hit = lookup(&d0.read(ctx), 1);
            let leader = !hit && inflight.read(ctx) == 0;
            if leader {
                inflight.write(ctx, 1);
            }
            let waiter = !hit && !leader;
            m0.unlock(ctx);
            if leader {
                // Compute outside the shard lock (as the service does),
                // then publish atomically with the flag reset.
                computes.write(ctx, computes.read(ctx) + 1);
                ctx.step();
                m0.lock(ctx);
                insert_lru(ctx, &d0, &clock0, 1);
                inflight.write(ctx, 0);
                m0.unlock(ctx);
                flight.send(ctx, 100);
            } else if waiter {
                let artifact = flight.recv(ctx);
                ctx.check(artifact == 100, "waiter shares the leader's artifact");
            }
        }));
    }

    // A writer inserting a different key into shard 0 (forcing LRU
    // interplay with the leader's insert) and touching shard 1, whose
    // lock is disjoint — DPOR should see those sections commute.
    let writer = {
        let (d0, clock0, m0) = (d0.clone(), clock0.clone(), m0.clone());
        let (d1, clock1, m1) = (d1.clone(), clock1.clone(), m1.clone());
        ctx.spawn(move |ctx| {
            if locked_reader {
                m0.lock(ctx);
                insert_lru(ctx, &d0, &clock0, 2);
                m0.unlock(ctx);
            } else {
                // BUG: audits the shard without its lock — races with
                // the leader's locked insert.
                let snapshot = d0.read(ctx);
                ctx.check(snapshot.len() <= CAP, "bound audit");
                m0.lock(ctx);
                insert_lru(ctx, &d0, &clock0, 2);
                m0.unlock(ctx);
            }
            m1.lock(ctx);
            let miss = !lookup(&d1.read(ctx), 5);
            if miss {
                insert_lru(ctx, &d1, &clock1, 5);
            }
            m1.unlock(ctx);
        })
    };

    for handle in getters {
        ctx.join(handle);
    }
    ctx.join(writer);

    // Joins give happens-before, so these final reads are race-free.
    let entries0 = d0.read(ctx);
    ctx.check(entries0.len() == CAP, "shard 0 holds exactly its LRU bound");
    ctx.check(lookup(&entries0, 1), "computed artifact stays resident");
    ctx.check(lookup(&entries0, 2), "writer's artifact stays resident");
    ctx.check(
        !lookup(&entries0, 8) && !lookup(&entries0, 9),
        "the seeded LRU entries were evicted",
    );
    ctx.check(computes.read(ctx) == 1, "single-flight computed exactly once");
    ctx.check(lookup(&d1.read(ctx), 5), "shard 1 insert landed");
}

fn correct_model(ctx: &ThreadCtx) {
    cache_model(ctx, true);
}

fn buggy_model(ctx: &ThreadCtx) {
    cache_model(ctx, false);
}

#[test]
fn sharded_cache_model_is_race_and_deadlock_free_under_dpor() {
    let report = explore_dpor(correct_model, dpor_options());
    assert!(report.complete, "DPOR search must be exhaustive");
    assert!(
        report.failures.is_empty(),
        "cache model must be clean: {:?}",
        report
            .failures
            .iter()
            .map(|f| &f.kind)
            .collect::<Vec<_>>()
    );
    assert!(report.schedules > 1, "concurrency was actually explored");
}

#[test]
fn dfs_oracle_agrees_the_model_is_clean() {
    // The unreduced DFS space of this model is too large to exhaust in
    // a unit test; a preemption-bounded differential still cross-checks
    // DPOR's verdict on every schedule with up to two preemptions
    // (where the vast majority of real cache races live).
    let report = explore(
        correct_model,
        ChessOptions {
            preemption_bound: Some(2),
            ..options()
        },
    );
    assert!(report.complete, "bounded DFS search must be exhaustive");
    assert!(
        report.failures.is_empty(),
        "DFS found: {:?}",
        report.failures.iter().map(|f| &f.kind).collect::<Vec<_>>()
    );
}

#[test]
fn unlocked_shard_read_is_caught_and_replays_byte_stably() {
    let scenarios = [FaultScenario::none()];
    let joint = explore_joint(buggy_model, &scenarios, &dpor_options());
    let failures: Vec<_> = joint
        .scenarios
        .iter()
        .flat_map(|sr| sr.report.failures.iter())
        .collect();
    assert!(
        failures
            .iter()
            .any(|f| matches!(f.kind, FailureKind::Race { .. })),
        "the unlocked read must surface as a race: {:?}",
        failures.iter().map(|f| &f.kind).collect::<Vec<_>>()
    );
    // Any failure hash must replay byte-stably from the hash alone.
    let witness = failures[0];
    let outcome =
        patty_chess::replay_hash(buggy_model, &scenarios, &dpor_options(), witness.trace_hash)
            .unwrap_or_else(|| panic!("hash {:#x} not found on replay", witness.trace_hash));
    assert!(outcome.byte_stable, "failure replay must be byte-stable");
    assert!(
        outcome
            .failures
            .iter()
            .any(|f| f.trace_hash == witness.trace_hash),
        "replay reproduces the witnessed failure"
    );
}
