//! # patty-telemetry
//!
//! Runtime telemetry for Patty's tunable patterns and process phases.
//!
//! The paper's tuning loop (Section 2.1) treats a parallelized program
//! as a black box: run it, measure wall time, adjust parameters. This
//! crate opens the box a crack — it records *where* items flowed and
//! *where* time went while keeping the instrumented code paths cheap
//! enough to leave compiled in:
//!
//! * **Counters** — monotonically increasing `u64`s (items per pipeline
//!   stage, chunks claimed by a data-parallel worker, tasks completed by
//!   a master/worker instance). Pre-registered so the hot path is one
//!   relaxed atomic add, no hashing.
//! * **Histograms** — log2-bucketed distributions (bounded-queue
//!   occupancy, chunk sizes) with exact min/max/sum.
//! * **Spans** — drop-guard timers aggregated by name, used by the
//!   process model so each phase (detect → annotate → transform →
//!   validate → tune) reports its wall time.
//! * **Tuner iterations** — one record per auto-tuner evaluation:
//!   iteration number, parameter assignment, measured objective, and
//!   whether it became the incumbent best.
//!
//! A [`Telemetry`] handle is either *enabled* (shared sink) or
//! *disabled* (no allocation, no locks; every operation is a branch on
//! a `None`). Pattern builders take the handle by value and clone it
//! into workers; `Telemetry::disabled()` is the default everywhere, so
//! unprofiled runs pay only the dead branch.
//!
//! [`TelemetryReport`] snapshots everything into a deterministic,
//! alphabetically sorted structure and renders it with `patty-json` —
//! the same report the `patty profile` CLI mode prints.

use parking_lot::Mutex;
use patty_json::Json;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Number of log2 buckets in a histogram: values 0, 1, 2-3, 4-7, ...
/// up to 2^62 and beyond in the final bucket.
const BUCKETS: usize = 64;

/// Log2 bucket of a value: 0 for zero, `floor(log2(v)) + 1` otherwise.
fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((64 - value.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// Shared histogram storage. Lock-free: every field is a relaxed
/// atomic, so the instrumented hot paths (one [`Histogram::record`] per
/// pipeline batch, one [`Histogram::merge`] per parallel-for worker)
/// never take a lock or touch the registry map.
struct HistogramCore {
    /// bucket\[i\] counts values v with floor(log2(v)) == i-1 (bucket 0
    /// counts zeros).
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    /// `u64::MAX` until the first observation.
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for HistogramCore {
    fn default() -> HistogramCore {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl HistogramCore {
    fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    fn merge(&self, local: &LocalHistogram) {
        if local.count == 0 {
            return;
        }
        for (slot, &n) in self.buckets.iter().zip(&local.buckets) {
            if n > 0 {
                slot.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(local.count, Ordering::Relaxed);
        self.sum.fetch_add(local.sum, Ordering::Relaxed);
        self.min.fetch_min(local.min, Ordering::Relaxed);
        self.max.fetch_max(local.max, Ordering::Relaxed);
    }

    fn summary(&self, name: &str) -> HistogramSummary {
        let count = self.count.load(Ordering::Relaxed);
        let sum = self.sum.load(Ordering::Relaxed);
        HistogramSummary {
            name: name.to_string(),
            count,
            sum,
            min: if count == 0 { 0 } else { self.min.load(Ordering::Relaxed) },
            max: self.max.load(Ordering::Relaxed),
            mean: if count == 0 { 0.0 } else { sum as f64 / count as f64 },
        }
    }
}

/// A thread-local histogram accumulator for the tightest loops: workers
/// record into plain fields (no atomics at all) and fold the whole
/// batch into the shared [`Histogram`] once, via
/// [`Histogram::merge`] — one flush per worker per run instead of one
/// shared-cacheline RMW per observation.
#[derive(Clone, Debug)]
pub struct LocalHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LocalHistogram {
    fn default() -> LocalHistogram {
        LocalHistogram { buckets: [0; BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

impl LocalHistogram {
    pub fn new() -> LocalHistogram {
        LocalHistogram::default()
    }

    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

/// Pre-registered histogram handle, the distribution-shaped sibling of
/// [`Counter`]: recording is lock-free (a handful of relaxed atomic
/// adds), and a [`LocalHistogram`] batch folds in with one
/// [`Histogram::merge`]. On a disabled handle both are inert.
#[derive(Clone, Default)]
pub struct Histogram {
    core: Option<Arc<HistogramCore>>,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram").field("enabled", &self.core.is_some()).finish()
    }
}

impl Histogram {
    /// The inert handle (what disabled telemetry hands out).
    pub fn disabled() -> Histogram {
        Histogram::default()
    }

    /// Record one observation.
    pub fn record(&self, value: u64) {
        if let Some(core) = &self.core {
            core.record(value);
        }
    }

    /// Fold a worker-local batch into the shared histogram.
    pub fn merge(&self, local: &LocalHistogram) {
        if let Some(core) = &self.core {
            core.merge(local);
        }
    }
}

#[derive(Default)]
struct SpanStats {
    count: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

impl SpanStats {
    fn record(&mut self, ns: u64) {
        if self.count == 0 {
            self.min_ns = ns;
            self.max_ns = ns;
        } else {
            self.min_ns = self.min_ns.min(ns);
            self.max_ns = self.max_ns.max(ns);
        }
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(ns);
    }
}

/// One auto-tuner evaluation, logged by the tuning crate.
#[derive(Clone, Debug, PartialEq)]
pub struct TunerIteration {
    /// 1-based evaluation number.
    pub iteration: u64,
    /// Parameter assignment evaluated, as `(qualified name, value)`.
    pub params: Vec<(String, i64)>,
    /// Measured objective (lower is better; typically milliseconds).
    pub objective: f64,
    /// Whether this evaluation became the incumbent best.
    pub improved: bool,
}

#[derive(Default)]
struct Inner {
    counters: Mutex<HashMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<HashMap<String, Arc<HistogramCore>>>,
    spans: Mutex<HashMap<String, SpanStats>>,
    tuner: Mutex<Vec<TunerIteration>>,
}

/// A cheaply cloneable telemetry handle — either a shared sink or a
/// no-op. All pattern builders accept one; `Telemetry::disabled()` is
/// the default and makes every operation a branch on `None`.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry").field("enabled", &self.is_enabled()).finish()
    }
}

impl Telemetry {
    /// A live handle that records everything sent to it.
    pub fn enabled() -> Telemetry {
        Telemetry { inner: Some(Arc::new(Inner::default())) }
    }

    /// The no-op handle. Never allocates, never locks.
    pub fn disabled() -> Telemetry {
        Telemetry { inner: None }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Pre-register a counter. The returned handle costs one relaxed
    /// atomic add per increment; on a disabled handle it is inert.
    pub fn counter(&self, name: &str) -> Counter {
        let slot = self.inner.as_ref().map(|inner| {
            Arc::clone(
                inner
                    .counters
                    .lock()
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(AtomicU64::new(0))),
            )
        });
        Counter { slot }
    }

    /// One-shot counter add without keeping a handle (cold paths only —
    /// pays a map lookup).
    pub fn add(&self, name: &str, delta: u64) {
        if self.inner.is_some() {
            self.counter(name).add(delta);
        }
    }

    /// Pre-register a histogram. The returned handle records with a few
    /// relaxed atomic adds — no lock, no hashing; on a disabled handle
    /// it is inert.
    pub fn histogram(&self, name: &str) -> Histogram {
        let core = self.inner.as_ref().map(|inner| {
            Arc::clone(inner.histograms.lock().entry(name.to_string()).or_default())
        });
        Histogram { core }
    }

    /// One-shot observation into the named histogram (cold paths only —
    /// pays a map lookup; hot loops should hold a [`Histogram`]).
    pub fn record(&self, name: &str, value: u64) {
        if self.inner.is_some() {
            self.histogram(name).record(value);
        }
    }

    /// Start a timed span; the elapsed time is aggregated under `name`
    /// when the returned guard drops.
    pub fn span(&self, name: &str) -> Span {
        Span {
            target: self.inner.as_ref().map(|inner| (Arc::clone(inner), name.to_string())),
            started: Instant::now(),
        }
    }

    /// Time a closure as a span and return its result.
    pub fn timed<R>(&self, name: &str, f: impl FnOnce() -> R) -> R {
        let _span = self.span(name);
        f()
    }

    /// Append one auto-tuner evaluation record.
    pub fn log_tuner_iteration(&self, record: TunerIteration) {
        if let Some(inner) = &self.inner {
            inner.tuner.lock().push(record);
        }
    }

    /// Snapshot everything recorded so far. Disabled handles report
    /// nothing. Counters registered but never incremented are included
    /// at zero so reports enumerate the instrumented surface.
    pub fn report(&self) -> TelemetryReport {
        let Some(inner) = &self.inner else {
            return TelemetryReport::default();
        };
        let mut counters: Vec<(String, u64)> = inner
            .counters
            .lock()
            .iter()
            .map(|(name, slot)| (name.clone(), slot.load(Ordering::Relaxed)))
            .collect();
        counters.sort();
        let mut histograms: Vec<HistogramSummary> = inner
            .histograms
            .lock()
            .iter()
            .map(|(name, h)| h.summary(name))
            .filter(|h| h.count > 0)
            .collect();
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        let mut spans: Vec<SpanSummary> = inner
            .spans
            .lock()
            .iter()
            .map(|(name, s)| SpanSummary {
                name: name.clone(),
                count: s.count,
                total_ns: s.total_ns,
                min_ns: s.min_ns,
                max_ns: s.max_ns,
            })
            .collect();
        spans.sort_by(|a, b| a.name.cmp(&b.name));
        TelemetryReport {
            counters,
            histograms,
            spans,
            tuner_iterations: inner.tuner.lock().clone(),
        }
    }
}

/// Pre-registered counter handle. `Clone` shares the same slot.
#[derive(Clone, Default)]
pub struct Counter {
    slot: Option<Arc<AtomicU64>>,
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Counter")
            .field("enabled", &self.slot.is_some())
            .field("value", &self.get())
            .finish()
    }
}

impl Counter {
    /// An inert counter, equivalent to one from `Telemetry::disabled()`.
    pub fn disabled() -> Counter {
        Counter { slot: None }
    }

    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, delta: u64) {
        if let Some(slot) = &self.slot {
            slot.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.slot.as_ref().map_or(0, |slot| slot.load(Ordering::Relaxed))
    }
}

/// Drop guard returned by [`Telemetry::span`].
pub struct Span {
    target: Option<(Arc<Inner>, String)>,
    started: Instant,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((inner, name)) = self.target.take() {
            let ns = self.started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            inner.spans.lock().entry(name).or_default().record(ns);
        }
    }
}

/// Aggregated statistics for one named histogram.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSummary {
    pub name: String,
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub mean: f64,
}

/// Aggregated statistics for one named span.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanSummary {
    pub name: String,
    pub count: u64,
    pub total_ns: u64,
    pub min_ns: u64,
    pub max_ns: u64,
}

impl SpanSummary {
    pub fn total_ms(&self) -> f64 {
        self.total_ns as f64 / 1e6
    }
}

/// Deterministic snapshot of a [`Telemetry`] sink.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TelemetryReport {
    /// Alphabetically sorted `(name, value)` pairs.
    pub counters: Vec<(String, u64)>,
    pub histograms: Vec<HistogramSummary>,
    pub spans: Vec<SpanSummary>,
    pub tuner_iterations: Vec<TunerIteration>,
}

impl TelemetryReport {
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
            && self.tuner_iterations.is_empty()
    }

    /// Counter value by exact name, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Span summary by exact name, if present.
    pub fn span(&self, name: &str) -> Option<&SpanSummary> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Render as pretty-printed JSON (the `patty profile` output).
    pub fn to_json(&self) -> String {
        self.to_json_value().to_string_pretty()
    }

    /// Render as a `patty_json::Json` value for embedding in larger
    /// documents.
    pub fn to_json_value(&self) -> Json {
        let counters = Json::Arr(
            self.counters
                .iter()
                .map(|(name, value)| {
                    Json::obj().with("name", name.as_str()).with("value", *value)
                })
                .collect(),
        );
        let histograms = Json::Arr(
            self.histograms
                .iter()
                .map(|h| {
                    Json::obj()
                        .with("name", h.name.as_str())
                        .with("count", h.count)
                        .with("sum", h.sum)
                        .with("min", h.min)
                        .with("max", h.max)
                        .with("mean", h.mean)
                })
                .collect(),
        );
        let spans = Json::Arr(
            self.spans
                .iter()
                .map(|s| {
                    Json::obj()
                        .with("name", s.name.as_str())
                        .with("count", s.count)
                        .with("total_ms", s.total_ms())
                        .with("min_ns", s.min_ns)
                        .with("max_ns", s.max_ns)
                })
                .collect(),
        );
        let tuner = Json::Arr(
            self.tuner_iterations
                .iter()
                .map(|it| {
                    Json::obj()
                        .with("iteration", it.iteration)
                        .with(
                            "params",
                            Json::Obj(
                                it.params
                                    .iter()
                                    .map(|(k, v)| (k.clone(), Json::Int(*v)))
                                    .collect(),
                            ),
                        )
                        .with("objective", it.objective)
                        .with("improved", it.improved)
                })
                .collect(),
        );
        Json::obj()
            .with("counters", counters)
            .with("histograms", histograms)
            .with("spans", spans)
            .with("tuner_iterations", tuner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn disabled_handle_reports_nothing() {
        let tel = Telemetry::disabled();
        let c = tel.counter("pipeline.stage.a.items");
        c.add(10);
        tel.record("queue", 3);
        tel.timed("phase", || ());
        tel.log_tuner_iteration(TunerIteration {
            iteration: 1,
            params: vec![],
            objective: 1.0,
            improved: true,
        });
        assert!(!tel.is_enabled());
        assert!(tel.report().is_empty());
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counters_are_shared_across_clones_and_threads() {
        let tel = Telemetry::enabled();
        let c = tel.counter("items");
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                thread::spawn(move || {
                    for _ in 0..1000 {
                        c.incr();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        // Re-registering the same name yields the same slot.
        assert_eq!(tel.counter("items").get(), 4000);
        assert_eq!(tel.report().counter("items"), Some(4000));
    }

    #[test]
    fn histogram_summary_tracks_extremes_and_mean() {
        let tel = Telemetry::enabled();
        for v in [0u64, 1, 5, 16, 100] {
            tel.record("occupancy", v);
        }
        let report = tel.report();
        let h = &report.histograms[0];
        assert_eq!((h.count, h.min, h.max, h.sum), (5, 0, 100, 122));
        assert!((h.mean - 24.4).abs() < 1e-9);
    }

    #[test]
    fn spans_aggregate_by_name() {
        let tel = Telemetry::enabled();
        for _ in 0..3 {
            let _s = tel.span("phase.transform");
        }
        let value = tel.timed("phase.transform", || 7);
        assert_eq!(value, 7);
        let report = tel.report();
        let s = report.span("phase.transform").unwrap();
        assert_eq!(s.count, 4);
        assert!(s.min_ns <= s.max_ns);
        assert!(s.total_ns >= s.max_ns);
    }

    #[test]
    fn report_serializes_to_json() {
        let tel = Telemetry::enabled();
        tel.counter("b.items").add(2);
        tel.counter("a.items").add(1);
        tel.record("queue", 4);
        tel.log_tuner_iteration(TunerIteration {
            iteration: 1,
            params: vec![("main.compress.replication".into(), 4)],
            objective: 12.5,
            improved: true,
        });
        let report = tel.report();
        // Counters are sorted for deterministic output.
        assert_eq!(report.counters[0].0, "a.items");
        let json = report.to_json();
        let parsed = patty_json::parse(&json).expect("report JSON parses");
        assert_eq!(
            parsed.get("counters").and_then(|c| c.as_arr()).map(|a| a.len()),
            Some(2)
        );
        let iters = parsed.get("tuner_iterations").and_then(|t| t.as_arr()).unwrap();
        assert_eq!(
            iters[0].get("params").and_then(|p| p.get("main.compress.replication")),
            Some(&Json::Int(4))
        );
        assert_eq!(iters[0].get("improved"), Some(&Json::Bool(true)));
    }

    #[test]
    fn histogram_handles_share_one_core_across_threads() {
        let tel = Telemetry::enabled();
        let h = tel.histogram("chunk_size");
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let h = h.clone();
                thread::spawn(move || {
                    for v in 0..1000u64 {
                        h.record(v);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        // Re-registering the same name sees the same core.
        tel.histogram("chunk_size").record(5000);
        let report = tel.report();
        let s = &report.histograms[0];
        assert_eq!((s.count, s.min, s.max), (4001, 0, 5000));
        assert_eq!(s.sum, 4 * (0..1000u64).sum::<u64>() + 5000);
    }

    #[test]
    fn local_histogram_merge_matches_direct_recording() {
        let direct = Telemetry::enabled();
        let merged = Telemetry::enabled();
        let mut local = LocalHistogram::new();
        assert!(local.is_empty());
        for v in [0u64, 1, 7, 64, 900] {
            direct.record("h", v);
            local.record(v);
        }
        merged.histogram("h").merge(&local);
        assert_eq!(direct.report().histograms, merged.report().histograms);
    }

    #[test]
    fn disabled_and_empty_histograms_stay_out_of_reports() {
        let h = Histogram::disabled();
        h.record(7);
        h.merge(&LocalHistogram::new());
        let tel = Telemetry::enabled();
        let registered = tel.histogram("never_observed");
        registered.merge(&LocalHistogram::new());
        // Registered-but-empty histograms are filtered, matching the
        // old lazy-registration report shape.
        assert!(tel.report().histograms.is_empty());
    }

    #[test]
    fn empty_report_is_valid_json() {
        let report = Telemetry::disabled().report();
        let parsed = patty_json::parse(&report.to_json()).unwrap();
        assert_eq!(parsed.get("counters"), Some(&Json::Arr(vec![])));
    }
}
