//! Participants and group composition (Section 4.1).
//!
//! "For this study we collected ten participants with different
//! experiences in general and multicore software engineering. We
//! retrieved their skill level in both categories in interviews before we
//! performed the actual study. From this score we composed three groups
//! with an equal average experience level."
//!
//! The roster is synthetic but deterministic: skills are seeded, groups
//! are balanced greedily on the combined experience score, and — as in
//! the paper — every skill band from inexperienced to multicore expert is
//! represented.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which tool a participant's group used.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Group {
    /// Group 1: Patty.
    Patty,
    /// Group 2: the commercial tool chain (profiler-first workflow,
    /// annotation language, no pattern proposals).
    ParallelStudio,
    /// Group 3: manual, with only the IDE's standard tools.
    Manual,
}

impl std::fmt::Display for Group {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Group::Patty => write!(f, "Patty"),
            Group::ParallelStudio => write!(f, "Parallel Studio"),
            Group::Manual => write!(f, "Manual"),
        }
    }
}

/// Skill classification used in the paper's write-up.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SkillBand {
    /// Inexperienced in software engineering.
    Novice,
    /// Experienced in software engineering, inexperienced in multicore.
    Sequential,
    /// Experienced in multicore engineering.
    Multicore,
}

/// One study participant.
#[derive(Clone, Debug)]
pub struct Participant {
    pub id: usize,
    /// General software engineering skill, 0..1.
    pub se_skill: f64,
    /// Multicore engineering skill, 0..1.
    pub mc_skill: f64,
    pub group: Group,
}

impl Participant {
    /// Combined experience score used for balancing.
    pub fn experience(&self) -> f64 {
        0.5 * self.se_skill + 0.5 * self.mc_skill
    }

    /// The paper's skill band.
    pub fn band(&self) -> SkillBand {
        if self.mc_skill >= 0.6 {
            SkillBand::Multicore
        } else if self.se_skill >= 0.5 {
            SkillBand::Sequential
        } else {
            SkillBand::Novice
        }
    }
}

/// Build the 10-person roster and assign balanced groups of sizes
/// 3 (Patty), 4 (Parallel Studio) and 3 (Manual) — the sizes implied by
/// the paper's group averages (thirds, quarters, thirds).
pub fn build_roster(seed: u64) -> Vec<Participant> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Skill draws spanning the bands: a couple of novices, a majority of
    // solid sequential engineers, one genuine multicore expert.
    let mut skills: Vec<(f64, f64)> = Vec::new();
    for i in 0..10 {
        let (se, mc) = match i {
            0 => (0.25, 0.10),                              // novice
            1 => (0.35, 0.15),                              // novice
            9 => (0.90, 0.90),                              // the multicore expert
            8 => (0.80, 0.65),                              // strong multicore
            _ => (
                0.5 + rng.gen_range(0.0..0.35),
                0.15 + rng.gen_range(0.0..0.40),
            ),
        };
        skills.push((se, mc));
    }
    // Greedy balancing: sort by experience descending, deal into the
    // group with the lowest current average that still has capacity.
    let mut order: Vec<usize> = (0..10).collect();
    order.sort_by(|&a, &b| {
        let ea = 0.5 * skills[a].0 + 0.5 * skills[a].1;
        let eb = 0.5 * skills[b].0 + 0.5 * skills[b].1;
        eb.total_cmp(&ea)
    });
    let capacities = [(Group::Patty, 3), (Group::ParallelStudio, 4), (Group::Manual, 3)];
    let mut assigned: Vec<(Group, Vec<usize>)> =
        capacities.iter().map(|(g, _)| (*g, Vec::new())).collect();
    // The multicore expert sits in the commercial-tool group — the paper
    // traces the intel group's satisfaction outlier to exactly that
    // participant.
    assigned[1].1.push(9);
    order.retain(|&i| i != 9);
    for idx in order {
        let exp = 0.5 * skills[idx].0 + 0.5 * skills[idx].1;
        let _ = exp;
        // Pick the group with the lowest total experience so far that has
        // remaining capacity.
        let slot = assigned
            .iter_mut()
            .zip(capacities.iter())
            .filter(|((_, members), (_, cap))| members.len() < *cap)
            .min_by(|((_, a), _), ((_, b), _)| {
                let sa: f64 = a.iter().map(|&i| 0.5 * skills[i].0 + 0.5 * skills[i].1).sum();
                let sb: f64 = b.iter().map(|&i| 0.5 * skills[i].0 + 0.5 * skills[i].1).sum();
                sa.total_cmp(&sb)
            })
            .map(|((_, members), _)| members)
            .expect("capacity left");
        slot.push(idx);
    }
    let mut out = Vec::new();
    for (group, members) in assigned {
        for idx in members {
            out.push(Participant {
                id: idx,
                se_skill: skills[idx].0,
                mc_skill: skills[idx].1,
                group,
            });
        }
    }
    out.sort_by_key(|p| p.id);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_has_ten_in_three_groups() {
        let r = build_roster(42);
        assert_eq!(r.len(), 10);
        let count = |g| r.iter().filter(|p| p.group == g).count();
        assert_eq!(count(Group::Patty), 3);
        assert_eq!(count(Group::ParallelStudio), 4);
        assert_eq!(count(Group::Manual), 3);
    }

    #[test]
    fn groups_have_balanced_experience() {
        let r = build_roster(42);
        let avg = |g| {
            let members: Vec<&Participant> = r.iter().filter(|p| p.group == g).collect();
            members.iter().map(|p| p.experience()).sum::<f64>() / members.len() as f64
        };
        let (a, b, c) = (
            avg(Group::Patty),
            avg(Group::ParallelStudio),
            avg(Group::Manual),
        );
        let spread = [a, b, c].iter().cloned().fold(f64::MIN, f64::max)
            - [a, b, c].iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread < 0.15, "experience spread {spread} ({a:.2}/{b:.2}/{c:.2})");
    }

    #[test]
    fn all_skill_bands_present() {
        let r = build_roster(42);
        let bands: std::collections::BTreeSet<u8> = r
            .iter()
            .map(|p| match p.band() {
                SkillBand::Novice => 0,
                SkillBand::Sequential => 1,
                SkillBand::Multicore => 2,
            })
            .collect();
        assert_eq!(bands.len(), 3);
    }

    #[test]
    fn roster_is_deterministic_per_seed() {
        let a = build_roster(7);
        let b = build_roster(7);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.group, y.group);
            assert_eq!(x.se_skill, y.se_skill);
        }
    }
}
