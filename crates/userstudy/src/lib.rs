//! # patty-userstudy
//!
//! A deterministic simulation of the PMAM'15 user study (Section 4).
//!
//! The original experiment put ten human engineers of mixed skill in
//! front of a RayTracing benchmark with three parallelizable locations
//! and compared Patty, a commercial profiler-first tool chain, and manual
//! work. Humans cannot ship with a library, so this crate substitutes a
//! calibrated behavioural simulation — with one important honesty rule:
//! the Patty group's findings are produced by the *real* detector running
//! on the *real* benchmark (`patty-corpus`'s ray tracer); only the human
//! factors (reading speed, race blindness, questionnaire attitudes) are
//! modeled, with all constants documented in the module sources and every
//! draw seeded.
//!
//! ```
//! use patty_userstudy::{run_study, StudyConfig};
//!
//! let results = run_study(&StudyConfig::default());
//! let eff = results.effectivity();
//! // Patty finds all three locations (Section 4.2: "100% in 39 minutes").
//! assert_eq!(eff[0].avg_found, 3.0);
//! ```

pub mod behavior;
pub mod features;
pub mod questionnaire;
pub mod roster;
pub mod study;

pub use behavior::{prepare_benchmark, simulate_participant, Benchmark, Outcome, TIME_LIMIT_MIN};
pub use features::{rate_features, top_features, Feature, FeatureRow, FEATURES};
pub use questionnaire::{answer, mean_sd, Answers, ASSISTANCE, COMPREHENSIBILITY};
pub use roster::{build_roster, Group, Participant, SkillBand};
pub use study::{
    run_study, EffectivityRow, IndicatorRow, StudyConfig, StudyResults, TimeRow,
};
