//! Desired features of parallelization tools (Fig. 5a).
//!
//! "We evaluated the questionnaires of the manual control group that
//! assessed what tool support would help them in parallelization, if they
//! had to do this task again. … For the questionnaire we collected
//! different tool features and let the manual control group decide, how
//! helpful these feature would be to them."

use crate::roster::Participant;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The nine features of Fig. 5a, with which tools provide them.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Feature {
    pub name: &'static str,
    /// How helpful the manual group rates it (base attitude, −3..3).
    pub base: f64,
    pub patty_provides: bool,
    pub studio_provides: bool,
}

/// The feature catalog. Patty provides five of the nine; Parallel Studio
/// two (only one of them in the top five) — the paper's R2 conclusion.
pub const FEATURES: [Feature; 9] = [
    Feature { name: "Emphasize source", base: 2.2, patty_provides: true, studio_provides: false },
    Feature { name: "Model source", base: 0.9, patty_provides: false, studio_provides: false },
    Feature { name: "Visualize call graph", base: 0.2, patty_provides: false, studio_provides: false },
    Feature { name: "Visualize runtime distribution", base: 2.6, patty_provides: false, studio_provides: true },
    Feature { name: "Show data dependencies", base: 2.6, patty_provides: true, studio_provides: false },
    Feature { name: "Show control dependencies", base: 1.6, patty_provides: true, studio_provides: false },
    Feature { name: "Provide parallel strategies", base: 2.3, patty_provides: true, studio_provides: false },
    Feature { name: "Support validation", base: 1.9, patty_provides: true, studio_provides: true },
    Feature { name: "Support performance optimization", base: 2.2, patty_provides: false, studio_provides: false },
];

/// One row of the Fig. 5a evaluation.
#[derive(Clone, Debug)]
pub struct FeatureRow {
    pub name: &'static str,
    pub average: f64,
    /// Lower/upper quantiles over the manual group's answers.
    pub lower: f64,
    pub upper: f64,
    pub patty_provides: bool,
    pub studio_provides: bool,
}

/// Collect the manual group's feature ratings.
pub fn rate_features(manual: &[&Participant], seed: u64) -> Vec<FeatureRow> {
    FEATURES
        .iter()
        .map(|f| {
            let mut ratings: Vec<f64> = manual
                .iter()
                .map(|p| {
                    let mut rng = StdRng::seed_from_u64(
                        seed ^ (p.id as u64).wrapping_mul(0xFEA7) ^ hash_name(f.name),
                    );
                    // Struggling participants (low multicore skill) want
                    // dependence views and strategies even more.
                    let want = f.base + (0.5 - p.mc_skill) * 0.8;
                    // Noise stays small relative to the base-attitude
                    // gaps: with only three manual raters, a wider
                    // spread would let sampling luck reorder Fig. 5a.
                    (want + rng.gen_range(-0.45..0.45)).clamp(-3.0, 3.0)
                })
                .collect();
            ratings.sort_by(f64::total_cmp);
            let average = ratings.iter().sum::<f64>() / ratings.len().max(1) as f64;
            FeatureRow {
                name: f.name,
                average,
                lower: ratings.first().copied().unwrap_or(0.0),
                upper: ratings.last().copied().unwrap_or(0.0),
                patty_provides: f.patty_provides,
                studio_provides: f.studio_provides,
            }
        })
        .collect()
}

fn hash_name(s: &str) -> u64 {
    s.bytes().fold(0xcbf29ce484222325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100000001b3)
    })
}

/// The top-`k` features by average rating.
pub fn top_features(rows: &[FeatureRow], k: usize) -> Vec<&FeatureRow> {
    let mut sorted: Vec<&FeatureRow> = rows.iter().collect();
    sorted.sort_by(|a, b| b.average.total_cmp(&a.average));
    sorted.into_iter().take(k).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::roster::{build_roster, Group};

    fn rows() -> Vec<FeatureRow> {
        let roster = build_roster(42);
        let manual: Vec<&Participant> =
            roster.iter().filter(|p| p.group == Group::Manual).collect();
        rate_features(&manual, 42)
    }

    #[test]
    fn coverage_counts_match_the_paper() {
        assert_eq!(FEATURES.iter().filter(|f| f.patty_provides).count(), 5);
        assert_eq!(FEATURES.iter().filter(|f| f.studio_provides).count(), 2);
    }

    #[test]
    fn patty_covers_three_of_top_five() {
        let rows = rows();
        let top5 = top_features(&rows, 5);
        let patty_top = top5.iter().filter(|r| r.patty_provides).count();
        let studio_top = top5.iter().filter(|r| r.studio_provides).count();
        assert!(
            patty_top >= 3,
            "Patty must provide ≥3 of the top five (has {patty_top})"
        );
        assert_eq!(studio_top, 1, "Parallel Studio provides exactly one of the top five");
    }

    #[test]
    fn quantiles_bracket_the_average() {
        for r in rows() {
            assert!(r.lower <= r.average && r.average <= r.upper, "{r:?}");
            assert!((-3.0..=3.0).contains(&r.average));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = rows();
        let b = rows();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.average, y.average);
        }
    }
}
