//! The complete study: roster → benchmark → behaviour → questionnaires →
//! the evaluation artifacts of Section 4.2 (Tables 1–2, Fig. 5a/5b, the
//! effectivity numbers).

use crate::behavior::{prepare_benchmark, simulate_participant, Benchmark, Outcome};
use crate::features::{rate_features, FeatureRow};
use crate::questionnaire::{answer, mean_sd, Answers, ASSISTANCE, COMPREHENSIBILITY};
use crate::roster::{build_roster, Group, Participant};

/// Study configuration.
#[derive(Clone, Debug)]
pub struct StudyConfig {
    pub seed: u64,
}

impl Default for StudyConfig {
    fn default() -> StudyConfig {
        StudyConfig { seed: 2015 }
    }
}

/// One row of Table 1 / Table 2: an indicator with per-tool mean and
/// standard deviation.
#[derive(Clone, Debug)]
pub struct IndicatorRow {
    pub indicator: String,
    pub patty_mean: f64,
    pub patty_sd: f64,
    pub studio_mean: f64,
    pub studio_sd: f64,
}

/// One group's Fig. 5b time bars (minutes).
#[derive(Clone, Debug)]
pub struct TimeRow {
    pub group: Group,
    pub total_working_time: f64,
    pub time_to_first_identification: f64,
    pub time_to_first_tool_usage: f64,
}

/// One group's effectivity numbers (Section 4.2).
#[derive(Clone, Debug)]
pub struct EffectivityRow {
    pub group: Group,
    pub avg_found: f64,
    pub avg_false_positives: f64,
    pub accuracy: f64,
    pub avg_total_min: f64,
}

/// Everything the study produced.
#[derive(Debug)]
pub struct StudyResults {
    pub roster: Vec<Participant>,
    pub benchmark: Benchmark,
    pub outcomes: Vec<Outcome>,
    pub answers: Vec<Answers>,
    pub feature_rows: Vec<FeatureRow>,
}

/// Run the full study.
pub fn run_study(config: &StudyConfig) -> StudyResults {
    let roster = build_roster(config.seed);
    let benchmark = prepare_benchmark();
    let outcomes: Vec<Outcome> = roster
        .iter()
        .map(|p| simulate_participant(p, &benchmark, config.seed))
        .collect();
    let answers: Vec<Answers> = roster
        .iter()
        .zip(&outcomes)
        .filter_map(|(p, o)| answer(p, o, config.seed))
        .collect();
    let manual: Vec<&Participant> = roster.iter().filter(|p| p.group == Group::Manual).collect();
    let feature_rows = rate_features(&manual, config.seed);
    StudyResults { roster, benchmark, outcomes, answers, feature_rows }
}

impl StudyResults {
    fn indicator_row(&self, indicator: &str) -> IndicatorRow {
        let collect = |g: Group| -> Vec<f64> {
            self.answers
                .iter()
                .filter(|a| a.group == g)
                .filter_map(|a| a.score(indicator))
                .collect()
        };
        let (pm, ps) = mean_sd(&collect(Group::Patty));
        let (sm, ss) = mean_sd(&collect(Group::ParallelStudio));
        IndicatorRow {
            indicator: indicator.to_string(),
            patty_mean: pm,
            patty_sd: ps,
            studio_mean: sm,
            studio_sd: ss,
        }
    }

    /// Table 1: comprehensibility indicators plus the total row.
    pub fn table1(&self) -> (Vec<IndicatorRow>, f64, f64) {
        let rows: Vec<IndicatorRow> = COMPREHENSIBILITY
            .iter()
            .map(|i| self.indicator_row(i))
            .collect();
        let patty_total = rows.iter().map(|r| r.patty_mean).sum::<f64>() / rows.len() as f64;
        let studio_total = rows.iter().map(|r| r.studio_mean).sum::<f64>() / rows.len() as f64;
        (rows, patty_total, studio_total)
    }

    /// Table 2: subjective tool assistance plus the overall assessment.
    pub fn table2(&self) -> (Vec<IndicatorRow>, f64, f64) {
        let rows: Vec<IndicatorRow> =
            ASSISTANCE.iter().map(|i| self.indicator_row(i)).collect();
        // Overall assessment: the assistance indicators together with the
        // total comprehensibility (how the paper's 2.25 / 1.40 relate to
        // its per-table values).
        let (_, c_p, c_s) = self.table1();
        let patty = (rows.iter().map(|r| r.patty_mean).sum::<f64>() + c_p) / 3.0;
        let studio = (rows.iter().map(|r| r.studio_mean).sum::<f64>() + c_s) / 3.0;
        (rows, patty, studio)
    }

    /// Fig. 5b: the three time measurements per group.
    pub fn fig5b(&self) -> Vec<TimeRow> {
        [Group::Patty, Group::ParallelStudio, Group::Manual]
            .into_iter()
            .map(|g| {
                let os: Vec<&Outcome> =
                    self.outcomes.iter().filter(|o| o.group == g).collect();
                let avg = |f: &dyn Fn(&Outcome) -> f64| {
                    os.iter().map(|o| f(o)).sum::<f64>() / os.len().max(1) as f64
                };
                TimeRow {
                    group: g,
                    total_working_time: avg(&|o| o.total_min),
                    time_to_first_identification: avg(&|o| o.first_identification_min),
                    time_to_first_tool_usage: avg(&|o| o.first_tool_use_min),
                }
            })
            .collect()
    }

    /// The Section-4.2 effectivity numbers per group.
    pub fn effectivity(&self) -> Vec<EffectivityRow> {
        let truth_count = self.benchmark.truth.len() as f64;
        [Group::Patty, Group::ParallelStudio, Group::Manual]
            .into_iter()
            .map(|g| {
                let os: Vec<&Outcome> =
                    self.outcomes.iter().filter(|o| o.group == g).collect();
                let n = os.len().max(1) as f64;
                let avg_found = os.iter().map(|o| o.found.len() as f64).sum::<f64>() / n;
                EffectivityRow {
                    group: g,
                    avg_found,
                    avg_false_positives: os
                        .iter()
                        .map(|o| o.false_positives.len() as f64)
                        .sum::<f64>()
                        / n,
                    accuracy: avg_found / truth_count,
                    avg_total_min: os.iter().map(|o| o.total_min).sum::<f64>() / n,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn results() -> StudyResults {
        run_study(&StudyConfig::default())
    }

    #[test]
    fn table1_shape_matches_paper() {
        let r = results();
        let (rows, patty_total, studio_total) = r.table1();
        assert_eq!(rows.len(), 4);
        // Paper: Patty 2.17 vs intel 1.00 — our simulation must keep the
        // ordering and rough magnitudes.
        assert!(patty_total > studio_total + 0.5, "{patty_total:.2} vs {studio_total:.2}");
        assert!((1.6..=2.8).contains(&patty_total), "{patty_total:.2}");
        assert!((0.2..=1.8).contains(&studio_total), "{studio_total:.2}");
        // Patty's deviations are smaller on most indicators.
        let tighter = rows.iter().filter(|r| r.patty_sd <= r.studio_sd).count();
        assert!(tighter >= 3, "Patty must have tighter spreads ({tighter}/4)");
    }

    #[test]
    fn table2_shape_matches_paper() {
        let r = results();
        let (rows, patty_overall, studio_overall) = r.table2();
        assert_eq!(rows.len(), 2);
        assert!(patty_overall > studio_overall, "{patty_overall:.2} vs {studio_overall:.2}");
        // satisfaction row: intel slightly negative mean, huge spread
        let sat = &rows[1];
        assert!(sat.patty_mean > sat.studio_mean);
        assert!(sat.studio_sd > sat.patty_sd, "expert outlier inflates the intel spread");
    }

    #[test]
    fn fig5b_orderings_match_paper() {
        let r = results();
        let times = r.fig5b();
        let by = |g: Group| times.iter().find(|t| t.group == g).unwrap().clone();
        let (patty, studio, manual) =
            (by(Group::Patty), by(Group::ParallelStudio), by(Group::Manual));
        // total: manual < patty < studio (34 / 38.67 / 46.5)
        assert!(manual.total_working_time < patty.total_working_time);
        assert!(patty.total_working_time < studio.total_working_time);
        // first identification: manual < patty < studio (2.66 / 6.66 / 13.5)
        assert!(manual.time_to_first_identification < patty.time_to_first_identification);
        assert!(patty.time_to_first_identification < studio.time_to_first_identification);
        // first tool usage: Patty immediate (0.33)
        assert!(patty.time_to_first_tool_usage < 0.6);
        // magnitudes in the paper's ranges
        assert!((30.0..=45.0).contains(&patty.total_working_time), "{:.1}", patty.total_working_time);
        assert!((40.0..=60.0).contains(&studio.total_working_time), "{:.1}", studio.total_working_time);
        assert!((4.0..=10.0).contains(&patty.time_to_first_identification));
        assert!((1.0..=5.0).contains(&manual.time_to_first_identification));
    }

    #[test]
    fn effectivity_matches_paper() {
        let r = results();
        let eff = r.effectivity();
        let by = |g: Group| eff.iter().find(|e| e.group == g).unwrap().clone();
        let (patty, studio, manual) =
            (by(Group::Patty), by(Group::ParallelStudio), by(Group::Manual));
        // Patty: 3.0 of 3 (100%)
        assert_eq!(patty.avg_found, 3.0);
        assert_eq!(patty.accuracy, 1.0);
        assert_eq!(patty.avg_false_positives, 0.0);
        // intel ≈ 2.25 (75%)
        assert!((1.75..=2.75).contains(&studio.avg_found), "{}", studio.avg_found);
        // manual ≈ 2.0, sole source of false positives
        assert!((1.3..=2.4).contains(&manual.avg_found), "{}", manual.avg_found);
        assert!(manual.avg_false_positives > 0.0);
        assert_eq!(studio.avg_false_positives, 0.0);
        // ordering of effectivity (paper: 3.0 > 2.25 > 2.0; the studio/
        // manual gap is small, so allow sampling slack)
        assert!(patty.avg_found > studio.avg_found);
        assert!(studio.avg_found >= manual.avg_found - 0.5);
    }

    #[test]
    fn study_is_reproducible() {
        let a = run_study(&StudyConfig { seed: 99 });
        let b = run_study(&StudyConfig { seed: 99 });
        for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
            assert_eq!(x.found, y.found);
        }
        let (_, pa, _) = a.table1();
        let (_, pb, _) = b.table1();
        assert_eq!(pa, pb);
    }
}

impl StudyResults {
    /// Render the whole study as a self-contained markdown report — the
    /// written-up equivalent of Section 4.2, regenerated from the data.
    pub fn render_report(&self) -> String {
        use std::fmt::Write;
        let mut md = String::new();
        let _ = writeln!(md, "# User study report (simulated, seeded)\n");
        let _ = writeln!(
            md,
            "Participants: {} in three groups; benchmark: the 13-class ray tracer \
             with {} ground-truth locations.\n",
            self.roster.len(),
            self.benchmark.truth.len()
        );

        let (rows1, p_total, s_total) = self.table1();
        let _ = writeln!(md, "## Table 1 — Comprehensibility\n");
        let _ = writeln!(md, "| Indicator | Patty | Parallel Studio |");
        let _ = writeln!(md, "|---|---|---|");
        for r in &rows1 {
            let _ = writeln!(
                md,
                "| {} | {:.2}, σ {:.2} | {:.2}, σ {:.2} |",
                r.indicator, r.patty_mean, r.patty_sd, r.studio_mean, r.studio_sd
            );
        }
        let _ = writeln!(md, "| **Total** | **{p_total:.2}** | **{s_total:.2}** |\n");

        let (rows2, p_overall, s_overall) = self.table2();
        let _ = writeln!(md, "## Table 2 — Subjective tool assistance\n");
        let _ = writeln!(md, "| Indicator | Patty | Parallel Studio |");
        let _ = writeln!(md, "|---|---|---|");
        for r in &rows2 {
            let _ = writeln!(
                md,
                "| {} | {:.2}, σ {:.2} | {:.2}, σ {:.2} |",
                r.indicator, r.patty_mean, r.patty_sd, r.studio_mean, r.studio_sd
            );
        }
        let _ = writeln!(md, "| **Overall** | **{p_overall:.2}** | **{s_overall:.2}** |\n");

        let _ = writeln!(md, "## Figure 5b — Times (minutes)\n");
        let _ = writeln!(md, "| Group | total | first identification | first tool usage |");
        let _ = writeln!(md, "|---|---|---|---|");
        for t in self.fig5b() {
            let _ = writeln!(
                md,
                "| {} | {:.1} | {:.1} | {:.1} |",
                t.group, t.total_working_time, t.time_to_first_identification,
                t.time_to_first_tool_usage
            );
        }

        let _ = writeln!(md, "\n## Effectivity\n");
        let _ = writeln!(md, "| Group | found | accuracy | false positives |");
        let _ = writeln!(md, "|---|---|---|---|");
        for e in self.effectivity() {
            let _ = writeln!(
                md,
                "| {} | {:.2}/3 | {:.0}% | {:.2} |",
                e.group, e.avg_found, e.accuracy * 100.0, e.avg_false_positives
            );
        }

        let _ = writeln!(md, "\n## Figure 5a — Desired features (manual group)\n");
        let _ = writeln!(md, "| Feature | avg | provided by |");
        let _ = writeln!(md, "|---|---|---|");
        for f in &self.feature_rows {
            let by = match (f.patty_provides, f.studio_provides) {
                (true, true) => "Patty, Parallel Studio",
                (true, false) => "Patty",
                (false, true) => "Parallel Studio",
                (false, false) => "—",
            };
            let _ = writeln!(md, "| {} | {:.2} | {} |", f.name, f.average, by);
        }
        md
    }
}

#[cfg(test)]
mod report_tests {
    use super::*;

    #[test]
    fn report_contains_all_sections_and_headline_numbers() {
        let r = run_study(&StudyConfig::default());
        let md = r.render_report();
        for needle in [
            "# User study report",
            "## Table 1",
            "## Table 2",
            "## Figure 5b",
            "## Effectivity",
            "## Figure 5a",
            "| Patty | 3.00/3 | 100% | 0.00 |",
        ] {
            assert!(md.contains(needle), "missing {needle:?} in:\n{md}");
        }
    }
}
