//! The post-study questionnaire (Section 4.1–4.2, Tables 1–2).
//!
//! Questions follow the standardized format of Laugwitz et al. \[32\]:
//! raw answers on a 0–7 scale in *cross-value order* (on some questions 0
//! is best, on others 7), normalized to −3 (worst) … +3 (best) for
//! evaluation. Answers are produced by a response model: a group- and
//! indicator-specific base attitude, shifted by the participant's skills
//! and by their objective outcome, plus seeded noise — so the aggregate
//! tables emerge from the mechanism rather than being transcribed.

use crate::behavior::Outcome;
use crate::roster::{Group, Participant};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The comprehensibility indicators of Table 1.
pub const COMPREHENSIBILITY: [&str; 4] =
    ["Clarity", "Complexity", "Perceivability", "Learnability"];

/// The tool-assistance indicators of Table 2.
pub const ASSISTANCE: [&str; 2] = ["Perceived tool support", "Subjective satisfaction with result"];

/// One participant's normalized answers.
#[derive(Clone, Debug)]
pub struct Answers {
    pub participant_id: usize,
    pub group: Group,
    /// indicator name → normalized score in −3..=3.
    pub scores: Vec<(String, f64)>,
}

impl Answers {
    /// Score of a named indicator.
    pub fn score(&self, indicator: &str) -> Option<f64> {
        self.scores
            .iter()
            .find(|(n, _)| n == indicator)
            .map(|(_, s)| *s)
    }
}

/// Normalize a raw 0–7 answer (with 7 = best) to −3…+3.
fn normalize(raw: f64) -> f64 {
    (raw.clamp(0.0, 7.0) / 7.0) * 6.0 - 3.0
}

/// Sample a raw answer around `base` (0–7 scale) with the given spread.
fn sample(rng: &mut StdRng, base: f64, spread: f64) -> f64 {
    // triangular-ish noise: sum of two uniforms
    let noise = rng.gen_range(-spread..spread) + rng.gen_range(-spread..spread);
    (base + noise).round().clamp(0.0, 7.0)
}

/// Fill in the questionnaire for a tool-group participant (the manual
/// group answers the desired-features questionnaire instead, see
/// [`crate::features`]).
pub fn answer(p: &Participant, outcome: &Outcome, seed: u64) -> Option<Answers> {
    let mut rng = StdRng::seed_from_u64(seed ^ (p.id as u64).wrapping_mul(0xA5A5_1234));
    let mut scores = Vec::new();
    let success = outcome.found.len() as f64 / 3.0;
    match p.group {
        Group::Patty => {
            // Comprehensible process chart + overlays: uniformly good
            // scores, small spread (the paper notes the smaller standard
            // deviations make the result more reliable).
            for (ind, base, spread) in [
                ("Clarity", 5.9, 0.55),
                ("Complexity", 5.9, 0.6),
                ("Perceivability", 6.2, 0.6),
                ("Learnability", 6.2, 0.45),
            ] {
                scores.push((ind.to_string(), normalize(sample(&mut rng, base, spread))));
            }
            scores.push((
                "Perceived tool support".to_string(),
                normalize(sample(&mut rng, 5.4 + success, 1.0)),
            ));
            // Satisfaction with their *own* result is modest-positive
            // (engineers remain cautious about code they did not write).
            scores.push((
                "Subjective satisfaction with result".to_string(),
                normalize(sample(&mut rng, 4.3 + 0.5 * success, 0.5)),
            ));
        }
        Group::ParallelStudio => {
            // Mixed: a powerful but rigid workflow. The multicore expert
            // rates it highly (the paper traces the big deviation on
            // satisfaction to exactly that participant).
            let expert_bonus = 2.8 * (p.mc_skill - 0.4).max(0.0);
            for (ind, base, spread) in [
                ("Clarity", 4.6, 1.2),
                ("Complexity", 4.3, 1.0),
                ("Perceivability", 4.6, 0.9),
                ("Learnability", 4.8, 1.1),
            ] {
                scores.push((
                    ind.to_string(),
                    normalize(sample(&mut rng, base + 0.4 * expert_bonus, spread)),
                ));
            }
            scores.push((
                "Perceived tool support".to_string(),
                normalize(sample(&mut rng, 5.2 + 0.3 * expert_bonus, 0.8)),
            ));
            // Satisfaction with their own result: mildly negative for
            // most (rigid process, partial findings) but excellent for
            // the multicore expert — the paper's outlier.
            let satisfaction_base = 1.8 + 13.0 * (p.mc_skill - 0.55).max(0.0) + 0.4 * success;
            scores.push((
                "Subjective satisfaction with result".to_string(),
                normalize(sample(&mut rng, satisfaction_base, 0.5)),
            ));
        }
        Group::Manual => return None,
    }
    Some(Answers { participant_id: p.id, group: p.group, scores })
}

/// Mean and (population) standard deviation.
pub fn mean_sd(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::{prepare_benchmark, simulate_participant};
    use crate::roster::build_roster;

    fn answers_for(seed: u64) -> Vec<Answers> {
        let bench = prepare_benchmark();
        build_roster(seed)
            .iter()
            .filter_map(|p| {
                let o = simulate_participant(p, &bench, seed);
                answer(p, &o, seed)
            })
            .collect()
    }

    #[test]
    fn manual_group_gets_no_tool_questionnaire() {
        let all = answers_for(42);
        assert_eq!(all.len(), 7, "3 Patty + 4 Parallel Studio");
        assert!(all.iter().all(|a| a.group != Group::Manual));
    }

    #[test]
    fn scores_are_in_range() {
        for a in answers_for(42) {
            for (_, s) in &a.scores {
                assert!((-3.0..=3.0).contains(s), "{s}");
            }
        }
    }

    #[test]
    fn patty_beats_studio_on_comprehensibility() {
        let all = answers_for(42);
        let avg = |g: Group| {
            let vals: Vec<f64> = all
                .iter()
                .filter(|a| a.group == g)
                .flat_map(|a| {
                    COMPREHENSIBILITY
                        .iter()
                        .filter_map(|i| a.score(i))
                        .collect::<Vec<_>>()
                })
                .collect();
            mean_sd(&vals).0
        };
        let (p, s) = (avg(Group::Patty), avg(Group::ParallelStudio));
        assert!(p > s, "Patty {p:.2} must beat Parallel Studio {s:.2}");
        assert!(p > 1.5, "Patty total comprehensibility ≈ 2.17, got {p:.2}");
        assert!((0.2..=1.8).contains(&s), "studio ≈ 1.00, got {s:.2}");
    }

    #[test]
    fn studio_satisfaction_has_the_expert_outlier() {
        let all = answers_for(42);
        let sat: Vec<f64> = all
            .iter()
            .filter(|a| a.group == Group::ParallelStudio)
            .filter_map(|a| a.score("Subjective satisfaction with result"))
            .collect();
        let (mean, sd) = mean_sd(&sat);
        // low-ish mean, large spread (paper: −0.25 with σ 2.75)
        assert!(mean < 1.0, "mean {mean:.2}");
        assert!(sd > 1.0, "σ {sd:.2} must reflect the expert outlier");
        let max = sat.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max > 1.2, "the expert gave an excellent score: {max:.2}");
    }

    #[test]
    fn normalization_maps_extremes() {
        assert_eq!(normalize(0.0), -3.0);
        assert_eq!(normalize(7.0), 3.0);
        assert!((normalize(3.5)).abs() < 1e-9);
    }
}
