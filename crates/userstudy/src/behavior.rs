//! Behaviour simulation: what each participant does on the RayTracing
//! task ("Find all source code locations that are appropriate candidates
//! for parallel execution"), producing the objective measurements of
//! Section 4.2 (found locations, false positives, working times).
//!
//! The Patty group's findings are not scripted — they come from running
//! the *actual* detector on the actual benchmark; the tool models for the
//! commercial-profiler group and the manual group encode exactly the
//! workflow properties the paper reports (profiler reveals only the
//! hottest location; the annotation language costs learning time; manual
//! engineers overlook data races).

use crate::roster::{Group, Participant};
use patty_analysis::{collect_loops, SemanticModel};
use patty_corpus::raytracer_program;
use patty_minilang::{InterpOptions, NodeId};
use patty_patterns::{detect_patterns, DetectOptions};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// The benchmark as the simulation sees it.
#[derive(Clone, Debug)]
pub struct Benchmark {
    /// Ground-truth parallelizable loops.
    pub truth: BTreeSet<NodeId>,
    /// What Patty's automatic mode detects (loop ids).
    pub patty_found: Vec<NodeId>,
    /// The one location the runtime profiler reveals (highest share).
    pub profiler_hotspot: Option<NodeId>,
    /// The remaining (non-hotspot) true locations, hardest first.
    pub hidden_truth: Vec<NodeId>,
    /// The racy-looking trap loops (manual false positives).
    pub traps: Vec<NodeId>,
}

/// Run the real toolchain on the study benchmark once.
pub fn prepare_benchmark() -> Benchmark {
    let prog = raytracer_program();
    let parsed = prog.parse();
    let model = SemanticModel::build(&parsed, InterpOptions::default())
        .expect("raytracer runs");
    let loops = collect_loops(&parsed);
    let truth: BTreeSet<NodeId> = prog.truth_loop_ids(&loops).into_iter().collect();
    let patty_found: Vec<NodeId> = detect_patterns(&model, &DetectOptions::default())
        .into_iter()
        .map(|i| i.loop_id)
        .collect();
    // The profiler surfaces the hottest main-function loop only.
    let profiler_hotspot = loops
        .iter()
        .filter(|l| l.func == "main")
        .max_by(|a, b| {
            model
                .runtime_share(a.id)
                .total_cmp(&model.runtime_share(b.id))
        })
        .map(|l| l.id);
    let hidden_truth: Vec<NodeId> = truth
        .iter()
        .filter(|id| Some(**id) != profiler_hotspot)
        .copied()
        .collect();
    // Traps: the labeled-false main loops whose body is a single shared-
    // state mutation (they "look parallel"): histogram and smoother.
    let traps: Vec<NodeId> = loops
        .iter()
        .filter(|l| l.func == "main" && !truth.contains(&l.id) && l.depth == 0)
        .filter(|l| l.body_stmts.len() == 1)
        .map(|l| l.id)
        .collect();
    Benchmark { truth, patty_found, profiler_hotspot, hidden_truth, traps }
}

/// One participant's objective outcome.
#[derive(Clone, Debug)]
pub struct Outcome {
    pub participant_id: usize,
    pub group: Group,
    /// Correctly identified locations.
    pub found: BTreeSet<NodeId>,
    /// Incorrectly claimed locations (overlooked races).
    pub false_positives: BTreeSet<NodeId>,
    /// Minutes until the tool was first used as intended.
    pub first_tool_use_min: f64,
    /// Minutes until the first correct location was identified.
    pub first_identification_min: f64,
    /// Total working time in minutes (capped at the study hour).
    pub total_min: f64,
}

impl Outcome {
    /// Detection accuracy against the ground truth.
    pub fn accuracy(&self, truth: &BTreeSet<NodeId>) -> f64 {
        self.found.len() as f64 / truth.len().max(1) as f64
    }
}

/// The study-session time limit (Section 4.1: "The maximum time to
/// accomplish the given task was one hour").
pub const TIME_LIMIT_MIN: f64 = 60.0;

/// Simulate one participant working on the benchmark.
pub fn simulate_participant(p: &Participant, bench: &Benchmark, seed: u64) -> Outcome {
    let mut rng = StdRng::seed_from_u64(seed ^ (p.id as u64).wrapping_mul(0x9E3779B9));
    let jitter = |rng: &mut StdRng, base: f64, spread: f64| -> f64 {
        (base + rng.gen_range(-spread..spread)).max(0.1)
    };
    match p.group {
        Group::Patty => {
            // "the Patty group immediately started parallelizing
            // (Avg. 0.33 min)": the wizard is the obvious first click.
            let first_tool = jitter(&mut rng, 0.33, 0.15);
            // Automatic phases 1–2 run unattended.
            let analysis = jitter(&mut rng, 2.2, 0.6);
            // Verifying a proposed candidate (reading overlay + artifacts)
            // is faster for multicore-savvy engineers.
            let verify = |rng: &mut StdRng, mc: f64| jitter(rng, 5.2 - 2.2 * mc, 0.8);
            let mut t = first_tool + analysis;
            let mut found = BTreeSet::new();
            let mut first_id = None;
            for loc in &bench.patty_found {
                t += verify(&mut rng, p.mc_skill);
                if t > TIME_LIMIT_MIN {
                    break;
                }
                found.insert(*loc);
                first_id.get_or_insert(t);
            }
            // Cross-checking the rest of the source against the tool's
            // rejections (comprehension work, R1).
            let review = jitter(&mut rng, 30.0 - 8.0 * p.se_skill, 3.0);
            let total = (t + review).min(TIME_LIMIT_MIN);
            Outcome {
                participant_id: p.id,
                group: p.group,
                found,
                false_positives: BTreeSet::new(),
                first_tool_use_min: first_tool,
                first_identification_min: first_id.unwrap_or(total),
                total_min: total,
            }
        }
        Group::ParallelStudio => {
            // "intel has a fixed parallelization process that requires the
            // engineers to know an annotation language."
            let learn = jitter(&mut rng, 10.0 - 4.0 * p.mc_skill, 1.5);
            let first_tool = jitter(&mut rng, 2.0, 0.8) + learn * 0.3;
            let profile_run = jitter(&mut rng, 3.0, 0.8);
            let mut t = learn + profile_run;
            let mut found = BTreeSet::new();
            let mut first_id = None;
            if let Some(hot) = bench.profiler_hotspot {
                t += jitter(&mut rng, 1.5, 0.5); // locate in source
                found.insert(hot);
                first_id = Some(t);
            }
            // Each further region needs annotating + a speedup estimate;
            // finding the hidden ones at all takes multicore insight —
            // but the estimator gives better guidance than bare eyes.
            for loc in &bench.hidden_truth {
                let attempt = jitter(&mut rng, 14.0 - 3.0 * p.se_skill, 2.0);
                t += attempt;
                if t > TIME_LIMIT_MIN {
                    break;
                }
                let p_find = 0.42 + 0.45 * p.mc_skill;
                if rng.gen_bool(p_find.clamp(0.0, 1.0)) {
                    found.insert(*loc);
                    first_id.get_or_insert(t);
                }
            }
            let wrapup = jitter(&mut rng, 11.0, 2.0);
            let total = (t + wrapup).min(TIME_LIMIT_MIN);
            Outcome {
                participant_id: p.id,
                group: p.group,
                found,
                false_positives: BTreeSet::new(),
                first_tool_use_min: first_tool,
                first_identification_min: first_id.unwrap_or(total),
                total_min: total,
            }
        }
        Group::Manual => {
            // "almost all of the participants navigated through Visual
            // Studio during the introductory phase and found the built-in
            // profiling tool. When the study began, they directly
            // executed it."
            let first_tool = jitter(&mut rng, 1.4, 0.5);
            let profile_run = jitter(&mut rng, 1.1, 0.3);
            let mut t = first_tool + profile_run;
            let mut found = BTreeSet::new();
            let mut first_id = None;
            if let Some(hot) = bench.profiler_hotspot {
                t += jitter(&mut rng, 0.3, 0.2);
                found.insert(hot);
                first_id = Some(t);
            }
            // Reading the rest of the code by hand: the hidden locations
            // are mostly missed; the racy traps are mostly claimed.
            for loc in &bench.hidden_truth {
                t += jitter(&mut rng, 7.0, 1.5);
                if t > TIME_LIMIT_MIN * 0.75 {
                    break;
                }
                let p_find = 0.15 + 0.35 * p.mc_skill;
                if rng.gen_bool(p_find.clamp(0.0, 1.0)) {
                    found.insert(*loc);
                    first_id.get_or_insert(t);
                }
            }
            let mut false_positives = BTreeSet::new();
            for trap in &bench.traps {
                t += jitter(&mut rng, 3.0, 1.0);
                // "In all cases, this was due to the fact that data races
                // were overlooked by the engineers."
                let p_overlook = 0.9 - 0.75 * p.mc_skill;
                if rng.gen_bool(p_overlook.clamp(0.05, 0.95)) {
                    false_positives.insert(*trap);
                }
            }
            // Confident early finish ("all of them were confident that
            // they had found all locations").
            let total = (t + jitter(&mut rng, 8.0, 2.0)).min(TIME_LIMIT_MIN);
            Outcome {
                participant_id: p.id,
                group: p.group,
                found,
                false_positives,
                first_tool_use_min: first_tool,
                first_identification_min: first_id.unwrap_or(total),
                total_min: total,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::roster::build_roster;

    #[test]
    fn benchmark_has_three_truths_and_patty_finds_them() {
        let b = prepare_benchmark();
        assert_eq!(b.truth.len(), 3);
        assert_eq!(b.patty_found.len(), 3);
        assert!(b.profiler_hotspot.is_some());
        assert_eq!(b.hidden_truth.len(), 2);
        assert!(b.traps.len() >= 2, "traps: {:?}", b.traps);
    }

    #[test]
    fn patty_participants_find_everything_without_false_positives() {
        let b = prepare_benchmark();
        for p in build_roster(42).iter().filter(|p| p.group == Group::Patty) {
            let o = simulate_participant(p, &b, 1);
            assert_eq!(o.found.len(), 3);
            assert!(o.false_positives.is_empty());
            assert!(o.total_min <= TIME_LIMIT_MIN);
        }
    }

    #[test]
    fn only_manual_group_produces_false_positives() {
        let b = prepare_benchmark();
        let roster = build_roster(42);
        let mut manual_fps = 0;
        for p in &roster {
            let o = simulate_participant(p, &b, 1);
            match p.group {
                Group::Manual => manual_fps += o.false_positives.len(),
                _ => assert!(o.false_positives.is_empty()),
            }
        }
        assert!(manual_fps > 0, "the manual group must overlook races");
    }

    #[test]
    fn manual_is_fast_to_first_hit_but_low_recall() {
        let b = prepare_benchmark();
        let roster = build_roster(42);
        let avg = |g: Group, f: &dyn Fn(&Outcome) -> f64| {
            let os: Vec<f64> = roster
                .iter()
                .filter(|p| p.group == g)
                .map(|p| f(&simulate_participant(p, &b, 1)))
                .collect();
            os.iter().sum::<f64>() / os.len() as f64
        };
        let first = |o: &Outcome| o.first_identification_min;
        let found = |o: &Outcome| o.found.len() as f64;
        assert!(
            avg(Group::Manual, &first) < avg(Group::Patty, &first),
            "manual profiler hit comes fastest"
        );
        assert!(avg(Group::Patty, &found) > avg(Group::Manual, &found));
        assert!(
            avg(Group::ParallelStudio, &first) > avg(Group::Patty, &first),
            "intel group takes longest to a first result"
        );
    }

    #[test]
    fn outcomes_are_deterministic_per_seed() {
        let b = prepare_benchmark();
        let p = &build_roster(42)[0];
        let a = simulate_participant(p, &b, 9);
        let c = simulate_participant(p, &b, 9);
        assert_eq!(a.found, c.found);
        assert_eq!(a.total_min, c.total_min);
    }
}
