//! # patty-json
//!
//! A small, zero-dependency JSON library used for every JSON artifact in
//! the workspace: tuning configuration files (Fig. 3c), architecture
//! descriptions, and telemetry reports. Objects preserve insertion
//! order so serialized artifacts are stable and diffable.
//!
//! The parser reports descriptive errors with line/column positions —
//! tuning files are edited by hand between runs ("all values in the
//! configuration file can be changed", Section 2.1), so malformed input
//! is an expected condition, not a programming error.

use std::fmt;

/// A JSON value. Numbers distinguish integers from floats so tuning
/// values (`Int`) round-trip exactly.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Empty object builder.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Add a field to an object (no-op with a debug assertion otherwise).
    pub fn with(mut self, key: impl Into<String>, value: impl Into<Json>) -> Json {
        if let Json::Obj(fields) = &mut self {
            fields.push((key.into(), value.into()));
        } else {
            debug_assert!(false, "Json::with on a non-object");
        }
        self
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(v) => Some(*v as f64),
            Json::Float(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(v) => Some(v),
            _ => None,
        }
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// One-line name of the value's type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Int(_) => "integer",
            Json::Float(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }

    /// Pretty rendering with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => out.push_str(&v.to_string()),
            Json::Float(v) => {
                if v.is_finite() {
                    // Keep a trailing `.0` so floats re-parse as floats.
                    let s = format!("{v}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    // JSON has no Inf/NaN; null is the conventional stand-in.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1)
                });
            }
            Json::Obj(fields) => {
                write_seq(out, indent, depth, '{', '}', fields.len(), |out, i| {
                    write_escaped(out, &fields[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    fields[i].1.write(out, indent, depth + 1)
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        if v <= i64::MAX as u64 {
            Json::Int(v as i64)
        } else {
            Json::Float(v as f64)
        }
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Int(v as i64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::from(v as u64)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

/// Compact rendering; `to_string()` comes with it.
impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        f.write_str(&out)
    }
}

/// A parse error with position information.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    pub message: String,
    /// 1-based.
    pub line: usize,
    /// 1-based.
    pub column: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at line {}, column {}: {}", self.line, self.column, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parse a JSON document.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos < p.bytes.len() {
        return Err(p.error(format!(
            "unexpected trailing content starting with `{}`",
            p.peek_char()
        )));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        let (mut line, mut col) = (1, 1);
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        JsonError { message: message.into(), line, column: col }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_char(&self) -> String {
        match self.peek() {
            Some(b) if b.is_ascii_graphic() => (b as char).to_string(),
            Some(b) => format!("byte 0x{b:02x}"),
            None => "end of input".to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`, found `{}`", b as char, self.peek_char())))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'n') => self.keyword("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.error(format!("expected a JSON value, found `{}`", self.peek_char()))),
        }
    }

    fn keyword(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{word}`")))
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.error(format!(
                    "expected a quoted object key, found `{}`",
                    self.peek_char()
                )));
            }
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => {
                    return Err(self.error(format!(
                        "expected `,` or `}}` in object, found `{}`",
                        self.peek_char()
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => {
                    return Err(self.error(format!(
                        "expected `,` or `]` in array, found `{}`",
                        self.peek_char()
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error(format!("invalid \\u escape `{hex}`")))?;
                            // Surrogate pairs are not reconstructed; lone
                            // surrogates map to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(self.error(format!(
                                "invalid escape `\\{}`",
                                other.map(|b| b as char).unwrap_or('?')
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is valid UTF-8 by
                    // construction from &str).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("peeked nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if text.is_empty() || text == "-" {
            return Err(self.error("expected a number"));
        }
        if is_float {
            text.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| self.error(format!("invalid number `{text}`")))
        } else {
            match text.parse::<i64>() {
                Ok(v) => Ok(Json::Int(v)),
                // Overflowing integers degrade to float like serde_json's
                // arbitrary_precision-off behavior.
                Err(_) => text
                    .parse::<f64>()
                    .map(Json::Float)
                    .map_err(|_| self.error(format!("invalid number `{text}`"))),
            }
        }
    }
}

/// Helpers for decoding objects with descriptive errors, used by the
/// artifact deserializers.
pub mod de {
    use super::Json;

    /// Fetch a required field.
    pub fn field<'a>(obj: &'a Json, key: &str, what: &str) -> Result<&'a Json, String> {
        obj.get(key)
            .ok_or_else(|| format!("{what}: missing required field `{key}`"))
    }

    pub fn str_field(obj: &Json, key: &str, what: &str) -> Result<String, String> {
        let v = field(obj, key, what)?;
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| format!("{what}: field `{key}` must be a string, got {}", v.type_name()))
    }

    /// Fetch an optional string field: `None` when the field is
    /// absent or not a string. Used by line protocols where optional
    /// fields are common and a missing one is not an error.
    pub fn opt_str_field(obj: &Json, key: &str) -> Option<String> {
        obj.get(key).and_then(Json::as_str).map(str::to_string)
    }

    pub fn i64_field(obj: &Json, key: &str, what: &str) -> Result<i64, String> {
        let v = field(obj, key, what)?;
        v.as_i64()
            .ok_or_else(|| format!("{what}: field `{key}` must be an integer, got {}", v.type_name()))
    }

    pub fn f64_field(obj: &Json, key: &str, what: &str) -> Result<f64, String> {
        let v = field(obj, key, what)?;
        v.as_f64()
            .ok_or_else(|| format!("{what}: field `{key}` must be a number, got {}", v.type_name()))
    }

    pub fn bool_field(obj: &Json, key: &str, what: &str) -> Result<bool, String> {
        let v = field(obj, key, what)?;
        v.as_bool()
            .ok_or_else(|| format!("{what}: field `{key}` must be a boolean, got {}", v.type_name()))
    }

    pub fn arr_field<'a>(obj: &'a Json, key: &str, what: &str) -> Result<&'a [Json], String> {
        let v = field(obj, key, what)?;
        v.as_arr()
            .ok_or_else(|| format!("{what}: field `{key}` must be an array, got {}", v.type_name()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact_and_pretty() {
        let v = Json::obj()
            .with("app", "pipeline_main_l4")
            .with("n", 42i64)
            .with("ratio", 0.25)
            .with("on", true)
            .with("tags", vec!["a", "b"])
            .with("nested", Json::obj().with("x", Json::Null));
        for text in [v.to_string(), v.to_string_pretty()] {
            assert_eq!(parse(&text).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn preserves_field_order() {
        let v = Json::obj().with("z", 1i64).with("a", 2i64);
        assert_eq!(v.to_string(), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn int_float_distinction_survives() {
        assert_eq!(parse("3").unwrap(), Json::Int(3));
        assert_eq!(parse("3.0").unwrap(), Json::Float(3.0));
        assert_eq!(Json::Float(3.0).to_string(), "3.0");
        assert_eq!(parse(&Json::Float(3.0).to_string()).unwrap(), Json::Float(3.0));
    }

    #[test]
    fn string_escapes() {
        let s = "a\"b\\c\nd\te\u{1F600}";
        let text = Json::Str(s.into()).to_string();
        assert_eq!(parse(&text).unwrap(), Json::Str(s.into()));
        assert_eq!(parse(r#""A""#).unwrap(), Json::Str("A".into()));
    }

    #[test]
    fn errors_carry_position_and_context() {
        let err = parse("{\n  \"a\": }").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("expected a JSON value"), "{err}");

        let err = parse("[1, 2").unwrap_err();
        assert!(err.message.contains("expected `,` or `]`"), "{err}");

        let err = parse("{\"a\": 1} trailing").unwrap_err();
        assert!(err.message.contains("trailing"), "{err}");

        let err = parse("{broken: 1}").unwrap_err();
        assert!(err.message.contains("quoted object key"), "{err}");
    }

    #[test]
    fn negative_and_large_numbers() {
        assert_eq!(parse("-17").unwrap(), Json::Int(-17));
        assert_eq!(parse("1e3").unwrap(), Json::Float(1000.0));
        assert!(matches!(parse("99999999999999999999").unwrap(), Json::Float(_)));
    }

    #[test]
    fn de_helpers_report_descriptive_errors() {
        let obj = parse(r#"{"name": 7}"#).unwrap();
        let err = de::str_field(&obj, "name", "tuning parameter").unwrap_err();
        assert!(err.contains("`name` must be a string"), "{err}");
        assert!(err.contains("integer"), "{err}");
        let err = de::field(&obj, "kind", "tuning parameter").unwrap_err();
        assert!(err.contains("missing required field `kind`"), "{err}");
    }
}
