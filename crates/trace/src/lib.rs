//! # patty-trace
//!
//! Structured per-item event tracing for the pattern runtime, layered on
//! `patty-telemetry`. Where telemetry answers *how much* (aggregate
//! counters, histograms, span totals), tracing answers *where and when*:
//! every worker thread records fixed-size events — item start/end,
//! blocked sends and receives, idle tails, caught faults, tuner steps —
//! into a private lock-free ring buffer, and a collector snapshots the
//! rings into a deterministic [`TraceReport`] with per-stage latency
//! percentiles, queue-wait vs compute breakdown, worker utilization and
//! the critical path through the pipeline DAG.
//!
//! Design constraints, in order:
//!
//! 1. **Disabled means free.** A [`Tracer::disabled`] handle makes every
//!    hot-path call a branch on `None` — no clock read, no atomic, no
//!    allocation. Pattern builders default to it.
//! 2. **No allocation or locks on the hot path.** An enabled
//!    [`WorkerTracer`] writes five relaxed `AtomicU64` stores plus one
//!    release store per event into a pre-sized ring. The only locks are
//!    in registration (`Tracer::stage` / `Tracer::worker`, called once
//!    per worker before it starts) and in the snapshot.
//! 3. **Overflow is accounted, never silent.** A full ring wraps and
//!    overwrites the oldest events; the number of overwritten events is
//!    reported as `dropped_events` (satellite: ring-buffer wrap
//!    semantics).
//! 4. **Reports are deterministic.** Stages appear in registration
//!    (pipeline) order, threads sorted by `(stage, worker)`, derived
//!    ratios stored as integer permille. With the virtual clock of
//!    [`Tracer::deterministic`], a single-threaded run produces
//!    byte-identical JSON across runs.
//!
//! Exporters ([`export`]) render a raw [`Trace`] as Chrome
//! `trace_event` JSON (loadable in `chrome://tracing` / Perfetto) and a
//! [`TraceReport`] as a plain-text flame summary.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

pub mod export;
pub mod report;

pub use export::{chrome_trace, flame_summary};
pub use report::{StageSummary, TraceReport};

/// Events per ring by default: 8192 × 48 bytes = 384 KiB per worker,
/// enough for ~2700 items per worker at 3 events/item before wrapping
/// (batched runs record one event pair per batch, so they go further).
pub const DEFAULT_RING_CAPACITY: usize = 8192;

/// Nanoseconds the virtual clock advances per read; every clock access
/// is one tick, so deterministic call sequences yield deterministic
/// timestamps.
pub const VIRTUAL_TICK_NS: u64 = 1_000;

/// Stage id reserved for auto-tuner step events (not a pipeline stage).
pub const TUNER_STAGE: u16 = u16::MAX;

/// Name reported for [`TUNER_STAGE`].
pub const TUNER_STAGE_NAME: &str = "tuner";

/// The seven fixed event kinds a worker can record.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A worker began computing one stream element / chunk.
    ItemStart,
    /// The matching completion; `dur_ns` is the compute time.
    ItemEnd,
    /// Time spent blocked pushing into a full downstream buffer.
    StageBlockedSend,
    /// Time spent blocked waiting on an empty upstream buffer.
    StageBlockedRecv,
    /// Idle tail of a worker: wall time minus busy time at exit.
    WorkerIdle,
    /// A worker panic was caught and converted to a structured error.
    FaultCaught,
    /// One auto-tuner evaluation; `item` is the iteration, `dur_ns` the
    /// measured objective in nanoseconds.
    TunerStep,
}

impl EventKind {
    fn from_u8(v: u8) -> Option<EventKind> {
        Some(match v {
            0 => EventKind::ItemStart,
            1 => EventKind::ItemEnd,
            2 => EventKind::StageBlockedSend,
            3 => EventKind::StageBlockedRecv,
            4 => EventKind::WorkerIdle,
            5 => EventKind::FaultCaught,
            6 => EventKind::TunerStep,
            _ => return None,
        })
    }

    /// Stable lowercase name used in exports.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::ItemStart => "item_start",
            EventKind::ItemEnd => "item_end",
            EventKind::StageBlockedSend => "blocked_send",
            EventKind::StageBlockedRecv => "blocked_recv",
            EventKind::WorkerIdle => "worker_idle",
            EventKind::FaultCaught => "fault_caught",
            EventKind::TunerStep => "tuner_step",
        }
    }
}

/// One decoded trace event. `tick_ns` is the event's completion time on
/// the tracer clock; for duration events the interval is
/// `[tick_ns - dur_ns, tick_ns]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Per-ring sequence number (0-based, gap-free unless dropped).
    pub seqno: u64,
    pub tick_ns: u64,
    pub kind: EventKind,
    /// Stage id from the tracer's interner ([`TUNER_STAGE`] for tuner
    /// steps).
    pub stage: u16,
    /// Worker index within the stage.
    pub worker: u16,
    /// Stream sequence number / loop index / task or iteration number.
    /// For batch events this is the first element of the run.
    pub item: u64,
    /// Duration in nanoseconds (0 for instant events).
    pub dur_ns: u64,
    /// Stream elements this event accounts for (1 for per-item events;
    /// the batch/chunk length for batched `ItemEnd` events, so per-stage
    /// item counts stay equal to the stream length under batching).
    pub count: u64,
}

/// Slot layout: six words written relaxed, published by a release
/// store of the ring head. seqno doubles as a torn-read detector.
const WORDS: usize = 6;

struct Slot {
    words: [AtomicU64; WORDS],
}

impl Slot {
    fn new() -> Slot {
        Slot { words: [const { AtomicU64::new(0) }; WORDS] }
    }
}

/// A single-producer event ring. The runtime hands each worker thread
/// its own ring (via [`WorkerTracer`]), so writes never contend; the
/// collector reads concurrently and discards torn slots by seqno check.
struct EventRing {
    slots: Box<[Slot]>,
    /// Total events ever written; the publication point.
    head: AtomicU64,
    mask: u64,
    stage: u16,
    worker: u16,
    /// Live overflow accounting: bumped on every push that overwrites
    /// an old event, so ring wrap is visible in a telemetry report
    /// without ever taking a full snapshot. Inert unless the tracer was
    /// wired via [`Tracer::wire_overflow_counter`].
    overflow: patty_telemetry::Counter,
}

impl EventRing {
    fn new(
        capacity: usize,
        stage: u16,
        worker: u16,
        overflow: patty_telemetry::Counter,
    ) -> EventRing {
        let cap = capacity.next_power_of_two().max(2);
        EventRing {
            slots: (0..cap).map(|_| Slot::new()).collect(),
            head: AtomicU64::new(0),
            mask: cap as u64 - 1,
            stage,
            worker,
            overflow,
        }
    }

    #[inline]
    fn push(&self, kind: EventKind, tick_ns: u64, item: u64, dur_ns: u64, count: u64) {
        let n = self.head.load(Ordering::Relaxed);
        if n > self.mask {
            // The slot we are about to claim still holds a live event:
            // this push overwrites it.
            self.overflow.incr();
        }
        let slot = &self.slots[(n & self.mask) as usize];
        let packed =
            kind as u64 | (self.stage as u64) << 8 | (self.worker as u64) << 24;
        slot.words[0].store(n, Ordering::Relaxed);
        slot.words[1].store(tick_ns, Ordering::Relaxed);
        slot.words[2].store(packed, Ordering::Relaxed);
        slot.words[3].store(item, Ordering::Relaxed);
        slot.words[4].store(dur_ns, Ordering::Relaxed);
        slot.words[5].store(count, Ordering::Relaxed);
        self.head.store(n + 1, Ordering::Release);
    }

    /// Decode the surviving window in seqno order, plus the overwrite
    /// count. Slots whose stored seqno disagrees (a write raced the
    /// snapshot) are skipped rather than misreported.
    fn snapshot(&self) -> (Vec<TraceEvent>, u64) {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.mask + 1;
        let dropped = head.saturating_sub(cap);
        let mut events = Vec::with_capacity((head - dropped) as usize);
        for n in dropped..head {
            let slot = &self.slots[(n & self.mask) as usize];
            if slot.words[0].load(Ordering::Relaxed) != n {
                continue;
            }
            let packed = slot.words[2].load(Ordering::Relaxed);
            let Some(kind) = EventKind::from_u8((packed & 0xFF) as u8) else {
                continue;
            };
            events.push(TraceEvent {
                seqno: n,
                tick_ns: slot.words[1].load(Ordering::Relaxed),
                kind,
                stage: (packed >> 8 & 0xFFFF) as u16,
                worker: (packed >> 24 & 0xFFFF) as u16,
                item: slot.words[3].load(Ordering::Relaxed),
                dur_ns: slot.words[4].load(Ordering::Relaxed),
                count: slot.words[5].load(Ordering::Relaxed),
            });
        }
        (events, dropped)
    }
}

/// The tracer clock: monotonic for real measurements, virtual (one
/// [`VIRTUAL_TICK_NS`] per read) for byte-identical pinning tests.
enum Clock {
    Monotonic(Instant),
    Virtual(AtomicU64),
}

impl Clock {
    #[inline]
    fn now_ns(&self) -> u64 {
        match self {
            Clock::Monotonic(epoch) => {
                epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64
            }
            Clock::Virtual(counter) => {
                counter.fetch_add(VIRTUAL_TICK_NS, Ordering::Relaxed) + VIRTUAL_TICK_NS
            }
        }
    }
}

struct Inner {
    clock: Clock,
    capacity: usize,
    /// Stage-name interner; index order is registration (pipeline)
    /// order and defines the stage ids of all events.
    stages: Mutex<Vec<String>>,
    rings: Mutex<Vec<Arc<EventRing>>>,
    /// Counter cloned into each ring at registration; rings created
    /// before [`Tracer::wire_overflow_counter`] keep an inert clone.
    overflow: Mutex<patty_telemetry::Counter>,
}

impl Inner {
    fn ring(&self, stage: u16, worker: u16) -> Arc<EventRing> {
        let mut rings = self.rings.lock();
        // Reuse an existing ring for the same (stage, worker) so
        // sequential fallbacks and repeated runs extend one timeline.
        // The runtime never runs two live threads on the same pair.
        if let Some(r) = rings.iter().find(|r| r.stage == stage && r.worker == worker) {
            return Arc::clone(r);
        }
        let r = Arc::new(EventRing::new(
            self.capacity,
            stage,
            worker,
            self.overflow.lock().clone(),
        ));
        rings.push(Arc::clone(&r));
        r
    }
}

/// Opaque stage id returned by [`Tracer::stage`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StageId(u16);

/// A clock reading passed back into the recording calls so one read
/// serves several events. `Tick::none()` is inert.
#[derive(Clone, Copy, Debug)]
pub struct Tick(Option<u64>);

impl Tick {
    /// The inert tick (what disabled handles return).
    pub fn none() -> Tick {
        Tick(None)
    }

    /// Nanoseconds from `earlier` to `self` (0 if either is inert).
    pub fn since(&self, earlier: Tick) -> u64 {
        match (self.0, earlier.0) {
            (Some(now), Some(then)) => now.saturating_sub(then),
            _ => 0,
        }
    }
}

/// A cheaply cloneable tracing handle — either a shared sink or a
/// no-op, mirroring [`patty_telemetry::Telemetry`]. Pattern builders
/// take one by value; `Tracer::disabled()` is the default everywhere.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer").field("enabled", &self.is_enabled()).finish()
    }
}

impl Tracer {
    /// A live tracer with the default ring capacity and a monotonic
    /// clock.
    pub fn enabled() -> Tracer {
        Tracer::with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// A live tracer with `capacity` events per worker ring (rounded up
    /// to a power of two, minimum 2).
    pub fn with_capacity(capacity: usize) -> Tracer {
        Tracer {
            inner: Some(Arc::new(Inner {
                clock: Clock::Monotonic(Instant::now()),
                capacity,
                stages: Mutex::new(Vec::new()),
                rings: Mutex::new(Vec::new()),
                overflow: Mutex::new(patty_telemetry::Counter::disabled()),
            })),
        }
    }

    /// Cross-wire ring overflow into the sink's `trace.dropped_events`
    /// counter: every push that overwrites a live event bumps it at
    /// write time, so wrap is visible in a plain telemetry report
    /// without taking a full trace snapshot. The counter is registered
    /// immediately (so it appears at 0 in schema-stable reports). Call
    /// before workers register — rings created earlier keep an inert
    /// counter clone. Inert on disabled tracer or telemetry handles.
    pub fn wire_overflow_counter(&self, telemetry: &patty_telemetry::Telemetry) {
        let Some(inner) = &self.inner else {
            return;
        };
        *inner.overflow.lock() = telemetry.counter("trace.dropped_events");
    }

    /// A live tracer on the virtual clock: every clock read advances a
    /// counter by exactly [`VIRTUAL_TICK_NS`], so a single-threaded run
    /// produces byte-identical reports across runs (the pinning-test
    /// mode).
    pub fn deterministic(capacity: usize) -> Tracer {
        Tracer {
            inner: Some(Arc::new(Inner {
                clock: Clock::Virtual(AtomicU64::new(0)),
                capacity,
                stages: Mutex::new(Vec::new()),
                rings: Mutex::new(Vec::new()),
                overflow: Mutex::new(patty_telemetry::Counter::disabled()),
            })),
        }
    }

    /// The no-op handle. Never reads the clock, never allocates.
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Intern a stage name. The first registration order defines the
    /// stage order of every report (for a pipeline: pipeline order).
    pub fn stage(&self, name: &str) -> StageId {
        let Some(inner) = &self.inner else {
            return StageId(0);
        };
        let mut stages = inner.stages.lock();
        let id = match stages.iter().position(|s| s == name) {
            Some(i) => i,
            None => {
                stages.push(name.to_string());
                stages.len() - 1
            }
        };
        StageId(id.min(u16::MAX as usize - 1) as u16)
    }

    /// A recording handle for one worker thread of a stage. Registers
    /// (or reuses) that worker's ring; call before spawning the worker,
    /// then move the handle into it.
    pub fn worker(&self, stage: StageId, worker: usize) -> WorkerTracer {
        let Some(inner) = &self.inner else {
            return WorkerTracer::disabled();
        };
        let worker = worker.min(u16::MAX as usize) as u16;
        WorkerTracer {
            core: Some((inner.ring(stage.0, worker), Arc::clone(inner))),
        }
    }

    /// Record one auto-tuner evaluation: `iteration` (1-based) and the
    /// measured objective in nanoseconds. Reported as
    /// `TraceReport::tuner_steps` and exported on a dedicated pseudo
    /// thread named [`TUNER_STAGE_NAME`].
    pub fn tuner_step(&self, iteration: u64, objective_ns: u64) {
        let Some(inner) = &self.inner else {
            return;
        };
        let ring = inner.ring(TUNER_STAGE, 0);
        ring.push(EventKind::TunerStep, inner.clock.now_ns(), iteration, objective_ns, 1);
    }

    /// Snapshot every ring into a raw [`Trace`]. Safe to call while
    /// workers are still recording (torn slots are skipped), but
    /// normally called after the run joined its threads.
    pub fn snapshot(&self) -> Trace {
        let Some(inner) = &self.inner else {
            return Trace::default();
        };
        let stage_names = inner.stages.lock().clone();
        let rings: Vec<Arc<EventRing>> = inner.rings.lock().clone();
        let mut threads = Vec::new();
        let mut dropped_events = 0u64;
        for ring in rings {
            let (events, dropped) = ring.snapshot();
            dropped_events += dropped;
            if events.is_empty() && dropped == 0 {
                continue;
            }
            threads.push(ThreadTrace {
                stage: ring.stage,
                worker: ring.worker,
                dropped,
                events,
            });
        }
        threads.sort_by_key(|t| (t.stage, t.worker));
        Trace { stage_names, threads, dropped_events }
    }

    /// Aggregate the current snapshot into a [`TraceReport`].
    pub fn report(&self) -> TraceReport {
        TraceReport::from_trace(&self.snapshot())
    }
}

/// Per-thread recording handle. All methods are inert on a disabled
/// handle — no clock read, no stores — so instrumented hot paths cost
/// one branch when tracing is off.
#[derive(Clone)]
pub struct WorkerTracer {
    core: Option<(Arc<EventRing>, Arc<Inner>)>,
}

impl std::fmt::Debug for WorkerTracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerTracer").field("enabled", &self.is_enabled()).finish()
    }
}

impl WorkerTracer {
    /// The inert handle, equivalent to one from [`Tracer::disabled`].
    pub fn disabled() -> WorkerTracer {
        WorkerTracer { core: None }
    }

    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    /// Read the clock (inert handles return `Tick::none()` without a
    /// clock read). Pass the tick back into the `*_since`-style calls.
    #[inline]
    pub fn tick(&self) -> Tick {
        match &self.core {
            Some((_, inner)) => Tick(Some(inner.clock.now_ns())),
            None => Tick::none(),
        }
    }

    #[inline]
    fn push_at(&self, kind: EventKind, item: u64, dur_ns: u64) -> Tick {
        match &self.core {
            Some((ring, inner)) => {
                let now = inner.clock.now_ns();
                ring.push(kind, now, item, dur_ns, 1);
                Tick(Some(now))
            }
            None => Tick::none(),
        }
    }

    /// Record `ItemStart`; returns the start tick for [`Self::item_end`].
    #[inline]
    pub fn item_start(&self, item: u64) -> Tick {
        self.push_at(EventKind::ItemStart, item, 0)
    }

    /// Record `StageBlockedRecv` (waiting since `waited_since`) and
    /// `ItemStart` with a single clock read — the pipeline worker's
    /// receive-then-compute transition. Returns the start tick.
    #[inline]
    pub fn begin_item(&self, item: u64, waited_since: Tick) -> Tick {
        match &self.core {
            Some((ring, inner)) => {
                let now = inner.clock.now_ns();
                let waited = Tick(Some(now)).since(waited_since);
                ring.push(EventKind::StageBlockedRecv, now, item, waited, 1);
                ring.push(EventKind::ItemStart, now, item, 0, 1);
                Tick(Some(now))
            }
            None => Tick::none(),
        }
    }

    /// Record `ItemEnd` with duration measured from `started`; returns
    /// the end tick (reusable as the start of a send wait).
    #[inline]
    pub fn item_end(&self, item: u64, started: Tick) -> Tick {
        self.item_end_n(item, 1, started)
    }

    /// Record one `ItemEnd` that accounts for `count` consecutive stream
    /// elements starting at `item` — the batched pipeline / adaptive
    /// chunk form. One event per batch keeps the hot path amortized
    /// while per-stage item counts still sum to the stream length.
    #[inline]
    pub fn item_end_n(&self, item: u64, count: u64, started: Tick) -> Tick {
        match &self.core {
            Some((ring, inner)) => {
                let now = inner.clock.now_ns();
                ring.push(
                    EventKind::ItemEnd,
                    now,
                    item,
                    Tick(Some(now)).since(started),
                    count.max(1),
                );
                Tick(Some(now))
            }
            None => Tick::none(),
        }
    }

    /// Record `StageBlockedRecv` since `since`; returns the now-tick.
    #[inline]
    pub fn blocked_recv(&self, item: u64, since: Tick) -> Tick {
        match &self.core {
            Some((ring, inner)) => {
                let now = inner.clock.now_ns();
                ring.push(EventKind::StageBlockedRecv, now, item, Tick(Some(now)).since(since), 1);
                Tick(Some(now))
            }
            None => Tick::none(),
        }
    }

    /// Record `StageBlockedSend` since `since`; returns the now-tick
    /// (reusable as the start of the next receive wait).
    #[inline]
    pub fn blocked_send(&self, item: u64, since: Tick) -> Tick {
        match &self.core {
            Some((ring, inner)) => {
                let now = inner.clock.now_ns();
                ring.push(EventKind::StageBlockedSend, now, item, Tick(Some(now)).since(since), 1);
                Tick(Some(now))
            }
            None => Tick::none(),
        }
    }

    /// Record the worker's idle tail at exit: wall time since `since`
    /// minus `busy_ns` actually spent computing. `item` carries the
    /// number of items the worker processed.
    #[inline]
    pub fn worker_idle(&self, since: Tick, busy_ns: u64, items: u64) {
        if let Some((ring, inner)) = &self.core {
            let now = inner.clock.now_ns();
            let wall = Tick(Some(now)).since(since);
            ring.push(EventKind::WorkerIdle, now, items, wall.saturating_sub(busy_ns), 1);
        }
    }

    /// Record a caught fault on `item`.
    #[inline]
    pub fn fault(&self, item: u64) {
        self.push_at(EventKind::FaultCaught, item, 0);
    }
}

/// Events of one worker ring, as captured.
#[derive(Clone, Debug, Default)]
pub struct ThreadTrace {
    pub stage: u16,
    pub worker: u16,
    /// Events overwritten by ring wrap before the snapshot.
    pub dropped: u64,
    pub events: Vec<TraceEvent>,
}

/// A raw snapshot of every ring plus the stage-name table. Feed it to
/// [`TraceReport::from_trace`] for aggregation or to
/// [`export::chrome_trace`] for visualization.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Stage names; index = stage id.
    pub stage_names: Vec<String>,
    /// One entry per non-empty ring, sorted by `(stage, worker)`.
    pub threads: Vec<ThreadTrace>,
    /// Total events lost to ring wrap across all threads.
    pub dropped_events: u64,
}

impl Trace {
    /// Resolve a stage id to its name.
    pub fn stage_name(&self, id: u16) -> &str {
        if id == TUNER_STAGE {
            return TUNER_STAGE_NAME;
        }
        self.stage_names.get(id as usize).map(String::as_str).unwrap_or("?")
    }

    /// Total captured events across all threads.
    pub fn total_events(&self) -> u64 {
        self.threads.iter().map(|t| t.events.len() as u64).sum()
    }
}

/// Push the trace's headline numbers into a telemetry sink, so a
/// profile that also traced carries `trace.*` counters next to the
/// `fault.*` family (the "layered on patty-telemetry" seam).
///
/// `trace.dropped_events` here is the snapshot-time total; a tracer
/// wired with [`Tracer::wire_overflow_counter`] already streams drops
/// into the same counter live, so use one mechanism per sink, not both.
pub fn annotate_telemetry(trace: &Trace, telemetry: &patty_telemetry::Telemetry) {
    if !telemetry.is_enabled() {
        return;
    }
    telemetry.add("trace.events", trace.total_events());
    telemetry.add("trace.dropped_events", trace.dropped_events);
    telemetry.add("trace.threads", trace.threads.len() as u64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handles_are_inert() {
        let tracer = Tracer::disabled();
        assert!(!tracer.is_enabled());
        let wt = tracer.worker(tracer.stage("a"), 0);
        assert!(!wt.is_enabled());
        let t = wt.item_start(1);
        wt.item_end(1, t);
        wt.blocked_recv(1, Tick::none());
        wt.blocked_send(1, Tick::none());
        wt.worker_idle(Tick::none(), 0, 0);
        wt.fault(1);
        tracer.tuner_step(1, 5);
        let trace = tracer.snapshot();
        assert_eq!(trace.total_events(), 0);
        assert_eq!(trace.dropped_events, 0);
        assert!(tracer.report().stages.is_empty());
    }

    #[test]
    fn events_record_in_order_with_kinds_and_durations() {
        let tracer = Tracer::deterministic(64);
        let s = tracer.stage("crop");
        let wt = tracer.worker(s, 0);
        let wait = wt.tick();
        let start = wt.begin_item(7, wait);
        let end = wt.item_end(7, start);
        wt.blocked_send(7, end);
        let trace = tracer.snapshot();
        assert_eq!(trace.threads.len(), 1);
        let events = &trace.threads[0].events;
        assert_eq!(
            events.iter().map(|e| e.kind).collect::<Vec<_>>(),
            vec![
                EventKind::StageBlockedRecv,
                EventKind::ItemStart,
                EventKind::ItemEnd,
                EventKind::StageBlockedSend,
            ]
        );
        assert!(events.iter().all(|e| e.item == 7));
        // Virtual clock: one tick between the recv read and the end read.
        assert_eq!(events[2].dur_ns, VIRTUAL_TICK_NS);
        assert_eq!(events[0].dur_ns, VIRTUAL_TICK_NS);
        // seqnos are gap-free.
        assert_eq!(events.iter().map(|e| e.seqno).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn batched_item_end_carries_the_element_count() {
        let tracer = Tracer::deterministic(64);
        let wt = tracer.worker(tracer.stage("s"), 0);
        let start = wt.item_start(8);
        wt.item_end_n(8, 4, start);
        let start = wt.item_start(12);
        wt.item_end(12, start);
        let trace = tracer.snapshot();
        let counts: Vec<(EventKind, u64)> =
            trace.threads[0].events.iter().map(|e| (e.kind, e.count)).collect();
        assert_eq!(
            counts,
            vec![
                (EventKind::ItemStart, 1),
                (EventKind::ItemEnd, 4),
                (EventKind::ItemStart, 1),
                (EventKind::ItemEnd, 1),
            ]
        );
        // The report counts elements, not events.
        assert_eq!(tracer.report().stages[0].items, 5);
    }

    #[test]
    fn ring_wrap_drops_oldest_and_accounts_for_them() {
        // Satellite: wrap semantics. Capacity 4, 10 events — the 6
        // oldest are overwritten and counted, the 4 newest survive.
        let tracer = Tracer::deterministic(4);
        let wt = tracer.worker(tracer.stage("s"), 0);
        for i in 0..10u64 {
            wt.fault(i);
        }
        let trace = tracer.snapshot();
        assert_eq!(trace.dropped_events, 6);
        assert_eq!(trace.threads[0].dropped, 6);
        let items: Vec<u64> = trace.threads[0].events.iter().map(|e| e.item).collect();
        assert_eq!(items, vec![6, 7, 8, 9], "newest events survive the wrap");
        let report = tracer.report();
        assert_eq!(report.dropped_events, 6);
    }

    #[test]
    fn stage_interner_preserves_registration_order_and_dedups() {
        let tracer = Tracer::enabled();
        let a = tracer.stage("decode");
        let b = tracer.stage("encode");
        let a2 = tracer.stage("decode");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        tracer.worker(a, 0).fault(0);
        tracer.worker(b, 0).fault(0);
        let trace = tracer.snapshot();
        assert_eq!(trace.stage_names, vec!["decode", "encode"]);
        assert_eq!(trace.stage_name(1), "encode");
        assert_eq!(trace.stage_name(TUNER_STAGE), TUNER_STAGE_NAME);
    }

    #[test]
    fn same_worker_registration_reuses_the_ring() {
        let tracer = Tracer::deterministic(64);
        let s = tracer.stage("s");
        let w1 = tracer.worker(s, 0);
        w1.fault(1);
        let w2 = tracer.worker(s, 0);
        w2.fault(2);
        let trace = tracer.snapshot();
        assert_eq!(trace.threads.len(), 1, "one ring per (stage, worker)");
        assert_eq!(trace.threads[0].events.len(), 2);
    }

    #[test]
    fn concurrent_workers_record_without_loss() {
        let tracer = Tracer::enabled();
        let s = tracer.stage("par");
        std::thread::scope(|scope| {
            for w in 0..4usize {
                let wt = tracer.worker(s, w);
                scope.spawn(move || {
                    for i in 0..500u64 {
                        let t = wt.item_start(i);
                        wt.item_end(i, t);
                    }
                });
            }
        });
        let trace = tracer.snapshot();
        assert_eq!(trace.total_events(), 4 * 1000);
        assert_eq!(trace.dropped_events, 0);
        assert_eq!(trace.threads.len(), 4);
        for t in &trace.threads {
            // Monotonic ticks within one ring.
            assert!(t.events.windows(2).all(|w| w[0].tick_ns <= w[1].tick_ns));
        }
    }

    #[test]
    fn tuner_steps_land_on_the_reserved_stage() {
        let tracer = Tracer::deterministic(16);
        tracer.tuner_step(1, 2_000_000);
        tracer.tuner_step(2, 1_500_000);
        let trace = tracer.snapshot();
        assert_eq!(trace.threads.len(), 1);
        assert_eq!(trace.threads[0].stage, TUNER_STAGE);
        let report = tracer.report();
        assert_eq!(report.tuner_steps, 2);
        assert!(report.stages.is_empty(), "tuner steps are not a pipeline stage");
    }

    #[test]
    fn wired_overflow_counter_counts_wraps_live_without_a_snapshot() {
        // Satellite regression: ring wrap must be visible in telemetry
        // the moment it happens, not only after a full snapshot.
        let tracer = Tracer::deterministic(4);
        let telemetry = patty_telemetry::Telemetry::enabled();
        tracer.wire_overflow_counter(&telemetry);
        assert_eq!(
            telemetry.report().counter("trace.dropped_events"),
            Some(0),
            "wiring registers the counter at 0 before any event"
        );
        let wt = tracer.worker(tracer.stage("s"), 0);
        for i in 0..10u64 {
            wt.fault(i);
        }
        // No snapshot yet — the live counter alone reports the wrap.
        assert_eq!(telemetry.report().counter("trace.dropped_events"), Some(6));
        // And the snapshot agrees with the live count.
        assert_eq!(tracer.snapshot().dropped_events, 6);
    }

    #[test]
    fn overflow_wiring_is_inert_on_disabled_handles() {
        let tracer = Tracer::disabled();
        tracer.wire_overflow_counter(&patty_telemetry::Telemetry::enabled());
        let tracer = Tracer::deterministic(2);
        let telemetry = patty_telemetry::Telemetry::disabled();
        tracer.wire_overflow_counter(&telemetry);
        let wt = tracer.worker(tracer.stage("s"), 0);
        for i in 0..8u64 {
            wt.fault(i);
        }
        assert_eq!(tracer.snapshot().dropped_events, 6, "tracing itself is unaffected");
    }

    #[test]
    fn annotate_telemetry_exports_headline_counters() {
        let tracer = Tracer::deterministic(16);
        let wt = tracer.worker(tracer.stage("s"), 0);
        wt.fault(0);
        let telemetry = patty_telemetry::Telemetry::enabled();
        annotate_telemetry(&tracer.snapshot(), &telemetry);
        let report = telemetry.report();
        assert_eq!(report.counter("trace.events"), Some(1));
        assert_eq!(report.counter("trace.dropped_events"), Some(0));
        assert_eq!(report.counter("trace.threads"), Some(1));
    }
}
