//! Deterministic aggregation of a raw [`Trace`] into a
//! [`TraceReport`]: per-stage latency percentiles, queue-wait vs
//! compute breakdown, worker utilization and the critical path through
//! the pipeline DAG.
//!
//! Determinism rules: stages appear in registration (pipeline) order,
//! every derived ratio is an integer (permille, not a float), and ties
//! in the critical path break on stage order. Two traces with the same
//! events — e.g. two single-threaded runs under
//! [`Tracer::deterministic`](crate::Tracer::deterministic) — therefore
//! serialize to byte-identical JSON.

use crate::{EventKind, Trace, TUNER_STAGE};
use patty_json::Json;

/// Aggregate view of one stage (or one data-parallel / master-worker
/// architecture, which reports as a single stage). All fields are
/// public so tests and evaluators can build synthetic reports.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StageSummary {
    pub name: String,
    /// Distinct worker threads that recorded events for this stage.
    pub workers: u64,
    /// Completed stream elements (sum of `ItemEnd` counts — a batched
    /// event contributes its whole batch).
    pub items: u64,
    /// Total compute time across all workers (sum of `ItemEnd` durations).
    pub compute_ns: u64,
    /// Total time blocked waiting on the upstream queue.
    pub recv_wait_ns: u64,
    /// Total time blocked pushing into the downstream queue.
    pub send_wait_ns: u64,
    /// Idle tails recorded at worker exit.
    pub idle_ns: u64,
    /// Caught faults attributed to this stage.
    pub faults: u64,
    /// Per-item compute latency percentiles (nearest-rank).
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
    /// compute / (compute + waits + idle), in permille (0..=1000).
    pub busy_permille: u64,
    /// Mean per-item service time divided by replication width:
    /// `compute_ns / items / workers`. The stage with the largest
    /// service time bounds pipeline throughput.
    pub service_ns: u64,
}

impl StageSummary {
    fn to_json(&self) -> Json {
        Json::obj()
            .with("name", self.name.as_str())
            .with("workers", self.workers)
            .with("items", self.items)
            .with("compute_ns", self.compute_ns)
            .with("recv_wait_ns", self.recv_wait_ns)
            .with("send_wait_ns", self.send_wait_ns)
            .with("idle_ns", self.idle_ns)
            .with("faults", self.faults)
            .with("p50_ns", self.p50_ns)
            .with("p95_ns", self.p95_ns)
            .with("p99_ns", self.p99_ns)
            .with("busy_permille", self.busy_permille)
            .with("service_ns", self.service_ns)
    }
}

/// The collector's aggregate: what `patty trace --format summary`
/// prints and what [`BottleneckAnalyzer`] in `patty-tuning` consumes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceReport {
    /// One summary per stage, in registration (pipeline) order.
    pub stages: Vec<StageSummary>,
    /// Span from the earliest event start to the latest event end.
    pub wall_ns: u64,
    /// Completed items across all stages.
    pub total_items: u64,
    /// Events lost to ring wrap (satellite: wrap accounting).
    pub dropped_events: u64,
    /// Auto-tuner evaluations observed.
    pub tuner_steps: u64,
    /// Caught faults across all stages.
    pub faults: u64,
    /// Stage names ordered by descending service time — the chain that
    /// bounds end-to-end latency. The head is the bottleneck.
    pub critical_path: Vec<String>,
}

impl TraceReport {
    /// Aggregate a raw trace deterministically (see module docs).
    pub fn from_trace(trace: &Trace) -> TraceReport {
        // Stage slots in registration order; extra ids past the name
        // table (defensive) get a synthetic name.
        let mut max_stage = trace.stage_names.len();
        for t in &trace.threads {
            if t.stage != TUNER_STAGE {
                max_stage = max_stage.max(t.stage as usize + 1);
            }
        }
        let mut stages: Vec<StageSummary> = (0..max_stage)
            .map(|i| StageSummary {
                name: trace
                    .stage_names
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| format!("stage{i}")),
                ..StageSummary::default()
            })
            .collect();
        let mut durations: Vec<Vec<u64>> = vec![Vec::new(); max_stage];
        let mut tuner_steps = 0u64;
        let mut min_start = u64::MAX;
        let mut max_end = 0u64;
        for thread in &trace.threads {
            if thread.stage == TUNER_STAGE {
                tuner_steps += thread
                    .events
                    .iter()
                    .filter(|e| e.kind == EventKind::TunerStep)
                    .count() as u64;
                continue;
            }
            let s = &mut stages[thread.stage as usize];
            if thread.events.iter().any(|e| e.kind != EventKind::TunerStep) {
                s.workers += 1;
            }
            for e in &thread.events {
                min_start = min_start.min(e.tick_ns.saturating_sub(e.dur_ns));
                max_end = max_end.max(e.tick_ns);
                match e.kind {
                    EventKind::ItemEnd => {
                        // One event may account for a whole batch/chunk:
                        // count its elements so per-stage items always
                        // equal the stream length.
                        s.items += e.count.max(1);
                        s.compute_ns += e.dur_ns;
                        durations[thread.stage as usize].push(e.dur_ns / e.count.max(1));
                    }
                    EventKind::StageBlockedRecv => s.recv_wait_ns += e.dur_ns,
                    EventKind::StageBlockedSend => s.send_wait_ns += e.dur_ns,
                    EventKind::WorkerIdle => s.idle_ns += e.dur_ns,
                    EventKind::FaultCaught => s.faults += 1,
                    EventKind::ItemStart | EventKind::TunerStep => {}
                }
            }
        }
        for (s, durs) in stages.iter_mut().zip(durations.iter_mut()) {
            durs.sort_unstable();
            s.p50_ns = percentile(durs, 50);
            s.p95_ns = percentile(durs, 95);
            s.p99_ns = percentile(durs, 99);
            let accounted = s.compute_ns + s.recv_wait_ns + s.send_wait_ns + s.idle_ns;
            s.busy_permille = (s.compute_ns * 1000).checked_div(accounted).unwrap_or(0);
            s.service_ns = s.compute_ns / s.items.max(1) / s.workers.max(1);
        }
        // Critical path: stages by descending service time, stable on
        // registration order for ties; empty stages don't participate.
        let mut order: Vec<usize> = (0..stages.len()).filter(|&i| stages[i].items > 0).collect();
        order.sort_by(|&a, &b| stages[b].service_ns.cmp(&stages[a].service_ns).then(a.cmp(&b)));
        TraceReport {
            wall_ns: if max_end >= min_start && min_start != u64::MAX {
                max_end - min_start
            } else {
                0
            },
            total_items: stages.iter().map(|s| s.items).sum(),
            dropped_events: trace.dropped_events,
            tuner_steps,
            faults: stages.iter().map(|s| s.faults).sum(),
            critical_path: order.iter().map(|&i| stages[i].name.clone()).collect(),
            stages,
        }
    }

    /// The stage bounding throughput: head of the critical path.
    pub fn bottleneck(&self) -> Option<&str> {
        self.critical_path.first().map(String::as_str)
    }

    /// Summary of one stage by name (fused stages use their composed
    /// `"a+b"` name).
    pub fn stage(&self, name: &str) -> Option<&StageSummary> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// The stable JSON schema (`patty trace --format summary`). Integer
    /// fields only, fixed key order — byte-identical for identical
    /// traces.
    pub fn to_json_value(&self) -> Json {
        Json::obj()
            .with("wall_ns", self.wall_ns)
            .with("total_items", self.total_items)
            .with("dropped_events", self.dropped_events)
            .with("tuner_steps", self.tuner_steps)
            .with("faults", self.faults)
            .with(
                "critical_path",
                Json::Arr(self.critical_path.iter().map(|s| Json::from(s.as_str())).collect()),
            )
            .with("bottleneck", self.bottleneck().unwrap_or(""))
            .with("stages", Json::Arr(self.stages.iter().map(|s| s.to_json()).collect()))
    }

    /// Pretty-printed form of [`Self::to_json_value`].
    pub fn to_json(&self) -> String {
        self.to_json_value().to_string_pretty()
    }
}

/// Nearest-rank percentile on a sorted slice (0 for empty input).
fn percentile(sorted: &[u64], pct: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (pct * sorted.len() as u64).div_ceil(100).max(1) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Tick, Tracer};

    #[test]
    fn percentile_is_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50), 50);
        assert_eq!(percentile(&v, 95), 95);
        assert_eq!(percentile(&v, 99), 99);
        assert_eq!(percentile(&[7], 99), 7);
        assert_eq!(percentile(&[], 50), 0);
    }

    #[test]
    fn report_aggregates_stage_breakdown() {
        let tracer = Tracer::deterministic(256);
        let a = tracer.stage("decode");
        let b = tracer.stage("encode");
        // decode: 1 worker, 3 items of 1 virtual tick each.
        let wa = tracer.worker(a, 0);
        let run_start = wa.tick();
        let mut busy = 0u64;
        for i in 0..3u64 {
            let start = wa.item_start(i);
            let end = wa.item_end(i, start);
            busy += end.since(start);
        }
        wa.worker_idle(run_start, busy, 3);
        // encode: 2 workers, 1 item each, with recv waits.
        for w in 0..2u64 {
            let wb = tracer.worker(b, w as usize);
            let waiting = wb.tick();
            let start = wb.begin_item(w, waiting);
            wb.item_end(w, start);
        }
        let report = tracer.report();
        assert_eq!(report.stages.len(), 2);
        let decode = report.stage("decode").unwrap();
        assert_eq!(decode.workers, 1);
        assert_eq!(decode.items, 3);
        assert_eq!(decode.compute_ns, 3 * crate::VIRTUAL_TICK_NS);
        assert!(decode.idle_ns > 0, "non-compute ticks show up as idle");
        let encode = report.stage("encode").unwrap();
        assert_eq!(encode.workers, 2);
        assert_eq!(encode.items, 2);
        assert_eq!(encode.recv_wait_ns, 2 * crate::VIRTUAL_TICK_NS);
        assert_eq!(report.total_items, 5);
        assert!(report.wall_ns > 0);
    }

    #[test]
    fn critical_path_ranks_by_service_time() {
        // Build a trace whose per-stage durations differ by simulating
        // extra virtual-clock ticks between start and end: every
        // tick() read advances the clock by one tick.
        let tracer = Tracer::deterministic(256);
        let names = ["fast", "slow", "mid"];
        let extra_ticks = [0usize, 8, 3];
        for (name, extra) in names.iter().zip(extra_ticks) {
            let wt = tracer.worker(tracer.stage(name), 0);
            for i in 0..4u64 {
                let start = wt.item_start(i);
                for _ in 0..extra {
                    let _ = wt.tick(); // burn virtual time as "compute"
                }
                wt.item_end(i, start);
            }
        }
        let report = tracer.report();
        assert_eq!(report.bottleneck(), Some("slow"));
        assert_eq!(report.critical_path, vec!["slow", "mid", "fast"]);
        let slow = report.stage("slow").unwrap();
        let fast = report.stage("fast").unwrap();
        assert!(slow.service_ns > fast.service_ns);
        assert_eq!(slow.p50_ns, slow.p99_ns, "uniform synthetic durations");
    }

    #[test]
    fn replication_divides_service_time() {
        // Same compute totals, but stage "wide" has 3 workers: its
        // effective service time is a third of "narrow"'s.
        let tracer = Tracer::deterministic(256);
        let narrow = tracer.stage("narrow");
        let wide = tracer.stage("wide");
        let wt = tracer.worker(narrow, 0);
        for i in 0..6u64 {
            let s = wt.item_start(i);
            wt.item_end(i, s);
        }
        for w in 0..3usize {
            let wt = tracer.worker(wide, w);
            for i in 0..2u64 {
                let s = wt.item_start(i);
                wt.item_end(i, s);
            }
        }
        let report = tracer.report();
        let n = report.stage("narrow").unwrap();
        let w = report.stage("wide").unwrap();
        assert_eq!(n.compute_ns, w.compute_ns);
        assert_eq!(n.service_ns / w.service_ns, 3, "integer division rounds down");
        assert_eq!(report.bottleneck(), Some("narrow"));
    }

    #[test]
    fn deterministic_runs_produce_byte_identical_json() {
        let run = || {
            let tracer = Tracer::deterministic(128);
            let a = tracer.stage("scale");
            let b = tracer.stage("emit");
            let wa = tracer.worker(a, 0);
            let wb = tracer.worker(b, 0);
            for i in 0..5u64 {
                let s = wa.item_start(i);
                let e = wa.item_end(i, s);
                wa.blocked_send(i, e);
                let s = wb.begin_item(i, Tick::none());
                wb.item_end(i, s);
            }
            tracer.report().to_json()
        };
        let first = run();
        assert_eq!(first, run(), "virtual clock pins the summary bytes");
        assert!(patty_json::parse(&first).is_ok());
    }

    #[test]
    fn json_schema_has_stable_keys() {
        let tracer = Tracer::deterministic(16);
        let wt = tracer.worker(tracer.stage("s"), 0);
        let s = wt.item_start(0);
        wt.item_end(0, s);
        let json = patty_json::parse(&tracer.report().to_json()).unwrap();
        for key in [
            "wall_ns",
            "total_items",
            "dropped_events",
            "tuner_steps",
            "faults",
            "critical_path",
            "bottleneck",
            "stages",
        ] {
            assert!(json.get(key).is_some(), "missing key {key}");
        }
        let stage = &json.get("stages").unwrap().as_arr().unwrap()[0];
        for key in [
            "name", "workers", "items", "compute_ns", "recv_wait_ns", "send_wait_ns",
            "idle_ns", "faults", "p50_ns", "p95_ns", "p99_ns", "busy_permille", "service_ns",
        ] {
            assert!(stage.get(key).is_some(), "missing stage key {key}");
        }
    }
}
