//! Trace exporters.
//!
//! [`chrome_trace`] renders a raw [`Trace`] in the Chrome `trace_event`
//! JSON format — open the file in `chrome://tracing` or
//! <https://ui.perfetto.dev> to see per-worker timelines with compute
//! slices, queue waits and fault markers. [`flame_summary`] renders a
//! [`TraceReport`] as a plain-text top-down view for terminals.
//!
//! Chrome-format mapping:
//! - one process (`pid` 1) per trace; one `tid` per worker ring, named
//!   `"<stage> · w<worker>"` via `thread_name` metadata events;
//! - `ItemEnd` / `StageBlockedSend` / `StageBlockedRecv` /
//!   `WorkerIdle` become `"X"` complete events whose slice is
//!   `[tick - dur, tick]` (timestamps in microseconds, as the format
//!   requires); the matching `ItemStart` is implied by the `ItemEnd`
//!   slice and not emitted separately;
//! - `FaultCaught` and `TunerStep` become `"i"` instant events.

use crate::{EventKind, Trace, TraceReport};
use patty_json::Json;

/// Slice / instant name per event kind, as shown in the viewer.
fn chrome_name(kind: EventKind) -> &'static str {
    match kind {
        EventKind::ItemEnd => "item",
        EventKind::StageBlockedSend => "blocked_send",
        EventKind::StageBlockedRecv => "blocked_recv",
        EventKind::WorkerIdle => "idle",
        EventKind::FaultCaught => "fault",
        EventKind::TunerStep => "tuner_step",
        EventKind::ItemStart => "item_start",
    }
}

fn micros(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

/// Render the trace as a Chrome `trace_event` JSON document
/// (`{"traceEvents": [...]}`), loadable in `chrome://tracing` and
/// Perfetto.
pub fn chrome_trace(trace: &Trace) -> Json {
    let mut events: Vec<Json> = Vec::new();
    events.push(
        Json::obj()
            .with("name", "process_name")
            .with("ph", "M")
            .with("pid", 1u64)
            .with("args", Json::obj().with("name", "patty")),
    );
    for (tid, thread) in trace.threads.iter().enumerate() {
        let tid = tid as u64 + 1;
        let label = format!(
            "{} · w{}",
            trace.stage_name(thread.stage),
            thread.worker
        );
        events.push(
            Json::obj()
                .with("name", "thread_name")
                .with("ph", "M")
                .with("pid", 1u64)
                .with("tid", tid)
                .with("args", Json::obj().with("name", label)),
        );
        for e in &thread.events {
            match e.kind {
                // The start marker is implied by the ItemEnd slice.
                EventKind::ItemStart => continue,
                EventKind::FaultCaught | EventKind::TunerStep => {
                    let mut args = Json::obj().with("item", e.item);
                    if e.kind == EventKind::TunerStep {
                        args = args.with("objective_ns", e.dur_ns);
                    }
                    events.push(
                        Json::obj()
                            .with("name", chrome_name(e.kind))
                            .with("ph", "i")
                            .with("s", "t")
                            .with("pid", 1u64)
                            .with("tid", tid)
                            .with("ts", micros(e.tick_ns))
                            .with("args", args),
                    );
                }
                _ => {
                    events.push(
                        Json::obj()
                            .with("name", chrome_name(e.kind))
                            .with("ph", "X")
                            .with("pid", 1u64)
                            .with("tid", tid)
                            .with("ts", micros(e.tick_ns.saturating_sub(e.dur_ns)))
                            .with("dur", micros(e.dur_ns))
                            .with("args", Json::obj().with("item", e.item)),
                    );
                }
            }
        }
    }
    Json::obj()
        .with("traceEvents", Json::Arr(events))
        .with("displayTimeUnit", "ms")
}

/// Render the report as a plain-text flame summary: one bar per stage
/// scaled by total compute time, with the wait/idle breakdown and the
/// critical path underneath.
pub fn flame_summary(report: &TraceReport) -> String {
    const BAR: usize = 40;
    let mut out = String::new();
    out.push_str(&format!(
        "trace: {} item(s), {} stage(s), wall {:.3} ms\n",
        report.total_items,
        report.stages.len(),
        report.wall_ns as f64 / 1e6
    ));
    if report.dropped_events > 0 {
        out.push_str(&format!(
            "warning: {} event(s) dropped to ring wrap — sizes below are lower bounds\n",
            report.dropped_events
        ));
    }
    let max_compute = report.stages.iter().map(|s| s.compute_ns).max().unwrap_or(0);
    let width = report.stages.iter().map(|s| s.name.len()).max().unwrap_or(4).max(4);
    for s in &report.stages {
        let filled = if max_compute == 0 {
            0
        } else {
            (s.compute_ns as u128 * BAR as u128 / max_compute as u128) as usize
        };
        out.push_str(&format!(
            "  {:<width$}  {:#<filled$}{:.<rest$}  {:>8.3} ms compute · {:>7.3} ms wait · {:>4}‰ busy · {} worker(s) · p50/p95/p99 {}/{}/{} µs\n",
            s.name,
            "",
            "",
            s.compute_ns as f64 / 1e6,
            (s.recv_wait_ns + s.send_wait_ns) as f64 / 1e6,
            s.busy_permille,
            s.workers,
            s.p50_ns / 1000,
            s.p95_ns / 1000,
            s.p99_ns / 1000,
            width = width,
            filled = filled,
            rest = BAR - filled,
        ));
    }
    if let Some(b) = report.bottleneck() {
        out.push_str(&format!(
            "critical path: {}  (bottleneck: {b})\n",
            report.critical_path.join(" → ")
        ));
    }
    if report.tuner_steps > 0 {
        out.push_str(&format!("tuner steps: {}\n", report.tuner_steps));
    }
    if report.faults > 0 {
        out.push_str(&format!("faults caught: {}\n", report.faults));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TraceReport, Tracer};

    fn sample_tracer() -> Tracer {
        let tracer = Tracer::deterministic(64);
        let a = tracer.stage("decode");
        let b = tracer.stage("encode");
        let wa = tracer.worker(a, 0);
        let wb = tracer.worker(b, 0);
        for i in 0..3u64 {
            let s = wa.item_start(i);
            let e = wa.item_end(i, s);
            wa.blocked_send(i, e);
            let s = wb.begin_item(i, crate::Tick::none());
            wb.item_end(i, s);
        }
        wa.fault(99);
        tracer.tuner_step(1, 1_000_000);
        tracer
    }

    #[test]
    fn chrome_trace_emits_valid_schema() {
        let trace = sample_tracer().snapshot();
        let json = chrome_trace(&trace);
        // Round-trip through the serializer and parser.
        let parsed = patty_json::parse(&json.to_string_pretty()).unwrap();
        let events = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        // Metadata: process_name + one thread_name per ring (2 stages + tuner).
        let metas: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .collect();
        assert_eq!(metas.len(), 1 + trace.threads.len());
        // Every complete event has ts + dur and a tid.
        let slices: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .collect();
        assert!(!slices.is_empty());
        for s in &slices {
            assert!(s.get("ts").unwrap().as_f64().unwrap() >= 0.0);
            assert!(s.get("dur").is_some());
            assert!(s.get("tid").is_some());
        }
        // ItemStart is folded into the ItemEnd slice.
        assert!(events
            .iter()
            .all(|e| e.get("name").and_then(Json::as_str) != Some("item_start")));
        // Instants: 1 fault + 1 tuner step.
        let instants = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("i"))
            .count();
        assert_eq!(instants, 2);
    }

    #[test]
    fn chrome_thread_names_carry_stage_and_worker() {
        let trace = sample_tracer().snapshot();
        let json = chrome_trace(&trace).to_string_pretty();
        assert!(json.contains("decode · w0"));
        assert!(json.contains("encode · w0"));
        assert!(json.contains("tuner · w0"));
    }

    #[test]
    fn flame_summary_lists_all_stages_and_bottleneck() {
        let report = sample_tracer().report();
        let text = flame_summary(&report);
        assert!(text.contains("decode"));
        assert!(text.contains("encode"));
        assert!(text.contains("critical path:"));
        assert!(text.contains("bottleneck:"));
        assert!(text.contains("tuner steps: 1"));
        assert!(text.contains("faults caught: 1"));
        assert!(!text.contains("dropped"), "no wrap warning without drops");
    }

    #[test]
    fn flame_summary_warns_on_dropped_events() {
        let report = TraceReport { dropped_events: 42, ..TraceReport::default() };
        let text = flame_summary(&report);
        assert!(text.contains("42 event(s) dropped"));
    }
}
