//! The paper's baseline tuning algorithm: "we employ a basic tuning
//! algorithm that explores the search space linearly in each dimension"
//! (Section 3, R1).

use crate::param::TuningConfig;
use crate::tuner::{Evaluator, Tracker, Tuner, TuningResult};

/// Sweep each parameter in turn, holding the others at their current best,
/// and keep the best value per dimension. Optionally repeat for multiple
/// passes (coordinate descent).
#[derive(Clone, Debug)]
pub struct LinearSearch {
    /// How many full passes over all dimensions (1 = the paper's basic
    /// algorithm).
    pub passes: u32,
}

impl Default for LinearSearch {
    fn default() -> LinearSearch {
        LinearSearch { passes: 1 }
    }
}

impl Tuner for LinearSearch {
    fn name(&self) -> &'static str {
        "linear-per-dimension"
    }

    fn tune(
        &mut self,
        initial: TuningConfig,
        evaluator: &mut dyn Evaluator,
        budget: u32,
    ) -> TuningResult {
        let mut tracker = Tracker::new(evaluator, budget);
        let mut current = initial.clone();
        tracker.measure(&current);
        for _ in 0..self.passes {
            for dim in 0..current.params.len() {
                let domain_values = current.params[dim].domain.values();
                let mut best_val = current.params[dim].value;
                let mut best_score = f64::INFINITY;
                for v in domain_values {
                    let mut candidate = current.clone();
                    candidate.params[dim].value = v;
                    match tracker.measure(&candidate) {
                        Some(score) => {
                            if score < best_score {
                                best_score = score;
                                best_val = v;
                            }
                        }
                        None => return tracker.finish(initial),
                    }
                }
                current.params[dim].value = best_val;
            }
        }
        tracker.finish(initial)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::{ParamValue, TuningConfig, TuningParam};
    use crate::tuner::FnEvaluator;

    /// Separable convex objective: optimum at replication=4, fusion=true.
    fn objective(c: &TuningConfig) -> f64 {
        let rep = c.get("rep").unwrap().as_i64() as f64;
        let fuse = c.get("fuse").unwrap().as_bool();
        (rep - 4.0).powi(2) + if fuse { 0.0 } else { 5.0 }
    }

    fn config() -> TuningConfig {
        let mut c = TuningConfig::new("t");
        c.push(TuningParam::replication("rep", "f:1", 8));
        c.push(TuningParam::stage_fusion("fuse", "f:2"));
        c
    }

    #[test]
    fn finds_separable_optimum_in_one_pass() {
        let mut tuner = LinearSearch::default();
        let mut eval = FnEvaluator(objective);
        let r = tuner.tune(config(), &mut eval, 100);
        assert_eq!(r.best.get("rep"), Some(ParamValue::Int(4)));
        assert_eq!(r.best.get("fuse"), Some(ParamValue::Bool(true)));
        assert_eq!(r.best_score, 0.0);
        // one pass: 1 initial + 8 + 2 evaluations
        assert_eq!(r.evaluations, 11);
    }

    #[test]
    fn respects_budget() {
        let mut tuner = LinearSearch::default();
        let mut eval = FnEvaluator(objective);
        let r = tuner.tune(config(), &mut eval, 3);
        assert_eq!(r.evaluations, 3);
        assert!(r.best_score.is_finite());
    }

    #[test]
    fn multiple_passes_help_coupled_objectives() {
        // Coupled objective: pass 1 settles at rep=2 then flips fuse on
        // (0.45·|2−6| = 1.8 < 2); only a second rep sweep under fuse=true
        // reaches the global optimum rep=6.
        let coupled = |c: &TuningConfig| {
            let rep = c.get("rep").unwrap().as_i64() as f64;
            let fuse = c.get("fuse").unwrap().as_bool();
            if fuse {
                0.45 * (rep - 6.0).abs()
            } else {
                (rep - 2.0).abs() + 2.0
            }
        };
        let mut one = LinearSearch { passes: 1 };
        let mut two = LinearSearch { passes: 2 };
        let r1 = one.tune(config(), &mut FnEvaluator(coupled), 1000);
        let r2 = two.tune(config(), &mut FnEvaluator(coupled), 1000);
        assert!(r2.best_score <= r1.best_score);
        assert_eq!(r2.best_score, 0.0);
    }
}
