//! Nelder–Mead simplex search \[30\], one of the "smarter algorithms" the
//! paper plans to evaluate (Section 3, R1).
//!
//! The discrete tuning space is relaxed to a continuous one (booleans as
//! 0/1, integer ranges as reals); every probe is snapped back into the
//! domain before measuring, so the evaluator only ever sees legal
//! configurations.

use crate::param::TuningConfig;
use crate::tuner::{Evaluator, Tracker, Tuner, TuningResult};

/// Classic Nelder–Mead with standard coefficients (reflection 1,
/// expansion 2, contraction 0.5, shrink 0.5).
#[derive(Clone, Debug)]
pub struct NelderMead {
    /// Initial simplex spread as a fraction of each dimension's extent.
    pub spread: f64,
    /// Convergence threshold on simplex score spread.
    pub tolerance: f64,
}

impl Default for NelderMead {
    fn default() -> NelderMead {
        NelderMead { spread: 0.35, tolerance: 1e-6 }
    }
}

fn bounds(config: &TuningConfig) -> Vec<(f64, f64)> {
    config
        .params
        .iter()
        .map(|p| match &p.domain {
            crate::param::ParamDomain::Bool => (0.0, 1.0),
            crate::param::ParamDomain::IntRange { lo, hi, .. } => (*lo as f64, *hi as f64),
        })
        .collect()
}

fn snap(config: &TuningConfig, point: &[f64]) -> TuningConfig {
    let mut c = config.clone();
    for (p, raw) in c.params.iter_mut().zip(point) {
        p.value = p.domain.snap(*raw);
    }
    c
}

impl Tuner for NelderMead {
    fn name(&self) -> &'static str {
        "nelder-mead"
    }

    fn tune(
        &mut self,
        initial: TuningConfig,
        evaluator: &mut dyn Evaluator,
        budget: u32,
    ) -> TuningResult {
        let dims = initial.params.len();
        if dims == 0 {
            let mut tracker = Tracker::new(evaluator, budget);
            tracker.measure(&initial);
            return tracker.finish(initial);
        }
        let bs = bounds(&initial);
        let mut tracker = Tracker::new(evaluator, budget);

        // Initial simplex: current point plus one vertex displaced per
        // dimension.
        let start: Vec<f64> = initial.params.iter().map(|p| p.value.as_i64() as f64).collect();
        let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(dims + 1);
        let eval_point = |point: &[f64], tracker: &mut Tracker| -> Option<f64> {
            tracker.measure(&snap(&initial, point))
        };
        match eval_point(&start, &mut tracker) {
            Some(s) => simplex.push((start.clone(), s)),
            None => return tracker.finish(initial),
        }
        for d in 0..dims {
            let (lo, hi) = bs[d];
            let mut v = start.clone();
            let delta = ((hi - lo) * self.spread).max(1.0);
            v[d] = if v[d] + delta <= hi { v[d] + delta } else { (v[d] - delta).max(lo) };
            match eval_point(&v, &mut tracker) {
                Some(s) => simplex.push((v, s)),
                None => return tracker.finish(initial),
            }
        }

        while !tracker.exhausted() {
            simplex.sort_by(|a, b| a.1.total_cmp(&b.1));
            let spread = simplex.last().expect("nonempty").1 - simplex[0].1;
            if spread.abs() < self.tolerance {
                break;
            }
            let worst = simplex.len() - 1;
            // centroid of all but worst
            let mut centroid = vec![0.0; dims];
            for (v, _) in &simplex[..worst] {
                for d in 0..dims {
                    centroid[d] += v[d] / worst as f64;
                }
            }
            let reflect: Vec<f64> = (0..dims)
                .map(|d| centroid[d] + (centroid[d] - simplex[worst].0[d]))
                .collect();
            let Some(r_score) = eval_point(&reflect, &mut tracker) else { break };
            if r_score < simplex[0].1 {
                // try expansion
                let expand: Vec<f64> = (0..dims)
                    .map(|d| centroid[d] + 2.0 * (centroid[d] - simplex[worst].0[d]))
                    .collect();
                match eval_point(&expand, &mut tracker) {
                    Some(e_score) if e_score < r_score => simplex[worst] = (expand, e_score),
                    Some(_) => simplex[worst] = (reflect, r_score),
                    None => break,
                }
            } else if r_score < simplex[worst - 1].1 {
                simplex[worst] = (reflect, r_score);
            } else {
                // contraction toward the better of worst/reflected
                let toward = if r_score < simplex[worst].1 { &reflect } else { &simplex[worst].0 };
                let contract: Vec<f64> = (0..dims)
                    .map(|d| centroid[d] + 0.5 * (toward[d] - centroid[d]))
                    .collect();
                match eval_point(&contract, &mut tracker) {
                    Some(c_score)
                        if c_score < r_score.min(simplex[worst].1) =>
                    {
                        simplex[worst] = (contract, c_score)
                    }
                    Some(_) => {
                        // shrink toward the best vertex
                        let best = simplex[0].0.clone();
                        for vertex in simplex.iter_mut().skip(1) {
                            let shrunk: Vec<f64> = (0..dims)
                                .map(|d| best[d] + 0.5 * (vertex.0[d] - best[d]))
                                .collect();
                            match eval_point(&shrunk, &mut tracker) {
                                Some(s) => *vertex = (shrunk, s),
                                None => return tracker.finish(initial),
                            }
                        }
                    }
                    None => break,
                }
            }
        }
        tracker.finish(initial)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::{TuningConfig, TuningParam};
    use crate::tuner::FnEvaluator;

    fn config() -> TuningConfig {
        let mut c = TuningConfig::new("t");
        c.push(TuningParam::replication("rep", "f:1", 32));
        c.push(TuningParam::worker_count("w", "f:2", 32));
        c
    }

    #[test]
    fn converges_on_quadratic_bowl() {
        let objective = |c: &TuningConfig| {
            let r = c.get("rep").unwrap().as_i64() as f64;
            let w = c.get("w").unwrap().as_i64() as f64;
            (r - 20.0).powi(2) + 2.0 * (w - 7.0).powi(2)
        };
        let mut tuner = NelderMead::default();
        let r = tuner.tune(config(), &mut FnEvaluator(objective), 300);
        assert!(
            (r.best.get("rep").unwrap().as_i64() - 20).abs() <= 2,
            "rep = {:?}",
            r.best.get("rep")
        );
        assert!((r.best.get("w").unwrap().as_i64() - 7).abs() <= 2);
    }

    #[test]
    fn all_probes_are_legal_configurations() {
        let mut seen_illegal = false;
        {
            let mut tuner = NelderMead::default();
            let mut eval = FnEvaluator(|c: &TuningConfig| {
                for p in &c.params {
                    if !p.domain.contains(p.value) {
                        seen_illegal = true;
                    }
                }
                1.0
            });
            tuner.tune(config(), &mut eval, 50);
        }
        assert!(!seen_illegal);
    }

    #[test]
    fn handles_boolean_dimensions() {
        let mut c = TuningConfig::new("t");
        c.push(TuningParam::replication("rep", "f:1", 8));
        c.push(TuningParam::stage_fusion("fuse", "f:2"));
        let objective = |c: &TuningConfig| {
            let r = c.get("rep").unwrap().as_i64() as f64;
            let f = c.get("fuse").unwrap().as_bool();
            (r - 6.0).powi(2) + if f { 0.0 } else { 10.0 }
        };
        let mut tuner = NelderMead::default();
        let r = tuner.tune(c, &mut FnEvaluator(objective), 200);
        assert!(r.best.get("fuse").unwrap().as_bool());
    }

    #[test]
    fn empty_config_degenerates_gracefully() {
        let mut tuner = NelderMead::default();
        let r = tuner.tune(TuningConfig::new("t"), &mut FnEvaluator(|_| 3.0), 10);
        assert_eq!(r.best_score, 3.0);
        assert_eq!(r.evaluations, 1);
    }
}
