//! Exhaustive search over the full cross product of parameter domains.
//!
//! Only feasible for small spaces (the paper's pipeline spaces are a few
//! dozen to a few thousand points), but it provides the ground-truth
//! optimum against which the heuristic tuners are evaluated in the
//! ablation benches.

use crate::param::TuningConfig;
use crate::tuner::{Evaluator, Tracker, Tuner, TuningResult};

/// Enumerate every configuration (within the evaluation budget).
#[derive(Clone, Debug, Default)]
pub struct ExhaustiveSearch;

impl Tuner for ExhaustiveSearch {
    fn name(&self) -> &'static str {
        "exhaustive"
    }

    fn tune(
        &mut self,
        initial: TuningConfig,
        evaluator: &mut dyn Evaluator,
        budget: u32,
    ) -> TuningResult {
        let mut tracker = Tracker::new(evaluator, budget);
        let domains: Vec<Vec<crate::param::ParamValue>> = initial
            .params
            .iter()
            .map(|p| p.domain.values())
            .collect();
        let mut indices = vec![0usize; domains.len()];
        'outer: loop {
            let mut candidate = initial.clone();
            for (dim, &idx) in indices.iter().enumerate() {
                candidate.params[dim].value = domains[dim][idx];
            }
            if tracker.measure(&candidate).is_none() {
                break;
            }
            // odometer increment
            for dim in 0..domains.len() {
                indices[dim] += 1;
                if indices[dim] < domains[dim].len() {
                    continue 'outer;
                }
                indices[dim] = 0;
            }
            break; // wrapped all dimensions: done
        }
        tracker.finish(initial)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::{ParamValue, TuningConfig, TuningParam};
    use crate::tuner::FnEvaluator;
    use crate::{HillClimbing, LinearSearch, NelderMead, TabuSearch};

    fn config() -> TuningConfig {
        let mut c = TuningConfig::new("t");
        c.push(TuningParam::replication("rep", "f:1", 6));
        c.push(TuningParam::stage_fusion("fuse", "f:2"));
        c.push(TuningParam::sequential_execution("seq", "f:3"));
        c
    }

    fn objective(c: &TuningConfig) -> f64 {
        let rep = c.get("rep").unwrap().as_i64() as f64;
        let fuse = c.get("fuse").unwrap().as_bool();
        let seq = c.get("seq").unwrap().as_bool();
        if seq {
            100.0
        } else {
            (rep - 5.0).powi(2) + if fuse { 3.0 } else { 0.0 }
        }
    }

    #[test]
    fn visits_the_entire_space() {
        let mut tuner = ExhaustiveSearch;
        let r = tuner.tune(config(), &mut FnEvaluator(objective), 1000);
        // 6 × 2 × 2
        assert_eq!(r.evaluations, 24);
        assert_eq!(r.best_score, 0.0);
        assert_eq!(r.best.get("rep"), Some(ParamValue::Int(5)));
        assert!(!r.best.get("fuse").unwrap().as_bool());
        assert!(!r.best.get("seq").unwrap().as_bool());
    }

    #[test]
    fn budget_truncates_enumeration() {
        let mut tuner = ExhaustiveSearch;
        let r = tuner.tune(config(), &mut FnEvaluator(objective), 5);
        assert_eq!(r.evaluations, 5);
    }

    #[test]
    fn heuristics_match_the_exhaustive_optimum_on_this_space() {
        let oracle = ExhaustiveSearch
            .tune(config(), &mut FnEvaluator(objective), 1000)
            .best_score;
        let mut linear = LinearSearch { passes: 2 };
        let mut hill = HillClimbing::default();
        let mut nm = NelderMead::default();
        let mut tabu = TabuSearch::default();
        for (name, score) in [
            ("linear", linear.tune(config(), &mut FnEvaluator(objective), 400).best_score),
            ("hill", hill.tune(config(), &mut FnEvaluator(objective), 400).best_score),
            ("nelder-mead", nm.tune(config(), &mut FnEvaluator(objective), 400).best_score),
            ("tabu", tabu.tune(config(), &mut FnEvaluator(objective), 400).best_score),
        ] {
            assert!(
                score <= oracle + 3.0,
                "{name} ended {score} vs oracle {oracle}"
            );
        }
    }
}
