//! Bottleneck classification over a [`TraceReport`] and the candidate
//! configurations it suggests to the auto-tuner.
//!
//! The paper's shipped tuner walks the parameter space blindly (one
//! dimension at a time, Section 3). A structured trace tells us *why*
//! a configuration is slow — which stage bounds throughput, whether
//! workers starve on queues, whether replication is over-provisioned —
//! so the tuner can try the configurations most likely to help first:
//! widen the slowest stage before touching anything else.

use crate::param::{ParamKind, ParamValue, TuningConfig};
use patty_trace::TraceReport;

/// Why a traced run was as slow as it was.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Bottleneck {
    /// One stage's per-item service time dominates every other stage:
    /// throughput is bound by its compute. Widen it.
    StageBound { stage: String },
    /// Some stage spends a large share of its time blocked pushing into
    /// the downstream queue: the split into threads costs more than it
    /// buys. Fuse stages or drop order preservation.
    QueueBound { stage: String },
    /// A replicated stage's workers sit mostly idle while another
    /// stage's workers are saturated: parallelism is in the wrong
    /// place. Narrow the idle stage.
    ImbalanceBound { stage: String },
    /// No stage stands out; the configuration is near the knee.
    Balanced,
}

impl Bottleneck {
    /// The stage the classification points at, if any.
    pub fn stage(&self) -> Option<&str> {
        match self {
            Bottleneck::StageBound { stage }
            | Bottleneck::QueueBound { stage }
            | Bottleneck::ImbalanceBound { stage } => Some(stage),
            Bottleneck::Balanced => None,
        }
    }
}

impl std::fmt::Display for Bottleneck {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Bottleneck::StageBound { stage } => write!(f, "stage-bound on `{stage}`"),
            Bottleneck::QueueBound { stage } => write!(f, "queue-bound on `{stage}`"),
            Bottleneck::ImbalanceBound { stage } => {
                write!(f, "imbalance-bound on `{stage}`")
            }
            Bottleneck::Balanced => write!(f, "balanced"),
        }
    }
}

/// Classifies a [`TraceReport`] into a [`Bottleneck`] and turns the
/// classification into concrete tuning-configuration candidates.
///
/// Thresholds are expressed in permille so the analysis stays
/// integer-only (and therefore deterministic across platforms).
#[derive(Clone, Debug)]
pub struct BottleneckAnalyzer {
    /// A stage is stage-bound when its service time is at least this
    /// many permille of the runner-up's (default 1300‰ = 1.3×).
    pub dominance_permille: u64,
    /// A stage is queue-bound when send-wait exceeds this many permille
    /// of its compute time (default 500‰ = half).
    pub send_wait_permille: u64,
    /// Imbalance: some replicated stage is busy below this threshold…
    pub idle_busy_permille: u64,
    /// …while another stage is busy above this one.
    pub saturated_busy_permille: u64,
}

impl Default for BottleneckAnalyzer {
    fn default() -> BottleneckAnalyzer {
        BottleneckAnalyzer {
            dominance_permille: 1300,
            send_wait_permille: 500,
            idle_busy_permille: 500,
            saturated_busy_permille: 900,
        }
    }
}

impl BottleneckAnalyzer {
    pub fn new() -> BottleneckAnalyzer {
        BottleneckAnalyzer::default()
    }

    /// Classify a traced run. Checks are ordered by how directly the
    /// evidence names a fix: service-time dominance first (widen that
    /// stage), then send-queue pressure (fuse / unorder), then worker
    /// imbalance (narrow the idle stage).
    pub fn classify(&self, report: &TraceReport) -> Bottleneck {
        let active: Vec<_> = report.stages.iter().filter(|s| s.items > 0).collect();
        if active.len() < 2 {
            return Bottleneck::Balanced;
        }

        // Service-time dominance: compare the top stage of the critical
        // path against the runner-up.
        let mut by_service = active.clone();
        by_service.sort_by_key(|s| std::cmp::Reverse(s.service_ns));
        let (top, second) = (by_service[0], by_service[1]);
        let dominant = second.service_ns == 0
            || top.service_ns * 1000 >= second.service_ns * self.dominance_permille;
        if dominant && top.service_ns > second.service_ns {
            return Bottleneck::StageBound { stage: top.name.clone() };
        }

        // Queue pressure: a stage that mostly waits to *send* is faster
        // than its successor's ability to drain — or the channel hop
        // itself is the cost. Report the most send-bound stage.
        if let Some(s) = active
            .iter()
            .filter(|s| s.compute_ns > 0)
            .filter(|s| s.send_wait_ns * 1000 > s.compute_ns * self.send_wait_permille)
            .max_by_key(|s| s.send_wait_ns * 1000 / s.compute_ns.max(1))
        {
            return Bottleneck::QueueBound { stage: s.name.clone() };
        }

        // Imbalance: replicated workers starving while another stage
        // saturates.
        let saturated = active.iter().any(|s| s.busy_permille >= self.saturated_busy_permille);
        let starved = active
            .iter()
            .filter(|s| s.workers > 1 && s.busy_permille < self.idle_busy_permille)
            .min_by_key(|s| s.busy_permille);
        if let (true, Some(s)) = (saturated, starved) {
            return Bottleneck::ImbalanceBound { stage: s.name.clone() };
        }

        Bottleneck::Balanced
    }

    /// Candidate configurations biased by the classification, most
    /// promising first. Fused stages report under their composed
    /// `"a+b"` name; each `+`-separated component is matched against
    /// the parameter names independently.
    pub fn suggest(&self, report: &TraceReport, config: &TuningConfig) -> Vec<TuningConfig> {
        let mut out = Vec::new();
        match self.classify(report) {
            Bottleneck::StageBound { stage } => {
                // Widen the slowest stage first: step its replication up,
                // then jump straight to the domain maximum.
                for name in replication_params(config, &stage) {
                    push_stepped(&mut out, config, &name, 1);
                    push_at_max(&mut out, config, &name);
                }
                // An order-preserving bottleneck stage pays a reorder
                // tax; try releasing it.
                for name in matching_params(config, &stage, ParamKind::OrderPreservation) {
                    push_bool(&mut out, config, &name, false);
                }
            }
            Bottleneck::QueueBound { stage } => {
                // The channel hop costs more than the parallelism buys:
                // fuse the stage with a neighbor, or stop re-ordering.
                for p in &config.params {
                    if p.kind == ParamKind::StageFusion
                        && stage_in_name(&p.name, &stage)
                        && !p.value.as_bool()
                    {
                        push_bool(&mut out, config, &p.name, true);
                    }
                }
                for name in matching_params(config, &stage, ParamKind::OrderPreservation) {
                    push_bool(&mut out, config, &name, false);
                }
                // Queue-bound ⇒ increase batch: amortize the channel
                // transaction over more elements instead of removing it.
                let batch_names: Vec<String> = config
                    .params
                    .iter()
                    .filter(|p| p.kind == ParamKind::BatchSize)
                    .map(|p| p.name.clone())
                    .collect();
                for name in batch_names {
                    push_stepped(&mut out, config, &name, 1);
                    push_at_max(&mut out, config, &name);
                }
            }
            Bottleneck::ImbalanceBound { stage } => {
                // Parallelism is over-provisioned here: narrow it.
                for name in replication_params(config, &stage) {
                    push_stepped(&mut out, config, &name, -1);
                }
            }
            Bottleneck::Balanced => {}
        }
        out
    }
}

/// Does `param_name` refer to `stage` (handling fused `"a+b"` stage
/// names by matching each component)? Parameter names follow the
/// `<arch>.<stage>.<what>` convention, so a component matches when it
/// appears as a complete dot-separated segment.
fn stage_in_name(param_name: &str, stage: &str) -> bool {
    // Skip the leading `<arch>` segment: it encodes function/line, not
    // a stage, and could alias a stage name.
    let segs = param_name.split('.').skip(1);
    stage.split('+').any(|part| {
        segs.clone()
            .any(|seg| seg == part || seg.split('_').any(|sub| sub == part))
    })
}

/// Names of the replication/worker-count parameters steering `stage`.
fn replication_params(config: &TuningConfig, stage: &str) -> Vec<String> {
    config
        .params
        .iter()
        .filter(|p| {
            matches!(p.kind, ParamKind::StageReplication | ParamKind::WorkerCount)
                && stage_in_name(&p.name, stage)
        })
        .map(|p| p.name.clone())
        .collect()
}

/// Names of `stage`'s parameters of the given kind.
fn matching_params(config: &TuningConfig, stage: &str, kind: ParamKind) -> Vec<String> {
    config
        .params
        .iter()
        .filter(|p| p.kind == kind && stage_in_name(&p.name, stage))
        .map(|p| p.name.clone())
        .collect()
}

/// Push a candidate with `name` stepped `delta` positions through its
/// domain (skipped at the domain edge).
fn push_stepped(out: &mut Vec<TuningConfig>, config: &TuningConfig, name: &str, delta: i64) {
    let Some(p) = config.params.iter().find(|p| p.name == name) else { return };
    let domain = p.domain.values();
    let Some(idx) = domain.iter().position(|v| *v == p.value) else { return };
    let next = idx as i64 + delta;
    if next < 0 || next as usize >= domain.len() {
        return;
    }
    push_value(out, config, name, domain[next as usize]);
}

/// Push a candidate with `name` at its domain maximum (skipped if
/// already there).
fn push_at_max(out: &mut Vec<TuningConfig>, config: &TuningConfig, name: &str) {
    let Some(p) = config.params.iter().find(|p| p.name == name) else { return };
    let domain = p.domain.values();
    let Some(last) = domain.last() else { return };
    if *last != p.value {
        push_value(out, config, name, *last);
    }
}

fn push_bool(out: &mut Vec<TuningConfig>, config: &TuningConfig, name: &str, value: bool) {
    let Some(p) = config.params.iter().find(|p| p.name == name) else { return };
    if p.value.as_bool() != value {
        push_value(out, config, name, ParamValue::Bool(value));
    }
}

fn push_value(out: &mut Vec<TuningConfig>, config: &TuningConfig, name: &str, value: ParamValue) {
    let mut candidate = config.clone();
    if candidate.set(name, value).is_ok() {
        out.push(candidate);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::{TuningConfig, TuningParam};
    use patty_trace::{StageSummary, TraceReport};

    fn stage(name: &str, workers: u64, service_ns: u64, busy: u64) -> StageSummary {
        StageSummary {
            name: name.into(),
            workers,
            items: 10,
            compute_ns: service_ns * 10 * workers,
            busy_permille: busy,
            service_ns,
            ..StageSummary::default()
        }
    }

    fn report(stages: Vec<StageSummary>) -> TraceReport {
        let mut order: Vec<usize> = (0..stages.len()).collect();
        order.sort_by(|&a, &b| stages[b].service_ns.cmp(&stages[a].service_ns).then(a.cmp(&b)));
        TraceReport {
            total_items: stages.iter().map(|s| s.items).sum(),
            critical_path: order.iter().map(|&i| stages[i].name.clone()).collect(),
            stages,
            ..TraceReport::default()
        }
    }

    fn pipeline_config() -> TuningConfig {
        let mut c = TuningConfig::new("pipeline_main_l1");
        c.push(TuningParam::replication("pipeline_main_l1.B.replication", "main:2", 8));
        c.push(TuningParam::order_preservation("pipeline_main_l1.B.order", "main:2"));
        c.push(TuningParam::stage_fusion("pipeline_main_l1.fuse.A_B", "main:1"));
        c.push(TuningParam::sequential_execution("pipeline_main_l1.sequential", "main:1"));
        c
    }

    #[test]
    fn dominant_service_time_is_stage_bound() {
        let r = report(vec![stage("A", 1, 100, 600), stage("B", 1, 500, 990)]);
        let b = BottleneckAnalyzer::new().classify(&r);
        assert_eq!(b, Bottleneck::StageBound { stage: "B".into() });
        assert_eq!(b.stage(), Some("B"));
    }

    #[test]
    fn near_equal_stages_are_balanced() {
        let r = report(vec![stage("A", 1, 100, 800), stage("B", 1, 110, 820)]);
        assert_eq!(BottleneckAnalyzer::new().classify(&r), Bottleneck::Balanced);
    }

    #[test]
    fn heavy_send_wait_is_queue_bound() {
        let mut a = stage("A", 1, 100, 300);
        a.send_wait_ns = a.compute_ns; // waits as long as it computes
        let r = report(vec![a, stage("B", 1, 110, 900)]);
        assert_eq!(
            BottleneckAnalyzer::new().classify(&r),
            Bottleneck::QueueBound { stage: "A".into() }
        );
    }

    #[test]
    fn starved_replicas_are_imbalance_bound() {
        let r = report(vec![stage("A", 1, 100, 950), stage("B", 4, 95, 200)]);
        assert_eq!(
            BottleneckAnalyzer::new().classify(&r),
            Bottleneck::ImbalanceBound { stage: "B".into() }
        );
    }

    #[test]
    fn single_stage_report_is_balanced() {
        let r = report(vec![stage("only", 4, 100, 990)]);
        assert_eq!(BottleneckAnalyzer::new().classify(&r), Bottleneck::Balanced);
    }

    #[test]
    fn stage_bound_suggestions_widen_the_bottleneck_first() {
        let r = report(vec![stage("A", 1, 100, 600), stage("B", 1, 500, 990)]);
        let cfg = pipeline_config();
        let suggestions = BottleneckAnalyzer::new().suggest(&r, &cfg);
        assert!(!suggestions.is_empty());
        // First candidate: replication stepped up from 1 to 2.
        assert_eq!(
            suggestions[0].get("pipeline_main_l1.B.replication").unwrap().as_i64(),
            2
        );
        // Also tries the domain maximum outright.
        assert!(suggestions
            .iter()
            .any(|c| c.get("pipeline_main_l1.B.replication").unwrap().as_i64() == 8));
        // And releasing order preservation on the bottleneck.
        assert!(suggestions
            .iter()
            .any(|c| !c.get("pipeline_main_l1.B.order").unwrap().as_bool()));
    }

    #[test]
    fn queue_bound_suggestions_fuse_or_unorder() {
        let mut b = stage("B", 1, 100, 300);
        b.send_wait_ns = b.compute_ns * 2;
        let r = report(vec![stage("A", 1, 110, 900), b]);
        let cfg = pipeline_config();
        assert_eq!(
            BottleneckAnalyzer::new().classify(&r),
            Bottleneck::QueueBound { stage: "B".into() }
        );
        let suggestions = BottleneckAnalyzer::new().suggest(&r, &cfg);
        assert!(suggestions
            .iter()
            .any(|c| c.get("pipeline_main_l1.fuse.A_B").unwrap().as_bool()));
    }

    #[test]
    fn queue_bound_suggestions_also_step_up_the_batch() {
        // Queue-bound ⇒ increase batch: the channel hop is amortized
        // instead of eliminated, keeping the stage split intact.
        let mut b = stage("B", 1, 100, 300);
        b.send_wait_ns = b.compute_ns * 2;
        let r = report(vec![stage("A", 1, 110, 900), b]);
        let mut cfg = pipeline_config();
        cfg.push(TuningParam::batch_size("pipeline_main_l1.batch", "main:1", 256));
        let suggestions = BottleneckAnalyzer::new().suggest(&r, &cfg);
        // Stepped-up exponent (0 -> 1, i.e. batch 2) and the domain max.
        assert!(suggestions
            .iter()
            .any(|c| c.get("pipeline_main_l1.batch").unwrap().as_i64() == 1));
        assert!(suggestions
            .iter()
            .any(|c| c.get("pipeline_main_l1.batch").unwrap().as_i64() == 8));
        // The fuse candidate still leads: batch candidates are appended,
        // not prepended.
        assert!(suggestions[0].get("pipeline_main_l1.fuse.A_B").unwrap().as_bool());
    }

    #[test]
    fn fused_stage_names_match_component_params() {
        // The report shows the fused stage "A+B"; the config still
        // names parameters after the component stages.
        let r = report(vec![stage("A+B", 1, 500, 990), stage("C", 1, 100, 500)]);
        let mut cfg = TuningConfig::new("p");
        cfg.push(TuningParam::replication("p.B.replication", "main:2", 4));
        let suggestions = BottleneckAnalyzer::new().suggest(&r, &cfg);
        assert!(
            suggestions.iter().any(|c| c.get("p.B.replication").unwrap().as_i64() == 2),
            "component B of fused stage A+B should match p.B.replication"
        );
    }

    #[test]
    fn imbalance_suggestions_narrow_the_idle_stage() {
        let r = report(vec![stage("A", 1, 100, 950), stage("B", 4, 95, 200)]);
        let mut cfg = TuningConfig::new("p");
        let mut rep = TuningParam::replication("p.B.replication", "main:2", 8);
        rep.value = ParamValue::Int(4);
        cfg.push(rep);
        let suggestions = BottleneckAnalyzer::new().suggest(&r, &cfg);
        assert_eq!(suggestions.len(), 1);
        assert_eq!(suggestions[0].get("p.B.replication").unwrap().as_i64(), 3);
    }

    #[test]
    fn balanced_report_suggests_nothing() {
        let r = report(vec![stage("A", 1, 100, 800), stage("B", 1, 105, 800)]);
        assert!(BottleneckAnalyzer::new().suggest(&r, &pipeline_config()).is_empty());
    }

    #[test]
    fn display_names_the_stage() {
        assert_eq!(
            Bottleneck::StageBound { stage: "crop".into() }.to_string(),
            "stage-bound on `crop`"
        );
        assert_eq!(Bottleneck::Balanced.to_string(), "balanced");
    }
}
