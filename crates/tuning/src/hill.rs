//! Random-restart hill climbing, the style of online tuner evaluated by
//! Karcher & Pankratius \[29\] that the paper names as a smarter follow-up
//! to its linear search.

use crate::param::{ParamValue, TuningConfig};
use crate::tuner::{values_of, with_values, Evaluator, Tracker, Tuner, TuningResult};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Steepest-ascent hill climbing over the ±1-step neighborhood, with
/// random restarts when stuck.
#[derive(Clone, Debug)]
pub struct HillClimbing {
    pub seed: u64,
}

impl Default for HillClimbing {
    fn default() -> HillClimbing {
        HillClimbing { seed: 0xC11B }
    }
}

/// All single-dimension neighbor assignments of `values`.
pub(crate) fn neighbors(config: &TuningConfig, values: &[ParamValue]) -> Vec<Vec<ParamValue>> {
    let mut out = Vec::new();
    for (dim, p) in config.params.iter().enumerate() {
        let domain = p.domain.values();
        let idx = domain.iter().position(|v| *v == values[dim]).unwrap_or(0);
        for next in [idx.wrapping_sub(1), idx + 1] {
            if let Some(v) = domain.get(next) {
                let mut n = values.to_vec();
                n[dim] = *v;
                out.push(n);
            }
        }
    }
    out
}

/// A uniformly random assignment.
pub(crate) fn random_assignment(config: &TuningConfig, rng: &mut StdRng) -> Vec<ParamValue> {
    config
        .params
        .iter()
        .map(|p| {
            let vals = p.domain.values();
            vals[rng.gen_range(0..vals.len())]
        })
        .collect()
}

impl Tuner for HillClimbing {
    fn name(&self) -> &'static str {
        "hill-climbing"
    }

    fn tune(
        &mut self,
        initial: TuningConfig,
        evaluator: &mut dyn Evaluator,
        budget: u32,
    ) -> TuningResult {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut tracker = Tracker::new(evaluator, budget);
        let mut current = values_of(&initial);
        let Some(mut current_score) = tracker.measure(&initial) else {
            return tracker.finish(initial);
        };
        while !tracker.exhausted() {
            let mut best_neighbor: Option<(Vec<ParamValue>, f64)> = None;
            for n in neighbors(&initial, &current) {
                let candidate = with_values(initial.clone(), &n);
                match tracker.measure(&candidate) {
                    Some(score) => {
                        if best_neighbor.as_ref().map(|(_, s)| score < *s).unwrap_or(true) {
                            best_neighbor = Some((n, score));
                        }
                    }
                    None => return tracker.finish(initial),
                }
            }
            match best_neighbor {
                Some((n, score)) if score < current_score => {
                    current = n;
                    current_score = score;
                }
                _ => {
                    // Local optimum: random restart.
                    current = random_assignment(&initial, &mut rng);
                    let candidate = with_values(initial.clone(), &current);
                    match tracker.measure(&candidate) {
                        Some(score) => current_score = score,
                        None => break,
                    }
                }
            }
        }
        tracker.finish(initial)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::TuningParam;
    use crate::tuner::FnEvaluator;

    fn config() -> TuningConfig {
        let mut c = TuningConfig::new("t");
        c.push(TuningParam::replication("rep", "f:1", 16));
        c.push(TuningParam::worker_count("w", "f:2", 16));
        c
    }

    #[test]
    fn climbs_to_global_optimum_on_convex_surface() {
        let objective = |c: &TuningConfig| {
            let r = c.get("rep").unwrap().as_i64() as f64;
            let w = c.get("w").unwrap().as_i64() as f64;
            (r - 10.0).powi(2) + (w - 5.0).powi(2)
        };
        let mut tuner = HillClimbing::default();
        let r = tuner.tune(config(), &mut FnEvaluator(objective), 400);
        assert_eq!(r.best.get("rep").unwrap().as_i64(), 10);
        assert_eq!(r.best.get("w").unwrap().as_i64(), 5);
    }

    #[test]
    fn restarts_escape_local_optima() {
        // Two basins: a shallow one around rep=2 and the global one at
        // rep=14. Starting at rep=1 the climber falls into the shallow
        // basin; restarts must still find the global one.
        let objective = |c: &TuningConfig| {
            let r = c.get("rep").unwrap().as_i64() as f64;
            let local = (r - 2.0).powi(2) + 2.0;
            let global = (r - 14.0).powi(2) * 4.0;
            local.min(global)
        };
        let mut tuner = HillClimbing::default();
        let r = tuner.tune(config(), &mut FnEvaluator(objective), 600);
        assert_eq!(r.best.get("rep").unwrap().as_i64(), 14, "score {}", r.best_score);
    }

    #[test]
    fn neighbor_generation_stays_in_domain() {
        let c = config();
        let vals = values_of_first(&c);
        let ns = neighbors(&c, &vals);
        // at the low edge each dim has exactly one neighbor
        assert_eq!(ns.len(), 2);
        for n in ns {
            let cand = with_values(c.clone(), &n);
            for p in &cand.params {
                assert!(p.domain.contains(p.value));
            }
        }
    }

    fn values_of_first(c: &TuningConfig) -> Vec<ParamValue> {
        c.params.iter().map(|p| p.value).collect()
    }
}
