//! # patty-tuning
//!
//! Tuning configurations and auto-tuners for Patty's *tunable parallel
//! patterns* (PMAM'15, Sections 2.1–2.2 and 3/R1).
//!
//! Detection derives runtime-relevant parameters — `StageReplication`,
//! `OrderPreservation`, `StageFusion`, `SequentialExecution`, worker
//! counts, chunk sizes — and writes them into a JSON
//! [`TuningConfig`] file (Fig. 3c). The parallel runtime initializes its
//! patterns from the file; an auto-tuner then iterates
//! execute → measure → update (Fig. 4c). The paper's shipped algorithm is
//! the per-dimension [`LinearSearch`]; [`HillClimbing`] (Karcher &
//! Pankratius \[29\]), [`NelderMead`] \[30\] and [`TabuSearch`] \[31\] are the
//! "smarter algorithms" it names as future work. [`GuidedSearch`] goes
//! further: it reads the run's structured trace through a
//! [`BottleneckAnalyzer`] and tries the configurations the trace points
//! at — widen the slowest stage first — before any blind neighborhood
//! step.
//!
//! ```
//! use patty_tuning::{FnEvaluator, LinearSearch, Tuner, TuningConfig, TuningParam};
//!
//! let mut config = TuningConfig::new("pipeline_main_l4");
//! config.push(TuningParam::replication("C.replication", "main:8", 8));
//! let mut tuner = LinearSearch::default();
//! let result = tuner.tune(
//!     config,
//!     &mut FnEvaluator(|c: &TuningConfig| {
//!         let r = c.get("C.replication").unwrap().as_i64() as f64;
//!         (r - 4.0).abs() // pretend 4 workers is fastest
//!     }),
//!     100,
//! );
//! assert_eq!(result.best.get("C.replication").unwrap().as_i64(), 4);
//! ```

pub mod analyzer;
pub mod exhaustive;
pub mod guided;
pub mod hill;
pub mod linear;
pub mod neldermead;
pub mod param;
pub mod tabu;
pub mod tuner;

pub use analyzer::{Bottleneck, BottleneckAnalyzer};
pub use exhaustive::ExhaustiveSearch;
pub use guided::{FnTracedEvaluator, GuidedSearch, TracedEvaluator};
pub use hill::HillClimbing;
pub use linear::LinearSearch;
pub use neldermead::NelderMead;
pub use param::{ParamDomain, ParamKind, ParamValue, TuningConfig, TuningParam};
pub use tabu::TabuSearch;
pub use tuner::{Evaluator, FnEvaluator, TelemetryEvaluator, Tuner, TuningResult};
