//! Tabu search (Glover \[31\]), the second "smarter algorithm" named by the
//! paper as future work for the tuning cycle.

use crate::hill::{neighbors, random_assignment};
use crate::param::{ParamValue, TuningConfig};
use crate::tuner::{values_of, with_values, Evaluator, Tracker, Tuner, TuningResult};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;

/// Neighborhood search that always moves to the best non-tabu neighbor —
/// even uphill — while keeping recently visited assignments on a tabu
/// list, which lets it walk out of local optima without restarts.
#[derive(Clone, Debug)]
pub struct TabuSearch {
    /// Length of the tabu list.
    pub tenure: usize,
    /// Consecutive non-improving moves before a random diversification.
    pub patience: u32,
    pub seed: u64,
}

impl Default for TabuSearch {
    fn default() -> TabuSearch {
        TabuSearch { tenure: 16, patience: 12, seed: 0x7AB0 }
    }
}

impl Tuner for TabuSearch {
    fn name(&self) -> &'static str {
        "tabu-search"
    }

    fn tune(
        &mut self,
        initial: TuningConfig,
        evaluator: &mut dyn Evaluator,
        budget: u32,
    ) -> TuningResult {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut tracker = Tracker::new(evaluator, budget);
        let mut current = values_of(&initial);
        if tracker.measure(&initial).is_none() {
            return tracker.finish(initial);
        }
        let mut tabu: VecDeque<Vec<ParamValue>> = VecDeque::with_capacity(self.tenure + 1);
        tabu.push_back(current.clone());
        let mut stale = 0u32;
        let mut best_so_far = tracker.best.as_ref().map(|(_, s)| *s).unwrap_or(f64::INFINITY);

        while !tracker.exhausted() {
            let mut best_move: Option<(Vec<ParamValue>, f64)> = None;
            for n in neighbors(&initial, &current) {
                if tabu.contains(&n) {
                    continue;
                }
                let candidate = with_values(initial.clone(), &n);
                match tracker.measure(&candidate) {
                    Some(score) => {
                        if best_move.as_ref().map(|(_, s)| score < *s).unwrap_or(true) {
                            best_move = Some((n, score));
                        }
                    }
                    None => return tracker.finish(initial),
                }
            }
            let (next, score) = match best_move {
                Some(m) => m,
                None => {
                    // whole neighborhood tabu: diversify
                    let n = random_assignment(&initial, &mut rng);
                    let candidate = with_values(initial.clone(), &n);
                    match tracker.measure(&candidate) {
                        Some(s) => (n, s),
                        None => break,
                    }
                }
            };
            current = next.clone();
            tabu.push_back(next);
            while tabu.len() > self.tenure {
                tabu.pop_front();
            }
            if score < best_so_far {
                best_so_far = score;
                stale = 0;
            } else {
                stale += 1;
                if stale >= self.patience {
                    current = random_assignment(&initial, &mut rng);
                    let candidate = with_values(initial.clone(), &current);
                    if tracker.measure(&candidate).is_none() {
                        break;
                    }
                    stale = 0;
                }
            }
        }
        tracker.finish(initial)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::TuningParam;
    use crate::tuner::FnEvaluator;

    fn config() -> TuningConfig {
        let mut c = TuningConfig::new("t");
        c.push(TuningParam::replication("rep", "f:1", 16));
        c.push(TuningParam::stage_fusion("fuse", "f:2"));
        c
    }

    #[test]
    fn finds_optimum_through_a_ridge() {
        // A ridge objective: moving rep up from 1 first gets worse before
        // it gets better; plain greedy descent would stop immediately.
        let objective = |c: &TuningConfig| {
            let r = c.get("rep").unwrap().as_i64();
            match r {
                1 => 5.0,
                2..=4 => 8.0,  // the ridge
                _ => (r as f64 - 12.0).powi(2), // global optimum at 12 → 0
            }
        };
        let mut tuner = TabuSearch::default();
        let r = tuner.tune(config(), &mut FnEvaluator(objective), 500);
        assert_eq!(r.best.get("rep").unwrap().as_i64(), 12, "score {}", r.best_score);
    }

    #[test]
    fn deterministic_per_seed() {
        let objective = |c: &TuningConfig| {
            (c.get("rep").unwrap().as_i64() as f64 - 9.0).abs()
        };
        let run = |seed| {
            let mut tuner = TabuSearch { seed, ..TabuSearch::default() };
            let r = tuner.tune(config(), &mut FnEvaluator(objective), 120);
            (r.best_score.to_bits(), r.evaluations)
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn respects_budget_exactly() {
        let mut tuner = TabuSearch::default();
        let r = tuner.tune(config(), &mut FnEvaluator(|_| 1.0), 37);
        assert_eq!(r.evaluations, 37);
    }
}
