//! Tuning parameters and the tuning configuration file.
//!
//! "The tuning configuration file contains all identified tuning
//! parameters, their current values and code location. Whenever the
//! parallel application is executed, it initializes the parallel patterns
//! with the specified values [...] After program termination, all values
//! in the configuration file can be changed, making the parallel
//! applications automatically tunable on the target hardware without the
//! need to recompile." (Section 2.1, Fig. 3c)

use patty_json::{de, Json};
use std::fmt;

/// The tuning-parameter families Patty derives (Section 2.2, rule PLTP,
/// plus the parameters of the data-parallel-loop and master/worker
/// patterns).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ParamKind {
    /// Degree of parallelism of a replicable pipeline stage.
    StageReplication,
    /// Restore stream-element order after a replicated stage.
    OrderPreservation,
    /// Execute two adjacent stages in the same thread.
    StageFusion,
    /// Run the whole pattern sequentially (short-stream fallback).
    SequentialExecution,
    /// Worker count of a master/worker or data-parallel loop.
    WorkerCount,
    /// Iteration chunk size of a data-parallel loop.
    ChunkSize,
    /// Elements per channel transaction in a pipeline (grain size).
    BatchSize,
}

impl fmt::Display for ParamKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ParamKind::StageReplication => "StageReplication",
            ParamKind::OrderPreservation => "OrderPreservation",
            ParamKind::StageFusion => "StageFusion",
            ParamKind::SequentialExecution => "SequentialExecution",
            ParamKind::WorkerCount => "WorkerCount",
            ParamKind::ChunkSize => "ChunkSize",
            ParamKind::BatchSize => "BatchSize",
        };
        write!(f, "{s}")
    }
}

impl std::str::FromStr for ParamKind {
    type Err = String;

    fn from_str(s: &str) -> Result<ParamKind, String> {
        Ok(match s {
            "StageReplication" => ParamKind::StageReplication,
            "OrderPreservation" => ParamKind::OrderPreservation,
            "StageFusion" => ParamKind::StageFusion,
            "SequentialExecution" => ParamKind::SequentialExecution,
            "WorkerCount" => ParamKind::WorkerCount,
            "ChunkSize" => ParamKind::ChunkSize,
            "BatchSize" => ParamKind::BatchSize,
            other => {
                return Err(format!(
                    "unknown parameter kind `{other}` (expected StageReplication, \
                     OrderPreservation, StageFusion, SequentialExecution, WorkerCount, \
                     ChunkSize or BatchSize)"
                ))
            }
        })
    }
}

/// A tuning parameter value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ParamValue {
    Bool(bool),
    Int(i64),
}

impl ParamValue {
    /// Integer view (`true` = 1).
    pub fn as_i64(&self) -> i64 {
        match self {
            ParamValue::Bool(b) => *b as i64,
            ParamValue::Int(v) => *v,
        }
    }

    /// Boolean view (nonzero = true).
    pub fn as_bool(&self) -> bool {
        match self {
            ParamValue::Bool(b) => *b,
            ParamValue::Int(v) => *v != 0,
        }
    }
}

impl fmt::Display for ParamValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamValue::Bool(b) => write!(f, "{b}"),
            ParamValue::Int(v) => write!(f, "{v}"),
        }
    }
}

impl ParamValue {
    /// JSON form: untagged — booleans as JSON booleans, integers as
    /// JSON integers (the configuration file stays human-editable).
    fn to_json(self) -> Json {
        match self {
            ParamValue::Bool(b) => Json::Bool(b),
            ParamValue::Int(v) => Json::Int(v),
        }
    }

    fn from_json(v: &Json, what: &str) -> Result<ParamValue, String> {
        match v {
            Json::Bool(b) => Ok(ParamValue::Bool(*b)),
            Json::Int(i) => Ok(ParamValue::Int(*i)),
            other => Err(format!(
                "{what}: value must be a boolean or integer, got {}",
                other.type_name()
            )),
        }
    }
}

/// The legal values of a parameter.
#[derive(Clone, Debug, PartialEq)]
pub enum ParamDomain {
    Bool,
    /// Inclusive integer range with a step.
    IntRange { lo: i64, hi: i64, step: i64 },
}

impl ParamDomain {
    /// Enumerate every legal value (bounded; ranges are small by
    /// construction — replication ≤ cores, chunk sizes are powers of two).
    pub fn values(&self) -> Vec<ParamValue> {
        match self {
            ParamDomain::Bool => vec![ParamValue::Bool(false), ParamValue::Bool(true)],
            ParamDomain::IntRange { lo, hi, step } => {
                let step = (*step).max(1);
                let mut out = Vec::new();
                let mut v = *lo;
                while v <= *hi {
                    out.push(ParamValue::Int(v));
                    v += step;
                }
                out
            }
        }
    }

    /// Is `v` a legal value?
    pub fn contains(&self, v: ParamValue) -> bool {
        match (self, v) {
            (ParamDomain::Bool, ParamValue::Bool(_)) => true,
            (ParamDomain::IntRange { lo, hi, step }, ParamValue::Int(x)) => {
                x >= *lo && x <= *hi && (x - lo) % step.max(&1) == 0
            }
            _ => false,
        }
    }

    /// Clamp/snap an arbitrary value into the domain (used by the
    /// continuous tuners).
    pub fn snap(&self, raw: f64) -> ParamValue {
        match self {
            ParamDomain::Bool => ParamValue::Bool(raw >= 0.5),
            ParamDomain::IntRange { lo, hi, step } => {
                let step = (*step).max(1) as f64;
                let clamped = raw.clamp(*lo as f64, *hi as f64);
                let snapped = *lo + (((clamped - *lo as f64) / step).round() as i64) * step as i64;
                ParamValue::Int(snapped.clamp(*lo, *hi))
            }
        }
    }
}

impl ParamDomain {
    /// JSON form: the string `"bool"` or `{ "lo", "hi", "step" }`.
    fn to_json(&self) -> Json {
        match self {
            ParamDomain::Bool => Json::Str("bool".into()),
            ParamDomain::IntRange { lo, hi, step } => {
                Json::obj().with("lo", *lo).with("hi", *hi).with("step", *step)
            }
        }
    }

    fn from_json(v: &Json, what: &str) -> Result<ParamDomain, String> {
        match v {
            Json::Str(s) if s == "bool" => Ok(ParamDomain::Bool),
            Json::Str(s) => Err(format!(
                "{what}: unknown domain `{s}` (expected \"bool\" or an integer range object)"
            )),
            Json::Obj(_) => {
                let lo = de::i64_field(v, "lo", what)?;
                let hi = de::i64_field(v, "hi", what)?;
                let step = de::i64_field(v, "step", what)?;
                if step < 1 {
                    return Err(format!("{what}: domain step must be >= 1, got {step}"));
                }
                if hi < lo {
                    return Err(format!(
                        "{what}: domain is empty (lo {lo} > hi {hi})"
                    ));
                }
                Ok(ParamDomain::IntRange { lo, hi, step })
            }
            other => Err(format!(
                "{what}: domain must be \"bool\" or an object, got {}",
                other.type_name()
            )),
        }
    }
}

/// One tuning parameter: name, family, code location, domain and current
/// value — one line of the paper's tuning configuration file.
#[derive(Clone, Debug, PartialEq)]
pub struct TuningParam {
    /// Unique name, e.g. `pipeline_main_l4.C.replication`.
    pub name: String,
    pub kind: ParamKind,
    /// Code location, e.g. `main:4`.
    pub location: String,
    pub domain: ParamDomain,
    pub value: ParamValue,
}

impl TuningParam {
    fn to_json_value(&self) -> Json {
        Json::obj()
            .with("name", self.name.as_str())
            .with("kind", self.kind.to_string())
            .with("location", self.location.as_str())
            .with("domain", self.domain.to_json())
            .with("value", self.value.to_json())
    }

    fn from_json_value(v: &Json, index: usize) -> Result<TuningParam, String> {
        let what = format!("tuning parameter #{index}");
        if v.as_obj().is_none() {
            return Err(format!("{what}: expected an object, got {}", v.type_name()));
        }
        let name = de::str_field(v, "name", &what)?;
        // Error messages name the parameter once we know it.
        let what = format!("tuning parameter `{name}`");
        let kind: ParamKind = de::str_field(v, "kind", &what)?
            .parse()
            .map_err(|e| format!("{what}: {e}"))?;
        let location = de::str_field(v, "location", &what)?;
        let domain = ParamDomain::from_json(de::field(v, "domain", &what)?, &what)?;
        let value = ParamValue::from_json(de::field(v, "value", &what)?, &what)?;
        if !domain.contains(value) {
            return Err(format!("{what}: value {value} is outside its domain"));
        }
        Ok(TuningParam { name, kind, location, domain, value })
    }
}

/// The tuning configuration file (Fig. 3c): all parameters of one
/// application, serializable to JSON and editable between runs.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct TuningConfig {
    /// Application / architecture name.
    pub app: String,
    pub params: Vec<TuningParam>,
}

impl TuningConfig {
    /// New empty configuration.
    pub fn new(app: impl Into<String>) -> TuningConfig {
        TuningConfig { app: app.into(), params: Vec::new() }
    }

    /// Add a parameter.
    pub fn push(&mut self, param: TuningParam) {
        self.params.push(param);
    }

    /// Current value of a named parameter.
    pub fn get(&self, name: &str) -> Option<ParamValue> {
        self.params.iter().find(|p| p.name == name).map(|p| p.value)
    }

    /// Set a parameter's value; fails if unknown or out of domain.
    pub fn set(&mut self, name: &str, value: ParamValue) -> Result<(), String> {
        let p = self
            .params
            .iter_mut()
            .find(|p| p.name == name)
            .ok_or_else(|| format!("unknown tuning parameter `{name}`"))?;
        if !p.domain.contains(value) {
            return Err(format!("value {value} outside domain of `{name}`"));
        }
        p.value = value;
        Ok(())
    }

    /// Serialize to the JSON configuration-file format.
    pub fn to_json(&self) -> String {
        Json::obj()
            .with("app", self.app.as_str())
            .with(
                "params",
                Json::Arr(self.params.iter().map(TuningParam::to_json_value).collect()),
            )
            .to_string_pretty()
    }

    /// Parse from the JSON configuration-file format.
    ///
    /// The configuration file is edited by hand between runs (Section
    /// 2.1), so malformed input is reported with a descriptive error —
    /// position information for syntax errors, field/parameter names
    /// for structural ones — never a panic.
    pub fn from_json(json: &str) -> Result<TuningConfig, String> {
        let doc = patty_json::parse(json).map_err(|e| e.to_string())?;
        if doc.as_obj().is_none() {
            return Err(format!(
                "tuning configuration: expected a top-level object, got {}",
                doc.type_name()
            ));
        }
        let app = de::str_field(&doc, "app", "tuning configuration")?;
        let raw = de::arr_field(&doc, "params", "tuning configuration")?;
        let mut params = Vec::with_capacity(raw.len());
        for (i, p) in raw.iter().enumerate() {
            params.push(TuningParam::from_json_value(p, i)?);
        }
        let mut seen = std::collections::BTreeSet::new();
        for p in &params {
            if !seen.insert(p.name.as_str()) {
                return Err(format!(
                    "tuning configuration: duplicate parameter name `{}`",
                    p.name
                ));
            }
        }
        Ok(TuningConfig { app, params })
    }

    /// Total size of the search space (product of domain sizes).
    pub fn space_size(&self) -> u64 {
        self.params
            .iter()
            .map(|p| p.domain.values().len() as u64)
            .product()
    }
}

/// Convenience constructors for the standard parameter shapes.
impl TuningParam {
    /// Stage replication 1..=max_workers.
    pub fn replication(name: impl Into<String>, location: impl Into<String>, max: i64) -> Self {
        TuningParam {
            name: name.into(),
            kind: ParamKind::StageReplication,
            location: location.into(),
            domain: ParamDomain::IntRange { lo: 1, hi: max.max(1), step: 1 },
            value: ParamValue::Int(1),
        }
    }

    /// Boolean order-preservation flag (defaults to on: safe until
    /// correctness testing proves order irrelevant).
    pub fn order_preservation(name: impl Into<String>, location: impl Into<String>) -> Self {
        TuningParam {
            name: name.into(),
            kind: ParamKind::OrderPreservation,
            location: location.into(),
            domain: ParamDomain::Bool,
            value: ParamValue::Bool(true),
        }
    }

    /// Boolean stage-fusion flag for an adjacent stage pair.
    pub fn stage_fusion(name: impl Into<String>, location: impl Into<String>) -> Self {
        TuningParam {
            name: name.into(),
            kind: ParamKind::StageFusion,
            location: location.into(),
            domain: ParamDomain::Bool,
            value: ParamValue::Bool(false),
        }
    }

    /// Boolean sequential-execution fallback.
    pub fn sequential_execution(name: impl Into<String>, location: impl Into<String>) -> Self {
        TuningParam {
            name: name.into(),
            kind: ParamKind::SequentialExecution,
            location: location.into(),
            domain: ParamDomain::Bool,
            value: ParamValue::Bool(false),
        }
    }

    /// Worker count 1..=max.
    pub fn worker_count(name: impl Into<String>, location: impl Into<String>, max: i64) -> Self {
        TuningParam {
            name: name.into(),
            kind: ParamKind::WorkerCount,
            location: location.into(),
            domain: ParamDomain::IntRange { lo: 1, hi: max.max(1), step: 1 },
            value: ParamValue::Int(1),
        }
    }

    /// Chunk size as powers of two in `1..=max`.
    pub fn chunk_size(name: impl Into<String>, location: impl Into<String>, max: i64) -> Self {
        TuningParam {
            name: name.into(),
            kind: ParamKind::ChunkSize,
            location: location.into(),
            // modeled as an exponent range to keep the domain regular
            domain: ParamDomain::IntRange { lo: 0, hi: 63 - (max.max(1)).leading_zeros() as i64, step: 1 },
            value: ParamValue::Int(0),
        }
    }

    /// Pipeline batch size as powers of two in `1..=max` (elements per
    /// channel transaction; same exponent encoding as [`chunk_size`]).
    ///
    /// [`chunk_size`]: TuningParam::chunk_size
    pub fn batch_size(name: impl Into<String>, location: impl Into<String>, max: i64) -> Self {
        TuningParam {
            name: name.into(),
            kind: ParamKind::BatchSize,
            location: location.into(),
            domain: ParamDomain::IntRange { lo: 0, hi: 63 - (max.max(1)).leading_zeros() as i64, step: 1 },
            value: ParamValue::Int(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> TuningConfig {
        let mut c = TuningConfig::new("pipeline_main_l4");
        c.push(TuningParam::replication("p3.replication", "main:8", 8));
        c.push(TuningParam::order_preservation("p3.order", "main:8"));
        c.push(TuningParam::stage_fusion("fuse_4_5", "main:10"));
        c.push(TuningParam::sequential_execution("seq", "main:4"));
        c
    }

    #[test]
    fn json_round_trip() {
        let c = demo();
        let json = c.to_json();
        let back = TuningConfig::from_json(&json).unwrap();
        assert_eq!(c, back);
        assert!(json.contains("p3.replication"));
        assert!(json.contains("main:8"));
        assert!(json.contains("StageReplication"));
    }

    #[test]
    fn malformed_config_reports_descriptive_errors() {
        // Syntax error: position, not a panic.
        let err = TuningConfig::from_json("{\n  \"app\": \"x\",").unwrap_err();
        assert!(err.contains("line 2"), "{err}");

        // Wrong top-level shape.
        let err = TuningConfig::from_json("[1, 2]").unwrap_err();
        assert!(err.contains("top-level object"), "{err}");

        // Missing required field.
        let err = TuningConfig::from_json(r#"{"app": "x"}"#).unwrap_err();
        assert!(err.contains("missing required field `params`"), "{err}");

        // Unknown parameter kind names the parameter and the kind.
        let err = TuningConfig::from_json(
            r#"{"app":"x","params":[{"name":"p","kind":"Bogus","location":"main:1",
                "domain":"bool","value":true}]}"#,
        )
        .unwrap_err();
        assert!(err.contains("`p`") && err.contains("Bogus"), "{err}");

        // Value outside its declared domain is rejected at parse time.
        let err = TuningConfig::from_json(
            r#"{"app":"x","params":[{"name":"p","kind":"StageReplication",
                "location":"main:1","domain":{"lo":1,"hi":4,"step":1},"value":9}]}"#,
        )
        .unwrap_err();
        assert!(err.contains("outside its domain"), "{err}");

        // Degenerate domains are rejected.
        let err = TuningConfig::from_json(
            r#"{"app":"x","params":[{"name":"p","kind":"ChunkSize",
                "location":"main:1","domain":{"lo":1,"hi":4,"step":0},"value":1}]}"#,
        )
        .unwrap_err();
        assert!(err.contains("step must be >= 1"), "{err}");

        // Duplicate parameter names are rejected.
        let dup = r#"{"app":"x","params":[
            {"name":"p","kind":"StageFusion","location":"main:1","domain":"bool","value":false},
            {"name":"p","kind":"StageFusion","location":"main:2","domain":"bool","value":false}]}"#;
        let err = TuningConfig::from_json(dup).unwrap_err();
        assert!(err.contains("duplicate parameter name `p`"), "{err}");
    }

    #[test]
    fn get_set_respects_domain() {
        let mut c = demo();
        assert_eq!(c.get("p3.replication"), Some(ParamValue::Int(1)));
        c.set("p3.replication", ParamValue::Int(4)).unwrap();
        assert_eq!(c.get("p3.replication"), Some(ParamValue::Int(4)));
        assert!(c.set("p3.replication", ParamValue::Int(99)).is_err());
        assert!(c.set("nope", ParamValue::Int(1)).is_err());
        assert!(c.set("p3.order", ParamValue::Int(1)).is_err(), "type mismatch rejected");
    }

    #[test]
    fn space_size_is_product() {
        // 8 × 2 × 2 × 2
        assert_eq!(demo().space_size(), 64);
    }

    #[test]
    fn domain_enumeration() {
        let d = ParamDomain::IntRange { lo: 1, hi: 7, step: 2 };
        let vals: Vec<i64> = d.values().iter().map(|v| v.as_i64()).collect();
        assert_eq!(vals, vec![1, 3, 5, 7]);
        assert!(d.contains(ParamValue::Int(5)));
        assert!(!d.contains(ParamValue::Int(4)));
        assert!(!d.contains(ParamValue::Int(9)));
    }

    #[test]
    fn snap_clamps_and_rounds() {
        let d = ParamDomain::IntRange { lo: 1, hi: 8, step: 1 };
        assert_eq!(d.snap(3.4), ParamValue::Int(3));
        assert_eq!(d.snap(100.0), ParamValue::Int(8));
        assert_eq!(d.snap(-5.0), ParamValue::Int(1));
        assert_eq!(ParamDomain::Bool.snap(0.7), ParamValue::Bool(true));
    }

    #[test]
    fn defaults_are_safe() {
        let c = demo();
        // order preservation defaults on (safe), fusion/sequential off,
        // replication 1 (no extra parallelism until tuned)
        assert!(c.get("p3.order").unwrap().as_bool());
        assert!(!c.get("fuse_4_5").unwrap().as_bool());
        assert_eq!(c.get("p3.replication").unwrap().as_i64(), 1);
    }
}
