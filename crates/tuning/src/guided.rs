//! Trace-guided tuning: the [`BottleneckAnalyzer`]'s suggestions tried
//! first, falling back to the ±1-step neighborhood only when the trace
//! offers no direction.
//!
//! The blind tuners re-measure every neighbor of the current best on
//! every step; the guided search instead asks the trace *which* stage
//! bounds throughput and jumps straight to widening it. On a pipeline
//! with one dominant stage this converges in a handful of evaluations
//! where the per-dimension sweep spends its budget on parameters that
//! cannot matter.

use crate::analyzer::BottleneckAnalyzer;
use crate::hill::neighbors;
use crate::param::TuningConfig;
use crate::tuner::{values_of, with_values, Evaluator, Tuner, TuningResult};
use patty_trace::{TraceReport, Tracer};
use std::collections::BTreeSet;

/// Measures one configuration and reports *why* it performed the way
/// it did: the measured cost plus the run's [`TraceReport`].
pub trait TracedEvaluator {
    /// Execute the application under `config`; return its measured cost
    /// (lower is better) and the trace-derived report of the run.
    fn measure_traced(&mut self, config: &TuningConfig) -> (f64, TraceReport);
}

/// A [`TracedEvaluator`] from a closure.
pub struct FnTracedEvaluator<F: FnMut(&TuningConfig) -> (f64, TraceReport)>(pub F);

impl<F: FnMut(&TuningConfig) -> (f64, TraceReport)> TracedEvaluator for FnTracedEvaluator<F> {
    fn measure_traced(&mut self, config: &TuningConfig) -> (f64, TraceReport) {
        (self.0)(config)
    }
}

/// Bottleneck-guided search over tuning configurations.
///
/// Each round re-analyzes the best run's trace, measures the analyzer's
/// candidates first (most promising first), then the ±1 neighborhood of
/// the best configuration; already-measured value vectors are never
/// re-measured. Terminates when neither source yields an unseen
/// candidate or the evaluation budget runs out.
#[derive(Debug, Default)]
pub struct GuidedSearch {
    /// Classification thresholds; the defaults suit the runtime's
    /// reports.
    pub analyzer: BottleneckAnalyzer,
    /// When enabled, every evaluation is recorded as a `TunerStep`
    /// trace event (iteration index, objective in nanoseconds).
    pub tracer: Tracer,
}

impl GuidedSearch {
    pub fn new() -> GuidedSearch {
        GuidedSearch::default()
    }

    /// Record tuner progress into `tracer` (pass a disabled handle to
    /// opt out again).
    pub fn with_tracer(mut self, tracer: Tracer) -> GuidedSearch {
        self.tracer = tracer;
        self
    }

    /// The trace-guided cycle: measure → analyze → suggest → measure.
    pub fn tune_traced(
        &mut self,
        initial: TuningConfig,
        evaluator: &mut dyn TracedEvaluator,
        budget: u32,
    ) -> TuningResult {
        let mut t = GuidedTracker {
            evaluator,
            tracer: self.tracer.clone(),
            budget,
            evaluations: 0,
            best: None,
            history: Vec::new(),
            seen: BTreeSet::new(),
        };
        if t.measure(&initial).is_none() {
            return t.finish(initial);
        }
        loop {
            let (best_cfg, best_score, best_report) = {
                let (c, s, r) = t.best.as_ref().expect("measured at least once");
                (c.clone(), *s, r.clone())
            };
            // Analyzer candidates first — they encode "widen the
            // slowest stage" — then the generic neighborhood.
            let mut candidates = self.analyzer.suggest(&best_report, &best_cfg);
            for n in neighbors(&best_cfg, &values_of(&best_cfg)) {
                candidates.push(with_values(best_cfg.clone(), &n));
            }
            let mut fresh = Vec::new();
            let mut local = BTreeSet::new();
            for c in candidates {
                let k = key_of(&c);
                if !t.seen.contains(&k) && local.insert(k) {
                    fresh.push(c);
                }
            }
            if fresh.is_empty() {
                break;
            }
            for c in &fresh {
                match t.measure(c) {
                    // Greedy: a better configuration has a fresh trace —
                    // re-derive the suggestions from it immediately. If
                    // nothing improves, the next round regenerates the
                    // same candidates, finds them all seen, and stops.
                    Some(score) if score < best_score => break,
                    Some(_) => {}
                    None => return t.finish(initial),
                }
            }
        }
        t.finish(initial)
    }
}

impl Tuner for GuidedSearch {
    fn name(&self) -> &'static str {
        "trace-guided"
    }

    /// Without traces the analyzer sees an empty report (always
    /// [`Balanced`](crate::Bottleneck::Balanced)) and the search
    /// degrades to plain greedy neighborhood descent.
    fn tune(
        &mut self,
        initial: TuningConfig,
        evaluator: &mut dyn Evaluator,
        budget: u32,
    ) -> TuningResult {
        struct Untraced<'e>(&'e mut dyn Evaluator);
        impl TracedEvaluator for Untraced<'_> {
            fn measure_traced(&mut self, config: &TuningConfig) -> (f64, TraceReport) {
                (self.0.measure(config), TraceReport::default())
            }
        }
        self.tune_traced(initial, &mut Untraced(evaluator), budget)
    }
}

/// [`Tracker`](crate::tuner::Tracker) with a trace report riding along
/// on the best configuration and a seen-set of measured value vectors.
struct GuidedTracker<'e> {
    evaluator: &'e mut dyn TracedEvaluator,
    tracer: Tracer,
    budget: u32,
    evaluations: u32,
    best: Option<(TuningConfig, f64, TraceReport)>,
    history: Vec<(u32, f64)>,
    seen: BTreeSet<Vec<i64>>,
}

impl GuidedTracker<'_> {
    fn measure(&mut self, config: &TuningConfig) -> Option<f64> {
        if self.evaluations >= self.budget {
            return None;
        }
        self.seen.insert(key_of(config));
        let (score, report) = self.evaluator.measure_traced(config);
        self.evaluations += 1;
        self.tracer.tuner_step(self.evaluations as u64, score.max(0.0) as u64);
        let improved = self.best.as_ref().map(|(_, s, _)| score < *s).unwrap_or(true);
        if improved {
            self.best = Some((config.clone(), score, report));
        }
        let best_score = self.best.as_ref().map(|(_, s, _)| *s).unwrap_or(score);
        self.history.push((self.evaluations, best_score));
        Some(score)
    }

    fn finish(self, fallback: TuningConfig) -> TuningResult {
        match self.best {
            Some((best, best_score, _)) => TuningResult {
                best,
                best_score,
                evaluations: self.evaluations,
                history: self.history,
            },
            None => TuningResult {
                best: fallback,
                best_score: f64::INFINITY,
                evaluations: 0,
                history: Vec::new(),
            },
        }
    }
}

/// A configuration's value vector as comparable integers (booleans are
/// 0/1); dimension order is parameter order, so vectors are comparable
/// across clones of the same configuration.
fn key_of(config: &TuningConfig) -> Vec<i64> {
    values_of(config).iter().map(|v| v.as_i64()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::{ParamValue, TuningConfig, TuningParam};
    use crate::{LinearSearch, Tuner};
    use patty_trace::StageSummary;

    /// A deterministic three-stage pipeline cost model: stage B is 6×
    /// heavier than A and C; replicating B divides its service time.
    /// The cost is the bottleneck service time (pipeline throughput is
    /// bound by the slowest stage), and the synthetic trace reports
    /// exactly that shape.
    fn sim(config: &TuningConfig) -> (f64, TraceReport) {
        let rep = config.get("p.B.replication").map(|v| v.as_i64()).unwrap_or(1).max(1) as u64;
        let order_tax = if config.get("p.B.order").map(|v| v.as_bool()).unwrap_or(false) {
            5
        } else {
            0
        };
        let services = [("A", 100u64, 1u64), ("B", 600 / rep + order_tax, rep), ("C", 100, 1)];
        let stages: Vec<StageSummary> = services
            .iter()
            .map(|(name, service, workers)| StageSummary {
                name: (*name).into(),
                workers: *workers,
                items: 10,
                compute_ns: service * 10 * workers,
                busy_permille: 900,
                service_ns: *service,
                ..StageSummary::default()
            })
            .collect();
        let mut order: Vec<usize> = (0..stages.len()).collect();
        order.sort_by(|&a, &b| stages[b].service_ns.cmp(&stages[a].service_ns).then(a.cmp(&b)));
        let cost = stages.iter().map(|s| s.service_ns).max().unwrap() as f64;
        let report = TraceReport {
            total_items: 30,
            critical_path: order.iter().map(|&i| stages[i].name.clone()).collect(),
            stages,
            ..TraceReport::default()
        };
        (cost, report)
    }

    fn pipeline_config() -> TuningConfig {
        let mut c = TuningConfig::new("p");
        c.push(TuningParam::replication("p.A.replication", "main:1", 8));
        c.push(TuningParam::replication("p.B.replication", "main:2", 8));
        c.push(TuningParam::replication("p.C.replication", "main:3", 8));
        c.push(TuningParam::order_preservation("p.B.order", "main:2"));
        c.push(TuningParam::stage_fusion("p.fuse.A_B", "main:1"));
        c.push(TuningParam::sequential_execution("p.sequential", "main:1"));
        c
    }

    #[test]
    fn guided_search_finds_the_optimum() {
        let mut tuner = GuidedSearch::new();
        let r = tuner.tune_traced(pipeline_config(), &mut FnTracedEvaluator(sim), 200);
        // Optimum cost: the 100ns floor from stages A and C, reached
        // once B is wide enough (ties keep the first width that gets
        // there).
        assert_eq!(r.best_score, 100.0, "bound by the A/C floor");
        assert!(r.best.get("p.B.replication").unwrap().as_i64() >= 7);
    }

    #[test]
    fn guided_converges_faster_than_blind_search() {
        let target = 100.0;
        let evals_to_target = |history: &[(u32, f64)]| {
            history
                .iter()
                .find(|(_, best)| *best <= target)
                .map(|(i, _)| *i)
                .unwrap_or(u32::MAX)
        };

        let mut guided = GuidedSearch::new();
        let g = guided.tune_traced(pipeline_config(), &mut FnTracedEvaluator(sim), 200);

        let mut blind = LinearSearch::default();
        let mut plain = crate::FnEvaluator(|c: &TuningConfig| sim(c).0);
        let b = blind.tune(pipeline_config(), &mut plain, 200);

        let g_evals = evals_to_target(&g.history);
        let b_evals = evals_to_target(&b.history);
        assert!(g_evals < u32::MAX, "guided reaches the optimum");
        assert!(b_evals < u32::MAX, "blind reaches the optimum");
        assert!(
            g_evals < b_evals,
            "guided ({g_evals} evals) should beat blind ({b_evals} evals)"
        );
    }

    #[test]
    fn never_remeasures_a_configuration() {
        let count = std::cell::Cell::new(0u32);
        let mut seen = std::collections::BTreeSet::new();
        let mut eval = FnTracedEvaluator(|c: &TuningConfig| {
            count.set(count.get() + 1);
            let key: Vec<i64> = c.params.iter().map(|p| p.value.as_i64()).collect();
            assert!(seen.insert(key), "configuration measured twice");
            sim(c)
        });
        let mut tuner = GuidedSearch::new();
        let r = tuner.tune_traced(pipeline_config(), &mut eval, 500);
        assert_eq!(r.evaluations, count.get());
    }

    #[test]
    fn records_tuner_steps_when_traced() {
        let tracer = Tracer::deterministic(256);
        let mut tuner = GuidedSearch::new().with_tracer(tracer.clone());
        let r = tuner.tune_traced(pipeline_config(), &mut FnTracedEvaluator(sim), 50);
        let report = tracer.report();
        assert_eq!(report.tuner_steps as u32, r.evaluations);
    }

    #[test]
    fn plain_tuner_interface_degrades_to_neighborhood_descent() {
        // Convex objective, no traces: still reaches the optimum via
        // the ±1 fallback neighborhood.
        let mut c = TuningConfig::new("t");
        c.push(TuningParam::worker_count("t.workers", "f:1", 16));
        let mut tuner = GuidedSearch::new();
        assert_eq!(tuner.name(), "trace-guided");
        let r = tuner.tune(
            c,
            &mut crate::FnEvaluator(|c: &TuningConfig| {
                let w = c.get("t.workers").unwrap().as_i64() as f64;
                (w - 9.0).abs()
            }),
            200,
        );
        assert_eq!(r.best.get("t.workers").unwrap().as_i64(), 9);
    }

    #[test]
    fn budget_zero_returns_fallback() {
        let mut tuner = GuidedSearch::new();
        let r = tuner.tune_traced(pipeline_config(), &mut FnTracedEvaluator(sim), 0);
        assert_eq!(r.evaluations, 0);
        assert!(r.best_score.is_infinite());
        assert_eq!(r.best.get("p.B.replication"), Some(ParamValue::Int(1)));
    }
}
