//! The auto-tuning cycle: "The auto tuner initializes the program with
//! parameter values, executes it, measures and visualizes the runtime, and
//! computes new parameter values." (Section 3, Fig. 4c)

use crate::param::{ParamValue, TuningConfig};
use patty_telemetry::{Telemetry, TunerIteration};

/// Measures one configuration; lower scores are better (runtime).
pub trait Evaluator {
    /// Execute the application under `config` and return its measured cost.
    fn measure(&mut self, config: &TuningConfig) -> f64;
}

/// An [`Evaluator`] from a closure.
pub struct FnEvaluator<F: FnMut(&TuningConfig) -> f64>(pub F);

impl<F: FnMut(&TuningConfig) -> f64> Evaluator for FnEvaluator<F> {
    fn measure(&mut self, config: &TuningConfig) -> f64 {
        (self.0)(config)
    }
}

/// Wraps an evaluator so every measured configuration is logged to a
/// telemetry sink — iteration index, parameter vector, measured objective
/// and whether it improved on the best seen so far (the "measures and
/// visualizes the runtime" half of the Fig. 4c cycle). Works with every
/// [`Tuner`] because the logging rides on [`Evaluator::measure`].
pub struct TelemetryEvaluator<'e> {
    inner: &'e mut dyn Evaluator,
    telemetry: Telemetry,
    iteration: u64,
    best: f64,
}

impl<'e> TelemetryEvaluator<'e> {
    /// Wrap `inner`, logging each measurement to `telemetry`.
    pub fn new(inner: &'e mut dyn Evaluator, telemetry: Telemetry) -> TelemetryEvaluator<'e> {
        TelemetryEvaluator { inner, telemetry, iteration: 0, best: f64::INFINITY }
    }
}

impl Evaluator for TelemetryEvaluator<'_> {
    fn measure(&mut self, config: &TuningConfig) -> f64 {
        let objective = self.inner.measure(config);
        self.iteration += 1;
        let improved = objective < self.best;
        if improved {
            self.best = objective;
        }
        self.telemetry.log_tuner_iteration(TunerIteration {
            iteration: self.iteration,
            params: config
                .params
                .iter()
                .map(|p| (p.name.clone(), p.value.as_i64()))
                .collect(),
            objective,
            improved,
        });
        objective
    }
}

/// The outcome of a tuning run.
#[derive(Clone, Debug)]
pub struct TuningResult {
    /// Best configuration found.
    pub best: TuningConfig,
    /// Its measured score.
    pub best_score: f64,
    /// How many configurations were measured.
    pub evaluations: u32,
    /// (evaluation index, best-so-far score) — the tuning curve Patty
    /// plots in the runtime-tuning view.
    pub history: Vec<(u32, f64)>,
}

/// A search strategy over tuning configurations.
pub trait Tuner {
    /// Human-readable name for reports.
    fn name(&self) -> &'static str;

    /// Search for the best configuration within an evaluation budget.
    fn tune(
        &mut self,
        initial: TuningConfig,
        evaluator: &mut dyn Evaluator,
        budget: u32,
    ) -> TuningResult;
}

/// Bookkeeping shared by all tuners: measure, count, track the best.
pub(crate) struct Tracker<'e> {
    pub evaluator: &'e mut dyn Evaluator,
    pub budget: u32,
    pub evaluations: u32,
    pub best: Option<(TuningConfig, f64)>,
    pub history: Vec<(u32, f64)>,
}

impl<'e> Tracker<'e> {
    pub fn new(evaluator: &'e mut dyn Evaluator, budget: u32) -> Tracker<'e> {
        Tracker { evaluator, budget, evaluations: 0, best: None, history: Vec::new() }
    }

    /// Measure a configuration (if budget remains) and update the best.
    pub fn measure(&mut self, config: &TuningConfig) -> Option<f64> {
        if self.evaluations >= self.budget {
            return None;
        }
        let score = self.evaluator.measure(config);
        self.evaluations += 1;
        let improved = self.best.as_ref().map(|(_, s)| score < *s).unwrap_or(true);
        if improved {
            self.best = Some((config.clone(), score));
        }
        let best_score = self.best.as_ref().map(|(_, s)| *s).unwrap_or(score);
        self.history.push((self.evaluations, best_score));
        Some(score)
    }

    pub fn exhausted(&self) -> bool {
        self.evaluations >= self.budget
    }

    pub fn finish(self, fallback: TuningConfig) -> TuningResult {
        match self.best {
            Some((best, best_score)) => TuningResult {
                best,
                best_score,
                evaluations: self.evaluations,
                history: self.history,
            },
            None => TuningResult {
                best: fallback,
                best_score: f64::INFINITY,
                evaluations: 0,
                history: Vec::new(),
            },
        }
    }
}

/// Encode a configuration as the vector of current values (dimension order
/// = parameter order), used by neighborhood-based tuners.
pub(crate) fn values_of(config: &TuningConfig) -> Vec<ParamValue> {
    config.params.iter().map(|p| p.value).collect()
}

/// Build a configuration from a value vector.
pub(crate) fn with_values(mut config: TuningConfig, values: &[ParamValue]) -> TuningConfig {
    for (p, v) in config.params.iter_mut().zip(values) {
        p.value = *v;
    }
    config
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::{TuningConfig, TuningParam};

    #[test]
    fn tracker_tracks_best_and_budget() {
        let mut c = TuningConfig::new("t");
        c.push(TuningParam::worker_count("w", "f:1", 4));
        let scores = std::cell::Cell::new(10.0);
        let mut eval = FnEvaluator(|_: &TuningConfig| {
            let s = scores.get();
            scores.set(s - 1.0);
            s
        });
        let mut t = Tracker::new(&mut eval, 3);
        assert_eq!(t.measure(&c), Some(10.0));
        assert_eq!(t.measure(&c), Some(9.0));
        assert_eq!(t.measure(&c), Some(8.0));
        assert!(t.exhausted());
        assert_eq!(t.measure(&c), None);
        let r = t.finish(c);
        assert_eq!(r.best_score, 8.0);
        assert_eq!(r.evaluations, 3);
        // history is monotone non-increasing
        assert!(r.history.windows(2).all(|w| w[1].1 <= w[0].1));
    }

    #[test]
    fn telemetry_evaluator_logs_every_measurement() {
        let mut c = TuningConfig::new("t");
        c.push(TuningParam::worker_count("w", "f:1", 4));
        let scores = std::cell::Cell::new(3.0);
        let mut eval = FnEvaluator(|_: &TuningConfig| {
            let s = scores.get();
            scores.set(s + 1.0);
            s
        });
        let telemetry = Telemetry::enabled();
        let mut logged = TelemetryEvaluator::new(&mut eval, telemetry.clone());
        assert_eq!(logged.measure(&c), 3.0);
        assert_eq!(logged.measure(&c), 4.0);
        let report = telemetry.report();
        assert_eq!(report.tuner_iterations.len(), 2);
        assert_eq!(report.tuner_iterations[0].iteration, 1);
        assert!(report.tuner_iterations[0].improved, "first score is the best so far");
        assert!(!report.tuner_iterations[1].improved, "worse score is not an improvement");
        assert_eq!(report.tuner_iterations[0].params, vec![("w".to_string(), 1)]);
        assert_eq!(report.tuner_iterations[1].objective, 4.0);
    }
}
