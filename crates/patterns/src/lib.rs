//! # patty-patterns
//!
//! Source pattern detection for Patty (PMAM'15, Section 2): maps
//! sequential source patterns onto parallel target patterns using the
//! semantic model, and derives the tuning parameters that make the target
//! patterns *tunable*.
//!
//! The catalog currently covers the paper's three patterns —
//! master/worker, data-parallel loops and pipelines — detected from loops
//! via the rule families PLPL, PLDD, PLCD, PLDS and PLTP of Section 2.2.
//!
//! ```
//! use patty_minilang::{parse, InterpOptions};
//! use patty_analysis::SemanticModel;
//! use patty_patterns::{detect_patterns, DetectOptions};
//!
//! let src = r#"
//!     class F { var g = 2; fn apply(x) { work(100); return x * this.g; } }
//!     fn main() {
//!         var f = new F();
//!         var out = [];
//!         foreach (x in range(0, 10)) {
//!             var a = f.apply(x);
//!             out.add(a);
//!         }
//!         print(len(out));
//!     }
//! "#;
//! let program = parse(src).unwrap();
//! let model = SemanticModel::build(&program, InterpOptions::default()).unwrap();
//! let found = detect_patterns(&model, &DetectOptions::default());
//! assert_eq!(found.len(), 1);
//! assert_eq!(found[0].arch.expr.to_string(), "A+ => B");
//! ```

pub mod detect;
pub mod instance;

pub use detect::{detect_loop, detect_patterns, DetectOptions};
pub use instance::{PatternInstance, Rejection, Stage};
