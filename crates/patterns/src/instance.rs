//! Detected pattern instances: the output of the source-pattern-detection
//! phase and the input of the transformation phase.

use patty_minilang::span::NodeId;
use patty_tadl::{ArchitectureDescription, PatternKind};
use patty_tuning::TuningConfig;

/// One pipeline stage (or master/worker item) after stage formation:
/// a contiguous group of direct loop-body statements.
#[derive(Clone, Debug, PartialEq)]
pub struct Stage {
    /// TADL item name (`A`, `B`, ...).
    pub name: String,
    /// The statements merged into this stage, in body order.
    pub stmts: Vec<NodeId>,
    /// Fraction of the loop body's runtime spent in this stage.
    pub cost_share: f64,
    /// May this stage run replicated (no side effects on other stages,
    /// no carried self-dependence, no I/O)? Rule PLTP, StageReplication.
    pub replicable: bool,
    /// Does the stage carry a self-dependence across iterations (it must
    /// then see elements in order even though it can still be a stage)?
    pub order_sensitive: bool,
}

/// Why a loop was rejected as a pipeline candidate, for diagnostics and
/// the Patty tool's artifact views.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Rejection {
    /// Rule PLCD: a body statement can affect cross-element control flow.
    ControlDependence(String),
    /// After PLDD merging only one stage remained and iterations are not
    /// independent — nothing to overlap.
    SingleStage,
    /// The loop body is empty or was never observed.
    Empty,
    /// Rule PLPL: the loop condition reads state the body computes in a
    /// way that cannot be folded into the StreamGenerator, so no
    /// continuous element stream exists (e.g. a search loop whose trip
    /// count depends on processed values).
    HeaderDependence(String),
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejection::ControlDependence(what) => {
                write!(f, "control dependence violates PLCD: {what}")
            }
            Rejection::SingleStage => write!(f, "single stage after dependence merging"),
            Rejection::Empty => write!(f, "empty or unobserved loop body"),
            Rejection::HeaderDependence(what) => {
                write!(f, "loop condition depends on body computation (PLPL): {what}")
            }
        }
    }
}

/// A detected source-pattern instance mapped to its target pattern.
#[derive(Clone, Debug)]
pub struct PatternInstance {
    /// The tunable architecture description (the TADL-facing artifact).
    pub arch: ArchitectureDescription,
    /// The loop this instance was detected at.
    pub loop_id: NodeId,
    /// Stage grouping (for `DataParallelLoop` a single stage holding the
    /// whole body).
    pub stages: Vec<Stage>,
    /// The derived tuning parameters with their default values (Fig. 3c).
    pub tuning: TuningConfig,
    /// Estimated speedup on `max_workers` cores, used for ranking
    /// candidates in the tool (Prism-style "speedup potential").
    pub est_speedup: f64,
    /// For `DataParallelLoop`: reduction variables recognized in the body
    /// (accumulators that commute and are privatizable).
    pub reductions: Vec<String>,
}

impl PatternInstance {
    /// The pattern family.
    pub fn kind(&self) -> PatternKind {
        self.arch.kind
    }

    /// Stage by TADL item name.
    pub fn stage(&self, name: &str) -> Option<&Stage> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// Short human-readable summary line.
    pub fn summary(&self) -> String {
        format!(
            "{} at {}:{} — {} ({} stage(s), est. speedup {:.1}x)",
            self.arch.kind,
            self.arch.func,
            self.arch.line,
            self.arch.expr,
            self.stages.len(),
            self.est_speedup
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use patty_tadl::TadlExpr;

    #[test]
    fn summary_mentions_kind_and_location() {
        let inst = PatternInstance {
            arch: ArchitectureDescription {
                name: "pipeline_main_l4".into(),
                kind: PatternKind::Pipeline,
                expr: TadlExpr::pipeline(vec![TadlExpr::item("A"), TadlExpr::item("B")]),
                items: vec![],
                func: "main".into(),
                line: 4,
                stream_length: 10,
            },
            loop_id: patty_minilang::span::NodeId(7),
            stages: vec![
                Stage {
                    name: "A".into(),
                    stmts: vec![],
                    cost_share: 0.5,
                    replicable: true,
                    order_sensitive: false,
                },
                Stage {
                    name: "B".into(),
                    stmts: vec![],
                    cost_share: 0.5,
                    replicable: false,
                    order_sensitive: true,
                },
            ],
            tuning: TuningConfig::new("pipeline_main_l4"),
            est_speedup: 2.0,
            reductions: vec![],
        };
        let s = inst.summary();
        assert!(s.contains("Pipeline"));
        assert!(s.contains("main:4"));
        assert!(s.contains("2 stage(s)"));
        assert!(inst.stage("B").unwrap().order_sensitive);
        assert!(inst.stage("Z").is_none());
    }

    #[test]
    fn rejection_messages() {
        assert!(Rejection::ControlDependence("break".into())
            .to_string()
            .contains("PLCD"));
        assert!(Rejection::SingleStage.to_string().contains("single stage"));
    }
}
