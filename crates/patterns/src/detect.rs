//! Source pattern detection (phase 2 of the process model).
//!
//! Implements the rule families of Section 2.2 over the semantic model:
//!
//! * **PLPL** — every loop is a candidate; the loop header becomes the
//!   implicit `StreamGenerator`; initially each direct body statement is
//!   one stage.
//! * **PLCD** — statements whose control effects escape the iteration
//!   (`break`, `return`) disqualify the loop.
//! * **PLDD** — loop-carried dependencies merge the spanned statements
//!   into one stage. Static may-dependencies on heap locations are
//!   *optimistically* discharged when the dynamic trace shows no
//!   cross-iteration conflict between the two statements.
//! * **PLDS** — intra-iteration dataflow defines the buffers between
//!   stages and the stage-level DAG (independent stages become `||`
//!   master/worker groups, cf. Fig. 3's `(A || B || C+) => D => E`).
//! * **PLTP** — tuning parameters: `StageReplication` for the hottest
//!   side-effect-free stage, `OrderPreservation`, `StageFusion` per
//!   adjacent pair, `SequentialExecution`.
//!
//! Loops whose iterations are fully independent (no carried dependencies
//! at all, or only recognized reductions) are classified as
//! **data-parallel loops** instead.

use crate::instance::{PatternInstance, Rejection, Stage};
use patty_analysis::loc::StaticLoc;
use patty_analysis::loops::{jump_effects, LoopInfo};
use patty_analysis::SemanticModel;
use patty_minilang::ast::{AssignOp, ExprKind, LValueKind, StmtKind};
use patty_minilang::span::NodeId;
use patty_tadl::{ArchItem, ArchitectureDescription, PatternKind, TadlExpr};
use patty_tuning::{TuningConfig, TuningParam};
use std::collections::{BTreeMap, BTreeSet};

/// Options for the detector.
#[derive(Clone, Debug)]
pub struct DetectOptions {
    /// Upper bound for replication / worker-count tuning domains
    /// (the target platform's core count).
    pub max_workers: i64,
    /// Use dynamic evidence to discharge static may-dependencies.
    pub use_dynamic: bool,
    /// Minimum estimated speedup for a candidate to be reported.
    pub min_speedup: f64,
}

impl Default for DetectOptions {
    fn default() -> DetectOptions {
        DetectOptions { max_workers: 8, use_dynamic: true, min_speedup: 1.2 }
    }
}

/// Detect all pattern instances in a program, best candidates first.
pub fn detect_patterns(model: &SemanticModel, opts: &DetectOptions) -> Vec<PatternInstance> {
    let mut out = Vec::new();
    for l in &model.loops {
        if let Ok(inst) = detect_loop(model, l, opts) {
            if inst.est_speedup >= opts.min_speedup {
                out.push(inst);
            }
        }
    }
    out.sort_by(|a, b| b.est_speedup.total_cmp(&a.est_speedup).then(a.arch.line.cmp(&b.arch.line)));
    out
}

/// Stage names `A`, `B`, ..., `Z`, `S26`, ...
fn stage_name(i: usize) -> String {
    if i < 26 {
        ((b'A' + i as u8) as char).to_string()
    } else {
        format!("S{i}")
    }
}

/// Detect the pattern (if any) at one loop.
pub fn detect_loop(
    model: &SemanticModel,
    loop_info: &LoopInfo,
    opts: &DetectOptions,
) -> Result<PatternInstance, Rejection> {
    let stmts = &loop_info.body_stmts;
    if stmts.is_empty() {
        return Err(Rejection::Empty);
    }

    // ---- PLCD ----
    for id in stmts {
        let stmt = model.program.find_stmt(*id).ok_or(Rejection::Empty)?;
        let j = jump_effects(stmt);
        if j.violates_plcd() {
            let what = if j.breaks { "break" } else { "return" };
            return Err(Rejection::ControlDependence(format!(
                "`{}` escapes the iteration in `{}`",
                what,
                stmt.describe(&model.program.source)
            )));
        }
    }

    let deps = model
        .loop_deps
        .get(&loop_info.id)
        .ok_or(Rejection::Empty)?;

    // ---- PLPL: fold induction updates into the StreamGenerator ----
    // "we process the loop header, increment and termination condition.
    // This represents the generation of continuous stream elements."
    // For `while` / condition-carrying `for` loops, a simple self-update
    // of a condition variable (`i = i + 1`) is part of stream generation;
    // any other body write the condition observes means the trip count
    // depends on processed values — no continuous stream exists.
    let (stmts, folded_vars) = fold_header_induction(model, loop_info, deps)?;
    let stmts = &stmts;
    if stmts.is_empty() {
        return Err(Rejection::Empty);
    }
    let mut iteration_locals = deps.iteration_locals.clone();
    iteration_locals.extend(folded_vars.iter().cloned());

    let idx_of: BTreeMap<NodeId, usize> =
        stmts.iter().enumerate().map(|(i, s)| (*s, i)).collect();

    // ---- PLDD with optimistic dynamic refinement ----
    let trace = model
        .profile
        .as_ref()
        .and_then(|p| p.loop_traces.get(&loop_info.id));
    let dynamic_usable =
        opts.use_dynamic && trace.map(|t| t.traced.len() >= 2).unwrap_or(false);
    // Carried accesses to iteration-local variables are artifacts of the
    // interpreter reusing one cell per frame: the pipeline transform
    // privatizes those values into the per-element buffers (rule PLDS), so
    // they impose no cross-element ordering.
    let observed_carried: BTreeSet<(NodeId, NodeId)> = trace
        .map(|t| {
            t.carried_deps()
                .into_iter()
                .filter(|d| match &d.loc {
                    patty_minilang::profile::DynLoc::Local(_, name) => {
                        !iteration_locals.contains(name.as_ref() as &str)
                    }
                    _ => true,
                })
                .map(|d| (d.src.min(d.dst), d.src.max(d.dst)))
                .collect()
        })
        .unwrap_or_default();

    let mut carried_pairs: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
    for d in deps.carried() {
        let pair = (d.src.min(d.dst), d.src.max(d.dst));
        let keep = match &d.loc {
            // Local accumulators are syntactically precise; always keep.
            StaticLoc::Var(_) => true,
            // Heap may-dependencies: optimistically discharge when the
            // dynamic trace saw no cross-iteration conflict between the
            // two statements.
            _ => {
                if dynamic_usable {
                    observed_carried.contains(&pair)
                } else {
                    true
                }
            }
        };
        if keep {
            carried_pairs.insert(pair);
        }
    }
    // Dependencies the static analysis missed (aliasing) but the dynamic
    // analysis observed.
    if dynamic_usable {
        for pair in &observed_carried {
            carried_pairs.insert(*pair);
        }
    }

    // Order-sensitive external effects: statements that print (or consume
    // random state) must see elements in order, and any two such
    // statements must stay in one thread.
    let io_stmts: Vec<NodeId> = stmts
        .iter()
        .filter(|id| deps.stmt_effects.get(id).map(|e| e.io).unwrap_or(false))
        .copied()
        .collect();
    for i in 0..io_stmts.len() {
        carried_pairs.insert((io_stmts[i], io_stmts[i]));
        for j in (i + 1)..io_stmts.len() {
            carried_pairs.insert((io_stmts[i], io_stmts[j]));
        }
    }

    // ---- reductions (for DOALL classification) ----
    let reductions = recognize_reductions(model, stmts, &iteration_locals, deps, &carried_pairs);
    let non_reduction_pairs: BTreeSet<(NodeId, NodeId)> = carried_pairs
        .iter()
        .filter(|(a, b)| {
            !(a == b && reductions.iter().any(|(id, _)| id == a))
        })
        .copied()
        .collect();

    let iterations = model.loop_iterations(loop_info.id);

    if non_reduction_pairs.is_empty() {
        // Fully independent iterations → data-parallel loop.
        return Ok(build_doall(model, loop_info, opts, iterations, reductions));
    }

    // ---- stage formation: merge carried-dependence spans ----
    let n = stmts.len();
    let mut group = vec![0usize; n]; // group id per stmt index, contiguous
    for (i, g) in group.iter_mut().enumerate() {
        *g = i;
    }
    for (a, b) in &non_reduction_pairs {
        let (Some(&ia), Some(&ib)) = (idx_of.get(a), idx_of.get(b)) else { continue };
        let (lo, hi) = (ia.min(ib), ia.max(ib));
        // "we subsume si, sk, and all statements in between in one
        // pipeline stage"
        let target = group[lo];
        for g in group.iter_mut().take(hi + 1).skip(lo) {
            *g = target;
        }
    }
    // Renumber groups contiguously (they are monotone by construction).
    let mut stage_groups: Vec<Vec<usize>> = Vec::new();
    let mut last = usize::MAX;
    for (i, g) in group.iter().enumerate() {
        if *g != last {
            stage_groups.push(Vec::new());
            last = *g;
        }
        stage_groups.last_mut().expect("pushed").push(i);
    }

    if stage_groups.len() < 2 {
        return Err(Rejection::SingleStage);
    }

    // ---- stage metadata ----
    let self_carried: BTreeSet<NodeId> = carried_pairs
        .iter()
        .filter(|(a, b)| a == b)
        .map(|(a, _)| *a)
        .collect();
    let mut stages: Vec<Stage> = Vec::with_capacity(stage_groups.len());
    for (gi, members) in stage_groups.iter().enumerate() {
        let stmt_ids: Vec<NodeId> = members.iter().map(|i| stmts[*i]).collect();
        let cost_share: f64 = stmt_ids
            .iter()
            .map(|id| model.stage_cost_share(loop_info.id, *id))
            .sum();
        let order_sensitive = stmt_ids.iter().any(|id| self_carried.contains(id));
        let io = stmt_ids.iter().any(|id| io_stmts.contains(id));
        // Replicable: no carried self-dependence, no I/O, and all writes
        // are iteration-local variables (the stage's own outputs).
        let writes_local = stmt_ids.iter().all(|id| {
            deps.stmt_effects
                .get(id)
                .map(|e| {
                    e.writes.iter().all(|w| match w {
                        StaticLoc::Var(v) => iteration_locals.contains(v),
                        _ => false,
                    })
                })
                .unwrap_or(false)
        });
        let replicable = !order_sensitive && !io && writes_local;
        stages.push(Stage {
            name: stage_name(gi),
            stmts: stmt_ids,
            cost_share,
            replicable,
            order_sensitive,
        });
    }

    // ---- PLDS: stage-level DAG from intra-iteration dependencies ----
    let stage_of: BTreeMap<NodeId, usize> = stages
        .iter()
        .enumerate()
        .flat_map(|(si, s)| s.stmts.iter().map(move |id| (*id, si)))
        .collect();
    let mut stage_deps: BTreeSet<(usize, usize)> = BTreeSet::new();
    for d in deps.intra() {
        let (Some(&sa), Some(&sb)) = (stage_of.get(&d.src), stage_of.get(&d.dst)) else {
            continue;
        };
        if sa != sb {
            stage_deps.insert((sa.min(sb), sa.max(sb)));
        }
    }
    // Layering: level = 1 + max(level of dependence predecessors).
    let mut level = vec![0usize; stages.len()];
    for si in 0..stages.len() {
        let l = stage_deps
            .iter()
            .filter(|(_, b)| *b == si)
            .map(|(a, _)| level[*a] + 1)
            .max()
            .unwrap_or(0);
        level[si] = l;
    }
    let max_level = level.iter().copied().max().unwrap_or(0);

    // ---- PLTP: replication mark on the hottest replicable stage ----
    let hottest_replicable: Option<usize> = stages
        .iter()
        .enumerate()
        .filter(|(_, s)| s.replicable)
        .max_by(|a, b| a.1.cost_share.total_cmp(&b.1.cost_share))
        .map(|(i, _)| i);

    // ---- TADL expression ----
    let mut level_exprs: Vec<TadlExpr> = Vec::new();
    for l in 0..=max_level {
        let members: Vec<usize> = (0..stages.len()).filter(|si| level[*si] == l).collect();
        let items: Vec<TadlExpr> = members
            .iter()
            .map(|&si| {
                if Some(si) == hottest_replicable {
                    TadlExpr::replicable(stages[si].name.clone())
                } else {
                    TadlExpr::item(stages[si].name.clone())
                }
            })
            .collect();
        level_exprs.push(TadlExpr::parallel(items));
    }
    let expr = TadlExpr::pipeline(level_exprs);
    let kind = if max_level == 0 {
        PatternKind::MasterWorker
    } else {
        PatternKind::Pipeline
    };

    // Items must appear in expression order.
    let mut order: Vec<usize> = (0..stages.len()).collect();
    order.sort_by_key(|&si| (level[si], si));

    let arch_name = format!(
        "{}_{}_l{}",
        match kind {
            PatternKind::Pipeline => "pipeline",
            PatternKind::MasterWorker => "masterworker",
            PatternKind::DataParallelLoop => "doall",
        },
        loop_info.func.replace('.', "_"),
        loop_info.span.line
    );

    let items: Vec<ArchItem> = order
        .iter()
        .map(|&si| {
            let s = &stages[si];
            let first = model.program.find_stmt(s.stmts[0]);
            ArchItem {
                name: s.name.clone(),
                line: first.map(|f| f.span.line).unwrap_or(0),
                source: first
                    .map(|f| f.describe(&model.program.source))
                    .unwrap_or_default(),
                cost_share: s.cost_share,
                pure_stage: s.replicable,
            }
        })
        .collect();

    // ---- tuning configuration ----
    let mut tuning = TuningConfig::new(arch_name.clone());
    let loc = format!("{}:{}", loop_info.func, loop_info.span.line);
    for s in &stages {
        if s.replicable {
            tuning.push(TuningParam::replication(
                format!("{arch_name}.{}.replication", s.name),
                loc.clone(),
                opts.max_workers,
            ));
            tuning.push(TuningParam::order_preservation(
                format!("{arch_name}.{}.order", s.name),
                loc.clone(),
            ));
        }
    }
    for w in order.windows(2) {
        tuning.push(TuningParam::stage_fusion(
            format!(
                "{arch_name}.fuse.{}_{}",
                stages[w[0]].name, stages[w[1]].name
            ),
            loc.clone(),
        ));
    }
    tuning.push(TuningParam::batch_size(
        format!("{arch_name}.batch"),
        loc.clone(),
        256,
    ));
    tuning.push(TuningParam::sequential_execution(
        format!("{arch_name}.sequential"),
        loc.clone(),
    ));

    // ---- speedup estimate ----
    // The pipeline's throughput is bounded by its slowest stage; the
    // hottest replicable stage can be divided by replication.
    let mut bottleneck: f64 = 0.0;
    for (si, s) in stages.iter().enumerate() {
        let mut share = s.cost_share;
        if Some(si) == hottest_replicable {
            share /= opts.max_workers as f64;
        }
        bottleneck = bottleneck.max(share);
    }
    let est_speedup = if bottleneck > 0.0 {
        (1.0 / bottleneck).min(opts.max_workers as f64)
    } else {
        stages.len() as f64
    };

    let arch = ArchitectureDescription {
        name: arch_name,
        kind,
        expr,
        items,
        func: loop_info.func.clone(),
        line: loop_info.span.line,
        stream_length: iterations,
    };
    debug_assert!(arch.validate().is_ok(), "{:?}", arch.validate());

    // Reorder stages into expression order for downstream consumers.
    let stages_ordered: Vec<Stage> = order.iter().map(|&si| stages[si].clone()).collect();

    Ok(PatternInstance {
        arch,
        loop_id: loop_info.id,
        stages: stages_ordered,
        tuning,
        est_speedup,
        reductions: reductions.into_iter().map(|(_, v)| v).collect(),
    })
}

/// Build the data-parallel-loop instance for a fully independent loop.
fn build_doall(
    model: &SemanticModel,
    loop_info: &LoopInfo,
    opts: &DetectOptions,
    iterations: u64,
    reductions: Vec<(NodeId, String)>,
) -> PatternInstance {
    let arch_name = format!(
        "doall_{}_l{}",
        loop_info.func.replace('.', "_"),
        loop_info.span.line
    );
    let first = loop_info
        .body_stmts
        .first()
        .and_then(|id| model.program.find_stmt(*id));
    let stage = Stage {
        name: "A".into(),
        stmts: loop_info.body_stmts.clone(),
        cost_share: 1.0,
        replicable: true,
        order_sensitive: false,
    };
    let arch = ArchitectureDescription {
        name: arch_name.clone(),
        kind: PatternKind::DataParallelLoop,
        expr: TadlExpr::replicable("A"),
        items: vec![ArchItem {
            name: "A".into(),
            line: first.map(|f| f.span.line).unwrap_or(loop_info.span.line),
            source: first
                .map(|f| f.describe(&model.program.source))
                .unwrap_or_default(),
            cost_share: 1.0,
            pure_stage: true,
        }],
        func: loop_info.func.clone(),
        line: loop_info.span.line,
        stream_length: iterations,
    };
    let loc = format!("{}:{}", loop_info.func, loop_info.span.line);
    let mut tuning = TuningConfig::new(arch_name.clone());
    tuning.push(TuningParam::worker_count(
        format!("{arch_name}.workers"),
        loc.clone(),
        opts.max_workers,
    ));
    tuning.push(TuningParam::chunk_size(
        format!("{arch_name}.chunk"),
        loc.clone(),
        256,
    ));
    tuning.push(TuningParam::chunk_size(
        format!("{arch_name}.min_chunk"),
        loc.clone(),
        256,
    ));
    tuning.push(TuningParam::sequential_execution(
        format!("{arch_name}.sequential"),
        loc,
    ));
    let est_speedup = if iterations == 0 {
        opts.max_workers as f64
    } else {
        (iterations as f64).min(opts.max_workers as f64)
    };
    PatternInstance {
        arch,
        loop_id: loop_info.id,
        stages: vec![stage],
        tuning,
        est_speedup,
        reductions: reductions.into_iter().map(|(_, v)| v).collect(),
    }
}

/// Fold simple induction updates of condition variables into the implicit
/// StreamGenerator stage (rule PLPL), and reject loops whose condition
/// observes body computation in any other way.
///
/// Returns the remaining stage-candidate statements and the folded
/// generator-managed variables.
fn fold_header_induction(
    model: &SemanticModel,
    loop_info: &LoopInfo,
    deps: &patty_analysis::LoopDeps,
) -> Result<(Vec<NodeId>, BTreeSet<String>), Rejection> {
    let loop_stmt = model.program.find_stmt(loop_info.id).ok_or(Rejection::Empty)?;
    let cond = match &loop_stmt.kind {
        StmtKind::While { cond, .. } => Some(cond),
        StmtKind::For { cond, .. } => cond.as_ref(),
        _ => None,
    };
    let Some(cond) = cond else {
        return Ok((loop_info.body_stmts.clone(), BTreeSet::new()));
    };

    // What the condition observes: plain variables, and the root
    // variables of any heap paths it dereferences.
    let mut cond_vars: BTreeSet<String> = BTreeSet::new();
    let mut cond_heap_roots: BTreeSet<String> = BTreeSet::new();
    patty_minilang::ast::visit_expr(cond, &mut |e| match &e.kind {
        ExprKind::Var(v) => {
            cond_vars.insert(v.clone());
        }
        ExprKind::Field { base, .. } | ExprKind::Index { base, .. } => {
            if let Some(p) = base.path() {
                if let Some(root) = p.split('.').next() {
                    cond_heap_roots.insert(root.to_string());
                }
            }
        }
        ExprKind::MethodCall { base, .. } => {
            if let Some(p) = base.path() {
                if let Some(root) = p.split('.').next() {
                    cond_heap_roots.insert(root.to_string());
                }
            }
        }
        _ => {}
    });

    let mut remaining = Vec::new();
    let mut folded = BTreeSet::new();
    for id in &loop_info.body_stmts {
        let s = model.program.find_stmt(*id).ok_or(Rejection::Empty)?;
        if let Some(var) = simple_induction_var(s, &cond_vars) {
            folded.insert(var);
            continue;
        }
        remaining.push(*id);
    }
    for id in &remaining {
        let Some(e) = deps.stmt_effects.get(id) else { continue };
        for w in &e.writes {
            match w {
                StaticLoc::Var(v) => {
                    if cond_vars.contains(v)
                        && !deps.iteration_locals.contains(v)
                        && !folded.contains(v)
                    {
                        return Err(Rejection::HeaderDependence(format!(
                            "condition variable `{v}` is written by the loop body"
                        )));
                    }
                }
                StaticLoc::Path(p) | StaticLoc::Elem(p) | StaticLoc::Struct(p) => {
                    if let Some(root) = p.split('.').next() {
                        if cond_heap_roots.contains(root) {
                            return Err(Rejection::HeaderDependence(format!(
                                "condition dereferences `{root}`, which the loop body mutates"
                            )));
                        }
                    }
                }
                StaticLoc::Unknown => {
                    if !cond_heap_roots.is_empty() {
                        return Err(Rejection::HeaderDependence(
                            "condition dereferences heap state the body may mutate".into(),
                        ));
                    }
                }
            }
        }
    }
    Ok((remaining, folded))
}

/// Is `s` a simple self-update of a condition variable — `v += e`,
/// `v -= e`, `v *= e` or `v = v ⊕ e` — whose operand only reads other
/// condition variables and literals? Such updates belong to the stream
/// generator.
fn simple_induction_var(
    s: &patty_minilang::ast::Stmt,
    cond_vars: &BTreeSet<String>,
) -> Option<String> {
    let StmtKind::Assign { target, op, value } = &s.kind else { return None };
    let LValueKind::Var(v) = &target.kind else { return None };
    if !cond_vars.contains(v) {
        return None;
    }
    let operand_ok = |e: &patty_minilang::ast::Expr, v: &str| {
        let mut ok = true;
        patty_minilang::ast::visit_expr(e, &mut |x| match &x.kind {
            ExprKind::Var(name) => {
                if name == v || !cond_vars.contains(name) {
                    ok = false;
                }
            }
            ExprKind::Int(_) | ExprKind::Float(_) | ExprKind::Binary { .. }
            | ExprKind::Unary { .. } => {}
            _ => ok = false,
        });
        ok
    };
    match op {
        AssignOp::Add | AssignOp::Sub | AssignOp::Mul => {
            operand_ok(value, v).then(|| v.clone())
        }
        AssignOp::Set => {
            let ExprKind::Binary { lhs, rhs, .. } = &value.kind else { return None };
            let lhs_is_v = matches!(&lhs.kind, ExprKind::Var(n) if n == v);
            let rhs_is_v = matches!(&rhs.kind, ExprKind::Var(n) if n == v);
            let other = if lhs_is_v { rhs } else { lhs };
            ((lhs_is_v ^ rhs_is_v) && operand_ok(other, v)).then(|| v.clone())
        }
    }
}

/// Recognize privatizable reduction statements: `v += e`, `v *= e` or
/// `v = v + e` on a non-iteration-local variable where `e` does not read
/// `v` and no other body statement touches `v`.
fn recognize_reductions(
    model: &SemanticModel,
    body_stmts: &[NodeId],
    iteration_locals: &BTreeSet<String>,
    deps: &patty_analysis::LoopDeps,
    carried: &BTreeSet<(NodeId, NodeId)>,
) -> Vec<(NodeId, String)> {
    let mut out = Vec::new();
    for id in body_stmts {
        let Some(stmt) = model.program.find_stmt(*id) else { continue };
        let var = match &stmt.kind {
            StmtKind::Assign { target, op, value } => {
                let LValueKind::Var(name) = &target.kind else { continue };
                let reads_self = |e: &patty_minilang::ast::Expr| {
                    let mut hit = false;
                    patty_minilang::ast::visit_expr(e, &mut |x| {
                        if matches!(&x.kind, ExprKind::Var(v) if v == name) {
                            hit = true;
                        }
                    });
                    hit
                };
                match op {
                    AssignOp::Add | AssignOp::Mul => {
                        if reads_self(value) {
                            continue;
                        }
                        name.clone()
                    }
                    AssignOp::Set => {
                        // v = v + e  or  v = e + v
                        let ExprKind::Binary { op: bop, lhs, rhs } = &value.kind else {
                            continue;
                        };
                        if !matches!(
                            bop,
                            patty_minilang::ast::BinOp::Add | patty_minilang::ast::BinOp::Mul
                        ) {
                            continue;
                        }
                        let lhs_is_v = matches!(&lhs.kind, ExprKind::Var(v) if v == name);
                        let rhs_is_v = matches!(&rhs.kind, ExprKind::Var(v) if v == name);
                        let other = if lhs_is_v { rhs } else { lhs };
                        if !(lhs_is_v ^ rhs_is_v) || reads_self(other) {
                            continue;
                        }
                        name.clone()
                    }
                    _ => continue,
                }
            }
            _ => continue,
        };
        if iteration_locals.contains(&var) {
            continue;
        }
        // No other body statement may touch the reduction variable.
        let touched_elsewhere = body_stmts.iter().any(|other| {
            if other == id {
                return false;
            }
            deps.stmt_effects
                .get(other)
                .map(|e| {
                    let loc = StaticLoc::Var(var.clone());
                    e.reads.contains(&loc) || e.writes.contains(&loc)
                })
                .unwrap_or(false)
        });
        if touched_elsewhere {
            continue;
        }
        // All carried pairs involving this statement must be the
        // self-dependence of the reduction itself.
        let only_self = carried
            .iter()
            .filter(|(a, b)| a == id || b == id)
            .all(|(a, b)| a == b);
        if only_self {
            out.push((*id, var));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use patty_minilang::{parse, InterpOptions};

    fn model_of(src: &str) -> SemanticModel {
        let p = parse(src).unwrap();
        SemanticModel::build(&p, InterpOptions::default()).unwrap()
    }

    fn detect_first(src: &str) -> Result<PatternInstance, Rejection> {
        let m = model_of(src);
        let l = m.loops[0].clone();
        detect_loop(&m, &l, &DetectOptions::default())
    }

    const AVISTREAM: &str = r#"
        class Filter { var gain = 2; fn apply(x) { work(300); return x * this.gain; } }
        class Conv { fn apply(a, b, c) { work(60); return a + b + c; } }
        fn main() {
            var cropFilter = new Filter();
            var histoFilter = new Filter();
            var oilFilter = new Filter();
            var conv = new Conv();
            var out = [];
            foreach (i in range(0, 12)) {
                var c = cropFilter.apply(i);
                var h = histoFilter.apply(i);
                var o = oilFilter.apply(i);
                var r = conv.apply(c, h, o);
                out.add(r);
            }
            print(len(out));
        }
    "#;

    #[test]
    fn avistream_matches_paper_shape() {
        // Figure 3: (A || B || C+) => D => E — three independent filters,
        // a join, and an order-carrying output append.
        let inst = detect_first(AVISTREAM).unwrap();
        assert_eq!(inst.kind(), PatternKind::Pipeline);
        assert_eq!(inst.stages.len(), 5);
        let s = inst.arch.expr.to_string();
        assert!(
            s.starts_with("(") && s.contains("||") && s.contains("=>"),
            "expr {s}"
        );
        // The three filter stages are parallel at level 0, one of them
        // marked replicable.
        assert_eq!(inst.arch.expr.replicable_items().len(), 1);
        // The append stage is not replicable and order-sensitive.
        let last = inst.stages.last().unwrap();
        assert!(!last.replicable);
        assert!(last.order_sensitive);
    }

    #[test]
    fn avistream_tuning_parameters() {
        let inst = detect_first(AVISTREAM).unwrap();
        let kinds: Vec<patty_tuning::ParamKind> =
            inst.tuning.params.iter().map(|p| p.kind).collect();
        use patty_tuning::ParamKind::*;
        assert!(kinds.contains(&StageReplication));
        assert!(kinds.contains(&OrderPreservation));
        assert!(kinds.contains(&StageFusion));
        assert!(kinds.contains(&SequentialExecution));
        // four adjacent pairs → four fusion parameters
        assert_eq!(kinds.iter().filter(|k| **k == StageFusion).count(), 4);
    }

    #[test]
    fn disjoint_array_writes_are_doall() {
        let src = r#"
            fn main() {
                var a = [0, 0, 0, 0, 0, 0, 0, 0];
                var b = [1, 2, 3, 4, 5, 6, 7, 8];
                for (var i = 0; i < 8; i = i + 1) {
                    a[i] = b[i] * b[i];
                }
                print(a[7]);
            }
        "#;
        let inst = detect_first(src).unwrap();
        assert_eq!(inst.kind(), PatternKind::DataParallelLoop);
        assert!(inst.reductions.is_empty());
    }

    #[test]
    fn reduction_loop_is_doall_with_reduction() {
        let src = r#"
            fn main() {
                var s = 0;
                foreach (x in range(0, 20)) {
                    s += x * x;
                }
                print(s);
            }
        "#;
        let inst = detect_first(src).unwrap();
        assert_eq!(inst.kind(), PatternKind::DataParallelLoop);
        assert_eq!(inst.reductions, vec!["s".to_string()]);
    }

    #[test]
    fn break_rejects_via_plcd() {
        let src = r#"
            fn main() {
                foreach (x in range(0, 10)) {
                    if (x > 5) { break; }
                    work(10);
                }
            }
        "#;
        let err = detect_first(src).unwrap_err();
        assert!(matches!(err, Rejection::ControlDependence(_)));
    }

    #[test]
    fn tight_sequential_chain_is_single_stage() {
        // Every statement depends on the shared accumulator object — no
        // pipeline possible (true sequential dependence chain).
        let src = r#"
            class Acc { var v = 1; fn mul(x) { this.v = this.v * x + 1; return this.v; } }
            fn main() {
                var acc = new Acc();
                foreach (x in range(0, 10)) {
                    var a = acc.mul(x);
                    var b = acc.mul(a);
                }
                print(acc.v);
            }
        "#;
        let err = detect_first(src).unwrap_err();
        assert_eq!(err, Rejection::SingleStage);
    }

    #[test]
    fn two_stage_pipeline_from_filter_chain() {
        let src = r#"
            class F { var g = 3; fn apply(x) { work(100); return x * this.g; } }
            fn main() {
                var f1 = new F();
                var out = [];
                foreach (x in range(0, 10)) {
                    var a = f1.apply(x);
                    out.add(a);
                }
                print(len(out));
            }
        "#;
        let inst = detect_first(src).unwrap();
        assert_eq!(inst.kind(), PatternKind::Pipeline);
        assert_eq!(inst.stages.len(), 2);
        assert!(inst.stages[0].replicable);
        assert!(inst.stages[0].cost_share > 0.8);
    }

    #[test]
    fn io_in_loop_prevents_doall_but_allows_pipeline() {
        let src = r#"
            class F { var g = 3; fn apply(x) { work(100); return x * this.g; } }
            fn main() {
                var f1 = new F();
                foreach (x in range(0, 10)) {
                    var a = f1.apply(x);
                    print(a);
                }
            }
        "#;
        let inst = detect_first(src).unwrap();
        assert_eq!(inst.kind(), PatternKind::Pipeline);
        let last = inst.stages.last().unwrap();
        assert!(!last.replicable, "printing stage must not replicate");
    }

    #[test]
    fn pure_independent_statements_are_masterworker() {
        let src = r#"
            class F { var g = 2; fn apply(x) { work(100); return x * this.g; } }
            fn main() {
                var f1 = new F();
                var f2 = new F();
                var a = [0,0,0,0,0,0];
                var b = [0,0,0,0,0,0];
                for (var i = 0; i < 6; i = i + 1) {
                    a[i] = f1.apply(i);
                    b[i] = f2.apply(i);
                }
                print(a[0] + b[0]);
            }
        "#;
        // Disjoint dynamic element writes discharge the static carries →
        // the two statements are independent → this is in fact a DOALL
        // (each iteration is independent).
        let inst = detect_first(src).unwrap();
        assert_eq!(inst.kind(), PatternKind::DataParallelLoop);
    }

    #[test]
    fn detect_patterns_ranks_by_speedup() {
        let src = r#"
            class F { var g = 2; fn apply(x) { work(200); return x * this.g; } }
            fn main() {
                var f = new F();
                var out = [];
                // hot DOALL
                var a = [0,0,0,0,0,0,0,0];
                for (var i = 0; i < 8; i = i + 1) { a[i] = f.apply(i); }
                // modest two-stage pipeline
                foreach (x in range(0, 8)) {
                    var v = f.apply(x);
                    out.add(v);
                }
                print(len(out) + a[0]);
            }
        "#;
        let m = model_of(src);
        let found = detect_patterns(&m, &DetectOptions::default());
        assert_eq!(found.len(), 2);
        assert!(found[0].est_speedup >= found[1].est_speedup);
        assert_eq!(found[0].kind(), PatternKind::DataParallelLoop);
    }

    #[test]
    fn static_only_model_is_more_conservative() {
        // Without a dynamic profile the element-wise writes stay carried
        // and the loop is not a DOALL.
        let src = r#"
            fn main() {
                var a = [0, 0, 0, 0];
                var b = [1, 2, 3, 4];
                for (var i = 0; i < 4; i = i + 1) {
                    a[i] = b[i] * 2;
                }
                print(a[0]);
            }
        "#;
        let p = parse(src).unwrap();
        let m = SemanticModel::build_static(&p);
        let l = m.loops[0].clone();
        let r = detect_loop(&m, &l, &DetectOptions::default());
        assert!(r.is_err(), "static-only should not claim DOALL: {r:?}");
    }

    #[test]
    fn stream_length_recorded() {
        let inst = detect_first(AVISTREAM).unwrap();
        assert_eq!(inst.arch.stream_length, 12);
    }

    #[test]
    fn while_with_simple_induction_folds_into_generator() {
        // `i = i + 1` belongs to the StreamGenerator (rule PLPL); the
        // remaining body forms the stages.
        let src = r#"
            class F { var g = 2; fn apply(x) { work(120); return x * this.g; } }
            fn main() {
                var f = new F();
                var out = [];
                var i = 0;
                while (i < 10) {
                    var v = f.apply(i);
                    out.add(v);
                    i = i + 1;
                }
                print(len(out));
            }
        "#;
        let inst = detect_first(src).unwrap();
        assert_eq!(inst.kind(), PatternKind::Pipeline);
        assert_eq!(inst.stages.len(), 2, "induction update must not be a stage");
    }

    #[test]
    fn search_loop_condition_dependence_rejected() {
        // The trip count depends on processed data: `runLen` advances by a
        // body-computed amount the condition observes — no stream exists.
        let src = r#"
            fn main() {
                var data = [1, 1, 1, 2, 2, 3];
                var i = 0;
                while (i < len(data)) {
                    var v = data[i];
                    var runLen = 1;
                    while (i + runLen < len(data) && data[i + runLen] == v) {
                        runLen = runLen + 1;
                    }
                    print(v, runLen);
                    i = i + runLen;
                }
            }
        "#;
        let err = detect_first(src).unwrap_err();
        assert!(
            matches!(err, Rejection::HeaderDependence(_)),
            "got {err:?}"
        );
    }

    #[test]
    fn condition_reading_mutated_collection_rejected() {
        // `while (len(queue) > 0)` consuming the queue: the header
        // observes the mutation.
        let src = r#"
            fn main() {
                var queue = [5, 4, 3, 2, 1];
                var processed = 0;
                while (queue.len() > 0) {
                    queue.clear();
                    processed += 1;
                }
                print(processed);
            }
        "#;
        let m = model_of(src);
        let l = m.loops[0].clone();
        let r = detect_loop(&m, &l, &DetectOptions::default());
        assert!(
            matches!(r, Err(Rejection::HeaderDependence(_)) | Err(Rejection::SingleStage)),
            "got {r:?}"
        );
    }

    #[test]
    fn escape_style_iteration_is_not_a_pattern() {
        // x/y feed back into the condition through non-inductive updates.
        let src = r#"
            fn main() {
                var x = 1;
                var y = 1;
                var iter = 0;
                while (iter < 10 && x * x + y * y < 10000) {
                    var nx = x * 2 - y;
                    var ny = x + y;
                    x = nx;
                    y = ny;
                    iter = iter + 1;
                }
                print(x, y);
            }
        "#;
        let err = detect_first(src).unwrap_err();
        assert!(matches!(err, Rejection::HeaderDependence(_)), "got {err:?}");
    }
}
