//! The known-bug micro-corpus: every seeded bug must be found, every
//! failure must replay byte-stably from its schedule and trace hash, and
//! DPOR must match the DFS oracle's failure set with strictly fewer
//! schedules.

use patty_chess::corpus::{corpus, scenarios_for};
use patty_chess::{
    explore, explore_dpor, explore_joint, replay, replay_hash, ChessOptions, FailureKind,
};
use patty_chess::SearchMode;
use std::collections::BTreeSet;

fn options() -> ChessOptions {
    ChessOptions { max_schedules: 50_000, ..ChessOptions::default() }
}

fn dpor_options() -> ChessOptions {
    ChessOptions { mode: SearchMode::Dpor, ..options() }
}

#[test]
fn every_seeded_bug_is_found_and_nothing_else() {
    for entry in corpus() {
        let report = explore(entry.test, options());
        assert!(report.complete, "{}: search must be exhaustive", entry.name);
        assert!(
            entry.satisfied_by(&report),
            "{}: expected {:?}, got {:?}",
            entry.name,
            entry.expected,
            report.failures.iter().map(|f| &f.kind).collect::<Vec<_>>()
        );
    }
}

#[test]
fn every_failure_replays_byte_stably_from_its_witness() {
    for entry in corpus() {
        let report = explore(entry.test, options());
        for failure in &report.failures {
            let replayed = replay(entry.test, &failure.schedule, options().max_steps);
            let again = replayed
                .iter()
                .find(|f| f.kind == failure.kind)
                .unwrap_or_else(|| {
                    panic!("{}: replay lost {:?}", entry.name, failure.kind)
                });
            assert_eq!(
                again.trace_hash, failure.trace_hash,
                "{}: trace hash must be byte-stable",
                entry.name
            );
            assert_eq!(again.schedule, failure.schedule, "{}", entry.name);
        }
    }
}

#[test]
fn dpor_matches_dfs_failure_set_with_strictly_fewer_schedules() {
    let mut dfs_total = 0u64;
    let mut dpor_total = 0u64;
    for entry in corpus() {
        let dfs = explore(entry.test, options());
        let dpor = explore_dpor(entry.test, options());
        assert!(dfs.complete && dpor.complete, "{}: both must exhaust", entry.name);
        let dfs_kinds: BTreeSet<FailureKind> =
            dfs.failures.iter().map(|f| f.kind.clone()).collect();
        let dpor_kinds: BTreeSet<FailureKind> =
            dpor.failures.iter().map(|f| f.kind.clone()).collect();
        assert_eq!(
            dfs_kinds, dpor_kinds,
            "{}: DPOR must find the identical failure set",
            entry.name
        );
        assert!(
            dpor.schedules < dfs.schedules,
            "{}: DPOR must explore strictly fewer schedules ({} !< {})",
            entry.name,
            dpor.schedules,
            dfs.schedules
        );
        dfs_total += dfs.schedules;
        dpor_total += dpor.schedules;
    }
    assert!(dpor_total * 2 <= dfs_total, "reduction should be substantial");
}

#[test]
fn joint_explorer_passes_on_clean_pipeline_and_flags_seeded_bugs() {
    for entry in corpus() {
        let scenarios = scenarios_for(&entry);
        let joint = explore_joint(entry.test, &scenarios, &dpor_options());
        if entry.expected.is_empty() {
            // Clean entry: every failure across the whole fault matrix
            // must be explained by its injected fault.
            assert!(joint.passed(), "{}: {:?}", entry.name, joint.unexpected());
        } else {
            // Buggy entries fail their no-fault scenario.
            assert!(!joint.passed(), "{}: seeded bug must surface", entry.name);
        }
    }
}

#[test]
fn joint_failures_replay_from_hash_alone() {
    let entry = corpus().into_iter().find(|e| e.name == "clean_pipeline").unwrap();
    let scenarios = scenarios_for(&entry);
    let joint = explore_joint(entry.test, &scenarios, &dpor_options());
    let mut checked = 0;
    for sr in &joint.scenarios {
        for failure in &sr.report.failures {
            let outcome = replay_hash(entry.test, &scenarios, &dpor_options(), failure.trace_hash)
                .unwrap_or_else(|| panic!("hash {:#x} not found", failure.trace_hash));
            assert!(outcome.byte_stable, "replay must be byte-stable");
            assert_eq!(outcome.scenario, sr.scenario);
            checked += 1;
        }
    }
    assert!(checked > 0, "fault matrix must produce at least one failure");
}
