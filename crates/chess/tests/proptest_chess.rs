//! Property tests for the systematic concurrency tester: randomly
//! generated small programs must satisfy the detector's soundness
//! properties — mutex-disciplined programs never race, and unsynchronized
//! conflicting writers always do.

use patty_chess::{explore, ChessOptions, FailureKind, ThreadCtx};
use proptest::prelude::*;
use std::sync::Arc;

/// A tiny program shape: per thread, a sequence of (cell, is_write) ops.
#[derive(Clone, Debug)]
struct Shape {
    threads: Vec<Vec<(usize, bool)>>,
    cells: usize,
}

fn arb_shape(max_threads: usize, max_ops: usize, cells: usize) -> impl Strategy<Value = Shape> {
    proptest::collection::vec(
        proptest::collection::vec((0..cells, any::<bool>()), 1..=max_ops),
        1..=max_threads,
    )
    .prop_map(move |threads| Shape { threads, cells })
}

/// Does the shape contain a pair of conflicting accesses from different
/// threads (same cell, at least one write)?
fn has_conflict(shape: &Shape) -> bool {
    for (i, a) in shape.threads.iter().enumerate() {
        for b in shape.threads.iter().skip(i + 1) {
            for (ca, wa) in a {
                for (cb, wb) in b {
                    if ca == cb && (*wa || *wb) {
                        return true;
                    }
                }
            }
        }
    }
    false
}

fn run_shape(shape: &Shape, locked: bool) -> patty_chess::Report {
    let shape = Arc::new(shape.clone());
    explore(
        move |ctx: &ThreadCtx| {
            let cells: Vec<_> = (0..shape.cells)
                .map(|i| ctx.shared(&format!("c{i}"), 0i64))
                .collect();
            let mutex = ctx.mutex("m");
            let mut handles = Vec::new();
            for ops in shape.threads.clone() {
                let cells = cells.clone();
                let mutex = mutex.clone();
                handles.push(ctx.spawn(move |ctx| {
                    for &(cell, is_write) in &ops {
                        if locked {
                            mutex.lock(ctx);
                        }
                        if is_write {
                            let v = cells[cell].read(ctx);
                            cells[cell].write(ctx, v + 1);
                        } else {
                            let _ = cells[cell].read(ctx);
                        }
                        if locked {
                            mutex.unlock(ctx);
                        }
                    }
                }));
            }
            for h in handles {
                ctx.join(h);
            }
        },
        ChessOptions { max_schedules: 400, ..ChessOptions::default() },
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    #[test]
    fn mutex_disciplined_programs_never_race(shape in arb_shape(3, 3, 2)) {
        let report = run_shape(&shape, true);
        prop_assert!(
            !report.failures.iter().any(|f| matches!(f.kind, FailureKind::Race { .. })),
            "locked program raced: {:?}",
            report.failures
        );
        prop_assert!(
            !report.failures.iter().any(|f| f.kind == FailureKind::Deadlock),
            "single-mutex discipline cannot deadlock: {:?}",
            report.failures
        );
    }

    #[test]
    fn unsynchronized_conflicts_are_always_detected(shape in arb_shape(3, 3, 2)) {
        let report = run_shape(&shape, false);
        let raced = report
            .failures
            .iter()
            .any(|f| matches!(f.kind, FailureKind::Race { .. }));
        prop_assert_eq!(
            raced,
            has_conflict(&shape),
            "race verdict must match static conflict structure: {:?}",
            shape
        );
    }
}
