//! Dynamic partial-order reduction (DPOR) with sleep sets.
//!
//! DFS enumerates *interleavings*; DPOR enumerates *Mazurkiewicz traces*
//! — equivalence classes of interleavings that differ only in the order
//! of independent (commuting) operations. Following Flanagan–Godefroid,
//! each run is analyzed after the fact: for every executed operation we
//! find the most recent operation of another task that is *dependent*
//! (same cell with a write, same mutex, same channel, same fault label)
//! and not already ordered by happens-before (the scheduler's vector
//! clocks), and add a *backtrack point* at that earlier decision so the
//! reversed order is explored too. *Sleep sets* prune runs that would
//! only replay an already-explored commutation.
//!
//! One deliberate strengthening: two `lock` acquisitions of the same
//! mutex are **always** treated as racing, even though the loser's clock
//! is ordered after the winner's unlock — acquisition *order* is exactly
//! the thing lock clocks cannot capture, and reversing it is how the
//! ABBA deadlock is discovered.
//!
//! The preemption-bounded DFS ([`crate::explore`]) stays as the
//! differential oracle: on the known-bug corpus both must report the
//! identical failure set, with DPOR running strictly fewer schedules
//! (asserted in `tests/known_bugs.rs` and the chess bench guard).

use crate::explore::{ChessOptions, Report};
use crate::sched::{run_schedule, FaultScenario, OpKey, Policy, StepInfo, ThreadCtx};
use std::collections::BTreeSet;
use std::rc::Rc;

/// Are two operations dependent (order-sensitive)?
fn dependent(a: OpKey, b: OpKey) -> bool {
    use OpKey::*;
    match (a, b) {
        (Read(x), Write(y)) | (Write(x), Read(y)) | (Write(x), Write(y)) => x == y,
        (Lock(x), Lock(y)) | (Lock(x), Unlock(y)) | (Unlock(x), Lock(y)) => x == y,
        (Send(x), Send(y)) | (Recv(x), Recv(y)) | (Send(x), Recv(y)) | (Recv(x), Send(y)) => {
            x == y
        }
        (Fault(x), Fault(y)) => x == y,
        _ => false,
    }
}

/// One decision point along the committed path prefix.
struct Node {
    /// The runnable set at this point (replay-deterministic).
    enabled: Vec<usize>,
    /// The branch the next run takes.
    chosen: usize,
    /// Branches whose subtrees are fully explored.
    done: BTreeSet<usize>,
    /// Branches that must be explored (filled by race analysis).
    backtrack: BTreeSet<usize>,
    /// `(tid, op)` of each done sibling — seeds the sleep set when the
    /// node is revisited.
    sleep_ops: Vec<(usize, Option<OpKey>)>,
}

struct DporPolicy {
    nodes: Vec<Node>,
    /// Length of the committed prefix (`nodes.len()` at run start).
    path_len: usize,
    /// The run-side sleep set: `(tid, op-it-performed-when-explored)`.
    sleep: Vec<(usize, Option<OpKey>)>,
    /// Set when every enabled task was asleep: the rest of this run is
    /// known-redundant, so no further nodes are created.
    pruned: bool,
    /// Preferred decision sequence for fresh (uncommitted) steps — a
    /// seed schedule from [`ChessOptions::seed_schedules`]. Entries that
    /// are stale (not runnable) or asleep fall back to the default
    /// choice, so an out-of-date seed degrades to a normal run.
    seed: Vec<usize>,
}

impl Policy for DporPolicy {
    fn choose(&mut self, step: usize, runnable: &[usize], _last: Option<usize>) -> usize {
        if step < self.path_len {
            let node = &self.nodes[step];
            debug_assert_eq!(
                node.enabled, runnable,
                "nondeterministic test: runnable set diverged on replay"
            );
            for entry in &node.sleep_ops {
                self.sleep.push(*entry);
            }
            return node.chosen;
        }
        if self.pruned {
            return runnable[0];
        }
        let asleep = |t: usize| self.sleep.iter().any(|(s, _)| *s == t);
        let fresh = self
            .seed
            .get(step)
            .copied()
            .filter(|&t| runnable.contains(&t) && !asleep(t))
            .or_else(|| runnable.iter().copied().find(|&t| !asleep(t)));
        match fresh {
            None => {
                self.pruned = true;
                runnable[0]
            }
            Some(t) => {
                self.nodes.push(Node {
                    enabled: runnable.to_vec(),
                    chosen: t,
                    done: BTreeSet::new(),
                    backtrack: BTreeSet::new(),
                    sleep_ops: Vec::new(),
                });
                t
            }
        }
    }

    fn observe_step(&mut self, info: &StepInfo) {
        // A sleeping task wakes when the executed op is dependent with
        // the op it performed when its branch was explored (or when it is
        // itself scheduled — its position in the trace moved).
        self.sleep.retain(|(t, op)| {
            if *t == info.tid {
                return false;
            }
            match (op, &info.op) {
                (Some(a), Some(b)) => !dependent(*a, *b),
                _ => true,
            }
        });
    }
}

/// Post-run race analysis: add backtrack points that reverse every pair
/// of dependent, happens-before-unordered operations.
fn apply_backtracks(infos: &[StepInfo], nodes: &mut [Node]) {
    for i in 0..infos.len() {
        let Some(op_i) = infos[i].op else { continue };
        let tid_i = infos[i].tid;
        let jmax = i.min(nodes.len());
        let mut found = None;
        for j in (0..jmax).rev() {
            let Some(op_j) = infos[j].op else { continue };
            if infos[j].tid == tid_i || !dependent(op_j, op_i) {
                continue;
            }
            let lock_lock = matches!((op_j, op_i), (OpKey::Lock(a), OpKey::Lock(b)) if a == b);
            if lock_lock || !infos[j].clock.le(&infos[i].clock) {
                found = Some(j);
                break;
            }
        }
        if let Some(j) = found {
            let node = &mut nodes[j];
            if node.enabled.contains(&tid_i) {
                node.backtrack.insert(tid_i);
            } else {
                // The racing task was not yet enabled at j: conservatively
                // try every branch there.
                for &e in &node.enabled {
                    node.backtrack.insert(e);
                }
            }
        }
    }
}

/// Frontier accounting at DPOR exit. Open branches are backtrack points
/// not yet done and not currently in flight; the size estimate is the
/// product, along the committed path, of the branches DPOR has decided
/// are needed at each node (`backtrack ∪ done ∪ {chosen}`) — the
/// DPOR-*reduced* space, not the raw interleaving count.
fn close_dpor_frontier(report: &mut Report, nodes: &[Node]) {
    let open: u64 = nodes
        .iter()
        .map(|n| {
            n.backtrack
                .iter()
                .filter(|t| !n.done.contains(t) && **t != n.chosen)
                .count() as u64
        })
        .sum();
    report.close_frontier(
        open,
        nodes.iter().map(|n| {
            let mut needed = n.backtrack.clone();
            needed.extend(n.done.iter().copied());
            needed.insert(n.chosen);
            needed.len() as u64
        }),
    );
}

/// Explore `test` with dynamic partial-order reduction.
pub fn explore_dpor<F>(test: F, options: ChessOptions) -> Report
where
    F: Fn(&ThreadCtx) + 'static,
{
    explore_dpor_scenario(Rc::new(test), &FaultScenario::none(), &options)
}

/// Backtrack after a run: close out the deepest explored branch and
/// switch to the next pending backtrack point, popping exhausted nodes.
/// Returns `false` when the root pops — nothing is left to reverse, so
/// the (reduced) space is exhausted.
fn advance(nodes: &mut Vec<Node>, step_infos: &[StepInfo]) -> bool {
    loop {
        let depth = match nodes.len().checked_sub(1) {
            None => return false,
            Some(d) => d,
        };
        let op = step_infos.get(depth).and_then(|s| s.op);
        let top = &mut nodes[depth];
        top.done.insert(top.chosen);
        top.sleep_ops.push((top.chosen, op));
        match top.backtrack.iter().copied().find(|t| !top.done.contains(t)) {
            Some(q) => {
                top.chosen = q;
                return true;
            }
            None => {
                nodes.pop();
            }
        }
    }
}

/// DPOR exploration under a fixed fault scenario (used by the joint
/// schedule×fault explorer).
pub(crate) fn explore_dpor_scenario<F>(
    test: Rc<F>,
    scenario: &FaultScenario,
    options: &ChessOptions,
) -> Report
where
    F: Fn(&ThreadCtx) + 'static,
{
    let mut nodes: Vec<Node> = Vec::new();
    let mut report = Report::default();
    // Seed pass: run each known-bad schedule first, fully instrumented,
    // so a regressed bug fails on schedule 1 and the seed path's races
    // feed the backtrack frontier immediately. DPOR is complete from
    // *any* initial path, so adopting the last seed's path as the
    // committed prefix (earlier seeds contribute only their failures)
    // keeps the search sound and exhaustive.
    for seed in &options.seed_schedules {
        let mut policy = DporPolicy {
            path_len: 0,
            nodes: Vec::new(),
            sleep: Vec::new(),
            pruned: false,
            seed: seed.clone(),
        };
        let run = run_schedule(test.clone(), &mut policy, options.max_steps, scenario);
        nodes = policy.nodes;
        report.absorb_run(run.failures, run.steps);
        apply_backtracks(&run.step_infos, &mut nodes);
        if (options.stop_on_first_failure && report.failed())
            || report.schedules >= options.max_schedules
        {
            close_dpor_frontier(&mut report, &nodes);
            return report;
        }
        if !advance(&mut nodes, &run.step_infos) {
            report.complete = true;
            close_dpor_frontier(&mut report, &nodes);
            return report;
        }
    }
    loop {
        let mut policy = DporPolicy {
            path_len: nodes.len(),
            nodes: std::mem::take(&mut nodes),
            sleep: Vec::new(),
            pruned: false,
            seed: Vec::new(),
        };
        let run = run_schedule(test.clone(), &mut policy, options.max_steps, scenario);
        nodes = policy.nodes;
        report.absorb_run(run.failures, run.steps);
        // Race analysis before the exit checks, so a truncated search's
        // frontier still reflects the last run's backtrack points.
        apply_backtracks(&run.step_infos, &mut nodes);
        if options.stop_on_first_failure && report.failed() {
            close_dpor_frontier(&mut report, &nodes);
            return report;
        }
        if report.schedules >= options.max_schedules {
            close_dpor_frontier(&mut report, &nodes);
            return report;
        }
        if !advance(&mut nodes, &run.step_infos) {
            report.complete = true;
            close_dpor_frontier(&mut report, &nodes);
            return report;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{explore, SearchMode};
    use crate::sched::FailureKind;

    fn kinds(report: &Report) -> BTreeSet<FailureKind> {
        report.failures.iter().map(|f| f.kind.clone()).collect()
    }

    fn racy_counter(ctx: &ThreadCtx) {
        let counter = ctx.shared("counter", 0i64);
        let c1 = counter.clone();
        let c2 = counter.clone();
        let t1 = ctx.spawn(move |ctx| {
            let v = c1.read(ctx);
            c1.write(ctx, v + 1);
        });
        let t2 = ctx.spawn(move |ctx| {
            let v = c2.read(ctx);
            c2.write(ctx, v + 1);
        });
        ctx.join(t1);
        ctx.join(t2);
        ctx.check(counter.read(ctx) == 2, "both increments must land");
    }

    #[test]
    fn dpor_finds_lost_update_with_fewer_schedules() {
        let dfs = explore(racy_counter, ChessOptions::default());
        let dpor = explore_dpor(racy_counter, ChessOptions::default());
        assert!(dfs.complete && dpor.complete);
        assert_eq!(kinds(&dfs), kinds(&dpor));
        assert!(
            dpor.schedules < dfs.schedules,
            "dpor {} !< dfs {}",
            dpor.schedules,
            dfs.schedules
        );
    }

    #[test]
    fn dpor_finds_abba_deadlock() {
        let report = explore_dpor(
            |ctx| {
                let a = ctx.mutex("a");
                let b = ctx.mutex("b");
                let (a1, b1) = (a.clone(), b.clone());
                let (a2, b2) = (a.clone(), b.clone());
                let t1 = ctx.spawn(move |ctx| {
                    a1.lock(ctx);
                    b1.lock(ctx);
                    b1.unlock(ctx);
                    a1.unlock(ctx);
                });
                let t2 = ctx.spawn(move |ctx| {
                    b2.lock(ctx);
                    a2.lock(ctx);
                    a2.unlock(ctx);
                    b2.unlock(ctx);
                });
                ctx.join(t1);
                ctx.join(t2);
            },
            ChessOptions::default(),
        );
        assert!(report.failures.iter().any(|f| f.kind == FailureKind::Deadlock));
    }

    #[test]
    fn dpor_on_independent_threads_runs_one_schedule() {
        // Two tasks touching disjoint cells commute completely: DPOR
        // must collapse the whole interleaving space to a single trace.
        let report = explore_dpor(
            |ctx| {
                let x = ctx.shared("x", 0i64);
                let y = ctx.shared("y", 0i64);
                let (xc, yc) = (x.clone(), y.clone());
                let t1 = ctx.spawn(move |ctx| {
                    let v = xc.read(ctx);
                    xc.write(ctx, v + 1);
                });
                let t2 = ctx.spawn(move |ctx| {
                    let v = yc.read(ctx);
                    yc.write(ctx, v + 1);
                });
                ctx.join(t1);
                ctx.join(t2);
            },
            ChessOptions::default(),
        );
        assert!(report.complete);
        assert!(!report.failed(), "{:?}", report.failures);
        assert_eq!(report.schedules, 1, "independent ops must not be reversed");
    }

    #[test]
    fn dpor_coverage_tracks_the_reduced_space() {
        let full = explore_dpor(racy_counter, ChessOptions::default());
        assert!(full.complete);
        assert_eq!(full.coverage_permille(), 1000);
        assert_eq!(full.estimated_total, full.schedules);
        let truncated = explore_dpor(
            racy_counter,
            ChessOptions { max_schedules: 2, ..ChessOptions::default() },
        );
        assert!(!truncated.complete);
        let permille = truncated.coverage_permille();
        assert!(permille < 1000, "a truncated search never claims exhaustion");
        assert!(
            truncated.estimated_total <= full.estimated_total.max(full.schedules) * 4,
            "the DPOR estimate tracks the reduced space, not the raw \
             interleaving count ({} vs {} actual traces)",
            truncated.estimated_total,
            full.schedules
        );
    }

    #[test]
    fn seeded_search_hits_known_failure_on_first_schedule() {
        // Harvest the failure witnesses of one full search, then hand
        // them back as seeds: the known bug must now fall out of the
        // very first schedule instead of being rediscovered.
        let first = explore_dpor(racy_counter, ChessOptions::default());
        let seeds = first.failure_schedules();
        assert!(!seeds.is_empty());
        let reseeded = explore_dpor(
            racy_counter,
            ChessOptions {
                seed_schedules: seeds,
                stop_on_first_failure: true,
                ..ChessOptions::default()
            },
        );
        assert_eq!(reseeded.schedules, 1, "seed must replay the bug immediately");
        // The early stop reports the first seed's bug; whatever it found
        // must be one of the harvested failures.
        assert!(reseeded.failed());
        assert!(kinds(&reseeded).is_subset(&kinds(&first)), "{:?}", reseeded.failures);
    }

    #[test]
    fn seeded_search_stays_complete_and_matches_the_oracle() {
        // With the budget left open, seeding only reorders exploration:
        // the search still exhausts the reduced space and reports the
        // same failure set as the unseeded run and the DFS oracle.
        let first = explore_dpor(racy_counter, ChessOptions::default());
        let seeded = explore_dpor(
            racy_counter,
            ChessOptions {
                seed_schedules: first.failure_schedules(),
                ..ChessOptions::default()
            },
        );
        let dfs = explore(racy_counter, ChessOptions::default());
        assert!(seeded.complete);
        assert_eq!(kinds(&seeded), kinds(&first));
        assert_eq!(kinds(&seeded), kinds(&dfs));
    }

    #[test]
    fn stale_seeds_degrade_to_a_normal_search() {
        // Decision entries that name never-runnable tids (the test
        // changed since the seed was recorded) fall back to the default
        // choice step by step — no panic, no lost failures.
        let stale = vec![vec![7, 7, 7, 7, 7, 7, 7, 7], vec![99]];
        let report = explore_dpor(
            racy_counter,
            ChessOptions { seed_schedules: stale, ..ChessOptions::default() },
        );
        assert!(report.complete);
        assert_eq!(kinds(&report), kinds(&explore_dpor(racy_counter, ChessOptions::default())));
    }

    #[test]
    fn search_mode_dispatch_routes_to_dpor() {
        let via_mode = explore(
            racy_counter,
            ChessOptions { mode: SearchMode::Dpor, ..ChessOptions::default() },
        );
        let direct = explore_dpor(racy_counter, ChessOptions::default());
        assert_eq!(via_mode.schedules, direct.schedules);
        assert_eq!(kinds(&via_mode), kinds(&direct));
    }
}
