//! Vector clocks for happens-before data race detection.

/// A vector clock over thread ids.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VectorClock {
    ticks: Vec<u32>,
}

impl VectorClock {
    /// The zero clock.
    pub fn new() -> VectorClock {
        VectorClock::default()
    }

    fn grow(&mut self, len: usize) {
        if self.ticks.len() < len {
            self.ticks.resize(len, 0);
        }
    }

    /// This thread's component.
    pub fn get(&self, tid: usize) -> u32 {
        self.ticks.get(tid).copied().unwrap_or(0)
    }

    /// Advance `tid`'s component.
    pub fn tick(&mut self, tid: usize) {
        self.grow(tid + 1);
        self.ticks[tid] += 1;
    }

    /// Pointwise maximum (message receive / lock acquire / join).
    pub fn join(&mut self, other: &VectorClock) {
        self.grow(other.ticks.len());
        for (i, t) in other.ticks.iter().enumerate() {
            self.ticks[i] = self.ticks[i].max(*t);
        }
    }

    /// Does `self` happen before or equal `other` (pointwise ≤)?
    pub fn le(&self, other: &VectorClock) -> bool {
        self.ticks
            .iter()
            .enumerate()
            .all(|(i, t)| *t <= other.get(i))
    }

    /// Are the two clocks concurrent (neither ≤ the other)?
    pub fn concurrent(&self, other: &VectorClock) -> bool {
        !self.le(other) && !other.le(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_clocks_are_ordered_both_ways() {
        let a = VectorClock::new();
        let b = VectorClock::new();
        assert!(a.le(&b) && b.le(&a));
        assert!(!a.concurrent(&b));
    }

    #[test]
    fn tick_makes_strictly_later() {
        let a = VectorClock::new();
        let mut b = a.clone();
        b.tick(0);
        assert!(a.le(&b));
        assert!(!b.le(&a));
    }

    #[test]
    fn independent_ticks_are_concurrent() {
        let mut a = VectorClock::new();
        let mut b = VectorClock::new();
        a.tick(0);
        b.tick(1);
        assert!(a.concurrent(&b));
    }

    #[test]
    fn join_establishes_order() {
        let mut a = VectorClock::new();
        a.tick(0);
        let mut b = VectorClock::new();
        b.tick(1);
        b.join(&a);
        assert!(a.le(&b));
        assert_eq!(b.get(0), 1);
        assert_eq!(b.get(1), 1);
    }

    #[test]
    fn sparse_components_default_to_zero() {
        let mut a = VectorClock::new();
        a.tick(5);
        assert_eq!(a.get(2), 0);
        assert_eq!(a.get(5), 1);
    }
}
