//! The known-bug micro-corpus.
//!
//! Small programs with seeded concurrency bugs (plus one clean pipeline
//! carrying fault points) that the explorer **must** find. They serve
//! three masters: `tests/known_bugs.rs` asserts each bug is found and
//! replays byte-stably; the DPOR-vs-DFS differential test asserts
//! identical failure sets with strictly fewer DPOR schedules; and the CI
//! chess guard (`crates/bench/src/bin/chess_bench.rs`) drives the joint
//! schedule×fault explorer over the corpus with asserted budgets.

use crate::explore::Report;
use crate::sched::{FailureKind, FaultScenario, Inject, InjectKind, ThreadCtx};

/// Failure kind expectations, ignoring payloads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExpectedKind {
    Race,
    Deadlock,
    Panic,
    CheckFailed,
}

impl ExpectedKind {
    pub fn matches(&self, kind: &FailureKind) -> bool {
        matches!(
            (self, kind),
            (ExpectedKind::Race, FailureKind::Race { .. })
                | (ExpectedKind::Deadlock, FailureKind::Deadlock)
                | (ExpectedKind::Panic, FailureKind::Panic(_))
                | (ExpectedKind::CheckFailed, FailureKind::CheckFailed(_))
        )
    }
}

/// One corpus entry.
pub struct CorpusEntry {
    pub name: &'static str,
    pub test: fn(&ThreadCtx),
    /// Failure kinds exploration must report (fault-free).
    pub expected: &'static [ExpectedKind],
    /// Fault point labels the entry carries (drives scenario generation).
    pub fault_labels: &'static [&'static str],
}

impl CorpusEntry {
    /// Does `report` contain every expected kind and nothing else?
    pub fn satisfied_by(&self, report: &Report) -> bool {
        self.expected
            .iter()
            .all(|e| report.failures.iter().any(|f| e.matches(&f.kind)))
            && report
                .failures
                .iter()
                .all(|f| self.expected.iter().any(|e| e.matches(&f.kind)))
    }
}

/// Seeded data race: two unsynchronized read-increment-write threads
/// lose an update on some interleavings.
fn lost_update(ctx: &ThreadCtx) {
    let counter = ctx.shared("counter", 0i64);
    let c1 = counter.clone();
    let c2 = counter.clone();
    let t1 = ctx.spawn(move |ctx| {
        let v = c1.read(ctx);
        c1.write(ctx, v + 1);
    });
    let t2 = ctx.spawn(move |ctx| {
        let v = c2.read(ctx);
        c2.write(ctx, v + 1);
    });
    ctx.join(t1);
    ctx.join(t2);
    ctx.check(counter.read(ctx) == 2, "both increments must land");
}

/// Classic ABBA deadlock: opposite lock acquisition order.
fn abba_deadlock(ctx: &ThreadCtx) {
    let a = ctx.mutex("a");
    let b = ctx.mutex("b");
    let (a1, b1) = (a.clone(), b.clone());
    let (a2, b2) = (a.clone(), b.clone());
    let t1 = ctx.spawn(move |ctx| {
        a1.lock(ctx);
        b1.lock(ctx);
        b1.unlock(ctx);
        a1.unlock(ctx);
    });
    let t2 = ctx.spawn(move |ctx| {
        b2.lock(ctx);
        a2.lock(ctx);
        a2.unlock(ctx);
        b2.unlock(ctx);
    });
    ctx.join(t1);
    ctx.join(t2);
}

/// Channel-order violation: two producers race to a shared FIFO, but the
/// consumer assumes producer 1's message arrives first.
fn channel_order(ctx: &ThreadCtx) {
    let ch = ctx.channel::<i64>("merge");
    let (c1, c2) = (ch.clone(), ch.clone());
    let t1 = ctx.spawn(move |ctx| c1.send(ctx, 1));
    let t2 = ctx.spawn(move |ctx| c2.send(ctx, 2));
    let first = ch.recv(ctx);
    let second = ch.recv(ctx);
    ctx.check(first == 1 && second == 2, "producer 1 must arrive first");
    ctx.join(t1);
    ctx.join(t2);
}

/// Panic mid-drain: the producer dies after two of three items; the
/// consumer starves on the third receive — a panic *and* the deadlock it
/// causes downstream.
fn panic_mid_drain(ctx: &ThreadCtx) {
    let ch = ctx.channel::<i64>("drain");
    let chp = ch.clone();
    let producer = ctx.spawn(move |ctx| {
        chp.send(ctx, 10);
        chp.send(ctx, 20);
        panic!("producer died mid-drain");
    });
    let chc = ch.clone();
    let consumer = ctx.spawn(move |ctx| {
        for _ in 0..3 {
            let _ = chc.recv(ctx);
        }
    });
    ctx.join(producer);
    ctx.join(consumer);
}

/// A clean two-stage pipeline carrying fault points at both stages: the
/// fault-free exploration must be silent, and every fault-scenario
/// failure must be fault-induced. A `Drop` at stage A forwards a
/// tombstone so the stream stays drainable.
fn clean_pipeline(ctx: &ThreadCtx) {
    let ch = ctx.channel::<i64>("buf");
    let out = ctx.shared("out", 0i64);
    let chp = ch.clone();
    let producer = ctx.spawn(move |ctx| {
        for i in 0..2 {
            let v = match ctx.fault_point("stage_a") {
                Inject::Run => i * 2,
                Inject::Drop => -1,
            };
            chp.send(ctx, v);
        }
    });
    let (chc, oc) = (ch.clone(), out.clone());
    let consumer = ctx.spawn(move |ctx| {
        let mut sum = 0;
        for _ in 0..2 {
            let v = chc.recv(ctx);
            if ctx.fault_point("stage_b") == Inject::Run && v >= 0 {
                sum += v;
            }
        }
        oc.write(ctx, sum);
    });
    ctx.join(producer);
    ctx.join(consumer);
    ctx.check(out.read(ctx) >= 0, "sum stays non-negative");
}

/// The full micro-corpus.
pub fn corpus() -> Vec<CorpusEntry> {
    vec![
        CorpusEntry {
            name: "lost_update",
            test: lost_update,
            expected: &[ExpectedKind::Race, ExpectedKind::CheckFailed],
            fault_labels: &[],
        },
        CorpusEntry {
            name: "abba_deadlock",
            test: abba_deadlock,
            expected: &[ExpectedKind::Deadlock],
            fault_labels: &[],
        },
        CorpusEntry {
            name: "channel_order",
            test: channel_order,
            expected: &[ExpectedKind::CheckFailed],
            fault_labels: &[],
        },
        CorpusEntry {
            name: "panic_mid_drain",
            test: panic_mid_drain,
            expected: &[ExpectedKind::Panic, ExpectedKind::Deadlock],
            fault_labels: &[],
        },
        CorpusEntry {
            name: "clean_pipeline",
            test: clean_pipeline,
            expected: &[],
            fault_labels: &["stage_a", "stage_b"],
        },
    ]
}

/// The scenario matrix for one entry: no-fault plus, for every label,
/// every injection kind at the first two call positions.
pub fn scenarios_for(entry: &CorpusEntry) -> Vec<FaultScenario> {
    let mut scenarios = vec![FaultScenario::none()];
    for label in entry.fault_labels {
        for nth in 0..2 {
            for kind in [InjectKind::Panic, InjectKind::DelayTicks(50), InjectKind::DropItem] {
                scenarios.push(FaultScenario::one(*label, nth, kind));
            }
        }
    }
    scenarios
}
