//! The deterministic cooperative scheduler.
//!
//! Like CHESS \[24\], the tester owns every scheduling decision: controlled
//! threads run one at a time, stopping at each shared-memory or
//! synchronization operation (a *yield point*) and waiting for the
//! scheduler's grant. The sequence of grants *is* the schedule, so any
//! execution can be replayed exactly, and the explorer
//! ([`crate::explore`]) can enumerate all schedules of a test.
//!
//! A vector-clock happens-before detector runs piggy-backed on the same
//! yield points and reports data races even on schedules where the race
//! does not corrupt the result.

use crate::clock::VectorClock;
use parking_lot::{Condvar, Mutex};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// What went wrong on some schedule.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FailureKind {
    /// Two concurrent conflicting accesses to a shared cell.
    Race { cell: String },
    /// All live threads blocked.
    Deadlock,
    /// A controlled thread panicked.
    Panic(String),
    /// An explicit `check` failed.
    CheckFailed(String),
    /// The schedule exceeded the step limit (livelock guard).
    StepLimit,
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureKind::Race { cell } => write!(f, "data race on `{cell}`"),
            FailureKind::Deadlock => write!(f, "deadlock"),
            FailureKind::Panic(m) => write!(f, "panic: {m}"),
            FailureKind::CheckFailed(m) => write!(f, "check failed: {m}"),
            FailureKind::StepLimit => write!(f, "step limit exceeded"),
        }
    }
}

/// A failure together with the schedule (sequence of chosen thread ids)
/// that reproduces it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Failure {
    pub kind: FailureKind,
    pub schedule: Vec<usize>,
}

/// Why a thread cannot currently run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum BlockReason {
    Mutex(usize),
    Join(usize),
    /// Waiting to receive on an empty channel.
    Recv(usize),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum TState {
    /// Real thread exists but has not reached its first yield point.
    Starting,
    /// Waiting at a yield point for a grant.
    Parked,
    /// Holds the grant (or is running between yield points).
    Running,
    /// Waiting for a condition (mutex release, join target).
    Blocked(BlockReason),
    Finished,
}

struct CellMeta {
    name: String,
    last_write: Option<(usize, VectorClock)>,
    reads: Vec<(usize, VectorClock)>,
}

struct MutexMeta {
    owner: Option<usize>,
    clock: VectorClock,
}

struct ChannelMeta {
    /// Sender clocks of queued messages (FIFO), joined at receive to
    /// establish the happens-before edge of the handoff.
    queue: std::collections::VecDeque<VectorClock>,
}

pub(crate) struct State {
    pub(crate) threads: Vec<TState>,
    clocks: Vec<VectorClock>,
    finish_clocks: Vec<Option<VectorClock>>,
    /// The thread currently holding the grant.
    pub(crate) current: Option<usize>,
    cells: Vec<CellMeta>,
    mutexes: Vec<MutexMeta>,
    channels: Vec<ChannelMeta>,
    pub(crate) failures: Vec<Failure>,
    /// Chosen tids, in order — the schedule of this run.
    pub(crate) decisions: Vec<usize>,
    pub(crate) steps: u64,
    pub(crate) aborted: bool,
}

/// Panic payload used to unwind controlled threads when a schedule is
/// aborted; not a user-visible failure.
pub(crate) struct Abort;

pub(crate) struct Sched {
    pub(crate) state: Mutex<State>,
    pub(crate) cv: Condvar,
    pub(crate) max_steps: u64,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl Sched {
    pub(crate) fn new(max_steps: u64) -> Arc<Sched> {
        Arc::new(Sched {
            state: Mutex::new(State {
                threads: Vec::new(),
                clocks: Vec::new(),
                finish_clocks: Vec::new(),
                current: None,
                cells: Vec::new(),
                mutexes: Vec::new(),
                channels: Vec::new(),
                failures: Vec::new(),
                decisions: Vec::new(),
                steps: 0,
                aborted: false,
            }),
            cv: Condvar::new(),
            max_steps,
            handles: Mutex::new(Vec::new()),
        })
    }

    /// Record a failure with the current schedule and abort the run.
    fn fail(&self, state: &mut State, kind: FailureKind) {
        self.observe(state, kind);
        state.aborted = true;
        self.cv.notify_all();
    }

    /// Record a failure without aborting (data races are observations:
    /// the schedule remains meaningful and must keep running so deeper
    /// failures — lost updates, failed checks — are still reached).
    fn observe(&self, state: &mut State, kind: FailureKind) {
        if state.failures.iter().any(|f| f.kind == kind) {
            return;
        }
        let schedule = state.decisions.clone();
        state.failures.push(Failure { kind, schedule });
    }

    /// Yield point: park, wait for the grant, count the step.
    fn gate(&self, tid: usize) {
        let mut st = self.state.lock();
        if st.aborted {
            drop(st);
            std::panic::panic_any(Abort);
        }
        st.threads[tid] = TState::Parked;
        if st.current == Some(tid) {
            st.current = None;
        }
        self.cv.notify_all();
        while st.current != Some(tid) {
            if st.aborted {
                drop(st);
                std::panic::panic_any(Abort);
            }
            self.cv.wait(&mut st);
        }
        st.threads[tid] = TState::Running;
        st.steps += 1;
        if st.steps > self.max_steps {
            self.fail(&mut st, FailureKind::StepLimit);
            drop(st);
            std::panic::panic_any(Abort);
        }
    }

    fn register_thread(&self, state: &mut State, parent: Option<usize>) -> usize {
        let tid = state.threads.len();
        state.threads.push(TState::Starting);
        let mut clock = match parent {
            Some(p) => {
                let mut c = state.clocks[p].clone();
                c.tick(tid);
                c
            }
            None => {
                let mut c = VectorClock::new();
                c.tick(tid);
                c
            }
        };
        if let Some(p) = parent {
            state.clocks[p].tick(p);
            clock.join(&state.clocks[p]);
        }
        state.clocks.push(clock);
        state.finish_clocks.push(None);
        tid
    }

    fn finish_thread(&self, tid: usize) {
        let mut st = self.state.lock();
        st.finish_clocks[tid] = Some(st.clocks[tid].clone());
        st.threads[tid] = TState::Finished;
        if st.current == Some(tid) {
            st.current = None;
        }
        self.cv.notify_all();
    }
}

/// Handle to a controlled thread.
pub struct JoinHandle {
    tid: usize,
}

/// The per-thread capability for writing controlled concurrency tests:
/// spawn controlled threads, create shared cells and mutexes, assert.
#[derive(Clone)]
pub struct ThreadCtx {
    tid: usize,
    sched: Arc<Sched>,
}

impl ThreadCtx {
    pub(crate) fn root(sched: Arc<Sched>) -> ThreadCtx {
        {
            let mut st = sched.state.lock();
            let tid = sched.register_thread(&mut st, None);
            debug_assert_eq!(tid, 0);
        }
        ThreadCtx { tid: 0, sched }
    }

    /// This thread's id (0 = the test's main thread).
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// Spawn a controlled thread.
    pub fn spawn<F>(&self, f: F) -> JoinHandle
    where
        F: FnOnce(&ThreadCtx) + Send + 'static,
    {
        self.sched.gate(self.tid);
        let tid = {
            let mut st = self.sched.state.lock();
            self.sched.register_thread(&mut st, Some(self.tid))
        };
        let ctx = ThreadCtx { tid, sched: self.sched.clone() };
        let sched = self.sched.clone();
        let handle = std::thread::Builder::new()
            .name(format!("chess-{tid}"))
            .spawn(move || {
                let result = catch_unwind(AssertUnwindSafe(|| {
                    // First yield point: the new thread starts parked.
                    ctx.sched.gate(tid);
                    f(&ctx);
                }));
                if let Err(payload) = result {
                    if payload.downcast_ref::<Abort>().is_none() {
                        let msg = payload
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "<non-string panic>".into());
                        let mut st = sched.state.lock();
                        sched.fail(&mut st, FailureKind::Panic(msg));
                    }
                }
                sched.finish_thread(tid);
            })
            .expect("spawn controlled thread");
        self.sched.handles.lock().push(handle);
        JoinHandle { tid }
    }

    /// Join a controlled thread (blocks this thread in the model).
    pub fn join(&self, handle: JoinHandle) {
        self.sched.gate(self.tid);
        let mut st = self.sched.state.lock();
        while st.threads[handle.tid] != TState::Finished {
            // Block and give up the grant.
            st.threads[self.tid] = TState::Blocked(BlockReason::Join(handle.tid));
            if st.current == Some(self.tid) {
                st.current = None;
            }
            self.sched.cv.notify_all();
            while st.threads[handle.tid] != TState::Finished {
                if st.aborted {
                    drop(st);
                    std::panic::panic_any(Abort);
                }
                self.sched.cv.wait(&mut st);
            }
            // Re-park and wait for a grant before continuing.
            st.threads[self.tid] = TState::Parked;
            self.sched.cv.notify_all();
            while st.current != Some(self.tid) {
                if st.aborted {
                    drop(st);
                    std::panic::panic_any(Abort);
                }
                self.sched.cv.wait(&mut st);
            }
            st.threads[self.tid] = TState::Running;
        }
        // Happens-before edge from the finished thread.
        let fc = st.finish_clocks[handle.tid].clone().expect("finished");
        st.clocks[self.tid].join(&fc);
        st.clocks[self.tid].tick(self.tid);
    }

    /// Create a shared cell participating in scheduling and race
    /// detection.
    pub fn shared<T: Send>(&self, name: &str, init: T) -> Shared<T> {
        let id = {
            let mut st = self.sched.state.lock();
            st.cells.push(CellMeta {
                name: name.to_string(),
                last_write: None,
                reads: Vec::new(),
            });
            st.cells.len() - 1
        };
        Shared {
            id,
            data: Arc::new(Mutex::new(init)),
            sched: self.sched.clone(),
        }
    }

    /// Create a controlled mutex.
    pub fn mutex(&self, _name: &str) -> CMutex {
        let id = {
            let mut st = self.sched.state.lock();
            st.mutexes.push(MutexMeta { owner: None, clock: VectorClock::new() });
            st.mutexes.len() - 1
        };
        CMutex { id, sched: self.sched.clone() }
    }

    /// Create a controlled FIFO channel (models a pipeline buffer: the
    /// send→receive handoff is a happens-before edge).
    pub fn channel<T: Send>(&self, _name: &str) -> CChannel<T> {
        let id = {
            let mut st = self.sched.state.lock();
            st.channels.push(ChannelMeta { queue: std::collections::VecDeque::new() });
            st.channels.len() - 1
        };
        CChannel {
            id,
            data: Arc::new(Mutex::new(std::collections::VecDeque::new())),
            sched: self.sched.clone(),
        }
    }

    /// Assert a property of the current schedule; a failure is recorded
    /// with the reproducing schedule and the run is aborted.
    pub fn check(&self, cond: bool, msg: &str) {
        self.sched.gate(self.tid);
        if !cond {
            let mut st = self.sched.state.lock();
            self.sched
                .fail(&mut st, FailureKind::CheckFailed(msg.to_string()));
            drop(st);
            std::panic::panic_any(Abort);
        }
    }

    /// A scheduling point without a memory access (models local work).
    pub fn step(&self) {
        self.sched.gate(self.tid);
    }
}

/// A shared memory cell; every access is a yield point and feeds the race
/// detector.
pub struct Shared<T> {
    id: usize,
    data: Arc<Mutex<T>>,
    sched: Arc<Sched>,
}

impl<T> Clone for Shared<T> {
    fn clone(&self) -> Shared<T> {
        Shared { id: self.id, data: self.data.clone(), sched: self.sched.clone() }
    }
}

impl<T: Clone + Send> Shared<T> {
    /// Read the cell.
    pub fn read(&self, ctx: &ThreadCtx) -> T {
        self.sched.gate(ctx.tid);
        {
            let mut st = self.sched.state.lock();
            st.clocks[ctx.tid].tick(ctx.tid);
            let reader_clock = st.clocks[ctx.tid].clone();
            let cell = &mut st.cells[self.id];
            let race = cell
                .last_write
                .as_ref()
                .map(|(wt, wc)| *wt != ctx.tid && !wc.le(&reader_clock))
                .unwrap_or(false);
            cell.reads.push((ctx.tid, reader_clock));
            if race {
                let name = cell.name.clone();
                self.sched.observe(&mut st, FailureKind::Race { cell: name });
            }
        }
        self.data.lock().clone()
    }

    /// Write the cell.
    pub fn write(&self, ctx: &ThreadCtx, value: T) {
        self.sched.gate(ctx.tid);
        {
            let mut st = self.sched.state.lock();
            st.clocks[ctx.tid].tick(ctx.tid);
            let writer_clock = st.clocks[ctx.tid].clone();
            let cell = &mut st.cells[self.id];
            let mut race = cell
                .last_write
                .as_ref()
                .map(|(wt, wc)| *wt != ctx.tid && !wc.le(&writer_clock))
                .unwrap_or(false);
            race |= cell
                .reads
                .iter()
                .any(|(rt, rc)| *rt != ctx.tid && !rc.le(&writer_clock));
            cell.last_write = Some((ctx.tid, writer_clock));
            cell.reads.clear();
            if race {
                let name = cell.name.clone();
                self.sched.observe(&mut st, FailureKind::Race { cell: name });
            }
        }
        *self.data.lock() = value;
    }

    /// Atomic read-modify-write (a single yield point; models an atomic
    /// instruction — no race window inside).
    pub fn fetch_modify(&self, ctx: &ThreadCtx, f: impl FnOnce(T) -> T) -> T {
        self.sched.gate(ctx.tid);
        {
            let mut st = self.sched.state.lock();
            st.clocks[ctx.tid].tick(ctx.tid);
            let clock = st.clocks[ctx.tid].clone();
            let cell = &mut st.cells[self.id];
            let mut race = cell
                .last_write
                .as_ref()
                .map(|(wt, wc)| *wt != ctx.tid && !wc.le(&clock))
                .unwrap_or(false);
            race |= cell
                .reads
                .iter()
                .any(|(rt, rc)| *rt != ctx.tid && !rc.le(&clock));
            cell.last_write = Some((ctx.tid, clock));
            cell.reads.clear();
            if race {
                let name = cell.name.clone();
                self.sched.observe(&mut st, FailureKind::Race { cell: name });
            }
        }
        let mut data = self.data.lock();
        let old = data.clone();
        *data = f(old.clone());
        old
    }
}

/// A controlled mutex: lock/unlock are yield points and establish
/// happens-before edges (so properly locked accesses are race-free).
pub struct CMutex {
    id: usize,
    sched: Arc<Sched>,
}

impl Clone for CMutex {
    fn clone(&self) -> CMutex {
        CMutex { id: self.id, sched: self.sched.clone() }
    }
}

impl CMutex {
    /// Acquire the mutex (blocking in the model).
    pub fn lock(&self, ctx: &ThreadCtx) {
        self.sched.gate(ctx.tid);
        let mut st = self.sched.state.lock();
        loop {
            if st.mutexes[self.id].owner.is_none() {
                st.mutexes[self.id].owner = Some(ctx.tid);
                let mclock = st.mutexes[self.id].clock.clone();
                st.clocks[ctx.tid].join(&mclock);
                st.clocks[ctx.tid].tick(ctx.tid);
                return;
            }
            if st.mutexes[self.id].owner == Some(ctx.tid) {
                drop(st);
                panic!("recursive lock of a CMutex");
            }
            // Block: give up the grant until the owner releases.
            st.threads[ctx.tid] = TState::Blocked(BlockReason::Mutex(self.id));
            if st.current == Some(ctx.tid) {
                st.current = None;
            }
            self.sched.cv.notify_all();
            while st.mutexes[self.id].owner.is_some() {
                if st.aborted {
                    drop(st);
                    std::panic::panic_any(Abort);
                }
                self.sched.cv.wait(&mut st);
            }
            st.threads[ctx.tid] = TState::Parked;
            self.sched.cv.notify_all();
            while st.current != Some(ctx.tid) {
                if st.aborted {
                    drop(st);
                    std::panic::panic_any(Abort);
                }
                self.sched.cv.wait(&mut st);
            }
            st.threads[ctx.tid] = TState::Running;
        }
    }

    /// Release the mutex.
    pub fn unlock(&self, ctx: &ThreadCtx) {
        self.sched.gate(ctx.tid);
        let mut st = self.sched.state.lock();
        assert_eq!(
            st.mutexes[self.id].owner,
            Some(ctx.tid),
            "unlock by non-owner"
        );
        let thread_clock = st.clocks[ctx.tid].clone();
        st.mutexes[self.id].clock = thread_clock;
        st.clocks[ctx.tid].tick(ctx.tid);
        st.mutexes[self.id].owner = None;
        self.sched.cv.notify_all();
    }

    /// Run `f` under the lock.
    pub fn with<R>(&self, ctx: &ThreadCtx, f: impl FnOnce() -> R) -> R {
        self.lock(ctx);
        let r = f();
        self.unlock(ctx);
        r
    }
}

/// A controlled unbounded FIFO channel. `send`/`recv` are yield points;
/// a receive joins the sender's clock, so values handed through a channel
/// are race-free on the receiving side — exactly the guarantee pipeline
/// buffers give (rule PLDS).
pub struct CChannel<T> {
    id: usize,
    data: Arc<Mutex<std::collections::VecDeque<T>>>,
    sched: Arc<Sched>,
}

impl<T> Clone for CChannel<T> {
    fn clone(&self) -> CChannel<T> {
        CChannel { id: self.id, data: self.data.clone(), sched: self.sched.clone() }
    }
}

impl<T: Send> CChannel<T> {
    /// Send a value (never blocks; the model channel is unbounded).
    pub fn send(&self, ctx: &ThreadCtx, value: T) {
        self.sched.gate(ctx.tid);
        let mut st = self.sched.state.lock();
        st.clocks[ctx.tid].tick(ctx.tid);
        let clock = st.clocks[ctx.tid].clone();
        st.channels[self.id].queue.push_back(clock);
        self.data.lock().push_back(value);
        self.sched.cv.notify_all();
    }

    /// Receive a value, blocking (in the model) while the channel is
    /// empty.
    pub fn recv(&self, ctx: &ThreadCtx) -> T {
        self.sched.gate(ctx.tid);
        let mut st = self.sched.state.lock();
        loop {
            if !st.channels[self.id].queue.is_empty() {
                let sender_clock = st.channels[self.id]
                    .queue
                    .pop_front()
                    .expect("checked nonempty");
                st.clocks[ctx.tid].join(&sender_clock);
                st.clocks[ctx.tid].tick(ctx.tid);
                drop(st);
                return self
                    .data
                    .lock()
                    .pop_front()
                    .expect("data and clock queues stay in sync");
            }
            // Block until a sender delivers.
            st.threads[ctx.tid] = TState::Blocked(BlockReason::Recv(self.id));
            if st.current == Some(ctx.tid) {
                st.current = None;
            }
            self.sched.cv.notify_all();
            while st.channels[self.id].queue.is_empty() {
                if st.aborted {
                    drop(st);
                    std::panic::panic_any(Abort);
                }
                self.sched.cv.wait(&mut st);
            }
            st.threads[ctx.tid] = TState::Parked;
            self.sched.cv.notify_all();
            while st.current != Some(ctx.tid) {
                if st.aborted {
                    drop(st);
                    std::panic::panic_any(Abort);
                }
                self.sched.cv.wait(&mut st);
            }
            st.threads[ctx.tid] = TState::Running;
        }
    }
}

/// The scheduling policy queried by the driver at each decision point.
pub(crate) trait Policy {
    /// Pick one of `runnable` (sorted ascending). `last` is the thread
    /// scheduled at the previous step, if any.
    fn choose(&mut self, step: usize, runnable: &[usize], last: Option<usize>) -> usize;
}

/// Run one schedule of `test` under `policy`; returns the final state
/// (failures, decisions, steps).
pub(crate) fn run_schedule<F>(
    sched: Arc<Sched>,
    test: Arc<F>,
    policy: &mut dyn Policy,
) -> (Vec<Failure>, Vec<usize>, u64)
where
    F: Fn(&ThreadCtx) + Send + Sync + 'static,
{
    // Root thread (tid 0).
    let root_ctx = ThreadCtx::root(sched.clone());
    {
        let sched2 = sched.clone();
        let test = test.clone();
        let handle = std::thread::Builder::new()
            .name("chess-0".into())
            .spawn(move || {
                let ctx = root_ctx;
                let result = catch_unwind(AssertUnwindSafe(|| {
                    ctx.sched.gate(0);
                    test(&ctx);
                }));
                if let Err(payload) = result {
                    if payload.downcast_ref::<Abort>().is_none() {
                        let msg = payload
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "<non-string panic>".into());
                        let mut st = sched2.state.lock();
                        sched2.fail(&mut st, FailureKind::Panic(msg));
                    }
                }
                sched2.finish_thread(0);
            })
            .expect("spawn root thread");
        sched.handles.lock().push(handle);
    }

    // Driver loop.
    let mut last: Option<usize> = None;
    let mut step = 0usize;
    loop {
        let mut st = sched.state.lock();
        let runnable: Vec<usize> = loop {
            if st.aborted {
                break Vec::new();
            }
            let busy = st
                .threads
                .iter()
                .any(|t| matches!(t, TState::Running | TState::Starting))
                || st.current.is_some();
            if busy {
                sched.cv.wait(&mut st);
                continue;
            }
            // Blocked threads whose condition is already satisfied will
            // re-park on their own; wait for them so the runnable set is
            // deterministic across replays.
            let blocked: Vec<(usize, BlockReason)> = st
                .threads
                .iter()
                .enumerate()
                .filter_map(|(i, t)| match t {
                    TState::Blocked(r) => Some((i, *r)),
                    _ => None,
                })
                .collect();
            let progress_possible = blocked.iter().any(|(_, r)| match r {
                BlockReason::Mutex(mid) => st.mutexes[*mid].owner.is_none(),
                BlockReason::Join(t) => st.threads[*t] == TState::Finished,
                BlockReason::Recv(cid) => !st.channels[*cid].queue.is_empty(),
            });
            if progress_possible {
                sched.cv.wait(&mut st);
                continue;
            }
            let parked: Vec<usize> = st
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| matches!(t, TState::Parked))
                .map(|(i, _)| i)
                .collect();
            if !parked.is_empty() {
                break parked;
            }
            if blocked.is_empty() {
                break Vec::new(); // all finished
            }
            sched.fail(&mut st, FailureKind::Deadlock);
            break Vec::new();
        };
        if runnable.is_empty() {
            drop(st);
            break;
        }
        let tid = policy.choose(step, &runnable, last);
        debug_assert!(runnable.contains(&tid));
        st.decisions.push(tid);
        st.current = Some(tid);
        last = Some(tid);
        step += 1;
        sched.cv.notify_all();
        drop(st);
    }

    // Release any stragglers and join the real threads.
    {
        let mut st = sched.state.lock();
        st.aborted = true;
        sched.cv.notify_all();
    }
    let handles: Vec<_> = std::mem::take(&mut *sched.handles.lock());
    for h in handles {
        let _ = h.join();
    }
    let st = sched.state.lock();
    (st.failures.clone(), st.decisions.clone(), st.steps)
}
