//! The deterministic cooperative virtual-time scheduler.
//!
//! Like CHESS \[24\], the tester owns every scheduling decision — but
//! unlike the first generation of this module there are **no OS threads**
//! anywhere: controlled "threads" are scheduler-owned *tasks* driven one
//! decision at a time on the caller's thread. Every [`Shared`] access,
//! [`CMutex`] lock/unlock, [`CChannel`] send/recv, [`ThreadCtx::step`] and
//! [`ThreadCtx::fault_point`] is a yield point; blocking waits are
//! virtual-time events, so deadlock and livelock detection are exact and a
//! `max_steps` abort is byte-reproducible — no wall-clock timeout can
//! smear a verdict.
//!
//! ## Resumption by replay
//!
//! A task is an ordinary `Fn(&ThreadCtx)` closure. Granting a task one
//! step re-executes its closure from the start: operations already
//! performed return their memoized results from the task's effect log
//! (without re-executing effects or re-feeding the race detector), the
//! first un-logged operation executes live against the shared state, and
//! the next operation unwinds the closure with a private panic payload,
//! suspending the task. User code between yield points must therefore be
//! deterministic — the same contract CHESS imposes (the DFS explorer
//! asserts it by comparing runnable sets on replay).
//!
//! ## Trace hashes
//!
//! Each run maintains a running FNV-1a hash over the fault scenario and
//! the decision sequence. Failures carry the hash of their decision
//! prefix (`sched_trace_hash`), so any reported failure can be replayed
//! byte-stably from the hash alone (see [`crate::explore::replay`] and
//! [`crate::joint`]).
//!
//! A vector-clock happens-before detector runs piggy-backed on the same
//! yield points and reports data races even on schedules where the race
//! does not corrupt the result; the same clocks drive the DPOR explorer's
//! happens-before pruning ([`crate::dpor`]).

use crate::clock::VectorClock;
use std::any::Any;
use std::cell::{Cell, RefCell, RefMut};
use std::collections::VecDeque;
use std::panic::{catch_unwind, panic_any, AssertUnwindSafe};
use std::rc::Rc;

/// What went wrong on some schedule.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FailureKind {
    /// Two concurrent conflicting accesses to a shared cell.
    Race { cell: String },
    /// All live threads blocked.
    Deadlock,
    /// A controlled thread panicked.
    Panic(String),
    /// An explicit `check` failed.
    CheckFailed(String),
    /// The schedule exceeded the step limit (livelock guard).
    StepLimit,
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureKind::Race { cell } => write!(f, "data race on `{cell}`"),
            FailureKind::Deadlock => write!(f, "deadlock"),
            FailureKind::Panic(m) => write!(f, "panic: {m}"),
            FailureKind::CheckFailed(m) => write!(f, "check failed: {m}"),
            FailureKind::StepLimit => write!(f, "step limit exceeded"),
        }
    }
}

/// A failure together with the schedule (sequence of chosen thread ids)
/// that reproduces it, the stable trace hash of that decision prefix, and
/// whether an injected fault had already fired when it was observed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Failure {
    pub kind: FailureKind,
    pub schedule: Vec<usize>,
    /// FNV-1a hash of (fault scenario, decision prefix): the
    /// `sched_trace_hash` quoted in diagnostics and accepted by replay.
    pub trace_hash: u64,
    /// True when an injected fault fired before this failure was observed
    /// — joint exploration uses it to separate fault-induced outcomes
    /// (an injected panic, the deadlock it causes downstream) from real
    /// concurrency bugs.
    pub fault_induced: bool,
}

/// What an injected fault does when its call arrives (the chess-side
/// mirror of `patty_faultsim::FaultKind`, with virtual ticks instead of
/// wall-clock sleeps).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InjectKind {
    /// Panic inside the task at the fault point.
    Panic,
    /// Suspend the task for `n` virtual ticks (models a slow stage).
    DelayTicks(u64),
    /// Tell the fault point's caller to drop the item
    /// ([`Inject::Drop`]).
    DropItem,
}

impl std::fmt::Display for InjectKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InjectKind::Panic => write!(f, "panic"),
            InjectKind::DelayTicks(n) => write!(f, "delay({n})"),
            InjectKind::DropItem => write!(f, "drop"),
        }
    }
}

/// One armed fault: fires at the `nth` (0-based) call of the fault point
/// labelled `label`, once per run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPoint {
    pub label: String,
    pub nth: u64,
    pub kind: InjectKind,
}

/// A set of armed faults driven jointly with the schedule; the empty
/// scenario is the plain (fault-free) exploration.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultScenario {
    pub faults: Vec<FaultPoint>,
}

impl FaultScenario {
    /// The fault-free scenario.
    pub fn none() -> FaultScenario {
        FaultScenario::default()
    }

    /// A single-fault scenario.
    pub fn one(label: impl Into<String>, nth: u64, kind: InjectKind) -> FaultScenario {
        FaultScenario { faults: vec![FaultPoint { label: label.into(), nth, kind }] }
    }

    /// Stable textual encoding (seeds the trace hash, printed in reports).
    pub fn encode(&self) -> String {
        if self.faults.is_empty() {
            return "no-fault".to_string();
        }
        self.faults
            .iter()
            .map(|f| format!("{}@{}:{}", f.label, f.nth, f.kind))
            .collect::<Vec<_>>()
            .join(";")
    }
}

/// What a [`ThreadCtx::fault_point`] call tells its caller to do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Inject {
    /// No fault (or a delay that already elapsed): run the item normally.
    Run,
    /// A `DropItem` fault fired: the caller should lose this item.
    Drop,
}

// ---------------------------------------------------------------------------
// Trace hashing (FNV-1a 64).

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Hash seed for a fault scenario (the empty scenario included).
pub(crate) fn scenario_seed(scenario: &FaultScenario) -> u64 {
    fnv_bytes(FNV_OFFSET, scenario.encode().as_bytes())
}

/// Fold one scheduling decision into a running trace hash.
pub(crate) fn hash_step(h: u64, tid: usize) -> u64 {
    fnv_bytes(h, &(tid as u64).to_le_bytes())
}

// ---------------------------------------------------------------------------
// Internal scheduler state.

/// Why a task cannot currently run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum BlockReason {
    Mutex(usize),
    Join(usize),
    /// Waiting to receive on an empty channel.
    Recv(usize),
    /// Sleeping until the virtual clock reaches the target.
    Until(u64),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum TState {
    Runnable,
    Blocked(BlockReason),
    Finished,
}

/// Identity of a decision operation — drives the DPOR dependence relation
/// and labels blocked attempts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum OpKey {
    Read(usize),
    /// Also covers `fetch_modify` (write-like for dependence purposes).
    Write(usize),
    Lock(usize),
    Unlock(usize),
    Send(usize),
    Recv(usize),
    Join(usize),
    Spawn,
    Fault(usize),
    Step,
    Check,
    Sleep,
}

/// What one scheduling decision did — one entry per decision, used by the
/// DPOR explorer to compute backtrack points.
#[derive(Clone, Debug)]
pub(crate) struct StepInfo {
    pub tid: usize,
    /// The decision op performed (or attempted, if the task blocked on
    /// it); `None` when the task finished without reaching a fresh
    /// operation.
    pub op: Option<OpKey>,
    /// The task's vector clock after the step.
    pub clock: VectorClock,
}

/// Memoized result of one performed operation.
#[derive(Clone)]
enum Saved {
    Unit,
    /// A spawned task id or a created cell/mutex/channel id.
    Id(usize),
    /// A value read or received (downcast to the concrete type on replay).
    Value(Rc<dyn Any>),
    /// Fault point outcome: `true` = drop the item.
    Inject(bool),
}

struct Task {
    body: Rc<dyn Fn(&ThreadCtx)>,
    state: TState,
    /// Effect log; replayed from the start on every resumption.
    log: Vec<Saved>,
    /// Replay position within `log` for the current resumption.
    cursor: usize,
    clock: VectorClock,
    finish_clock: Option<VectorClock>,
}

struct CellMeta {
    name: String,
    last_write: Option<(usize, VectorClock)>,
    reads: Vec<(usize, VectorClock)>,
    /// `Rc<RefCell<T>>` behind `dyn Any`: replayed creations must hand
    /// back the *same* storage, not a fresh copy of the initial value.
    data: Rc<dyn Any>,
}

struct MutexMeta {
    owner: Option<usize>,
    clock: VectorClock,
}

struct ChannelMeta {
    /// Sender clocks of queued messages (FIFO), joined at receive to
    /// establish the happens-before edge of the handoff.
    queue: VecDeque<VectorClock>,
    /// `Rc<RefCell<VecDeque<T>>>` behind `dyn Any` (same reason as cells).
    data: Rc<dyn Any>,
}

pub(crate) struct State {
    tasks: Vec<Task>,
    /// Whether the current step's single live-operation grant is unspent.
    granted: bool,
    cells: Vec<CellMeta>,
    mutexes: Vec<MutexMeta>,
    channels: Vec<ChannelMeta>,
    failures: Vec<Failure>,
    /// Chosen tids, in order — the schedule of this run.
    decisions: Vec<usize>,
    steps: u64,
    aborted: bool,
    /// The virtual clock: +1 per decision, jumps to the earliest wake
    /// target when only sleepers remain.
    virtual_time: u64,
    /// Running FNV-1a trace hash (seeded by the fault scenario).
    cur_hash: u64,
    scenario: FaultScenario,
    fault_fired: Vec<bool>,
    /// Per-label fault point call counters (shared across tasks, like
    /// faultsim's per-stage counters span replicas).
    fault_calls: Vec<(String, u64)>,
    any_fault_fired: bool,
    step_infos: Vec<StepInfo>,
}

impl State {
    fn block_cleared(&self, r: &BlockReason) -> bool {
        match r {
            BlockReason::Mutex(m) => self.mutexes[*m].owner.is_none(),
            BlockReason::Join(t) => matches!(self.tasks[*t].state, TState::Finished),
            BlockReason::Recv(c) => !self.channels[*c].queue.is_empty(),
            BlockReason::Until(t) => self.virtual_time >= *t,
        }
    }
}

/// Panic payload used to suspend a task at a yield point; never escapes
/// the scheduler.
struct Suspend;

/// Panic payload used to unwind a task when the run is aborted; not a
/// user-visible failure.
struct Abort;

thread_local! {
    /// True while a controlled task body is executing: the panic hook
    /// stays silent (suspension unwinds are panics by mechanism, not by
    /// meaning, and user panics are caught and recorded as failures).
    static IN_TASK: Cell<bool> = const { Cell::new(false) };
}

fn install_quiet_hook() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !IN_TASK.with(|f| f.get()) {
                prev(info);
            }
        }));
    });
}

fn payload_str(payload: &(dyn Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "<non-string panic>".into())
}

pub(crate) struct Sched {
    state: RefCell<State>,
    max_steps: u64,
}

/// Everything one run produced.
pub(crate) struct RunResult {
    pub failures: Vec<Failure>,
    pub decisions: Vec<usize>,
    pub steps: u64,
    pub trace_hash: u64,
    pub step_infos: Vec<StepInfo>,
}

impl Sched {
    pub(crate) fn new(max_steps: u64, scenario: FaultScenario) -> Rc<Sched> {
        install_quiet_hook();
        let cur_hash = scenario_seed(&scenario);
        let fault_fired = vec![false; scenario.faults.len()];
        Rc::new(Sched {
            state: RefCell::new(State {
                tasks: Vec::new(),
                granted: false,
                cells: Vec::new(),
                mutexes: Vec::new(),
                channels: Vec::new(),
                failures: Vec::new(),
                decisions: Vec::new(),
                steps: 0,
                aborted: false,
                virtual_time: 0,
                cur_hash,
                scenario,
                fault_fired,
                fault_calls: Vec::new(),
                any_fault_fired: false,
                step_infos: Vec::new(),
            }),
            max_steps,
        })
    }

    /// Record a failure (deduplicated by kind) with the current schedule
    /// prefix and trace hash; does not abort by itself.
    fn observe_in(st: &mut State, kind: FailureKind) {
        if st.failures.iter().any(|f| f.kind == kind) {
            return;
        }
        let schedule = st.decisions.clone();
        st.failures.push(Failure {
            kind,
            schedule,
            trace_hash: st.cur_hash,
            fault_induced: st.any_fault_fired,
        });
    }

    fn register_task(st: &mut State, parent: Option<usize>, body: Rc<dyn Fn(&ThreadCtx)>) -> usize {
        let tid = st.tasks.len();
        let mut clock = match parent {
            Some(p) => {
                let mut c = st.tasks[p].clock.clone();
                c.tick(tid);
                c
            }
            None => {
                let mut c = VectorClock::new();
                c.tick(tid);
                c
            }
        };
        if let Some(p) = parent {
            st.tasks[p].clock.tick(p);
            let pc = st.tasks[p].clock.clone();
            clock.join(&pc);
        }
        st.tasks.push(Task {
            body,
            state: TState::Runnable,
            log: Vec::new(),
            cursor: 0,
            clock,
            finish_clock: None,
        });
        tid
    }

    /// Gate for a decision op: `Some(saved)` replays a memoized result,
    /// `None` means "perform live now" (this step's grant was consumed).
    /// Unwinds the task when the grant is already spent.
    fn decision(&self, tid: usize) -> Option<Saved> {
        let mut st = self.state.borrow_mut();
        if st.aborted {
            drop(st);
            panic_any(Abort);
        }
        let t = &mut st.tasks[tid];
        if t.cursor < t.log.len() {
            let s = t.log[t.cursor].clone();
            t.cursor += 1;
            return Some(s);
        }
        if st.granted {
            st.granted = false;
            return None;
        }
        drop(st);
        panic_any(Suspend);
    }

    /// Gate for a silent op (cell/mutex/channel creation): replays or
    /// signals "perform live" without consuming the grant — creation is
    /// not a scheduling decision.
    fn silent(&self, tid: usize) -> Option<Saved> {
        let mut st = self.state.borrow_mut();
        let t = &mut st.tasks[tid];
        if t.cursor < t.log.len() {
            let s = t.log[t.cursor].clone();
            t.cursor += 1;
            return Some(s);
        }
        None
    }

    /// Log a completed live decision op and its step record.
    fn commit(st: &mut State, tid: usize, saved: Saved, key: OpKey) {
        st.tasks[tid].log.push(saved);
        st.tasks[tid].cursor += 1;
        let clock = st.tasks[tid].clock.clone();
        st.step_infos.push(StepInfo { tid, op: Some(key), clock });
    }

    /// Log a completed live silent op (no step record).
    fn commit_silent(st: &mut State, tid: usize, saved: Saved) {
        st.tasks[tid].log.push(saved);
        st.tasks[tid].cursor += 1;
    }

    /// Abandon the live attempt: mark the task blocked, record the
    /// attempted op (blocked attempts are scheduling decisions too), and
    /// suspend. The op is *not* logged — the next grant retries it.
    fn block(&self, mut st: RefMut<'_, State>, tid: usize, reason: BlockReason, key: OpKey) -> ! {
        st.tasks[tid].state = TState::Blocked(reason);
        let clock = st.tasks[tid].clock.clone();
        st.step_infos.push(StepInfo { tid, op: Some(key), clock });
        drop(st);
        panic_any(Suspend);
    }

    /// The sorted set of tasks the driver may grant the next step to.
    fn runnable(&self) -> Vec<usize> {
        let st = self.state.borrow();
        st.tasks
            .iter()
            .enumerate()
            .filter_map(|(i, t)| match &t.state {
                TState::Runnable => Some(i),
                TState::Blocked(r) => st.block_cleared(r).then_some(i),
                TState::Finished => None,
            })
            .collect()
    }

    /// Jump the virtual clock to the earliest sleeper's wake target.
    /// Returns false when there is nothing to wake.
    fn advance_time(&self) -> bool {
        let mut st = self.state.borrow_mut();
        let target = st
            .tasks
            .iter()
            .filter_map(|t| match t.state {
                TState::Blocked(BlockReason::Until(x)) => Some(x),
                _ => None,
            })
            .min();
        match target {
            Some(x) if x > st.virtual_time => {
                st.virtual_time = x;
                true
            }
            _ => false,
        }
    }

    /// Count a decision into the schedule, hash and clocks. Returns false
    /// when the step limit was hit (the run aborts).
    fn record_decision(&self, tid: usize) -> bool {
        let mut st = self.state.borrow_mut();
        st.decisions.push(tid);
        st.cur_hash = hash_step(st.cur_hash, tid);
        st.steps += 1;
        st.virtual_time += 1;
        if st.steps > self.max_steps {
            Sched::observe_in(&mut st, FailureKind::StepLimit);
            st.aborted = true;
            return false;
        }
        true
    }

    /// Give `tid` one step: re-execute its closure, replaying the effect
    /// log and performing exactly one fresh decision op.
    fn step_task(self: &Rc<Sched>, tid: usize) {
        let body = {
            let mut st = self.state.borrow_mut();
            st.granted = true;
            let t = &mut st.tasks[tid];
            t.cursor = 0;
            t.state = TState::Runnable;
            t.body.clone()
        };
        let ctx = ThreadCtx { tid, sched: self.clone() };
        let prev = IN_TASK.with(|f| f.replace(true));
        let result = catch_unwind(AssertUnwindSafe(|| body(&ctx)));
        IN_TASK.with(|f| f.set(prev));
        let mut st = self.state.borrow_mut();
        st.granted = false;
        match result {
            Ok(()) => {
                let t = &mut st.tasks[tid];
                t.finish_clock = Some(t.clock.clone());
                t.state = TState::Finished;
            }
            Err(payload) => {
                if payload.downcast_ref::<Suspend>().is_some()
                    || payload.downcast_ref::<Abort>().is_some()
                {
                    // Suspended / blocked / aborted: state already set.
                } else {
                    // A real panic: record it and declare the task dead
                    // (joiners proceed, like joining a panicked thread;
                    // starved channel peers deadlock — a separate,
                    // correctly-attributed failure).
                    let msg = payload_str(payload.as_ref());
                    Sched::observe_in(&mut st, FailureKind::Panic(msg));
                    let t = &mut st.tasks[tid];
                    t.finish_clock = Some(t.clock.clone());
                    t.state = TState::Finished;
                }
            }
        }
        // Keep step records aligned 1:1 with decisions even when the task
        // finished (or died) without reaching a fresh operation.
        if st.step_infos.len() < st.decisions.len() {
            let clock = st.tasks[tid].clock.clone();
            st.step_infos.push(StepInfo { tid, op: None, clock });
        }
    }

    /// End-of-run bookkeeping: classify an empty runnable set.
    fn finish_run(&self) {
        let mut st = self.state.borrow_mut();
        if st.aborted {
            return;
        }
        let all_done = st.tasks.iter().all(|t| matches!(t.state, TState::Finished));
        if !all_done {
            Sched::observe_in(&mut st, FailureKind::Deadlock);
        }
    }

    fn take_result(&self) -> RunResult {
        let st = self.state.borrow();
        RunResult {
            failures: st.failures.clone(),
            decisions: st.decisions.clone(),
            steps: st.steps,
            trace_hash: st.cur_hash,
            step_infos: st.step_infos.clone(),
        }
    }

    fn race_check(st: &mut State, tid: usize, cell_id: usize, is_write: bool) {
        st.tasks[tid].clock.tick(tid);
        let clock = st.tasks[tid].clock.clone();
        let cell = &mut st.cells[cell_id];
        let mut race = cell
            .last_write
            .as_ref()
            .map(|(wt, wc)| *wt != tid && !wc.le(&clock))
            .unwrap_or(false);
        if is_write {
            race |= cell.reads.iter().any(|(rt, rc)| *rt != tid && !rc.le(&clock));
            cell.last_write = Some((tid, clock));
            cell.reads.clear();
        } else {
            cell.reads.push((tid, clock));
        }
        if race {
            let name = st.cells[cell_id].name.clone();
            Sched::observe_in(st, FailureKind::Race { cell: name });
        }
    }
}

/// Handle to a controlled task.
pub struct JoinHandle {
    tid: usize,
}

/// The per-task capability for writing controlled concurrency tests:
/// spawn controlled tasks, create shared cells / mutexes / channels,
/// sleep on the virtual clock, place fault points, assert.
#[derive(Clone)]
pub struct ThreadCtx {
    tid: usize,
    sched: Rc<Sched>,
}

impl ThreadCtx {
    /// This task's id (0 = the test's main task).
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// Spawn a controlled task (a scheduling decision). The closure is
    /// `Fn` because suspended tasks resume by replaying it from the
    /// start.
    pub fn spawn<F>(&self, f: F) -> JoinHandle
    where
        F: Fn(&ThreadCtx) + 'static,
    {
        match self.sched.decision(self.tid) {
            Some(Saved::Id(tid)) => JoinHandle { tid },
            Some(_) => unreachable!("replay log diverged at spawn"),
            None => {
                let mut st = self.sched.state.borrow_mut();
                let tid = Sched::register_task(&mut st, Some(self.tid), Rc::new(f));
                Sched::commit(&mut st, self.tid, Saved::Id(tid), OpKey::Spawn);
                JoinHandle { tid }
            }
        }
    }

    /// Join a controlled task (blocks this task in the model; joining a
    /// panicked task succeeds, as with real threads).
    pub fn join(&self, handle: JoinHandle) {
        match self.sched.decision(self.tid) {
            Some(Saved::Unit) => {}
            Some(_) => unreachable!("replay log diverged at join"),
            None => {
                let mut st = self.sched.state.borrow_mut();
                if !matches!(st.tasks[handle.tid].state, TState::Finished) {
                    self.sched.block(
                        st,
                        self.tid,
                        BlockReason::Join(handle.tid),
                        OpKey::Join(handle.tid),
                    );
                }
                let fc = st.tasks[handle.tid].finish_clock.clone().expect("finished");
                st.tasks[self.tid].clock.join(&fc);
                st.tasks[self.tid].clock.tick(self.tid);
                Sched::commit(&mut st, self.tid, Saved::Unit, OpKey::Join(handle.tid));
            }
        }
    }

    /// Create a shared cell participating in scheduling and race
    /// detection (not itself a scheduling decision).
    pub fn shared<T: Clone + 'static>(&self, name: &str, init: T) -> Shared<T> {
        match self.sched.silent(self.tid) {
            Some(Saved::Id(id)) => {
                let st = self.sched.state.borrow();
                let data = st.cells[id]
                    .data
                    .clone()
                    .downcast::<RefCell<T>>()
                    .unwrap_or_else(|_| unreachable!("cell type diverged on replay"));
                Shared { id, data, sched: self.sched.clone() }
            }
            Some(_) => unreachable!("replay log diverged at shared"),
            None => {
                let data = Rc::new(RefCell::new(init));
                let mut st = self.sched.state.borrow_mut();
                let id = st.cells.len();
                st.cells.push(CellMeta {
                    name: name.to_string(),
                    last_write: None,
                    reads: Vec::new(),
                    data: data.clone(),
                });
                Sched::commit_silent(&mut st, self.tid, Saved::Id(id));
                Shared { id, data, sched: self.sched.clone() }
            }
        }
    }

    /// Create a controlled mutex.
    pub fn mutex(&self, _name: &str) -> CMutex {
        match self.sched.silent(self.tid) {
            Some(Saved::Id(id)) => CMutex { id, sched: self.sched.clone() },
            Some(_) => unreachable!("replay log diverged at mutex"),
            None => {
                let mut st = self.sched.state.borrow_mut();
                let id = st.mutexes.len();
                st.mutexes.push(MutexMeta { owner: None, clock: VectorClock::new() });
                Sched::commit_silent(&mut st, self.tid, Saved::Id(id));
                CMutex { id, sched: self.sched.clone() }
            }
        }
    }

    /// Create a controlled FIFO channel (models a pipeline buffer: the
    /// send→receive handoff is a happens-before edge).
    pub fn channel<T: Clone + 'static>(&self, _name: &str) -> CChannel<T> {
        match self.sched.silent(self.tid) {
            Some(Saved::Id(id)) => {
                let st = self.sched.state.borrow();
                let data = st.channels[id]
                    .data
                    .clone()
                    .downcast::<RefCell<VecDeque<T>>>()
                    .unwrap_or_else(|_| unreachable!("channel type diverged on replay"));
                CChannel { id, data, sched: self.sched.clone() }
            }
            Some(_) => unreachable!("replay log diverged at channel"),
            None => {
                let data: Rc<RefCell<VecDeque<T>>> = Rc::new(RefCell::new(VecDeque::new()));
                let mut st = self.sched.state.borrow_mut();
                let id = st.channels.len();
                st.channels.push(ChannelMeta { queue: VecDeque::new(), data: data.clone() });
                Sched::commit_silent(&mut st, self.tid, Saved::Id(id));
                CChannel { id, data, sched: self.sched.clone() }
            }
        }
    }

    /// Assert a property of the current schedule; a failure is recorded
    /// with the reproducing schedule + trace hash and the run is aborted.
    pub fn check(&self, cond: bool, msg: &str) {
        match self.sched.decision(self.tid) {
            Some(Saved::Unit) => {}
            Some(_) => unreachable!("replay log diverged at check"),
            None => {
                let mut st = self.sched.state.borrow_mut();
                Sched::commit(&mut st, self.tid, Saved::Unit, OpKey::Check);
                if !cond {
                    Sched::observe_in(&mut st, FailureKind::CheckFailed(msg.to_string()));
                    st.aborted = true;
                    drop(st);
                    panic_any(Abort);
                }
            }
        }
    }

    /// A scheduling point without a memory access (models local work).
    pub fn step(&self) {
        match self.sched.decision(self.tid) {
            Some(Saved::Unit) => {}
            Some(_) => unreachable!("replay log diverged at step"),
            None => {
                let mut st = self.sched.state.borrow_mut();
                Sched::commit(&mut st, self.tid, Saved::Unit, OpKey::Step);
            }
        }
    }

    /// Sleep `ticks` on the virtual clock: a deterministic stand-in for
    /// wall-clock sleeps. When only sleepers remain, the driver jumps the
    /// clock to the earliest wake target — no real time passes.
    pub fn sleep(&self, ticks: u64) {
        match self.sched.decision(self.tid) {
            Some(Saved::Unit) => {}
            Some(_) => unreachable!("replay log diverged at sleep"),
            None => {
                let mut st = self.sched.state.borrow_mut();
                let target = st.virtual_time + ticks;
                Sched::commit(&mut st, self.tid, Saved::Unit, OpKey::Sleep);
                st.tasks[self.tid].state = TState::Blocked(BlockReason::Until(target));
                drop(st);
                panic_any(Suspend);
            }
        }
    }

    /// A named fault point: under a [`FaultScenario`] the matching armed
    /// fault fires here (panic / virtual delay / drop), making fault
    /// injection a scheduler decision point. Call counts are shared
    /// across tasks per label, mirroring faultsim's per-stage counters.
    pub fn fault_point(&self, label: &str) -> Inject {
        match self.sched.decision(self.tid) {
            Some(Saved::Inject(drop_item)) => {
                if drop_item {
                    Inject::Drop
                } else {
                    Inject::Run
                }
            }
            Some(_) => unreachable!("replay log diverged at fault_point"),
            None => {
                let mut st = self.sched.state.borrow_mut();
                let label_id = match st.fault_calls.iter().position(|(l, _)| l == label) {
                    Some(i) => i,
                    None => {
                        st.fault_calls.push((label.to_string(), 0));
                        st.fault_calls.len() - 1
                    }
                };
                let call = st.fault_calls[label_id].1;
                st.fault_calls[label_id].1 += 1;
                let armed = (0..st.scenario.faults.len()).find(|&i| {
                    !st.fault_fired[i]
                        && st.scenario.faults[i].label == label
                        && st.scenario.faults[i].nth == call
                });
                match armed {
                    None => {
                        Sched::commit(&mut st, self.tid, Saved::Inject(false), OpKey::Fault(label_id));
                        Inject::Run
                    }
                    Some(i) => {
                        st.fault_fired[i] = true;
                        st.any_fault_fired = true;
                        match st.scenario.faults[i].kind.clone() {
                            InjectKind::Panic => {
                                Sched::commit(
                                    &mut st,
                                    self.tid,
                                    Saved::Inject(false),
                                    OpKey::Fault(label_id),
                                );
                                drop(st);
                                panic!("chess-fault: injected panic at `{label}` call {call}");
                            }
                            InjectKind::DelayTicks(n) => {
                                let target = st.virtual_time + n;
                                Sched::commit(
                                    &mut st,
                                    self.tid,
                                    Saved::Inject(false),
                                    OpKey::Fault(label_id),
                                );
                                st.tasks[self.tid].state =
                                    TState::Blocked(BlockReason::Until(target));
                                drop(st);
                                panic_any(Suspend);
                            }
                            InjectKind::DropItem => {
                                Sched::commit(
                                    &mut st,
                                    self.tid,
                                    Saved::Inject(true),
                                    OpKey::Fault(label_id),
                                );
                                Inject::Drop
                            }
                        }
                    }
                }
            }
        }
    }
}

/// A shared memory cell; every access is a yield point and feeds the race
/// detector.
pub struct Shared<T> {
    id: usize,
    data: Rc<RefCell<T>>,
    sched: Rc<Sched>,
}

impl<T> Clone for Shared<T> {
    fn clone(&self) -> Shared<T> {
        Shared { id: self.id, data: self.data.clone(), sched: self.sched.clone() }
    }
}

impl<T: Clone + 'static> Shared<T> {
    /// Read the cell.
    pub fn read(&self, ctx: &ThreadCtx) -> T {
        match self.sched.decision(ctx.tid) {
            Some(Saved::Value(v)) => v
                .downcast_ref::<T>()
                .unwrap_or_else(|| unreachable!("replay log diverged at read"))
                .clone(),
            Some(_) => unreachable!("replay log diverged at read"),
            None => {
                let mut st = self.sched.state.borrow_mut();
                Sched::race_check(&mut st, ctx.tid, self.id, false);
                let value = self.data.borrow().clone();
                Sched::commit(
                    &mut st,
                    ctx.tid,
                    Saved::Value(Rc::new(value.clone())),
                    OpKey::Read(self.id),
                );
                value
            }
        }
    }

    /// Write the cell.
    pub fn write(&self, ctx: &ThreadCtx, value: T) {
        match self.sched.decision(ctx.tid) {
            Some(Saved::Unit) => {}
            Some(_) => unreachable!("replay log diverged at write"),
            None => {
                let mut st = self.sched.state.borrow_mut();
                Sched::race_check(&mut st, ctx.tid, self.id, true);
                *self.data.borrow_mut() = value;
                Sched::commit(&mut st, ctx.tid, Saved::Unit, OpKey::Write(self.id));
            }
        }
    }

    /// Atomic read-modify-write (a single yield point; models an atomic
    /// instruction — no race window inside). `f` must be deterministic:
    /// it is not re-applied on replay.
    pub fn fetch_modify(&self, ctx: &ThreadCtx, f: impl FnOnce(T) -> T) -> T {
        match self.sched.decision(ctx.tid) {
            Some(Saved::Value(v)) => v
                .downcast_ref::<T>()
                .unwrap_or_else(|| unreachable!("replay log diverged at fetch_modify"))
                .clone(),
            Some(_) => unreachable!("replay log diverged at fetch_modify"),
            None => {
                let mut st = self.sched.state.borrow_mut();
                Sched::race_check(&mut st, ctx.tid, self.id, true);
                let old = self.data.borrow().clone();
                *self.data.borrow_mut() = f(old.clone());
                Sched::commit(
                    &mut st,
                    ctx.tid,
                    Saved::Value(Rc::new(old.clone())),
                    OpKey::Write(self.id),
                );
                old
            }
        }
    }
}

/// A controlled mutex: lock/unlock are yield points and establish
/// happens-before edges (so properly locked accesses are race-free).
pub struct CMutex {
    id: usize,
    sched: Rc<Sched>,
}

impl Clone for CMutex {
    fn clone(&self) -> CMutex {
        CMutex { id: self.id, sched: self.sched.clone() }
    }
}

impl CMutex {
    /// Acquire the mutex (blocking in the model).
    pub fn lock(&self, ctx: &ThreadCtx) {
        match self.sched.decision(ctx.tid) {
            Some(Saved::Unit) => {}
            Some(_) => unreachable!("replay log diverged at lock"),
            None => {
                let mut st = self.sched.state.borrow_mut();
                if st.mutexes[self.id].owner == Some(ctx.tid) {
                    drop(st);
                    panic!("recursive lock of a CMutex");
                }
                if st.mutexes[self.id].owner.is_some() {
                    self.sched.block(
                        st,
                        ctx.tid,
                        BlockReason::Mutex(self.id),
                        OpKey::Lock(self.id),
                    );
                }
                st.mutexes[self.id].owner = Some(ctx.tid);
                let mclock = st.mutexes[self.id].clock.clone();
                st.tasks[ctx.tid].clock.join(&mclock);
                st.tasks[ctx.tid].clock.tick(ctx.tid);
                Sched::commit(&mut st, ctx.tid, Saved::Unit, OpKey::Lock(self.id));
            }
        }
    }

    /// Release the mutex.
    pub fn unlock(&self, ctx: &ThreadCtx) {
        match self.sched.decision(ctx.tid) {
            Some(Saved::Unit) => {}
            Some(_) => unreachable!("replay log diverged at unlock"),
            None => {
                let mut st = self.sched.state.borrow_mut();
                assert_eq!(st.mutexes[self.id].owner, Some(ctx.tid), "unlock by non-owner");
                st.tasks[ctx.tid].clock.tick(ctx.tid);
                let thread_clock = st.tasks[ctx.tid].clock.clone();
                st.mutexes[self.id].clock = thread_clock;
                st.mutexes[self.id].owner = None;
                Sched::commit(&mut st, ctx.tid, Saved::Unit, OpKey::Unlock(self.id));
            }
        }
    }

    /// Run `f` under the lock.
    pub fn with<R>(&self, ctx: &ThreadCtx, f: impl FnOnce() -> R) -> R {
        self.lock(ctx);
        let r = f();
        self.unlock(ctx);
        r
    }
}

/// A controlled unbounded FIFO channel. `send`/`recv` are yield points; a
/// receive joins the sender's clock, so values handed through a channel
/// are race-free on the receiving side — exactly the guarantee pipeline
/// buffers give (rule PLDS).
pub struct CChannel<T> {
    id: usize,
    data: Rc<RefCell<VecDeque<T>>>,
    sched: Rc<Sched>,
}

impl<T> Clone for CChannel<T> {
    fn clone(&self) -> CChannel<T> {
        CChannel { id: self.id, data: self.data.clone(), sched: self.sched.clone() }
    }
}

impl<T: Clone + 'static> CChannel<T> {
    /// Send a value (never blocks; the model channel is unbounded).
    pub fn send(&self, ctx: &ThreadCtx, value: T) {
        match self.sched.decision(ctx.tid) {
            Some(Saved::Unit) => {}
            Some(_) => unreachable!("replay log diverged at send"),
            None => {
                let mut st = self.sched.state.borrow_mut();
                st.tasks[ctx.tid].clock.tick(ctx.tid);
                let clock = st.tasks[ctx.tid].clock.clone();
                st.channels[self.id].queue.push_back(clock);
                self.data.borrow_mut().push_back(value);
                Sched::commit(&mut st, ctx.tid, Saved::Unit, OpKey::Send(self.id));
            }
        }
    }

    /// Receive a value, blocking (in the model) while the channel is
    /// empty.
    pub fn recv(&self, ctx: &ThreadCtx) -> T {
        match self.sched.decision(ctx.tid) {
            Some(Saved::Value(v)) => v
                .downcast_ref::<T>()
                .unwrap_or_else(|| unreachable!("replay log diverged at recv"))
                .clone(),
            Some(_) => unreachable!("replay log diverged at recv"),
            None => {
                let mut st = self.sched.state.borrow_mut();
                if st.channels[self.id].queue.is_empty() {
                    self.sched.block(
                        st,
                        ctx.tid,
                        BlockReason::Recv(self.id),
                        OpKey::Recv(self.id),
                    );
                }
                let sender_clock =
                    st.channels[self.id].queue.pop_front().expect("checked nonempty");
                st.tasks[ctx.tid].clock.join(&sender_clock);
                st.tasks[ctx.tid].clock.tick(ctx.tid);
                let value = self
                    .data
                    .borrow_mut()
                    .pop_front()
                    .expect("data and clock queues stay in sync");
                Sched::commit(
                    &mut st,
                    ctx.tid,
                    Saved::Value(Rc::new(value.clone())),
                    OpKey::Recv(self.id),
                );
                value
            }
        }
    }
}

/// The scheduling policy queried by the driver at each decision point.
pub(crate) trait Policy {
    /// Pick one of `runnable` (sorted ascending). `last` is the task
    /// scheduled at the previous step, if any.
    fn choose(&mut self, step: usize, runnable: &[usize], last: Option<usize>) -> usize;

    /// Observe what the chosen task actually did this step (DPOR's sleep
    /// sets need the executed op while the run is still in flight).
    fn observe_step(&mut self, _info: &StepInfo) {}
}

/// Run one schedule of `test` under `policy` and `scenario`; the whole
/// run executes cooperatively on the calling thread.
pub(crate) fn run_schedule<F>(
    test: Rc<F>,
    policy: &mut dyn Policy,
    max_steps: u64,
    scenario: &FaultScenario,
) -> RunResult
where
    F: Fn(&ThreadCtx) + 'static,
{
    let sched = Sched::new(max_steps, scenario.clone());
    {
        let mut st = sched.state.borrow_mut();
        let body: Rc<dyn Fn(&ThreadCtx)> = test;
        let tid = Sched::register_task(&mut st, None, body);
        debug_assert_eq!(tid, 0);
    }
    let mut last: Option<usize> = None;
    let mut step = 0usize;
    loop {
        if sched.state.borrow().aborted {
            break;
        }
        let runnable = sched.runnable();
        if runnable.is_empty() {
            if sched.advance_time() {
                continue;
            }
            sched.finish_run();
            break;
        }
        let tid = policy.choose(step, &runnable, last);
        debug_assert!(runnable.contains(&tid));
        if !sched.record_decision(tid) {
            break;
        }
        sched.step_task(tid);
        {
            let st = sched.state.borrow();
            if let Some(info) = st.step_infos.last() {
                policy.observe_step(info);
            }
        }
        last = Some(tid);
        step += 1;
    }
    sched.take_result()
}
