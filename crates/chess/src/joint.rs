//! Joint schedule × fault exploration.
//!
//! `crates/faultsim` injects one fault into one wall-clock run; the chess
//! scheduler makes fault injection a *scheduler decision point* instead:
//! every [`crate::ThreadCtx::fault_point`] is a yield point, and a
//! [`FaultScenario`] arms which call fires which fault. The joint
//! explorer runs the full schedule exploration (DFS or DPOR, per
//! [`ChessOptions::mode`]) once per scenario, so a corpus with `s`
//! scenarios and `k` schedules each validates `s × k` schedule×fault
//! combinations — thousands of combinations in CI-flat time, zero OS
//! threads.
//!
//! The verdict per scenario:
//! - a **race** is never acceptable — faults change timing and control
//!   flow, not the synchronization discipline;
//! - under the **no-fault** scenario every failure is a bug;
//! - under a fault scenario, a failure is *expected* iff a fault had
//!   already fired when it was observed (`Failure::fault_induced`): an
//!   injected panic, or the deadlock it causes downstream, is the fault
//!   model working — the same failure without the fault is a bug.
//!
//! Every failure carries its `sched_trace_hash`; [`replay_hash`]
//! re-executes exactly that interleaving (twice, comparing byte-for-byte)
//! from the hash alone.

use crate::explore::{explore_dfs_scenario, ChessOptions, Report, ReplayPolicy, SearchMode};
use crate::sched::{run_schedule, Failure, FailureKind, FaultScenario, ThreadCtx};
use std::rc::Rc;

/// The exploration of one fault scenario.
#[derive(Clone, Debug)]
pub struct ScenarioReport {
    pub scenario: FaultScenario,
    pub report: Report,
}

impl ScenarioReport {
    /// Failures that are bugs (not explained by the injected fault).
    pub fn unexpected(&self) -> Vec<&Failure> {
        self.report
            .failures
            .iter()
            .filter(|f| {
                matches!(f.kind, FailureKind::Race { .. })
                    || self.scenario.faults.is_empty()
                    || !f.fault_induced
            })
            .collect()
    }
}

/// The outcome of a joint schedule×fault exploration.
#[derive(Clone, Debug, Default)]
pub struct JointReport {
    pub scenarios: Vec<ScenarioReport>,
    /// Total schedule×fault combinations executed (Σ schedules).
    pub combos: u64,
    /// Total yield points executed across all combinations.
    pub total_steps: u64,
    /// Frontier-based estimate of the full combination space
    /// (Σ per-scenario `estimated_total`).
    pub estimated_combos: u64,
    /// Open frontier branches left across all scenarios.
    pub frontier_open: u64,
}

impl JointReport {
    /// Was every scenario's schedule space exhausted?
    pub fn all_complete(&self) -> bool {
        self.scenarios.iter().all(|s| s.report.complete)
    }

    /// Coverage of the estimated combination space, in permille: 1000‰
    /// iff every scenario completed, otherwise clamped to 999‰.
    pub fn coverage_permille(&self) -> u64 {
        if self.all_complete() {
            return 1000;
        }
        if self.combos == 0 {
            return 0;
        }
        let est = self.estimated_combos.max(self.combos.saturating_add(1));
        (1000u64.saturating_mul(self.combos) / est).min(999)
    }
    /// All unexpected failures, tagged with their scenario encoding.
    pub fn unexpected(&self) -> Vec<(String, Failure)> {
        self.scenarios
            .iter()
            .flat_map(|s| {
                s.unexpected()
                    .into_iter()
                    .map(|f| (s.scenario.encode(), f.clone()))
            })
            .collect()
    }

    /// Did every scenario behave as its fault model predicts?
    pub fn passed(&self) -> bool {
        self.scenarios.iter().all(|s| s.unexpected().is_empty())
    }
}

/// Run the configured exploration once under a fixed scenario.
pub(crate) fn explore_scenario<F>(
    test: Rc<F>,
    scenario: &FaultScenario,
    options: &ChessOptions,
) -> Report
where
    F: Fn(&ThreadCtx) + 'static,
{
    match options.mode {
        SearchMode::Dfs => explore_dfs_scenario(test, scenario, options),
        SearchMode::Dpor => crate::dpor::explore_dpor_scenario(test, scenario, options),
    }
}

/// Explore every scenario × every schedule of `test`.
pub fn explore_joint<F>(test: F, scenarios: &[FaultScenario], options: &ChessOptions) -> JointReport
where
    F: Fn(&ThreadCtx) + 'static,
{
    let test = Rc::new(test);
    let mut joint = JointReport::default();
    for scenario in scenarios {
        let report = explore_scenario(test.clone(), scenario, options);
        joint.combos += report.schedules;
        joint.total_steps += report.total_steps;
        joint.estimated_combos = joint.estimated_combos.saturating_add(report.estimated_total);
        joint.frontier_open += report.frontier_open;
        joint.scenarios.push(ScenarioReport { scenario: scenario.clone(), report });
    }
    joint
}

/// A replayed interleaving, located by its `sched_trace_hash`.
#[derive(Clone, Debug)]
pub struct ReplayOutcome {
    pub scenario: FaultScenario,
    pub schedule: Vec<usize>,
    pub failures: Vec<Failure>,
    /// True when two independent replays of the schedule produced
    /// identical decisions, failures, step counts and trace hashes.
    pub byte_stable: bool,
}

/// Re-run one schedule under one scenario via the replay policy.
fn replay_under<F>(
    test: Rc<F>,
    scenario: &FaultScenario,
    schedule: &[usize],
    max_steps: u64,
) -> (Vec<usize>, Vec<Failure>, u64, u64)
where
    F: Fn(&ThreadCtx) + 'static,
{
    let mut policy = ReplayPolicy { schedule: schedule.to_vec() };
    let run = run_schedule(test, &mut policy, max_steps, scenario);
    (run.decisions, run.failures, run.steps, run.trace_hash)
}

/// Find the failure whose `sched_trace_hash` is `hash` by re-running the
/// joint exploration (same options ⇒ same search ⇒ same hashes), then
/// replay its interleaving twice and compare the replays byte-for-byte.
/// Returns `None` when no explored failure carries the hash.
pub fn replay_hash<F>(
    test: F,
    scenarios: &[FaultScenario],
    options: &ChessOptions,
    hash: u64,
) -> Option<ReplayOutcome>
where
    F: Fn(&ThreadCtx) + 'static,
{
    let test = Rc::new(test);
    for scenario in scenarios {
        let report = explore_scenario(test.clone(), scenario, options);
        if let Some(f) = report.failures.iter().find(|f| f.trace_hash == hash) {
            let a = replay_under(test.clone(), scenario, &f.schedule, options.max_steps);
            let b = replay_under(test.clone(), scenario, &f.schedule, options.max_steps);
            let byte_stable = a == b
                && a.1.iter().any(|g| g.kind == f.kind && g.trace_hash == hash);
            return Some(ReplayOutcome {
                scenario: scenario.clone(),
                schedule: f.schedule.clone(),
                failures: a.1,
                byte_stable,
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::{Inject, InjectKind};

    /// A two-stage pipeline with fault points at both stages; clean under
    /// the no-fault scenario.
    fn faulty_pipeline(ctx: &ThreadCtx) {
        let ch = ctx.channel::<i64>("buf");
        let out = ctx.shared("out", 0i64);
        let chp = ch.clone();
        let producer = ctx.spawn(move |ctx| {
            for i in 0..2 {
                let v = match ctx.fault_point("stage_a") {
                    Inject::Run => i * 2,
                    Inject::Drop => -1,
                };
                chp.send(ctx, v);
            }
        });
        let (chc, oc) = (ch.clone(), out.clone());
        let consumer = ctx.spawn(move |ctx| {
            let mut sum = 0;
            for _ in 0..2 {
                let v = chc.recv(ctx);
                if ctx.fault_point("stage_b") == Inject::Run && v >= 0 {
                    sum += v;
                }
            }
            oc.write(ctx, sum);
        });
        ctx.join(producer);
        ctx.join(consumer);
        ctx.check(out.read(ctx) >= 0, "sum stays non-negative");
    }

    fn scenarios() -> Vec<FaultScenario> {
        vec![
            FaultScenario::none(),
            FaultScenario::one("stage_a", 0, InjectKind::Panic),
            FaultScenario::one("stage_a", 1, InjectKind::DropItem),
            FaultScenario::one("stage_b", 0, InjectKind::DelayTicks(40)),
        ]
    }

    #[test]
    fn fault_induced_failures_are_expected_and_clean_scenarios_pass() {
        let joint = explore_joint(faulty_pipeline, &scenarios(), &ChessOptions::default());
        assert_eq!(joint.scenarios.len(), 4);
        assert!(joint.combos > 4, "several schedules per scenario");
        // The injected panic produces Panic (+ downstream deadlock)
        // failures — all fault-induced, so the matrix passes.
        let panic_scn = &joint.scenarios[1];
        assert!(panic_scn.report.failed(), "injected panic must surface");
        assert!(
            panic_scn.report.failures.iter().all(|f| f.fault_induced),
            "{:?}",
            panic_scn.report.failures
        );
        assert!(joint.passed(), "unexpected: {:?}", joint.unexpected());
    }

    #[test]
    fn dropped_item_keeps_pipeline_drainable() {
        let joint = explore_joint(
            faulty_pipeline,
            &[FaultScenario::one("stage_a", 1, InjectKind::DropItem)],
            &ChessOptions::default(),
        );
        // The tombstone keeps the consumer fed: no deadlock, no failure.
        assert!(joint.passed(), "{:?}", joint.unexpected());
    }

    #[test]
    fn replay_hash_reproduces_fault_induced_failure_byte_stably() {
        let joint = explore_joint(faulty_pipeline, &scenarios(), &ChessOptions::default());
        let (_, failure) = joint
            .scenarios
            .iter()
            .flat_map(|s| s.report.failures.iter().map(move |f| (s, f)))
            .next()
            .map(|(s, f)| (s.scenario.clone(), f.clone()))
            .expect("panic scenario fails");
        let outcome = replay_hash(
            faulty_pipeline,
            &scenarios(),
            &ChessOptions::default(),
            failure.trace_hash,
        )
        .expect("hash must be found");
        assert!(outcome.byte_stable);
        assert_eq!(outcome.schedule, failure.schedule);
        assert!(outcome.failures.iter().any(|f| f.kind == failure.kind));
    }

    #[test]
    fn replay_hash_rejects_unknown_hash() {
        let outcome = replay_hash(
            faulty_pipeline,
            &scenarios(),
            &ChessOptions::default(),
            0xdead_beef_dead_beef,
        );
        assert!(outcome.is_none());
    }

    #[test]
    fn scenario_changes_trace_hash_for_same_schedule() {
        // Hashes are seeded by the scenario encoding: the same decision
        // sequence under a different fault scenario must not collide.
        let a = explore_joint(
            faulty_pipeline,
            &[FaultScenario::one("stage_a", 0, InjectKind::Panic)],
            &ChessOptions { max_schedules: 1, ..ChessOptions::default() },
        );
        let b = explore_joint(
            faulty_pipeline,
            &[FaultScenario::one("stage_b", 0, InjectKind::Panic)],
            &ChessOptions { max_schedules: 1, ..ChessOptions::default() },
        );
        let ha: Vec<u64> = a.scenarios[0].report.failures.iter().map(|f| f.trace_hash).collect();
        let hb: Vec<u64> = b.scenarios[0].report.failures.iter().map(|f| f.trace_hash).collect();
        for h in &ha {
            assert!(!hb.contains(h), "hash collision across scenarios");
        }
    }
}
