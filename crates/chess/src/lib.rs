//! # patty-chess
//!
//! A CHESS-style systematic concurrency tester (Musuvathi et al., OSDI'08
//! — reference \[24\] of the Patty paper) used by Patty's correctness
//! validation phase: generated parallel unit tests are driven through
//! *all* thread interleavings, with a vector-clock happens-before
//! detector reporting data races even on schedules where nothing visibly
//! breaks.
//!
//! Exploration runs on a **cooperative virtual-time scheduler** — no OS
//! threads, every `Shared`/`CMutex`/`CChannel` operation is a
//! deterministic yield point, blocking is a virtual-time event — so
//! every schedule gets a stable `sched_trace_hash` and replays
//! byte-stably. Two search modes share the scheduler: stateless DFS with
//! iterative preemption bounding (the differential oracle) and dynamic
//! partial-order reduction ([`explore_dpor`]): same failure set,
//! strictly fewer schedules. The joint explorer ([`explore_joint`])
//! drives schedules × injected faults ([`FaultScenario`]) in one search.
//!
//! Tests are ordinary closures over a [`ThreadCtx`] that spawn controlled
//! tasks and touch [`Shared`] cells / [`CMutex`] mutexes; every access
//! is a deterministic scheduling point.
//!
//! ```
//! use patty_chess::{explore, ChessOptions, FailureKind};
//!
//! let report = explore(
//!     |ctx| {
//!         let x = ctx.shared("x", 0i64);
//!         let xc = x.clone();
//!         let t = ctx.spawn(move |ctx| {
//!             let v = xc.read(ctx);
//!             xc.write(ctx, v + 1);
//!         });
//!         let v = x.read(ctx); // races with the spawned thread
//!         x.write(ctx, v + 1);
//!         ctx.join(t);
//!     },
//!     ChessOptions::default(),
//! );
//! assert!(report.failures.iter().any(|f| matches!(f.kind, FailureKind::Race { .. })));
//! ```

pub mod clock;
pub mod corpus;
pub mod dpor;
pub mod explore;
pub mod joint;
pub mod sched;

pub use clock::VectorClock;
pub use dpor::explore_dpor;
pub use explore::{
    explore, explore_iterative, explore_random, replay, ChessOptions, Report, SearchMode,
};
pub use joint::{explore_joint, replay_hash, JointReport, ReplayOutcome, ScenarioReport};
pub use sched::{
    CChannel, CMutex, Failure, FailureKind, FaultPoint, FaultScenario, Inject, InjectKind,
    JoinHandle, Shared, ThreadCtx,
};
