//! # patty-chess
//!
//! A CHESS-style systematic concurrency tester (Musuvathi et al., OSDI'08
//! — reference \[24\] of the Patty paper) used by Patty's correctness
//! validation phase: generated parallel unit tests are driven through
//! *all* thread interleavings, with iterative preemption bounding keeping
//! the search tractable, and a vector-clock happens-before detector
//! reporting data races even on schedules where nothing visibly breaks.
//!
//! Tests are ordinary closures over a [`ThreadCtx`] that spawn controlled
//! threads and touch [`Shared`] cells / [`CMutex`] mutexes; every access
//! is a deterministic scheduling point.
//!
//! ```
//! use patty_chess::{explore, ChessOptions, FailureKind};
//!
//! let report = explore(
//!     |ctx| {
//!         let x = ctx.shared("x", 0i64);
//!         let xc = x.clone();
//!         let t = ctx.spawn(move |ctx| {
//!             let v = xc.read(ctx);
//!             xc.write(ctx, v + 1);
//!         });
//!         let v = x.read(ctx); // races with the spawned thread
//!         x.write(ctx, v + 1);
//!         ctx.join(t);
//!     },
//!     ChessOptions::default(),
//! );
//! assert!(report.failures.iter().any(|f| matches!(f.kind, FailureKind::Race { .. })));
//! ```

pub mod clock;
pub mod explore;
pub mod sched;

pub use clock::VectorClock;
pub use explore::{explore, explore_iterative, explore_random, replay, ChessOptions, Report};
pub use sched::{CChannel, CMutex, Failure, FailureKind, JoinHandle, Shared, ThreadCtx};
