//! Systematic schedule exploration with iterative preemption bounding.
//!
//! The explorer enumerates schedules depth-first: each run replays a
//! prefix of scheduling decisions and takes the first unexplored branch at
//! the deepest decision point, exactly like CHESS's stateless search.
//! *Iterative context bounding* — CHESS's key idea — explores all
//! schedules with at most `c` preemptions before trying `c + 1`, because
//! most concurrency bugs need only a couple of preemptions.
//!
//! [`SearchMode::Dpor`] switches the same entry point to the dynamic
//! partial-order reduction explorer ([`crate::dpor`]), which visits every
//! Mazurkiewicz trace once instead of every interleaving — same failure
//! set, strictly fewer schedules. The DFS stays as the differential
//! oracle (and is the only mode that honors `preemption_bound`).

use crate::sched::{run_schedule, Failure, FaultScenario, Policy, ThreadCtx};
use std::rc::Rc;

/// Which search algorithm drives the exploration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SearchMode {
    /// Stateless depth-first enumeration (CHESS), optionally preemption-
    /// bounded. The differential oracle for DPOR.
    #[default]
    Dfs,
    /// Dynamic partial-order reduction with sleep sets: one schedule per
    /// equivalence class of commuting interleavings. Ignores
    /// `preemption_bound`.
    Dpor,
}

/// Exploration options.
#[derive(Clone, Debug)]
pub struct ChessOptions {
    /// Maximum schedules to run before giving up.
    pub max_schedules: u64,
    /// Per-schedule step limit (livelock guard).
    pub max_steps: u64,
    /// Maximum preemptions per schedule (`None` = unbounded; DFS only).
    pub preemption_bound: Option<usize>,
    /// Stop at the first failing schedule.
    pub stop_on_first_failure: bool,
    /// Search algorithm.
    pub mode: SearchMode,
    /// Known-bad decision sequences to explore *first* (DPOR only) —
    /// typically the failure witnesses of an earlier run, i.e. the
    /// schedules behind previously reported `sched_trace_hash`es (see
    /// [`Report::failure_schedules`]). A regression on a known bug then
    /// surfaces on the very first schedule instead of after the search
    /// rediscovers the interleaving. Stale entries (the test changed and
    /// a recorded choice is no longer runnable) degrade gracefully to
    /// the default choice at that step.
    pub seed_schedules: Vec<Vec<usize>>,
}

impl Default for ChessOptions {
    fn default() -> ChessOptions {
        ChessOptions {
            max_schedules: 10_000,
            max_steps: 20_000,
            preemption_bound: None,
            stop_on_first_failure: false,
            mode: SearchMode::Dfs,
            seed_schedules: Vec::new(),
        }
    }
}

/// Cap on the frontier-based size estimate: branching products along a
/// deep path overflow fast, and coverage permille needs no more
/// resolution than this.
const ESTIMATE_CAP: u64 = 1_000_000_000_000;

/// The outcome of an exploration.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Schedules executed.
    pub schedules: u64,
    /// Whether the search space was exhausted (within the bound).
    pub complete: bool,
    /// Unique failures (first witness schedule each).
    pub failures: Vec<Failure>,
    /// Total yield points executed across all schedules.
    pub total_steps: u64,
    /// Branches still open on the search frontier when the search
    /// stopped (0 for a complete search): sibling choices at decision
    /// points on the current path that were never taken.
    pub frontier_open: u64,
    /// Frontier-based estimate of the total (DPOR-reduced, for that
    /// mode) schedule space: explored schedules plus a branching-product
    /// estimate of what the open frontier still hides. Equals
    /// `schedules` for a complete search; capped at [`ESTIMATE_CAP`].
    pub estimated_total: u64,
}

impl Report {
    /// Did any schedule fail?
    pub fn failed(&self) -> bool {
        !self.failures.is_empty()
    }

    /// The witness schedule of every recorded failure, in report order —
    /// the decision sequences behind the report's `sched_trace_hash`es.
    /// Feed these into [`ChessOptions::seed_schedules`] on the next run
    /// so known-bad interleavings are re-checked before the search
    /// explores anything new.
    pub fn failure_schedules(&self) -> Vec<Vec<usize>> {
        self.failures.iter().map(|f| f.schedule.clone()).collect()
    }

    /// How much of the (estimated) schedule space the budget explored,
    /// in permille. A complete search is 1000‰ by definition; an
    /// incomplete one is clamped to 999‰ so a truncated search never
    /// claims exhaustion, however optimistic the estimate.
    pub fn coverage_permille(&self) -> u64 {
        if self.complete {
            return 1000;
        }
        if self.schedules == 0 {
            return 0;
        }
        let est = self.estimated_total.max(self.schedules.saturating_add(1));
        (1000u64.saturating_mul(self.schedules) / est).min(999)
    }

    /// Fold the frontier left standing at search exit into the report:
    /// `open` sibling branches never taken, and a Knuth-style product of
    /// the branching factors along the final path as the size estimate
    /// (each factor ≥ 1; saturating, capped). A complete search has no
    /// frontier and estimates exactly what it ran.
    pub(crate) fn close_frontier(&mut self, open: u64, branching: impl Iterator<Item = u64>) {
        // A search that stops with nothing left on the frontier has in
        // fact exhausted the (reduced) space — the next backtrack step
        // would pop every node and terminate — so credit it as complete
        // even when a budget check was what stopped it. Without this, a
        // budget that lands exactly on the last schedule would report
        // phantom partial coverage.
        if open == 0 {
            self.complete = true;
        }
        if self.complete {
            self.frontier_open = 0;
            self.estimated_total = self.schedules;
            return;
        }
        let mut est: u64 = 1;
        for b in branching {
            est = est.saturating_mul(b.max(1)).min(ESTIMATE_CAP);
        }
        self.frontier_open = open;
        self.estimated_total =
            est.max(self.schedules.saturating_add(open)).min(ESTIMATE_CAP);
    }

    /// Merge another report into this one (used by iterative bounding).
    pub(crate) fn merge(&mut self, other: Report) {
        self.schedules += other.schedules;
        self.total_steps += other.total_steps;
        self.frontier_open += other.frontier_open;
        self.estimated_total = self
            .estimated_total
            .saturating_add(other.estimated_total)
            .min(ESTIMATE_CAP);
        for f in other.failures {
            if !self.failures.iter().any(|g| g.kind == f.kind) {
                self.failures.push(f);
            }
        }
    }

    pub(crate) fn absorb_run(&mut self, failures: Vec<Failure>, steps: u64) {
        self.schedules += 1;
        self.total_steps += steps;
        for f in failures {
            if !self.failures.iter().any(|g| g.kind == f.kind) {
                self.failures.push(f);
            }
        }
    }
}

struct Frame {
    choices: Vec<usize>,
    next: usize,
}

struct DfsPolicy {
    frames: Vec<Frame>,
    bound: Option<usize>,
    preemptions: usize,
}

impl Policy for DfsPolicy {
    fn choose(&mut self, step: usize, runnable: &[usize], last: Option<usize>) -> usize {
        let allowed: Vec<usize> = match (self.bound, last) {
            (Some(c), Some(l)) if self.preemptions >= c && runnable.contains(&l) => vec![l],
            _ => runnable.to_vec(),
        };
        if step == self.frames.len() {
            self.frames.push(Frame { choices: allowed.clone(), next: 0 });
        }
        debug_assert_eq!(
            self.frames[step].choices, allowed,
            "nondeterministic test: runnable set diverged on replay"
        );
        let f = &self.frames[step];
        let tid = *f.choices.get(f.next).unwrap_or(&allowed[0]);
        if let Some(l) = last {
            if tid != l && runnable.contains(&l) {
                self.preemptions += 1;
            }
        }
        tid
    }
}

/// Explore all schedules of `test` (within the options' bounds), using
/// the configured [`SearchMode`].
pub fn explore<F>(test: F, options: ChessOptions) -> Report
where
    F: Fn(&ThreadCtx) + 'static,
{
    let test = Rc::new(test);
    match options.mode {
        SearchMode::Dfs => explore_dfs_scenario(test, &FaultScenario::none(), &options),
        SearchMode::Dpor => crate::dpor::explore_dpor_scenario(test, &FaultScenario::none(), &options),
    }
}

/// DFS exploration of `test` under a fixed fault scenario (used directly
/// by the joint schedule×fault explorer).
pub(crate) fn explore_dfs_scenario<F>(
    test: Rc<F>,
    scenario: &FaultScenario,
    options: &ChessOptions,
) -> Report
where
    F: Fn(&ThreadCtx) + 'static,
{
    let mut frames: Vec<Frame> = Vec::new();
    let mut report = Report::default();
    loop {
        let mut policy = DfsPolicy {
            frames: std::mem::take(&mut frames),
            bound: options.preemption_bound,
            preemptions: 0,
        };
        let run = run_schedule(test.clone(), &mut policy, options.max_steps, scenario);
        frames = policy.frames;
        report.absorb_run(run.failures, run.steps);
        if options.stop_on_first_failure && report.failed() {
            close_dfs_frontier(&mut report, &frames);
            return report;
        }
        if report.schedules >= options.max_schedules {
            close_dfs_frontier(&mut report, &frames);
            return report;
        }
        // Backtrack: drop exhausted suffix, advance the deepest open frame.
        loop {
            match frames.last_mut() {
                None => {
                    report.complete = true;
                    close_dfs_frontier(&mut report, &frames);
                    return report;
                }
                Some(f) if f.next + 1 < f.choices.len() => {
                    f.next += 1;
                    break;
                }
                Some(_) => {
                    frames.pop();
                }
            }
        }
    }
}

/// Frontier accounting at DFS exit: open branches are the sibling
/// choices to the right of each frame's cursor; the size estimate is
/// the branching product along the final path.
fn close_dfs_frontier(report: &mut Report, frames: &[Frame]) {
    let open: u64 = frames
        .iter()
        .map(|f| (f.choices.len().saturating_sub(f.next + 1)) as u64)
        .sum();
    report.close_frontier(open, frames.iter().map(|f| f.choices.len() as u64));
}

/// Iterative context bounding: explore with preemption bounds
/// `0, 1, …, max_bound`, stopping early when a failure is found (if
/// requested). The returned report accumulates all bounds explored.
pub fn explore_iterative<F>(test: F, max_bound: usize, options: ChessOptions) -> Report
where
    F: Fn(&ThreadCtx) + 'static,
{
    let test = Rc::new(test);
    let mut total = Report { complete: true, ..Report::default() };
    for c in 0..=max_bound {
        let opts = ChessOptions {
            preemption_bound: Some(c),
            max_schedules: options
                .max_schedules
                .saturating_sub(total.schedules)
                .max(1),
            mode: SearchMode::Dfs,
            ..options.clone()
        };
        let r = explore_dfs_scenario(test.clone(), &FaultScenario::none(), &opts);
        let complete = r.complete;
        total.merge(r);
        total.complete &= complete;
        if options.stop_on_first_failure && total.failed() {
            return total;
        }
        if total.schedules >= options.max_schedules {
            total.complete = false;
            return total;
        }
    }
    total
}

/// Random schedule sampling — the practical fallback when the state space
/// is too large to exhaust: `runs` independent random walks over the
/// scheduling decisions. Far cheaper than DFS per unit of coverage
/// diversity; finds shallow bugs quickly but gives no completeness
/// guarantee.
pub fn explore_random<F>(test: F, runs: u64, seed: u64, options: ChessOptions) -> Report
where
    F: Fn(&ThreadCtx) + 'static,
{
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    struct RandomPolicy {
        rng: StdRng,
    }
    impl Policy for RandomPolicy {
        fn choose(&mut self, _step: usize, runnable: &[usize], _last: Option<usize>) -> usize {
            runnable[self.rng.gen_range(0..runnable.len())]
        }
    }

    let test = Rc::new(test);
    let mut report = Report::default();
    for i in 0..runs {
        let mut policy = RandomPolicy { rng: StdRng::seed_from_u64(seed ^ i) };
        let run = run_schedule(test.clone(), &mut policy, options.max_steps, &FaultScenario::none());
        report.absorb_run(run.failures, run.steps);
        if options.stop_on_first_failure && report.failed() {
            break;
        }
    }
    report
}

pub(crate) struct ReplayPolicy {
    pub schedule: Vec<usize>,
}

impl Policy for ReplayPolicy {
    fn choose(&mut self, step: usize, runnable: &[usize], _last: Option<usize>) -> usize {
        self.schedule
            .get(step)
            .copied()
            .filter(|t| runnable.contains(t))
            .unwrap_or(runnable[0])
    }
}

/// Replay a specific schedule (e.g. a failure witness) and return the
/// failures it triggers.
pub fn replay<F>(test: F, schedule: &[usize], max_steps: u64) -> Vec<Failure>
where
    F: Fn(&ThreadCtx) + 'static,
{
    let mut policy = ReplayPolicy { schedule: schedule.to_vec() };
    run_schedule(Rc::new(test), &mut policy, max_steps, &FaultScenario::none()).failures
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sched::FailureKind;

    /// Unsynchronized increment by two threads.
    fn racy_counter(ctx: &ThreadCtx) {
        let counter = ctx.shared("counter", 0i64);
        let c1 = counter.clone();
        let c2 = counter.clone();
        let t1 = ctx.spawn(move |ctx| {
            let v = c1.read(ctx);
            c1.write(ctx, v + 1);
        });
        let t2 = ctx.spawn(move |ctx| {
            let v = c2.read(ctx);
            c2.write(ctx, v + 1);
        });
        ctx.join(t1);
        ctx.join(t2);
        ctx.check(counter.read(ctx) == 2, "both increments must land");
    }

    #[test]
    fn finds_race_and_lost_update() {
        let report = explore(racy_counter, ChessOptions::default());
        assert!(report.complete, "small test must be exhaustable");
        assert!(report
            .failures
            .iter()
            .any(|f| matches!(f.kind, FailureKind::Race { .. })));
        assert!(report
            .failures
            .iter()
            .any(|f| matches!(f.kind, FailureKind::CheckFailed(_))));
    }

    #[test]
    fn mutex_protected_counter_is_clean_except_for_no_failures() {
        let report = explore(
            |ctx| {
                let counter = ctx.shared("counter", 0i64);
                let m = ctx.mutex("m");
                let (c1, m1) = (counter.clone(), m.clone());
                let (c2, m2) = (counter.clone(), m.clone());
                let t1 = ctx.spawn(move |ctx| {
                    m1.lock(ctx);
                    let v = c1.read(ctx);
                    c1.write(ctx, v + 1);
                    m1.unlock(ctx);
                });
                let t2 = ctx.spawn(move |ctx| {
                    m2.lock(ctx);
                    let v = c2.read(ctx);
                    c2.write(ctx, v + 1);
                    m2.unlock(ctx);
                });
                ctx.join(t1);
                ctx.join(t2);
                ctx.check(counter.read(ctx) == 2, "serialized increments");
            },
            ChessOptions::default(),
        );
        assert!(report.complete);
        assert!(!report.failed(), "failures: {:?}", report.failures);
        assert!(report.schedules > 1, "must explore several interleavings");
    }

    #[test]
    fn atomic_fetch_modify_has_no_lost_update() {
        let report = explore(
            |ctx| {
                let counter = ctx.shared("counter", 0i64);
                let c1 = counter.clone();
                let c2 = counter.clone();
                let t1 = ctx.spawn(move |ctx| {
                    c1.fetch_modify(ctx, |v| v + 1);
                });
                let t2 = ctx.spawn(move |ctx| {
                    c2.fetch_modify(ctx, |v| v + 1);
                });
                ctx.join(t1);
                ctx.join(t2);
                ctx.check(counter.read(ctx) == 2, "atomic increments");
            },
            ChessOptions::default(),
        );
        assert!(report.complete);
        // fetch_modify is a single yield point, so there is no lost
        // update; but the two unsynchronized RMWs are still flagged as a
        // race by the happens-before detector (correct: no ordering).
        assert!(!report
            .failures
            .iter()
            .any(|f| matches!(f.kind, FailureKind::CheckFailed(_))));
    }

    #[test]
    fn detects_abba_deadlock() {
        let report = explore(
            |ctx| {
                let a = ctx.mutex("a");
                let b = ctx.mutex("b");
                let (a1, b1) = (a.clone(), b.clone());
                let (a2, b2) = (a.clone(), b.clone());
                let t1 = ctx.spawn(move |ctx| {
                    a1.lock(ctx);
                    b1.lock(ctx);
                    b1.unlock(ctx);
                    a1.unlock(ctx);
                });
                let t2 = ctx.spawn(move |ctx| {
                    b2.lock(ctx);
                    a2.lock(ctx);
                    a2.unlock(ctx);
                    b2.unlock(ctx);
                });
                ctx.join(t1);
                ctx.join(t2);
            },
            ChessOptions::default(),
        );
        assert!(report
            .failures
            .iter()
            .any(|f| f.kind == FailureKind::Deadlock));
    }

    #[test]
    fn preemption_bound_zero_misses_lost_update_but_bound_one_finds_it() {
        // The lost update needs a preemption between the read and the
        // write; non-preemptive schedules never expose it. This is the
        // iterative-context-bounding story of CHESS.
        let r0 = explore(
            racy_counter,
            ChessOptions { preemption_bound: Some(0), ..ChessOptions::default() },
        );
        assert!(
            !r0.failures
                .iter()
                .any(|f| matches!(f.kind, FailureKind::CheckFailed(_))),
            "bound 0 must not expose the lost update: {:?}",
            r0.failures
        );
        let r1 = explore(
            racy_counter,
            ChessOptions { preemption_bound: Some(1), ..ChessOptions::default() },
        );
        assert!(r1
            .failures
            .iter()
            .any(|f| matches!(f.kind, FailureKind::CheckFailed(_))));
        // And bound 0 is much cheaper.
        assert!(r0.schedules < r1.schedules);
    }

    #[test]
    fn complete_search_reports_full_coverage() {
        let report = explore(racy_counter, ChessOptions::default());
        assert!(report.complete);
        assert_eq!(report.coverage_permille(), 1000);
        assert_eq!(report.frontier_open, 0);
        assert_eq!(report.estimated_total, report.schedules);
    }

    #[test]
    fn truncated_search_reports_partial_coverage_and_open_frontier() {
        let full = explore(racy_counter, ChessOptions::default());
        assert!(full.complete);
        let truncated = explore(
            racy_counter,
            ChessOptions { max_schedules: 3, ..ChessOptions::default() },
        );
        assert!(!truncated.complete);
        assert!(truncated.frontier_open > 0, "a cut-off search leaves open branches");
        assert!(
            truncated.estimated_total > truncated.schedules,
            "estimate must exceed what was run"
        );
        let permille = truncated.coverage_permille();
        assert!(
            permille > 0 && permille < 1000,
            "3 of {} schedules cannot be 0‰ or 1000‰ (got {permille}‰)",
            full.schedules
        );
    }

    #[test]
    fn coverage_grows_with_budget() {
        let small = explore(
            racy_counter,
            ChessOptions { max_schedules: 2, ..ChessOptions::default() },
        );
        let large = explore(
            racy_counter,
            ChessOptions { max_schedules: 12, ..ChessOptions::default() },
        );
        assert!(
            small.coverage_permille() <= large.coverage_permille(),
            "{}‰ !<= {}‰",
            small.coverage_permille(),
            large.coverage_permille()
        );
    }

    #[test]
    fn iterative_bounding_accumulates() {
        let report = explore_iterative(racy_counter, 2, ChessOptions::default());
        assert!(report.failed());
        assert!(report.schedules > 0);
    }

    #[test]
    fn failure_schedules_replay() {
        let report = explore(racy_counter, ChessOptions::default());
        let lost = report
            .failures
            .iter()
            .find(|f| matches!(f.kind, FailureKind::CheckFailed(_)))
            .expect("lost update found");
        let replayed = replay(racy_counter, &lost.schedule, 20_000);
        assert!(
            replayed.iter().any(|f| f.kind == lost.kind),
            "replay must reproduce: {replayed:?}"
        );
    }

    #[test]
    fn replayed_failure_carries_identical_trace_hash() {
        let report = explore(racy_counter, ChessOptions::default());
        let lost = report
            .failures
            .iter()
            .find(|f| matches!(f.kind, FailureKind::CheckFailed(_)))
            .expect("lost update found");
        assert_ne!(lost.trace_hash, 0);
        let replayed = replay(racy_counter, &lost.schedule, 20_000);
        let again = replayed
            .iter()
            .find(|f| f.kind == lost.kind)
            .expect("replay reproduces");
        // Byte-stable: same decision prefix, same hash, same schedule.
        assert_eq!(again.trace_hash, lost.trace_hash);
        assert_eq!(again.schedule, lost.schedule);
    }

    #[test]
    fn panic_in_thread_is_reported() {
        let report = explore(
            |ctx| {
                let t = ctx.spawn(|_| panic!("boom"));
                ctx.join(t);
            },
            ChessOptions { max_schedules: 10, ..ChessOptions::default() },
        );
        assert!(report
            .failures
            .iter()
            .any(|f| matches!(&f.kind, FailureKind::Panic(m) if m.contains("boom"))));
    }

    #[test]
    fn single_thread_test_has_one_schedule() {
        let report = explore(
            |ctx| {
                let x = ctx.shared("x", 1i64);
                let v = x.read(ctx);
                x.write(ctx, v * 2);
                ctx.check(x.read(ctx) == 2, "sequential");
            },
            ChessOptions::default(),
        );
        assert!(report.complete);
        assert_eq!(report.schedules, 1);
        assert!(!report.failed());
    }

    #[test]
    fn schedule_count_grows_with_interleavings() {
        let small = explore(
            |ctx| {
                let t = ctx.spawn(|ctx| ctx.step());
                ctx.step();
                ctx.join(t);
            },
            ChessOptions::default(),
        );
        let big = explore(
            |ctx| {
                let t = ctx.spawn(|ctx| {
                    ctx.step();
                    ctx.step();
                    ctx.step();
                });
                ctx.step();
                ctx.step();
                ctx.step();
                ctx.join(t);
            },
            ChessOptions::default(),
        );
        assert!(big.schedules > small.schedules);
        assert!(big.complete && small.complete);
    }

    #[test]
    fn join_establishes_happens_before() {
        // Parent reads what the child wrote after joining: no race.
        let report = explore(
            |ctx| {
                let x = ctx.shared("x", 0i64);
                let xc = x.clone();
                let t = ctx.spawn(move |ctx| xc.write(ctx, 42));
                ctx.join(t);
                ctx.check(x.read(ctx) == 42, "joined value visible");
            },
            ChessOptions::default(),
        );
        assert!(report.complete);
        assert!(!report.failed(), "{:?}", report.failures);
    }

    #[test]
    fn step_limit_guards_against_livelock() {
        let report = explore(
            |ctx| {
                // A long but finite loop that exceeds the tiny step limit.
                for _ in 0..1000 {
                    ctx.step();
                }
            },
            ChessOptions { max_steps: 100, max_schedules: 2, ..ChessOptions::default() },
        );
        assert!(report
            .failures
            .iter()
            .any(|f| f.kind == FailureKind::StepLimit));
    }

    #[test]
    fn virtual_sleep_is_deterministic_and_instant() {
        // Sleeps ride on the virtual clock: a million-tick sleep costs
        // nothing and two sleepers wake in target order, every run.
        let report = explore(
            |ctx| {
                let x = ctx.shared("order", 0i64);
                let (x1, x2) = (x.clone(), x.clone());
                let slow = ctx.spawn(move |ctx| {
                    ctx.sleep(1_000_000);
                    x1.fetch_modify(ctx, |v| v * 10 + 2);
                });
                let fast = ctx.spawn(move |ctx| {
                    ctx.sleep(10);
                    x2.fetch_modify(ctx, |v| v * 10 + 1);
                });
                ctx.join(fast);
                ctx.join(slow);
                ctx.check(x.read(ctx) == 12, "fast sleeper wakes first");
            },
            ChessOptions::default(),
        );
        assert!(report.complete);
        assert!(
            !report.failures.iter().any(|f| matches!(f.kind, FailureKind::CheckFailed(_))),
            "{:?}",
            report.failures
        );
    }
}

#[cfg(test)]
mod channel_tests {
    use super::*;
    use crate::sched::FailureKind;

    #[test]
    fn channel_handoff_is_race_free() {
        // Producer writes a cell, sends a token; consumer receives then
        // reads the cell: the channel edge orders the accesses.
        let report = explore(
            |ctx| {
                let x = ctx.shared("x", 0i64);
                let ch = ctx.channel::<i64>("buf");
                let (xp, chp) = (x.clone(), ch.clone());
                let producer = ctx.spawn(move |ctx| {
                    xp.write(ctx, 7);
                    chp.send(ctx, 1);
                });
                let (xc, chc) = (x.clone(), ch.clone());
                let consumer = ctx.spawn(move |ctx| {
                    let _token = chc.recv(ctx);
                    let v = xc.read(ctx);
                    ctx.check(v == 7, "value visible after handoff");
                });
                ctx.join(producer);
                ctx.join(consumer);
            },
            ChessOptions::default(),
        );
        assert!(report.complete);
        assert!(!report.failed(), "{:?}", report.failures);
    }

    #[test]
    fn unordered_access_despite_channel_still_races() {
        // Consumer reads the cell BEFORE receiving: race must be found.
        let report = explore(
            |ctx| {
                let x = ctx.shared("x", 0i64);
                let ch = ctx.channel::<i64>("buf");
                let (xp, chp) = (x.clone(), ch.clone());
                let producer = ctx.spawn(move |ctx| {
                    xp.write(ctx, 7);
                    chp.send(ctx, 1);
                });
                let (xc, chc) = (x.clone(), ch.clone());
                let consumer = ctx.spawn(move |ctx| {
                    let _early = xc.read(ctx); // unsynchronized
                    let _token = chc.recv(ctx);
                });
                ctx.join(producer);
                ctx.join(consumer);
            },
            ChessOptions::default(),
        );
        assert!(report
            .failures
            .iter()
            .any(|f| matches!(f.kind, FailureKind::Race { .. })));
    }

    #[test]
    fn fifo_order_preserved() {
        let report = explore(
            |ctx| {
                let ch = ctx.channel::<i64>("buf");
                let chp = ch.clone();
                let producer = ctx.spawn(move |ctx| {
                    for i in 0..3 {
                        chp.send(ctx, i);
                    }
                });
                let a = ch.recv(ctx);
                let b = ch.recv(ctx);
                let c = ch.recv(ctx);
                ctx.check(a == 0 && b == 1 && c == 2, "FIFO");
                ctx.join(producer);
            },
            ChessOptions { max_schedules: 2_000, ..ChessOptions::default() },
        );
        assert!(!report.failed(), "{:?}", report.failures);
    }

    #[test]
    fn recv_on_never_filled_channel_deadlocks() {
        let report = explore(
            |ctx| {
                let ch = ctx.channel::<i64>("buf");
                let _ = ch.recv(ctx);
            },
            ChessOptions { max_schedules: 10, ..ChessOptions::default() },
        );
        assert!(report
            .failures
            .iter()
            .any(|f| f.kind == FailureKind::Deadlock));
    }
}

#[cfg(test)]
mod random_tests {
    use super::*;
    use crate::sched::FailureKind;

    fn racy(ctx: &ThreadCtx) {
        let x = ctx.shared("x", 0i64);
        let xc = x.clone();
        let t = ctx.spawn(move |ctx| {
            let v = xc.read(ctx);
            xc.write(ctx, v + 1);
        });
        let v = x.read(ctx);
        x.write(ctx, v + 1);
        ctx.join(t);
    }

    #[test]
    fn random_exploration_finds_shallow_races() {
        let report = explore_random(racy, 40, 7, ChessOptions::default());
        assert!(report
            .failures
            .iter()
            .any(|f| matches!(f.kind, FailureKind::Race { .. })));
        assert_eq!(report.schedules, 40);
    }

    #[test]
    fn random_exploration_is_deterministic_per_seed() {
        let a = explore_random(racy, 10, 3, ChessOptions::default());
        let b = explore_random(racy, 10, 3, ChessOptions::default());
        assert_eq!(a.failures.len(), b.failures.len());
        assert_eq!(a.total_steps, b.total_steps);
    }

    #[test]
    fn stop_on_first_failure_stops_early() {
        let report = explore_random(
            racy,
            1000,
            1,
            ChessOptions { stop_on_first_failure: true, ..ChessOptions::default() },
        );
        assert!(report.failed());
        assert!(report.schedules < 1000);
    }
}
