//! # patty-faultsim
//!
//! A deterministic fault-injection harness for the `patty-runtime`
//! fault-tolerance layer. The paper validates every transformation
//! against the sequential original (Section 3.4); this crate extends
//! that discipline to the *failure* paths: a [`FaultPlan`] plants
//! precisely-placed faults — "panic on the 3rd item entering `blur`" —
//! into stage functions, and tests assert that the runtime either
//! reports a structured [`RuntimeError`](patty_runtime::RuntimeError)
//! or (under [`FallbackSequential`](patty_runtime::FailurePolicy))
//! produces output byte-identical to the sequential oracle.
//!
//! Faults are **transient by construction**: each spec fires exactly
//! once, modelling the crash-once faults the sequential fallback is
//! designed to absorb. A plan is cheaply cloneable and thread-safe, so
//! one plan can instrument every stage of a pipeline and be inspected
//! after the run ([`FaultPlan::injections`], [`FaultPlan::calls`]).
//!
//! ```
//! use patty_faultsim::FaultPlan;
//! use patty_runtime::{FailurePolicy, Pipeline, RunOptions, Stage};
//!
//! let plan = FaultPlan::new().panic_at("double", 3);
//! let pipeline = Pipeline::new(vec![
//!     plan.wrap_stage(Stage::new("double", |x: u64| x * 2)),
//!     plan.wrap_stage(Stage::new("inc", |x: u64| x + 1)),
//! ]);
//! let opts = RunOptions::new().on_failure(FailurePolicy::FallbackSequential);
//! let out = pipeline.run_checked((0..16).collect(), &opts).unwrap();
//! assert_eq!(out, (0..16).map(|x| x * 2 + 1).collect::<Vec<u64>>());
//! assert_eq!(plan.injections(), 1);
//! ```

use parking_lot::Mutex;
use patty_runtime::Stage;
use rand::{Rng, SeedableRng, StdRng};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What an armed fault does when its call arrives.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic with a `faultsim:`-prefixed `String` payload; the runtime
    /// converts it to `RuntimeError::StagePanicked`.
    Panic,
    /// Sleep before running the stage body — exercises stage and run
    /// deadlines without failing the item.
    Delay(Duration),
    /// "Lose" the item. A `Fn(T) -> T` stage cannot literally drop its
    /// input, so the loss is modelled as a panic with a distinguishable
    /// `faultsim: dropped item` payload: from the runtime's point of
    /// view a lost item and a crashed worker need the same recovery.
    DropItem,
}

/// One planted fault: fires on the `nth` call (0-based) routed to
/// `stage`, exactly once per plan lifetime.
#[derive(Debug)]
struct FaultSpec {
    stage: String,
    nth: u64,
    kind: FaultKind,
    fired: AtomicBool,
}

#[derive(Default)]
struct PlanInner {
    specs: Mutex<Vec<Arc<FaultSpec>>>,
    /// Per-stage invocation counters (shared by replicas of a stage).
    calls: Mutex<HashMap<String, Arc<AtomicU64>>>,
    injections: AtomicU64,
}

impl PlanInner {
    fn counter(&self, stage: &str) -> Arc<AtomicU64> {
        self.calls
            .lock()
            .entry(stage.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)))
            .clone()
    }

    /// Fire at most one armed spec matching (stage, call_index).
    fn fire(&self, stage: &str, call_index: u64) {
        let armed = self.specs.lock().iter().find_map(|spec| {
            (spec.stage == stage
                && spec.nth == call_index
                && !spec.fired.swap(true, Ordering::SeqCst))
            .then(|| spec.clone())
        });
        let Some(spec) = armed else { return };
        self.injections.fetch_add(1, Ordering::SeqCst);
        match &spec.kind {
            FaultKind::Panic => {
                panic!("faultsim: injected panic at `{stage}` call {call_index}")
            }
            FaultKind::Delay(d) => std::thread::sleep(*d),
            FaultKind::DropItem => {
                panic!("faultsim: dropped item at `{stage}` call {call_index}")
            }
        }
    }
}

/// A deterministic set of planted faults. Clones share state: wrap
/// stages with one clone, assert on another.
#[derive(Clone, Default)]
pub struct FaultPlan {
    inner: Arc<PlanInner>,
}

impl FaultPlan {
    /// An empty plan (wrapping with it only counts calls).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    fn push(self, stage: impl Into<String>, nth: u64, kind: FaultKind) -> FaultPlan {
        self.inner.specs.lock().push(Arc::new(FaultSpec {
            stage: stage.into(),
            nth,
            kind,
            fired: AtomicBool::new(false),
        }));
        self
    }

    /// Panic on the `nth` (0-based) call routed to `stage`.
    pub fn panic_at(self, stage: impl Into<String>, nth: u64) -> FaultPlan {
        self.push(stage, nth, FaultKind::Panic)
    }

    /// Sleep `delay` before the `nth` call to `stage` runs.
    pub fn delay(self, stage: impl Into<String>, nth: u64, delay: Duration) -> FaultPlan {
        self.push(stage, nth, FaultKind::Delay(delay))
    }

    /// Lose the item on the `nth` call to `stage` (modelled as a panic
    /// with a `faultsim: dropped item` payload).
    pub fn drop_item(self, stage: impl Into<String>, nth: u64) -> FaultPlan {
        self.push(stage, nth, FaultKind::DropItem)
    }

    /// A reproducible randomized plan: `faults` panic faults spread over
    /// `stages`, each at a call index below `calls_per_stage`. The same
    /// `seed` always yields the same plan — the property a fault matrix
    /// in CI depends on.
    pub fn seeded(seed: u64, stages: &[&str], calls_per_stage: u64, faults: usize) -> FaultPlan {
        assert!(!stages.is_empty(), "seeded plan needs at least one stage");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut plan = FaultPlan::new();
        for _ in 0..faults {
            let stage = stages[rng.gen_range(0..stages.len())];
            let nth = rng.gen_range(0..calls_per_stage.max(1));
            plan = plan.panic_at(stage, nth);
        }
        plan
    }

    /// Wrap a pipeline stage so its body consults this plan on every
    /// call. The stage keeps its name, replication and ordering flags;
    /// replicas share one call counter, so `nth` counts items entering
    /// the *stage*, not a particular replica.
    pub fn wrap_stage<T: 'static>(&self, stage: Stage<T>) -> Stage<T> {
        let inner = self.inner.clone();
        let name = stage.name.clone();
        let counter = inner.counter(&name);
        let body = stage.func.clone();
        let mut wrapped = Stage::new(name.clone(), move |item: T| {
            let call = counter.fetch_add(1, Ordering::SeqCst);
            inner.fire(&name, call);
            body(item)
        });
        wrapped.replication = stage.replication;
        wrapped.preserve_order = stage.preserve_order;
        wrapped
    }

    /// Instrument an arbitrary task body (MasterWorker tasks, ParallelFor
    /// bodies) under a stage label of the caller's choosing.
    pub fn instrument<I, O, F>(&self, label: impl Into<String>, f: F) -> impl Fn(I) -> O
    where
        F: Fn(I) -> O,
    {
        let inner = self.inner.clone();
        let label = label.into();
        let counter = inner.counter(&label);
        move |input: I| {
            let call = counter.fetch_add(1, Ordering::SeqCst);
            inner.fire(&label, call);
            f(input)
        }
    }

    /// How many faults have fired so far.
    pub fn injections(&self) -> u64 {
        self.inner.injections.load(Ordering::SeqCst)
    }

    /// How many calls reached `stage` so far (0 for unknown stages).
    pub fn calls(&self, stage: &str) -> u64 {
        self.inner
            .calls
            .lock()
            .get(stage)
            .map_or(0, |c| c.load(Ordering::SeqCst))
    }

    /// Total planted faults (fired or not).
    pub fn planned(&self) -> usize {
        self.inner.specs.lock().len()
    }

    /// The `(stage, nth, kind)` of every planted fault, in planting
    /// order — lets a harness report *where* it injected.
    pub fn spec_summary(&self) -> Vec<(String, u64, FaultKind)> {
        self.inner
            .specs
            .lock()
            .iter()
            .map(|s| (s.stage.clone(), s.nth, s.kind.clone()))
            .collect()
    }

    /// Re-arm every fired fault (a fresh matrix scenario can reuse the
    /// plan's shape without rebuilding it).
    pub fn rearm(&self) {
        for spec in self.inner.specs.lock().iter() {
            spec.fired.store(false, Ordering::SeqCst);
        }
        self.inner.injections.store(0, Ordering::SeqCst);
        self.inner.calls.lock().values().for_each(|c| c.store(0, Ordering::SeqCst));
    }
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlan")
            .field("specs", &*self.inner.specs.lock())
            .field("injections", &self.injections())
            .finish()
    }
}

/// Bridge into the chess joint schedule×fault explorer: faultsim's
/// wall-clock fault matrix expressed as virtual-time
/// [`patty_chess::FaultScenario`]s.
pub mod chess {
    use patty_chess::{FaultScenario, InjectKind};
    use std::time::Duration;

    /// Translate a faultsim fault kind into its chess injection: delays
    /// become virtual ticks (1 tick ≈ 1 ms of modeled time, minimum 1),
    /// and a dropped item is a first-class `Drop` decision instead of a
    /// tagged panic — the cooperative scheduler can skip work without
    /// killing the task.
    pub fn inject_kind(kind: &crate::FaultKind) -> InjectKind {
        match kind {
            crate::FaultKind::Panic => InjectKind::Panic,
            crate::FaultKind::Delay(d) => {
                InjectKind::DelayTicks((duration_ticks(*d)).max(1))
            }
            crate::FaultKind::DropItem => InjectKind::DropItem,
        }
    }

    fn duration_ticks(d: Duration) -> u64 {
        d.as_millis().min(u128::from(u64::MAX)) as u64
    }

    /// The joint scenario matrix for a set of stage labels: the no-fault
    /// scenario plus every (stage × position × kind) single-fault
    /// combination. `positions` follows faultcheck's convention
    /// (first/middle/last call indices, deduplicated).
    pub fn scenario_matrix(labels: &[String], positions: &[u64]) -> Vec<FaultScenario> {
        let mut dedup: Vec<u64> = Vec::new();
        for &p in positions {
            if !dedup.contains(&p) {
                dedup.push(p);
            }
        }
        let mut scenarios = vec![FaultScenario::none()];
        for label in labels {
            for &nth in &dedup {
                for kind in
                    [InjectKind::Panic, InjectKind::DelayTicks(50), InjectKind::DropItem]
                {
                    scenarios.push(FaultScenario::one(label.clone(), nth, kind));
                }
            }
        }
        scenarios
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use patty_runtime::{
        FailurePolicy, MasterWorker, ParallelFor, Pipeline, RunOptions, RuntimeError,
    };

    const FRAMES: u64 = 24;

    /// An avistream-shaped video pipeline: three filters and a
    /// converter over synthetic frame checksums, mirroring
    /// `examples/avistream.mini`.
    fn video_stages() -> Vec<Stage<u64>> {
        vec![
            Stage::new("grayscale", |x: u64| x.wrapping_mul(2654435761).rotate_left(7)),
            Stage::new("blur", |x: u64| x ^ (x >> 13)).replicated(3),
            Stage::new("sharpen", |x: u64| x.wrapping_add(0x9E3779B97F4A7C15)),
            Stage::new("convert", |x: u64| x.rotate_right(11) | 1),
        ]
    }

    fn oracle() -> Vec<u64> {
        let sequential: Vec<Stage<u64>> = video_stages();
        (0..FRAMES)
            .map(|x| sequential.iter().fold(x, |v, s| (s.func)(v)))
            .collect()
    }

    fn wrapped_pipeline(plan: &FaultPlan) -> Pipeline<u64> {
        Pipeline::new(video_stages().into_iter().map(|s| plan.wrap_stage(s)).collect())
    }

    fn fallback_opts() -> RunOptions {
        RunOptions::new().on_failure(FailurePolicy::FallbackSequential)
    }

    /// The acceptance matrix: a panic injected into every stage of the
    /// avistream pipeline, at the first, a middle, and the last item —
    /// 12 scenarios — must each recover through sequential fallback to
    /// output identical to the sequential oracle.
    #[test]
    fn panic_matrix_every_stage_every_position_recovers_to_oracle() {
        let expected = oracle();
        let stages = ["grayscale", "blur", "sharpen", "convert"];
        let positions = [0, FRAMES / 2, FRAMES - 1];
        let mut scenarios = 0;
        for stage in stages {
            for nth in positions {
                let plan = FaultPlan::new().panic_at(stage, nth);
                let pipeline = wrapped_pipeline(&plan);
                let out = pipeline
                    .run_checked((0..FRAMES).collect(), &fallback_opts())
                    .unwrap_or_else(|e| panic!("{stage}@{nth}: unexpected error {e}"));
                assert_eq!(out, expected, "{stage}@{nth}: output diverged from oracle");
                assert_eq!(plan.injections(), 1, "{stage}@{nth}: fault did not fire once");
                scenarios += 1;
            }
        }
        assert!(scenarios >= 9, "matrix shrank below the acceptance floor");
    }

    /// Fail-fast: the same injection points yield structured errors
    /// naming the faulted stage when no fallback is requested.
    #[test]
    fn panic_matrix_fail_fast_reports_the_faulted_stage() {
        for stage in ["grayscale", "blur", "sharpen", "convert"] {
            let plan = FaultPlan::new().panic_at(stage, 5);
            let pipeline = wrapped_pipeline(&plan);
            let err = pipeline
                .run_checked((0..FRAMES).collect(), &RunOptions::default())
                .unwrap_err();
            match err {
                RuntimeError::StagePanicked { stage: reported, payload, .. } => {
                    assert_eq!(reported, stage);
                    assert!(payload.starts_with("faultsim: injected panic"));
                }
                other => panic!("expected StagePanicked, got {other:?}"),
            }
        }
    }

    #[test]
    fn drop_item_is_recovered_like_a_crash() {
        let plan = FaultPlan::new().drop_item("blur", 7);
        let pipeline = wrapped_pipeline(&plan);
        let out = pipeline.run_checked((0..FRAMES).collect(), &fallback_opts()).unwrap();
        assert_eq!(out, oracle());
        assert_eq!(plan.injections(), 1);
    }

    #[test]
    fn drop_item_payload_is_distinguishable() {
        let plan = FaultPlan::new().drop_item("sharpen", 2);
        let pipeline = wrapped_pipeline(&plan);
        let err =
            pipeline.run_checked((0..FRAMES).collect(), &RunOptions::default()).unwrap_err();
        match err {
            RuntimeError::StagePanicked { payload, .. } => {
                assert!(payload.starts_with("faultsim: dropped item"), "payload: {payload}");
            }
            other => panic!("expected StagePanicked, got {other:?}"),
        }
    }

    #[test]
    fn delay_trips_the_stage_deadline_but_not_correctness() {
        let plan = FaultPlan::new().delay("convert", 3, Duration::from_millis(30));
        let pipeline = wrapped_pipeline(&plan);
        // Without a deadline the delay is invisible.
        let out = pipeline.run_checked((0..FRAMES).collect(), &RunOptions::default()).unwrap();
        assert_eq!(out, oracle());
        // With a tight per-stage deadline the delayed call is flagged —
        // and because the fault is one-shot, fallback still completes.
        plan.rearm();
        let pipeline = wrapped_pipeline(&plan);
        let opts = fallback_opts().with_stage_deadline(Duration::from_millis(10));
        let out = pipeline.run_checked((0..FRAMES).collect(), &opts).unwrap();
        assert_eq!(out, oracle());
    }

    #[test]
    fn faults_fire_exactly_once_even_across_reruns() {
        let plan = FaultPlan::new().panic_at("grayscale", 0);
        let pipeline = wrapped_pipeline(&plan);
        let first = pipeline.run_checked((0..FRAMES).collect(), &fallback_opts()).unwrap();
        assert_eq!(plan.injections(), 1);
        // Second run through the same wrapped pipeline: fault spent.
        let second = pipeline.run_checked((0..FRAMES).collect(), &fallback_opts()).unwrap();
        assert_eq!(first, second);
        assert_eq!(plan.injections(), 1);
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        let stages = ["grayscale", "blur", "sharpen", "convert"];
        let a = FaultPlan::seeded(42, &stages, FRAMES, 3);
        let b = FaultPlan::seeded(42, &stages, FRAMES, 3);
        assert_eq!(a.spec_summary(), b.spec_summary());
        let c = FaultPlan::seeded(43, &stages, FRAMES, 3);
        assert_ne!(a.spec_summary(), c.spec_summary(), "different seeds, same plan");
        // A single-fault seeded plan recovers like a hand-written one.
        // (Multi-fault plans may legitimately fail: a second fault firing
        // during the fallback pass reads as a persistent panic.)
        let single = FaultPlan::seeded(42, &stages, FRAMES, 1);
        let pipeline = wrapped_pipeline(&single);
        let out = pipeline.run_checked((0..FRAMES).collect(), &fallback_opts()).unwrap();
        assert_eq!(out, oracle());
        assert_eq!(single.injections(), 1);
    }

    #[test]
    fn instrument_reaches_masterworker_and_parfor() {
        let plan = FaultPlan::new().panic_at("task", 4);
        let task = plan.instrument("task", |x: u64| x * 10);
        let mw = MasterWorker::new(4);
        let opts = fallback_opts();
        let out = mw.run_checked((0..20u64).collect(), &task, &opts).unwrap();
        assert_eq!(out, (0..20u64).map(|x| x * 10).collect::<Vec<_>>());
        assert_eq!(plan.injections(), 1);

        let plan = FaultPlan::new().panic_at("loop", 9);
        let body = plan.instrument("loop", |i: usize| i + 1);
        let pf = ParallelFor::new(4).with_chunk(3);
        let out = pf.map_checked(40, body, &fallback_opts()).unwrap();
        assert_eq!(out, (1..=40).collect::<Vec<_>>());
        assert_eq!(plan.injections(), 1);
    }

    #[test]
    fn call_accounting_spans_replicas() {
        let plan = FaultPlan::new();
        let pipeline = wrapped_pipeline(&plan);
        pipeline.run_checked((0..FRAMES).collect(), &RunOptions::default()).unwrap();
        for stage in ["grayscale", "blur", "sharpen", "convert"] {
            assert_eq!(plan.calls(stage), FRAMES, "stage {stage} call count");
        }
        assert_eq!(plan.calls("nonexistent"), 0);
        assert_eq!(plan.injections(), 0);
    }
}
