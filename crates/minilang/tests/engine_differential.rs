//! Differential tests: the bytecode VM must be observationally identical to
//! the tree-walking interpreter — same result, same printed output, same
//! `LangError` (phase, line, message) and a **byte-identical** profile JSON
//! rendering — on randomly generated programs and on targeted error cases.

use patty_minilang::ast::*;
use patty_minilang::span::{NodeId, Span};
use patty_minilang::{parse, print_program, run, Engine, InterpOptions};
use proptest::prelude::*;

/// Run one parsed program through both engines under the same options and
/// assert full observational identity.
fn assert_engines_agree(program: &Program, opts: &InterpOptions) -> Result<(), TestCaseError> {
    let ast = run(program, InterpOptions { engine: Engine::Ast, ..opts.clone() });
    let vm = run(program, InterpOptions { engine: Engine::Vm, ..opts.clone() });
    match (ast, vm) {
        (Ok(a), Ok(v)) => {
            prop_assert_eq!(format!("{:?}", a.result), format!("{:?}", v.result));
            prop_assert_eq!(&a.output, &v.output);
            prop_assert_eq!(a.profile.to_json(), v.profile.to_json());
        }
        (Err(a), Err(v)) => prop_assert_eq!(a, v),
        (a, v) => {
            return Err(TestCaseError::fail(format!(
                "engines disagree: ast={:?} vm={:?}",
                a.map(|o| o.output),
                v.map(|o| o.output)
            )))
        }
    }
    Ok(())
}

fn assert_src_agrees(src: &str, opts: &InterpOptions) {
    let program = parse(src).expect("test program parses");
    assert_engines_agree(&program, opts).unwrap();
}

// ---- generated programs ----

fn lit(v: i64) -> Expr {
    Expr { id: NodeId(0), span: Span::DUMMY, kind: ExprKind::Int(v) }
}

fn var(name: &str) -> Expr {
    Expr { id: NodeId(0), span: Span::DUMMY, kind: ExprKind::Var(name.to_string()) }
}

fn stmt(kind: StmtKind) -> Stmt {
    Stmt { id: NodeId(0), span: Span::DUMMY, kind }
}

fn block(stmts: Vec<Stmt>) -> Block {
    Block { id: NodeId(0), span: Span::DUMMY, stmts }
}

fn call(callee: &str, args: Vec<Expr>) -> Expr {
    Expr {
        id: NodeId(0),
        span: Span::DUMMY,
        kind: ExprKind::Call { callee: callee.to_string(), args },
    }
}

/// Expressions over pre-declared ints `a`/`b`/`c` and list `xs`.
fn arb_expr(depth: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        (-50i64..50).prop_map(lit),
        prop_oneof![Just("a"), Just("b"), Just("c")].prop_map(var),
        // xs[..] indexing with an in-bounds constant (xs has 4 elements)
        (0i64..4).prop_map(|i| Expr {
            id: NodeId(0),
            span: Span::DUMMY,
            kind: ExprKind::Index { base: Box::new(var("xs")), index: Box::new(lit(i)) },
        }),
    ];
    leaf.prop_recursive(depth, 24, 3, |inner| {
        (
            inner.clone(),
            inner,
            prop_oneof![
                Just(BinOp::Add),
                Just(BinOp::Sub),
                Just(BinOp::Mul),
                Just(BinOp::Rem),
                Just(BinOp::Lt),
                Just(BinOp::Eq),
            ],
        )
            .prop_map(|(lhs, rhs, op)| {
                // `%` faults on bool operands and on zero divisors from
                // comparison subtrees; guard it to arithmetic-only shapes.
                let op = if op == BinOp::Rem
                    && !matches!(
                        (&lhs.kind, &rhs.kind),
                        (ExprKind::Var(_) | ExprKind::Int(_), ExprKind::Int(_))
                    ) {
                    BinOp::Add
                } else {
                    op
                };
                let rhs = if op == BinOp::Rem && matches!(rhs.kind, ExprKind::Int(0)) {
                    lit(7)
                } else {
                    rhs
                };
                Expr {
                    id: NodeId(0),
                    span: Span::DUMMY,
                    kind: ExprKind::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) },
                }
            })
            .boxed()
    })
    .boxed()
}

/// Statements reading/writing `a`/`b`/`c`, mutating list `xs`, calling the
/// `helper` user function, printing, and nesting ifs/foreach/while.
fn arb_stmt(depth: u32) -> BoxedStrategy<Stmt> {
    let assign = (
        prop_oneof![Just("a"), Just("b"), Just("c")],
        prop_oneof![Just(AssignOp::Set), Just(AssignOp::Add), Just(AssignOp::Mul)],
        arb_expr(2),
    )
        .prop_map(|(name, op, value)| {
            let op = if matches!(
                value.kind,
                ExprKind::Binary { op: BinOp::Lt | BinOp::Eq, .. }
            ) {
                AssignOp::Set
            } else {
                op
            };
            stmt(StmtKind::Assign {
                target: LValue { span: Span::DUMMY, kind: LValueKind::Var(name.to_string()) },
                op,
                value,
            })
        });
    let index_assign = (0i64..4, arb_expr(1)).prop_map(|(i, value)| {
        let value = if matches!(value.kind, ExprKind::Binary { op: BinOp::Lt | BinOp::Eq, .. }) {
            lit(1)
        } else {
            value
        };
        stmt(StmtKind::Assign {
            target: LValue {
                span: Span::DUMMY,
                kind: LValueKind::Index { base: var("xs"), index: lit(i) },
            },
            op: AssignOp::Set,
            value,
        })
    });
    let helper_call = arb_expr(1).prop_map(|e| {
        stmt(StmtKind::Assign {
            target: LValue { span: Span::DUMMY, kind: LValueKind::Var("a".to_string()) },
            op: AssignOp::Set,
            value: call("helper", vec![e]),
        })
    });
    let print_stmt = arb_expr(1).prop_map(|e| stmt(StmtKind::Expr(call("print", vec![e]))));
    let base = prop_oneof![3 => assign, 2 => index_assign, 1 => helper_call, 1 => print_stmt];
    base.prop_recursive(depth, 16, 4, |inner| {
        prop_oneof![
            (arb_expr(1), proptest::collection::vec(inner.clone(), 1..3)).prop_map(
                |(c, body)| {
                    let cond = Expr {
                        id: NodeId(0),
                        span: Span::DUMMY,
                        kind: ExprKind::Binary {
                            op: BinOp::Lt,
                            lhs: Box::new(c),
                            rhs: Box::new(lit(10)),
                        },
                    };
                    stmt(StmtKind::If { cond, then_blk: block(body), else_blk: None })
                }
            ),
            (1i64..5, proptest::collection::vec(inner.clone(), 1..3)).prop_map(|(n, body)| {
                stmt(StmtKind::Foreach {
                    var: "it".into(),
                    iter: call("range", vec![lit(0), lit(n)]),
                    body: block(body),
                })
            }),
            // bounded while: `c = 0; while (c < n) { ..body..; c += 1 }`
            (1i64..4, proptest::collection::vec(inner, 1..2)).prop_map(|(n, mut body)| {
                body.push(stmt(StmtKind::Assign {
                    target: LValue { span: Span::DUMMY, kind: LValueKind::Var("w".into()) },
                    op: AssignOp::Add,
                    value: lit(1),
                }));
                let cond = Expr {
                    id: NodeId(0),
                    span: Span::DUMMY,
                    kind: ExprKind::Binary {
                        op: BinOp::Lt,
                        lhs: Box::new(var("w")),
                        rhs: Box::new(lit(n)),
                    },
                };
                stmt(StmtKind::Block(block(vec![
                    stmt(StmtKind::VarDecl { name: "w".into(), init: lit(0) }),
                    stmt(StmtKind::While { cond, body: block(body) }),
                ])))
            }),
        ]
        .boxed()
    })
    .boxed()
}

/// Build a whole program: a `helper(n)` user function plus a `main` with
/// the shared declarations and the generated statements.
fn arb_program() -> impl Strategy<Value = Program> {
    proptest::collection::vec(arb_stmt(2), 1..7).prop_map(|mut stmts| {
        let helper = FuncDecl {
            id: NodeId(0),
            span: Span::DUMMY,
            name: "helper".into(),
            params: vec!["n".into()],
            body: block(vec![stmt(StmtKind::Return(Some(Expr {
                id: NodeId(0),
                span: Span::DUMMY,
                kind: ExprKind::Binary {
                    op: BinOp::Mul,
                    lhs: Box::new(var("n")),
                    rhs: Box::new(lit(2)),
                },
            })))]),
        };
        let mut all = vec![
            stmt(StmtKind::VarDecl { name: "a".into(), init: lit(1) }),
            stmt(StmtKind::VarDecl { name: "b".into(), init: lit(2) }),
            stmt(StmtKind::VarDecl { name: "c".into(), init: lit(3) }),
            stmt(StmtKind::VarDecl {
                name: "xs".into(),
                init: Expr {
                    id: NodeId(0),
                    span: Span::DUMMY,
                    kind: ExprKind::ListLit(vec![lit(1), lit(2), lit(3), lit(4)]),
                },
            }),
        ];
        all.append(&mut stmts);
        all.push(stmt(StmtKind::Expr(call(
            "print",
            vec![var("a"), var("b"), var("c"), var("xs")],
        ))));
        Program::new(
            vec![],
            vec![
                helper,
                FuncDecl {
                    id: NodeId(0),
                    span: Span::DUMMY,
                    name: "main".into(),
                    params: vec![],
                    body: block(all),
                },
            ],
            0,
            String::new(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn vm_matches_tree_walker_on_random_programs(program in arb_program()) {
        // Round-trip through the printer so the parsed program carries real
        // node ids and line numbers (the generator uses dummies).
        let src = print_program(&program);
        let parsed = parse(&src).expect("printed program parses");
        let opts = InterpOptions { step_limit: 2_000_000, ..InterpOptions::default() };
        assert_engines_agree(&parsed, &opts)?;
    }

    #[test]
    fn vm_matches_tree_walker_with_tiny_trace_budget(program in arb_program()) {
        let src = print_program(&program);
        let parsed = parse(&src).expect("printed program parses");
        let opts = InterpOptions {
            step_limit: 2_000_000,
            trace_iters: 2,
            ..InterpOptions::default()
        };
        assert_engines_agree(&parsed, &opts)?;
    }

    #[test]
    fn vm_matches_tree_walker_under_injected_step_limit(program in arb_program(), limit in 1u64..400) {
        let src = print_program(&program);
        let parsed = parse(&src).expect("printed program parses");
        // A tiny step limit makes many cases die mid-execution; the error
        // (line and message) must match exactly.
        let opts = InterpOptions { step_limit: limit, ..InterpOptions::default() };
        assert_engines_agree(&parsed, &opts)?;
    }
}

// ---- targeted error-identity cases ----

#[test]
fn step_limit_error_is_identical() {
    assert_src_agrees(
        "fn main() {\n    var i = 0;\n    while (i < 100000) {\n        i += 1;\n    }\n}",
        &InterpOptions { step_limit: 5_000, ..InterpOptions::default() },
    );
}

#[test]
fn call_depth_error_is_identical() {
    assert_src_agrees(
        "fn rec(n) {\n    return rec(n + 1);\n}\nfn main() {\n    rec(0);\n}",
        &InterpOptions::default(),
    );
    assert_src_agrees(
        "fn rec(n) {\n    return rec(n + 1);\n}\nfn main() {\n    rec(0);\n}",
        &InterpOptions { max_depth: 7, ..InterpOptions::default() },
    );
}

#[test]
fn index_out_of_bounds_error_is_identical() {
    assert_src_agrees(
        "fn main() {\n    var xs = [1, 2, 3];\n    var i = 0;\n    while (true) {\n        var v = xs[i];\n        i += 1;\n    }\n}",
        &InterpOptions::default(),
    );
    assert_src_agrees(
        "fn main() {\n    var xs = [1];\n    xs[5] = 9;\n}",
        &InterpOptions::default(),
    );
    assert_src_agrees(
        "fn main() {\n    var xs = [1];\n    xs[0 - 1] += 2;\n}",
        &InterpOptions::default(),
    );
}

#[test]
fn type_and_name_errors_are_identical() {
    for src in [
        "fn main() {\n    var x = 1 / 0;\n}",
        "fn main() {\n    var x = 5 % 0;\n}",
        "fn main() {\n    print(nope);\n}",
        "fn main() {\n    nope = 3;\n}",
        "fn main() {\n    nope += 3;\n}",
        "fn main() {\n    missing(1, 2);\n}",
        "fn main() {\n    var o = new Ghost();\n}",
        "fn main() {\n    if (1) { print(2); }\n}",
        "fn main() {\n    while (1) { print(2); }\n}",
        "fn main() {\n    for (var i = 0; i + 1; i += 1) { }\n}",
        "fn main() {\n    var x = true + 1;\n}",
        "fn main() {\n    var x = -true;\n}",
        "fn main() {\n    var x = 1 && true;\n}",
        "fn main() {\n    var x = true && 1;\n}",
        "fn main() {\n    foreach (x in 5) { }\n}",
        "fn main() {\n    var s = \"abc\";\n    s.x = 1;\n}",
        "fn main() {\n    var s = \"abc\";\n    print(s.q());\n}",
        "fn main() {\n    print(len(3));\n}",
        "fn main() {\n    print(work(true));\n}",
        "fn main() {\n    print(work(0 - 4));\n}",
        "fn main() {\n    print(range(1));\n}",
        "fn main() {\n    assert(1 == 2, \"boom\");\n}",
        "class P { var x = 0; }\nfn main() {\n    var p = new P(1, 2);\n}",
        "class P { var x = 0; }\nfn main() {\n    var p = new P(1);\n    print(p.y);\n}",
        "fn f(a, b) { return a; }\nfn main() {\n    f(1);\n}",
    ] {
        assert_src_agrees(src, &InterpOptions::default());
    }
}

#[test]
fn errors_inside_loops_carry_identical_stale_lines() {
    // The walker's `current_line` is the line of the innermost *statement*
    // last entered; a condition failing on a later iteration reports the
    // line of the last body statement. Both engines must agree.
    assert_src_agrees(
        "fn main() {\n    var c = 0;\n    while (c < 2) {\n        c = c + \"x\";\n    }\n}",
        &InterpOptions::default(),
    );
}

#[test]
fn entry_function_runs_with_args_on_both_engines() {
    use patty_minilang::{run_func, Value};
    let p = parse("fn f(n) { var s = 0; foreach (i in range(0, n)) { s += i; } return s; }")
        .unwrap();
    let ast = run_func(
        &p,
        "f",
        vec![Value::Int(10)],
        InterpOptions { engine: Engine::Ast, ..InterpOptions::default() },
    )
    .unwrap();
    let vm = run_func(
        &p,
        "f",
        vec![Value::Int(10)],
        InterpOptions { engine: Engine::Vm, ..InterpOptions::default() },
    )
    .unwrap();
    assert_eq!(format!("{:?}", ast.result), format!("{:?}", vm.result));
    assert_eq!(ast.profile.to_json(), vm.profile.to_json());
}
