//! Differential tests for the PGO stage: a program optimized with a
//! *measured* profile (fusion + dispatch reordering + type
//! specialization + trace stripping) must be observationally identical
//! to the unoptimized bytecode and to the tree-walking interpreter —
//! same result, same printed output, same `LangError` (line + message)
//! and a **byte-identical** `Profile::to_json()` rendering.
//!
//! The suite covers the whole benchmark corpus, targeted fusion-barrier
//! programs (jump targets landing where a superinstruction pair would
//! otherwise form), deopt paths for the type-specialized ops, and
//! randomly generated loop-heavy programs.

use patty_minilang::bytecode::compile;
use patty_minilang::vm::{profile_ops, run_compiled};
use patty_minilang::{
    optimize, parse, run, Engine, InterpOptions, OpProfile, PgoOptions, Program,
};
use proptest::prelude::*;

/// Exercise every engine/optimization combination on one program and
/// assert full observational identity.
///
/// * tree-walker vs unoptimized VM vs measured-profile-optimized VM
///   (traced options) — result, output, profile JSON, errors;
/// * exec-mode (`strip_tracing`) optimized VM vs the same three with
///   tracing off — exec profiles keep statement shares, so the JSON
///   must still match byte-for-byte.
fn assert_pgo_agrees(program: &Program, base: &InterpOptions) {
    let compiled = compile(program);

    for trace_loops in [true, false] {
        let opts = InterpOptions { trace_loops, engine: Engine::Vm, ..base.clone() };
        let ast = run(program, InterpOptions { engine: Engine::Ast, ..opts.clone() });
        let plain = run_compiled(&compiled, "main", Vec::new(), opts.clone());

        // The counted (profiling) run must itself be observationally
        // identical, and it yields the measured profile we optimize with.
        let measured = match profile_ops(&compiled, "main", Vec::new(), opts.clone()) {
            Ok((outcome, profile)) => {
                let plain_ok = plain.as_ref().expect("plain run agrees with profiled run");
                assert_eq!(format!("{:?}", plain_ok.result), format!("{:?}", outcome.result));
                assert_eq!(plain_ok.output, outcome.output);
                assert_eq!(plain_ok.profile.to_json(), outcome.profile.to_json());
                profile
            }
            Err(e) => {
                assert_eq!(plain.as_ref().err(), Some(&e), "profiled run error agrees");
                OpProfile::synthetic(&compiled)
            }
        };

        let popts = if trace_loops { PgoOptions::traced() } else { PgoOptions::exec() };
        let (optimized, _) = optimize(&compiled, &measured, &popts);
        let opt = run_compiled(&optimized, "main", Vec::new(), opts.clone());

        match (&ast, &plain, &opt) {
            (Ok(a), Ok(p), Ok(o)) => {
                assert_eq!(format!("{:?}", a.result), format!("{:?}", o.result));
                assert_eq!(&a.output, &o.output);
                assert_eq!(a.profile.to_json(), p.profile.to_json());
                assert_eq!(p.profile.to_json(), o.profile.to_json());
            }
            (Err(a), Err(p), Err(o)) => {
                assert_eq!(a, p);
                assert_eq!(p, o);
            }
            _ => panic!(
                "engines disagree (trace_loops={trace_loops}): ast={:?} plain={:?} opt={:?}",
                ast.as_ref().map(|o| &o.output),
                plain.as_ref().map(|o| &o.output),
                opt.as_ref().map(|o| &o.output),
            ),
        }
    }
}

fn assert_src_agrees(src: &str, opts: &InterpOptions) {
    let program = parse(src).expect("test program parses");
    assert_pgo_agrees(&program, opts);
}

// ---- whole corpus ----

#[test]
fn corpus_programs_survive_pgo_unchanged() {
    for prog in patty_corpus::all_programs() {
        let program = prog.parse();
        assert_pgo_agrees(&program, &InterpOptions::default());
    }
}

// ---- fusion barriers: jump targets landing mid-pair ----

/// A `continue` jumps to the while-condition re-check, whose first op is
/// the `LoadSlot` of a `LoadSlot`+`Binary` candidate pair. Fusing that
/// pair would swallow the jump target; the barrier must prevent it.
#[test]
fn continue_target_blocks_condition_pair_fusion() {
    assert_src_agrees(
        "fn main() {\n\
         var i = 0; var s = 0;\n\
         while (i < 20) {\n\
           i = i + 1;\n\
           if (i % 3 == 0) { continue; }\n\
           s = s + i;\n\
         }\n\
         print(s);\n\
         }",
        &InterpOptions::default(),
    );
}

/// `break` out of a foreach lands after `EndLoop` on a `LoadSlot` that a
/// following `Binary` would pair with.
#[test]
fn break_target_blocks_post_loop_pair_fusion() {
    assert_src_agrees(
        "fn main() {\n\
         var s = 0;\n\
         foreach (i in range(0, 50)) {\n\
           if (i > 7) { break; }\n\
           s += i;\n\
         }\n\
         var t = s * 2;\n\
         print(t);\n\
         }",
        &InterpOptions::default(),
    );
}

/// An if/else join point: the else-branch jump targets the eligible
/// `LoadSlot`+`StoreSlot` move after the if — barrier case for SlotMove.
#[test]
fn if_join_blocks_slot_move_fusion() {
    assert_src_agrees(
        "fn main() {\n\
         var a = 1; var b = 2; var c = 0;\n\
         foreach (i in range(0, 10)) {\n\
           if (i % 2 == 0) { a = a + i; } else { b = b + i; }\n\
           c = a;\n\
           c = c + b;\n\
         }\n\
         print(c);\n\
         }",
        &InterpOptions::default(),
    );
}

// ---- type specialization and deopt ----

/// A loop that is int/int for many iterations, then sees a float: the
/// specialized op's guard must deopt to the generic path mid-run with no
/// observable difference.
#[test]
fn int_specialized_op_deopts_on_float() {
    assert_src_agrees(
        "fn main() {\n\
         var s = 0;\n\
         foreach (i in range(0, 30)) {\n\
           var x = 1;\n\
           if (i == 25) { x = 0.5; }\n\
           s = s + x;\n\
         }\n\
         print(s);\n\
         }",
        &InterpOptions::default(),
    );
}

/// Pure float arithmetic picks the float fast path; comparisons and
/// division must match the generic `binary_op` exactly.
#[test]
fn float_specialized_arithmetic_matches_generic() {
    assert_src_agrees(
        "fn main() {\n\
         var s = 0.0;\n\
         foreach (i in range(0, 40)) {\n\
           s = s + 1.5;\n\
           s = s * 1.01;\n\
           if (s > 100.0) { s = s / 2.0; }\n\
         }\n\
         print(s);\n\
         }",
        &InterpOptions::default(),
    );
}

/// Errors inside specialized/fused ops must carry the same line and
/// message as the generic path: division by zero after a hot int loop.
#[test]
fn division_by_zero_error_is_identical_through_fusion() {
    assert_src_agrees(
        "fn main() {\n\
         var s = 0; var d = 5;\n\
         foreach (i in range(0, 20)) {\n\
           d = d - 1;\n\
           s = s + 100 / d;\n\
         }\n\
         print(s);\n\
         }",
        &InterpOptions::default(),
    );
}

/// Step-limit exhaustion can now trigger inside a fused `TickJump` or
/// `StmtEnterTick`; the reported error must match the tree-walker's.
#[test]
fn step_limit_error_is_identical_through_fusion() {
    for limit in [50, 97, 214, 1003] {
        assert_src_agrees(
            "fn main() {\n\
             var s = 0;\n\
             while (true) { s = s + 1; }\n\
             }",
            &InterpOptions { step_limit: limit, ..InterpOptions::default() },
        );
    }
}

/// A type error mid-loop (int + string) after the profile saw only
/// int/int: the deopt guard must produce the generic error text.
#[test]
fn type_error_after_int_profile_is_identical() {
    assert_src_agrees(
        "fn main() {\n\
         var s = 0;\n\
         foreach (i in range(0, 15)) {\n\
           var x = 1;\n\
           if (i == 12) { x = \"oops\"; }\n\
           s = s + x;\n\
         }\n\
         print(s);\n\
         }",
        &InterpOptions::default(),
    );
}

// ---- generated programs ----

fn arb_term() -> impl Strategy<Value = String> {
    prop_oneof![
        (0i64..9).prop_map(|v| v.to_string()),
        Just("a".to_string()),
        Just("b".to_string()),
        Just("c".to_string()),
        (1u32..40).prop_map(|v| format!("{}.5", v)),
    ]
}

fn arb_binexpr() -> impl Strategy<Value = String> {
    (arb_term(), prop_oneof![Just("+"), Just("-"), Just("*"), Just("%"), Just("/")], arb_term())
        .prop_map(|(l, op, r)| format!("({l} {op} {r})"))
}

fn arb_cond() -> impl Strategy<Value = String> {
    (arb_term(), prop_oneof![Just("<"), Just("<="), Just(">"), Just("=="), Just("!=")], arb_term())
        .prop_map(|(l, op, r)| format!("({l} {op} {r})"))
}

fn arb_stmt(depth: u32) -> BoxedStrategy<String> {
    let assign = (prop_oneof![Just("a"), Just("b"), Just("c")], arb_binexpr())
        .prop_map(|(v, e)| format!("{v} = {e};"));
    let compound =
        (prop_oneof![Just("a"), Just("b"), Just("c")], prop_oneof![Just("+="), Just("-="), Just("*=")], arb_term())
            .prop_map(|(v, op, e)| format!("{v} {op} {e};"));
    if depth == 0 {
        return prop_oneof![assign, compound].boxed();
    }
    let iff = (arb_cond(), arb_stmt(depth - 1), arb_stmt(depth - 1))
        .prop_map(|(c, t, e)| format!("if {c} {{ {t} }} else {{ {e} }}"));
    let foreach = (2u32..12, proptest::collection::vec(arb_stmt(depth - 1), 1..3), any::<bool>())
        .prop_map(|(n, body, skip)| {
            let guard = if skip { "if (i % 3 == 0) { continue; } " } else { "" };
            format!("foreach (i in range(0, {n})) {{ {guard}{} }}", body.join(" "))
        });
    let whileloop = (2u32..10, proptest::collection::vec(arb_stmt(depth - 1), 1..3))
        .prop_map(|(n, body)| {
            format!("var w = 0; while (w < {n}) {{ w = w + 1; {} }}", body.join(" "))
        });
    prop_oneof![3 => assign, 2 => compound, 2 => iff, 2 => foreach, 1 => whileloop].boxed()
}

fn arb_program() -> impl Strategy<Value = String> {
    proptest::collection::vec(arb_stmt(2), 1..6).prop_map(|stmts| {
        format!(
            "fn main() {{ var a = 3; var b = 4; var c = 5; {} print(a); print(b); print(c); }}",
            stmts.join("\n")
        )
    })
}

proptest! {
    #[test]
    fn generated_programs_survive_pgo(src in arb_program()) {
        let program = parse(&src).expect("generated program parses");
        assert_pgo_agrees(&program, &InterpOptions::default());
    }

    // The same generated programs under a tight step limit: exhaustion
    // lands inside fused ops at arbitrary points.
    #[test]
    fn generated_programs_agree_on_step_limits(src in arb_program(), limit in 20u64..400) {
        let program = parse(&src).expect("generated program parses");
        assert_pgo_agrees(&program, &InterpOptions { step_limit: limit, ..InterpOptions::default() });
    }
}
