//! Property-based round-trip tests: randomly generated minilang programs
//! must print → parse → print to a fixpoint, and both versions must
//! behave identically under interpretation. The transformation pipeline
//! rests on exactly this property (it rewrites ASTs and re-parses).

use patty_minilang::ast::*;
use patty_minilang::span::{NodeId, Span};
use patty_minilang::{parse, print_program, run, InterpOptions};
use proptest::prelude::*;

fn lit(v: i64) -> Expr {
    Expr { id: NodeId(0), span: Span::DUMMY, kind: ExprKind::Int(v) }
}

fn var(name: String) -> Expr {
    Expr { id: NodeId(0), span: Span::DUMMY, kind: ExprKind::Var(name) }
}

/// Generator for expressions over a fixed set of in-scope variables.
fn arb_expr(depth: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        (-50i64..50).prop_map(lit),
        prop_oneof![Just("a".to_string()), Just("b".to_string()), Just("c".to_string())]
            .prop_map(var),
    ];
    leaf.prop_recursive(depth, 24, 3, |inner| {
        (
            inner.clone(),
            inner,
            prop_oneof![
                Just(BinOp::Add),
                Just(BinOp::Sub),
                Just(BinOp::Mul),
                Just(BinOp::Lt),
                Just(BinOp::Eq),
            ],
        )
            .prop_map(|(lhs, rhs, op)| Expr {
                id: NodeId(0),
                span: Span::DUMMY,
                kind: ExprKind::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) },
            })
            .boxed()
    })
    .boxed()
}

fn stmt(kind: StmtKind) -> Stmt {
    Stmt { id: NodeId(0), span: Span::DUMMY, kind }
}

fn block(stmts: Vec<Stmt>) -> Block {
    Block { id: NodeId(0), span: Span::DUMMY, stmts }
}

/// Generator for statements writing only to the pre-declared a/b/c.
fn arb_stmt(depth: u32) -> BoxedStrategy<Stmt> {
    let assign = (
        prop_oneof![Just("a".to_string()), Just("b".to_string()), Just("c".to_string())],
        prop_oneof![Just(AssignOp::Set), Just(AssignOp::Add), Just(AssignOp::Mul)],
        arb_expr(2),
    )
        .prop_map(|(name, op, value)| {
            // comparisons produce booleans; arithmetic compound ops on
            // booleans would fault — keep Set for comparison results
            let op = if matches!(
                value.kind,
                ExprKind::Binary { op: BinOp::Lt | BinOp::Eq, .. }
            ) {
                AssignOp::Set
            } else {
                op
            };
            stmt(StmtKind::Assign {
                target: LValue { span: Span::DUMMY, kind: LValueKind::Var(name) },
                op,
                value,
            })
        });
    let print_stmt = arb_expr(1).prop_map(|e| {
        stmt(StmtKind::Expr(Expr {
            id: NodeId(0),
            span: Span::DUMMY,
            kind: ExprKind::Call { callee: "print".into(), args: vec![e] },
        }))
    });
    let base = prop_oneof![3 => assign, 1 => print_stmt];
    base.prop_recursive(depth, 16, 4, |inner| {
        prop_oneof![
            // if over a numeric comparison
            (arb_expr(1), proptest::collection::vec(inner.clone(), 1..3))
                .prop_map(|(c, body)| {
                    let cond = Expr {
                        id: NodeId(0),
                        span: Span::DUMMY,
                        kind: ExprKind::Binary {
                            op: BinOp::Lt,
                            lhs: Box::new(c),
                            rhs: Box::new(lit(10)),
                        },
                    };
                    stmt(StmtKind::If { cond, then_blk: block(body), else_blk: None })
                }),
            // bounded foreach over a range
            (1i64..5, proptest::collection::vec(inner, 1..3)).prop_map(|(n, body)| {
                let range_call = Expr {
                    id: NodeId(0),
                    span: Span::DUMMY,
                    kind: ExprKind::Call {
                        callee: "range".into(),
                        args: vec![lit(0), lit(n)],
                    },
                };
                stmt(StmtKind::Foreach { var: "it".into(), iter: range_call, body: block(body) })
            }),
        ]
        .boxed()
    })
    .boxed()
}

fn arb_program() -> impl Strategy<Value = Program> {
    proptest::collection::vec(arb_stmt(2), 1..7).prop_map(|mut stmts| {
        let mut all = vec![
            stmt(StmtKind::VarDecl { name: "a".into(), init: lit(1) }),
            stmt(StmtKind::VarDecl { name: "b".into(), init: lit(2) }),
            stmt(StmtKind::VarDecl { name: "c".into(), init: lit(3) }),
        ];
        all.append(&mut stmts);
        all.push(stmt(StmtKind::Expr(Expr {
            id: NodeId(0),
            span: Span::DUMMY,
            kind: ExprKind::Call {
                callee: "print".into(),
                args: vec![var("a".into()), var("b".into()), var("c".into())],
            },
        })));
        Program::new(
            vec![],
            vec![FuncDecl {
                id: NodeId(0),
                span: Span::DUMMY,
                name: "main".into(),
                params: vec![],
                body: block(all),
            }],
            0,
            String::new(),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn print_parse_print_is_a_fixpoint(program in arb_program()) {
        let s1 = print_program(&program);
        let p2 = parse(&s1).expect("printed program parses");
        let s2 = print_program(&p2);
        prop_assert_eq!(&s1, &s2, "printer must be a fixpoint");
    }

    #[test]
    fn printed_program_behaves_like_the_ast(program in arb_program()) {
        let s1 = print_program(&program);
        let p2 = parse(&s1).expect("printed program parses");
        let opts = InterpOptions { step_limit: 2_000_000, ..InterpOptions::default() };
        let r1 = run(&program, opts.clone());
        let r2 = run(&p2, opts);
        match (r1, r2) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a.output, b.output),
            (Err(a), Err(b)) => prop_assert_eq!(a.message, b.message),
            (a, b) => prop_assert!(false, "behaviour diverged: {:?} vs {:?}", a.map(|o| o.output), b.map(|o| o.output)),
        }
    }
}
