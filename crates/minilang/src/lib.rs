//! # patty-minilang
//!
//! The object-oriented source language Patty analyses and rewrites.
//!
//! The PMAM'15 paper implements Patty on top of the C# tool chain inside
//! Visual Studio; this crate is the substitute front end: a small
//! imperative, object-oriented language ("minilang") with
//!
//! * a lexer and recursive-descent parser that also understand the
//!   `#region` / `#endregion` preprocessor directives the paper uses to
//!   embed TADL annotations (Fig. 3b),
//! * a span- and id-carrying AST whose statements are the granularity at
//!   which patterns are detected and stages are formed,
//! * a tree-walking interpreter that doubles as the paper's *dynamic
//!   analysis*: it produces a [`profile::Profile`] with per-statement
//!   runtime shares, observed call edges and exact per-loop access traces,
//! * a pretty-printer so transformed programs are real source text again.
//!
//! ```
//! use patty_minilang::{parse, run, InterpOptions};
//!
//! let program = parse("fn main() { var s = 0; foreach (i in range(0, 5)) { s += i; } print(s); }").unwrap();
//! let outcome = run(&program, InterpOptions::default()).unwrap();
//! assert_eq!(outcome.output, vec!["10"]);
//! assert!(outcome.profile.total_cost > 0);
//! ```

pub mod ast;
mod builtins;
pub mod bytecode;
pub mod error;
pub(crate) mod fxhash;
pub mod interp;
pub mod parser;
pub mod pgo;
pub mod pretty;
pub mod profile;
pub mod resolve;
pub mod span;
pub mod token;
pub mod value;
pub mod vm;

pub use ast::{Block, ClassDecl, Expr, ExprKind, FuncDecl, Program, Stmt, StmtKind};
pub use bytecode::CompiledProgram;
pub use error::LangError;
pub use interp::{run, run_func, Engine, InterpOptions, Outcome};
pub use parser::parse;
pub use pgo::{optimize, OpProfile, PgoOptions, PgoReport};
pub use pretty::print_program;
pub use profile::{AccessKind, CarriedDep, DepKind, DynLoc, LoopTrace, Profile};
pub use span::{NodeId, Span};
pub use value::Value;
