//! Tree-walking interpreter with built-in dynamic analysis.
//!
//! Executing a program produces a [`Profile`]: per-statement hit counts and
//! inclusive virtual costs, observed call edges, and per-loop access traces.
//! Virtual cost is a deterministic stand-in for wall time: every evaluated
//! expression node costs one unit and the `work(n)` builtin costs `n` units,
//! so corpus programs can model arbitrary runtime distributions (a video
//! filter that is 4× as expensive as another is written as `work(4000)` vs
//! `work(1000)`), which is what rule PLTP's runtime-share reasoning needs.

use crate::ast::*;
use crate::builtins::{binary_op, call_builtin, call_builtin_method, BuiltinId, Host};
use crate::error::LangError;
use crate::profile::{AccessKind, DynLoc, Profile};
use crate::span::NodeId;
use crate::value::{FieldTable, HeapId, ListData, ObjectData, Value};
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;

/// Which execution engine runs the program.
///
/// Both engines are observationally identical — same [`Outcome`], same
/// errors, byte-identical [`Profile`] — so the choice is purely a
/// performance one. The tree-walker is kept as the differential oracle.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Engine {
    /// The original tree-walking interpreter (reference semantics).
    Ast,
    /// The compiled slot-resolved bytecode VM (default; ≥3× faster).
    #[default]
    Vm,
}

/// Options controlling interpretation and dynamic analysis.
#[derive(Clone, Debug)]
pub struct InterpOptions {
    /// Abort after this many virtual cost units (guards against runaway
    /// programs; generous default).
    pub step_limit: u64,
    /// Record per-loop access traces (the dynamic dependence analysis).
    pub trace_loops: bool,
    /// How many iterations per loop to trace exactly. The paper notes that
    /// whole-program dynamic analysis is unmanageable; tracing a prefix
    /// keeps the cost bounded.
    pub trace_iters: usize,
    /// Seed for the deterministic `rand(n)` builtin.
    pub seed: u64,
    /// Maximum call depth.
    pub max_depth: usize,
    /// Which engine executes the program.
    pub engine: Engine,
}

impl Default for InterpOptions {
    fn default() -> InterpOptions {
        InterpOptions {
            step_limit: 200_000_000,
            trace_loops: true,
            trace_iters: 12,
            seed: 0x5EED,
            max_depth: 64,
            engine: Engine::default(),
        }
    }
}

/// Result of running a program.
#[derive(Debug)]
pub struct Outcome {
    /// Value returned by the entry function.
    pub result: Value,
    /// Lines printed via `print(..)`.
    pub output: Vec<String>,
    /// The dynamic profile.
    pub profile: Profile,
}

/// Run `main()` of `program`.
pub fn run(program: &Program, options: InterpOptions) -> Result<Outcome, LangError> {
    run_func(program, "main", vec![], options)
}

/// Run a named free function with arguments, on the engine selected by
/// `options.engine`.
pub fn run_func(
    program: &Program,
    name: &str,
    args: Vec<Value>,
    options: InterpOptions,
) -> Result<Outcome, LangError> {
    if options.engine == Engine::Vm {
        return crate::vm::run_func(program, name, args, options);
    }
    let mut interp = Interp::new(program, options);
    let func = program
        .func(name)
        .ok_or_else(|| LangError::runtime(0, format!("no function `{name}`")))?;
    let result = interp.call_func(func, None, args)?;
    Ok(Outcome {
        result,
        output: interp.output,
        profile: {
            interp.profile.total_cost = interp.cost;
            interp.profile
        },
    })
}

/// Statement execution outcome for control flow.
enum Flow {
    Normal,
    Break,
    Continue,
    Return(Value),
}

/// One activation frame.
struct Frame {
    serial: u32,
    scopes: Vec<HashMap<String, Value>>,
}

impl Frame {
    fn lookup(&self, name: &str) -> Option<&Value> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    fn assign(&mut self, name: &str, value: Value) -> bool {
        for scope in self.scopes.iter_mut().rev() {
            if let Some(slot) = scope.get_mut(name) {
                *slot = value;
                return true;
            }
        }
        false
    }

    fn declare(&mut self, name: &str, value: Value) {
        self.scopes
            .last_mut()
            .expect("frame always has a scope")
            .insert(name.to_string(), value);
    }
}

/// An active loop-trace context: accesses made while executing direct body
/// statement `cur_stmt` of loop `loop_id` during iteration `iter`.
/// Shared with the bytecode VM, which maintains an identical stack.
pub(crate) struct TraceCtx {
    pub(crate) loop_id: NodeId,
    pub(crate) iter: usize,
    pub(crate) recording: bool,
    pub(crate) cur_stmt: Option<NodeId>,
}

/// Record one dynamic access into every active recording trace context.
/// The single implementation keeps the tree-walker and the VM attributing
/// accesses identically (nested loops record into outer contexts too).
pub(crate) fn record_access(
    profile: &mut Profile,
    traces: &[TraceCtx],
    loc: DynLoc,
    kind: AccessKind,
) {
    for ctx in traces {
        if !ctx.recording {
            continue;
        }
        let Some(stmt) = ctx.cur_stmt else { continue };
        let trace = profile.loop_traces.entry(ctx.loop_id).or_default();
        while trace.traced.len() <= ctx.iter {
            trace.traced.push(BTreeMap::new());
        }
        trace.traced[ctx.iter]
            .entry(stmt)
            .or_default()
            .insert((loc.clone(), kind));
    }
}

struct Interp<'p> {
    program: &'p Program,
    options: InterpOptions,
    frames: Vec<Frame>,
    call_names: Vec<String>,
    heap_next: HeapId,
    frame_next: u32,
    cost: u64,
    output: Vec<String>,
    profile: Profile,
    traces: Vec<TraceCtx>,
    rng: u64,
    /// 1-based source line of the innermost executing statement, for
    /// runtime error positions.
    current_line: u32,
}

impl<'p> Interp<'p> {
    fn new(program: &'p Program, options: InterpOptions) -> Interp<'p> {
        let rng = options.seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        Interp {
            program,
            options,
            frames: Vec::new(),
            call_names: Vec::new(),
            heap_next: 1,
            frame_next: 1,
            cost: 0,
            output: Vec::new(),
            profile: Profile::default(),
            traces: Vec::new(),
            rng,
            current_line: 0,
        }
    }

    fn err(&self, msg: impl Into<String>) -> LangError {
        LangError::runtime(self.current_line, msg)
    }

    fn tick(&mut self, n: u64) -> Result<(), LangError> {
        self.cost += n;
        if self.cost > self.options.step_limit {
            return Err(self.err("step limit exceeded"));
        }
        Ok(())
    }

    fn fresh_heap(&mut self) -> HeapId {
        let id = self.heap_next;
        self.heap_next += 1;
        id
    }

    fn frame(&mut self) -> &mut Frame {
        self.frames.last_mut().expect("no active frame")
    }

    fn frame_serial(&self) -> u32 {
        self.frames.last().map(|f| f.serial).unwrap_or(0)
    }

    fn record(&mut self, loc: DynLoc, kind: AccessKind) {
        if !self.options.trace_loops {
            return;
        }
        record_access(&mut self.profile, &self.traces, loc, kind);
    }

    fn next_rand(&mut self, n: i64) -> i64 {
        // xorshift64*
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        let v = x.wrapping_mul(0x2545F4914F6CDD1D);
        if n <= 0 {
            0
        } else {
            ((v >> 17) % n as u64) as i64
        }
    }

    // ---- calls ----

    fn call_func(
        &mut self,
        func: &'p FuncDecl,
        this: Option<Value>,
        args: Vec<Value>,
    ) -> Result<Value, LangError> {
        if self.frames.len() >= self.options.max_depth {
            return Err(self.err(format!("call depth exceeded calling `{}`", func.name)));
        }
        if func.params.len() != args.len() {
            return Err(self.err(format!(
                "function `{}` expects {} argument(s), got {}",
                func.name,
                func.params.len(),
                args.len()
            )));
        }
        if let Some(caller) = self.call_names.last() {
            self.profile
                .call_edges
                .insert((caller.clone(), func.name.clone()));
        }
        self.call_names.push(func.name.clone());
        let serial = self.frame_next;
        self.frame_next += 1;
        let mut scope = HashMap::new();
        if let Some(this) = this {
            scope.insert("this".to_string(), this);
        }
        for (p, a) in func.params.iter().zip(args) {
            scope.insert(p.clone(), a);
        }
        self.frames.push(Frame { serial, scopes: vec![scope] });
        let flow = self.exec_block(&func.body);
        self.frames.pop();
        self.call_names.pop();
        match flow? {
            Flow::Return(v) => Ok(v),
            _ => Ok(Value::Null),
        }
    }

    // ---- statements ----

    fn exec_block(&mut self, block: &'p Block) -> Result<Flow, LangError> {
        self.frame().scopes.push(HashMap::new());
        let mut flow = Flow::Normal;
        for stmt in &block.stmts {
            flow = self.exec_stmt(stmt)?;
            if !matches!(flow, Flow::Normal) {
                break;
            }
        }
        self.frame().scopes.pop();
        Ok(flow)
    }

    /// Execute the statements of a block without opening a new scope
    /// (loop bodies share the iteration scope with the loop variable).
    fn exec_stmts_flat(&mut self, block: &'p Block) -> Result<Flow, LangError> {
        for stmt in &block.stmts {
            let flow = self.exec_stmt(stmt)?;
            if !matches!(flow, Flow::Normal) {
                return Ok(flow);
            }
        }
        Ok(Flow::Normal)
    }

    fn exec_stmt(&mut self, stmt: &'p Stmt) -> Result<Flow, LangError> {
        self.current_line = stmt.span.line;
        self.tick(1)?;
        *self.profile.stmt_hits.entry(stmt.id).or_insert(0) += 1;
        let cost_before = self.cost;
        let flow = self.exec_stmt_inner(stmt);
        let delta = self.cost - cost_before + 1;
        *self.profile.stmt_cost.entry(stmt.id).or_insert(0) += delta;
        flow
    }

    fn exec_stmt_inner(&mut self, stmt: &'p Stmt) -> Result<Flow, LangError> {
        match &stmt.kind {
            StmtKind::VarDecl { name, init } => {
                let v = self.eval(init)?;
                let serial = self.frame_serial();
                self.record(DynLoc::Local(serial, name.as_str().into()), AccessKind::Write);
                self.frame().declare(name, v);
                Ok(Flow::Normal)
            }
            StmtKind::Assign { target, op, value } => {
                self.exec_assign(target, *op, value)?;
                Ok(Flow::Normal)
            }
            StmtKind::Expr(e) => {
                self.eval(e)?;
                Ok(Flow::Normal)
            }
            StmtKind::If { cond, then_blk, else_blk } => {
                let c = self.eval(cond)?;
                let b = c
                    .as_bool()
                    .ok_or_else(|| self.err(format!("if condition is {}", c.type_name())))?;
                if b {
                    self.exec_block(then_blk)
                } else if let Some(e) = else_blk {
                    self.exec_block(e)
                } else {
                    Ok(Flow::Normal)
                }
            }
            StmtKind::While { cond, body } => {
                self.begin_loop(stmt.id);
                let mut iter = 0usize;
                loop {
                    let c = self.eval(cond)?;
                    let Some(true) = c.as_bool() else {
                        if c.as_bool().is_none() {
                            self.end_loop();
                            return Err(
                                self.err(format!("while condition is {}", c.type_name()))
                            );
                        }
                        break;
                    };
                    let flow = self.run_iteration(stmt.id, iter, body, true)?;
                    iter += 1;
                    match flow {
                        Flow::Break => break,
                        Flow::Return(v) => {
                            self.end_loop();
                            return Ok(Flow::Return(v));
                        }
                        _ => {}
                    }
                }
                self.end_loop();
                Ok(Flow::Normal)
            }
            StmtKind::For { init, cond, update, body } => {
                self.frame().scopes.push(HashMap::new());
                if let Some(i) = init {
                    self.exec_stmt(i)?;
                }
                self.begin_loop(stmt.id);
                let mut iter = 0usize;
                let result = loop {
                    if let Some(c) = cond {
                        let v = self.eval(c)?;
                        match v.as_bool() {
                            Some(true) => {}
                            Some(false) => break Ok(Flow::Normal),
                            None => {
                                break Err(
                                    self.err(format!("for condition is {}", v.type_name()))
                                )
                            }
                        }
                    }
                    let flow = self.run_iteration(stmt.id, iter, body, true)?;
                    iter += 1;
                    match flow {
                        Flow::Break => break Ok(Flow::Normal),
                        Flow::Return(v) => break Ok(Flow::Return(v)),
                        _ => {}
                    }
                    if let Some(u) = update {
                        self.exec_stmt(u)?;
                    }
                };
                self.end_loop();
                self.frame().scopes.pop();
                result
            }
            StmtKind::Foreach { var, iter: iter_expr, body } => {
                let iterable = self.eval(iter_expr)?;
                let items: Vec<Value> = match &iterable {
                    Value::List(l) => {
                        self.record(DynLoc::ListStruct(l.id), AccessKind::Read);
                        l.items.borrow().clone()
                    }
                    Value::Str(s) => s
                        .chars()
                        .map(|c| Value::str(c.to_string()))
                        .collect(),
                    other => {
                        return Err(self.err(format!(
                            "cannot iterate over {}",
                            other.type_name()
                        )))
                    }
                };
                self.begin_loop(stmt.id);
                let mut result = Flow::Normal;
                for (i, item) in items.into_iter().enumerate() {
                    self.frame().scopes.push(HashMap::new());
                    self.frame().declare(var, item);
                    let flow = self.run_iteration(stmt.id, i, body, false);
                    self.frame().scopes.pop();
                    match flow? {
                        Flow::Break => break,
                        Flow::Return(v) => {
                            result = Flow::Return(v);
                            break;
                        }
                        _ => {}
                    }
                }
                self.end_loop();
                Ok(result)
            }
            StmtKind::Break => Ok(Flow::Break),
            StmtKind::Continue => Ok(Flow::Continue),
            StmtKind::Return(e) => {
                let v = match e {
                    Some(e) => self.eval(e)?,
                    None => Value::Null,
                };
                Ok(Flow::Return(v))
            }
            StmtKind::Block(b) => self.exec_block(b),
            StmtKind::Region { body, .. } => self.exec_stmts_flat(body),
        }
    }

    fn begin_loop(&mut self, loop_id: NodeId) {
        if self.options.trace_loops {
            self.profile.loop_traces.entry(loop_id).or_default();
            self.traces.push(TraceCtx {
                loop_id,
                iter: 0,
                recording: false,
                cur_stmt: None,
            });
        }
    }

    fn end_loop(&mut self) {
        if self.options.trace_loops {
            self.traces.pop();
        }
    }

    /// Execute one loop iteration, attributing each direct body statement's
    /// accesses and cost to the loop trace. `own_scope` opens a fresh scope
    /// for the body (foreach manages its own scope for the loop variable).
    fn run_iteration(
        &mut self,
        loop_id: NodeId,
        iter: usize,
        body: &'p Block,
        own_scope: bool,
    ) -> Result<Flow, LangError> {
        let _ = iter;
        if self.options.trace_loops {
            // The traced prefix is global across re-entries of the loop
            // (a loop in a helper called many times records its first K
            // iterations overall, not K per call) — this both bounds the
            // trace and avoids conflating distinct activations.
            let global_iter = self
                .profile
                .loop_traces
                .get(&loop_id)
                .map(|t| t.iterations as usize)
                .unwrap_or(0);
            if let Some(ctx) = self.traces.last_mut() {
                ctx.iter = global_iter;
                ctx.recording = global_iter < self.options.trace_iters;
                ctx.cur_stmt = None;
            }
            if let Some(t) = self.profile.loop_traces.get_mut(&loop_id) {
                t.iterations += 1;
            }
        }
        if own_scope {
            self.frame().scopes.push(HashMap::new());
        }
        let mut flow = Flow::Normal;
        for s in &body.stmts {
            if self.options.trace_loops {
                if let Some(ctx) = self.traces.last_mut() {
                    ctx.cur_stmt = Some(s.id);
                }
            }
            let before = self.cost;
            flow = self.exec_stmt(s)?;
            let delta = self.cost - before;
            if self.options.trace_loops {
                if let Some(t) = self.profile.loop_traces.get_mut(&loop_id) {
                    *t.stmt_cost.entry(s.id).or_insert(0) += delta;
                }
            }
            if !matches!(flow, Flow::Normal) {
                break;
            }
        }
        if self.options.trace_loops {
            if let Some(ctx) = self.traces.last_mut() {
                ctx.cur_stmt = None;
            }
        }
        if own_scope {
            self.frame().scopes.pop();
        }
        // `continue` ends the iteration normally.
        if matches!(flow, Flow::Continue) {
            flow = Flow::Normal;
        }
        Ok(flow)
    }

    fn exec_assign(
        &mut self,
        target: &'p LValue,
        op: AssignOp,
        value: &'p Expr,
    ) -> Result<(), LangError> {
        let rhs = self.eval(value)?;
        match &target.kind {
            LValueKind::Var(name) => {
                let serial = self.frame_serial();
                let new = if op == AssignOp::Set {
                    rhs
                } else {
                    self.record(DynLoc::Local(serial, name.as_str().into()), AccessKind::Read);
                    let old = self
                        .frame()
                        .lookup(name)
                        .cloned()
                        .ok_or_else(|| self.err(format!("undefined variable `{name}`")))?;
                    self.apply_compound(op, &old, &rhs)?
                };
                self.record(DynLoc::Local(serial, name.as_str().into()), AccessKind::Write);
                if !self.frame().assign(name, new) {
                    return Err(self.err(format!("assignment to undefined variable `{name}`")));
                }
            }
            LValueKind::Field { base, field } => {
                let obj = self.eval(base)?;
                let Value::Object(o) = &obj else {
                    return Err(self.err(format!(
                        "cannot assign field `{field}` on {}",
                        obj.type_name()
                    )));
                };
                let new = if op == AssignOp::Set {
                    rhs
                } else {
                    self.record(DynLoc::Field(o.id, field.as_str().into()), AccessKind::Read);
                    let old = o
                        .fields
                        .borrow()
                        .get(field)
                        .cloned()
                        .ok_or_else(|| self.err(format!("no field `{field}`")))?;
                    self.apply_compound(op, &old, &rhs)?
                };
                self.record(DynLoc::Field(o.id, field.as_str().into()), AccessKind::Write);
                o.fields.borrow_mut().set(field, new);
            }
            LValueKind::Index { base, index } => {
                let list = self.eval(base)?;
                let idx = self.eval(index)?;
                let Value::List(l) = &list else {
                    return Err(self.err(format!("cannot index {}", list.type_name())));
                };
                let Value::Int(i) = idx else {
                    return Err(self.err(format!("index must be int, got {}", idx.type_name())));
                };
                let len = l.items.borrow().len() as i64;
                if i < 0 || i >= len {
                    return Err(self.err(format!("index {i} out of bounds (len {len})")));
                }
                let new = if op == AssignOp::Set {
                    rhs
                } else {
                    self.record(DynLoc::Elem(l.id, i), AccessKind::Read);
                    let old = l.items.borrow()[i as usize].clone();
                    self.apply_compound(op, &old, &rhs)?
                };
                self.record(DynLoc::Elem(l.id, i), AccessKind::Write);
                l.items.borrow_mut()[i as usize] = new;
            }
        }
        Ok(())
    }

    fn apply_compound(&self, op: AssignOp, old: &Value, rhs: &Value) -> Result<Value, LangError> {
        let bin = match op {
            AssignOp::Add => BinOp::Add,
            AssignOp::Sub => BinOp::Sub,
            AssignOp::Mul => BinOp::Mul,
            AssignOp::Set => unreachable!(),
        };
        binary_op(bin, old, rhs).map_err(|m| self.err(m))
    }

    // ---- expressions ----

    fn eval(&mut self, expr: &'p Expr) -> Result<Value, LangError> {
        self.tick(1)?;
        match &expr.kind {
            ExprKind::Int(v) => Ok(Value::Int(*v)),
            ExprKind::Float(v) => Ok(Value::Float(*v)),
            ExprKind::Str(s) => Ok(Value::str(s)),
            ExprKind::Bool(b) => Ok(Value::Bool(*b)),
            ExprKind::Null => Ok(Value::Null),
            ExprKind::Var(name) => {
                let serial = self.frame_serial();
                self.record(DynLoc::Local(serial, name.as_str().into()), AccessKind::Read);
                self.frame()
                    .lookup(name)
                    .cloned()
                    .ok_or_else(|| self.err(format!("undefined variable `{name}`")))
            }
            ExprKind::Unary { op, expr } => {
                let v = self.eval(expr)?;
                match (op, &v) {
                    (UnOp::Neg, Value::Int(i)) => Ok(Value::Int(-i)),
                    (UnOp::Neg, Value::Float(f)) => Ok(Value::Float(-f)),
                    (UnOp::Not, Value::Bool(b)) => Ok(Value::Bool(!b)),
                    _ => Err(self.err(format!("bad operand {} for unary op", v.type_name()))),
                }
            }
            ExprKind::Binary { op, lhs, rhs } => {
                // short-circuit logic
                if *op == BinOp::And || *op == BinOp::Or {
                    let l = self.eval(lhs)?;
                    let lb = l
                        .as_bool()
                        .ok_or_else(|| self.err(format!("logic on {}", l.type_name())))?;
                    if (*op == BinOp::And && !lb) || (*op == BinOp::Or && lb) {
                        return Ok(Value::Bool(lb));
                    }
                    let r = self.eval(rhs)?;
                    return r
                        .as_bool()
                        .map(Value::Bool)
                        .ok_or_else(|| self.err(format!("logic on {}", r.type_name())));
                }
                let l = self.eval(lhs)?;
                let r = self.eval(rhs)?;
                binary_op(*op, &l, &r).map_err(|m| self.err(m))
            }
            ExprKind::Field { base, field } => {
                let b = self.eval(base)?;
                match &b {
                    Value::Object(o) => {
                        self.record(DynLoc::Field(o.id, field.as_str().into()), AccessKind::Read);
                        o.fields
                            .borrow()
                            .get(field)
                            .cloned()
                            .ok_or_else(|| {
                                self.err(format!("no field `{}` on {}", field, o.class))
                            })
                    }
                    other => Err(self.err(format!(
                        "cannot read field `{}` of {}",
                        field,
                        other.type_name()
                    ))),
                }
            }
            ExprKind::Index { base, index } => {
                let b = self.eval(base)?;
                let i = self.eval(index)?;
                let (Value::List(l), Value::Int(i)) = (&b, &i) else {
                    return Err(self.err(format!(
                        "cannot index {} with {}",
                        b.type_name(),
                        i.type_name()
                    )));
                };
                let len = l.items.borrow().len() as i64;
                if *i < 0 || *i >= len {
                    return Err(self.err(format!("index {i} out of bounds (len {len})")));
                }
                self.record(DynLoc::Elem(l.id, *i), AccessKind::Read);
                let v = l.items.borrow()[*i as usize].clone();
                Ok(v)
            }
            ExprKind::Call { callee, args } => {
                let argv = self.eval_args(args)?;
                if let Some(func) = self.program.func(callee) {
                    self.call_func(func, None, argv)
                } else if let Some(id) = BuiltinId::from_name(callee) {
                    call_builtin(self, id, &argv)
                } else {
                    Err(self.err(format!("unknown function `{callee}`")))
                }
            }
            ExprKind::MethodCall { base, method, args } => {
                let recv = self.eval(base)?;
                let argv = self.eval_args(args)?;
                if let Value::Object(o) = &recv {
                    if let Some(m) = self.program.method(&o.class, method) {
                        return self.call_func(m, Some(recv.clone()), argv);
                    }
                }
                call_builtin_method(self, &recv, method, &argv)
            }
            ExprKind::New { class, args } => {
                let argv = self.eval_args(args)?;
                self.construct(class, argv)
            }
            ExprKind::ListLit(items) => {
                let mut v = Vec::with_capacity(items.len());
                for item in items {
                    v.push(self.eval(item)?);
                }
                let id = self.fresh_heap();
                Ok(Value::List(Rc::new(ListData { id, items: RefCell::new(v) })))
            }
        }
    }

    fn eval_args(&mut self, args: &'p [Expr]) -> Result<Vec<Value>, LangError> {
        let mut out = Vec::with_capacity(args.len());
        for a in args {
            out.push(self.eval(a)?);
        }
        Ok(out)
    }

    fn construct(&mut self, class: &str, args: Vec<Value>) -> Result<Value, LangError> {
        let decl = self
            .program
            .class(class)
            .ok_or_else(|| self.err(format!("no class `{class}`")))?;
        let id = self.fresh_heap();
        let mut fields = FieldTable::with_capacity(decl.fields.len());
        // Field initializers run first (in declaration order).
        for f in &decl.fields {
            let v = match &f.init {
                Some(e) => self.eval(e)?,
                None => Value::Null,
            };
            fields.set(&f.name, v);
        }
        let obj = Value::Object(Rc::new(ObjectData {
            id,
            class: Rc::from(class),
            fields: RefCell::new(fields),
        }));
        if let Some(init) = self.program.method(class, "init") {
            self.call_func(init, Some(obj.clone()), args)?;
        } else if !args.is_empty() {
            if args.len() != decl.fields.len() {
                return Err(self.err(format!(
                    "class `{class}` has {} field(s) but constructor got {} argument(s)",
                    decl.fields.len(),
                    args.len()
                )));
            }
            let Value::Object(o) = &obj else { unreachable!() };
            for (f, a) in decl.fields.iter().zip(args) {
                o.fields.borrow_mut().set(&f.name, a);
            }
        }
        Ok(obj)
    }

}

impl Host for Interp<'_> {
    fn tick(&mut self, n: u64) -> Result<(), LangError> {
        Interp::tick(self, n)
    }
    fn rt_err(&self, msg: String) -> LangError {
        self.err(msg)
    }
    fn fresh_heap(&mut self) -> HeapId {
        Interp::fresh_heap(self)
    }
    fn next_rand(&mut self, n: i64) -> i64 {
        Interp::next_rand(self, n)
    }
    fn record(&mut self, loc: DynLoc, kind: AccessKind) {
        Interp::record(self, loc, kind)
    }
    fn push_output(&mut self, line: String) {
        self.output.push(line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::profile::DepKind;

    fn run_src(src: &str) -> Outcome {
        let p = parse(src).unwrap();
        run(&p, InterpOptions::default()).unwrap()
    }

    fn run_err(src: &str) -> LangError {
        let p = parse(src).unwrap();
        run(&p, InterpOptions::default()).unwrap_err()
    }

    #[test]
    fn arithmetic_and_print() {
        let out = run_src("fn main() { print(1 + 2 * 3); print(10 / 4); print(10.0 / 4); }");
        assert_eq!(out.output, vec!["7", "2", "2.5"]);
    }

    #[test]
    fn string_concat_and_methods() {
        let out = run_src(
            r#"fn main() { var s = "a" + "b" + 1; print(s.upper()); print(s.len()); }"#,
        );
        assert_eq!(out.output, vec!["AB1", "3"]);
    }

    #[test]
    fn while_and_for_loops() {
        let out = run_src(
            "fn main() { var s = 0; for (var i = 0; i < 5; i = i + 1) { s += i; } print(s); }",
        );
        assert_eq!(out.output, vec!["10"]);
    }

    #[test]
    fn foreach_over_range() {
        let out = run_src("fn main() { var s = 0; foreach (i in range(0, 4)) { s += i; } print(s); }");
        assert_eq!(out.output, vec!["6"]);
    }

    #[test]
    fn break_and_continue() {
        let out = run_src(
            "fn main() { var s = 0; foreach (i in range(0, 10)) { if (i % 2 == 0) { continue; } if (i > 5) { break; } s += i; } print(s); }",
        );
        // odd values <= 5: 1 + 3 + 5
        assert_eq!(out.output, vec!["9"]);
    }

    #[test]
    fn classes_fields_methods() {
        let src = r#"
            class Point {
                var x = 0;
                var y = 0;
                fn dist2() { return this.x * this.x + this.y * this.y; }
            }
            fn main() {
                var p = new Point(3, 4);
                print(p.dist2());
                p.x = 10;
                print(p.x);
            }
        "#;
        let out = run_src(src);
        assert_eq!(out.output, vec!["25", "10"]);
    }

    #[test]
    fn class_with_init_method() {
        let src = r#"
            class Counter {
                var n = 0;
                fn init(start) { this.n = start * 2; }
                fn bump() { this.n += 1; return this.n; }
            }
            fn main() { var c = new Counter(5); print(c.bump()); }
        "#;
        assert_eq!(run_src(src).output, vec!["11"]);
    }

    #[test]
    fn functions_and_recursion() {
        let src = "fn fib(n) { if (n < 2) { return n; } return fib(n - 1) + fib(n - 2); } fn main() { print(fib(10)); }";
        assert_eq!(run_src(src).output, vec!["55"]);
    }

    #[test]
    fn list_operations() {
        let src = r#"
            fn main() {
                var xs = [1, 2, 3];
                xs.add(4);
                xs.set(0, 10);
                print(xs.get(0), xs.len(), xs.contains(3));
                print(xs[1] + xs[2]);
            }
        "#;
        assert_eq!(run_src(src).output, vec!["10 4 true", "5"]);
    }

    #[test]
    fn runtime_errors() {
        assert!(run_err("fn main() { var x = 1 / 0; }").message.contains("zero"));
        assert!(run_err("fn main() { print(nope); }").message.contains("undefined"));
        assert!(run_err("fn main() { var xs = [1]; print(xs[5]); }")
            .message
            .contains("bounds"));
        assert!(run_err("fn main() { missing(); }").message.contains("unknown function"));
    }

    #[test]
    fn step_limit_stops_infinite_loop() {
        let p = parse("fn main() { while (true) { } }").unwrap();
        let err = run(
            &p,
            InterpOptions { step_limit: 10_000, ..InterpOptions::default() },
        )
        .unwrap_err();
        assert!(err.message.contains("step limit"));
    }

    #[test]
    fn work_builtin_adds_cost() {
        let a = run_src("fn main() { work(0); }");
        let b = run_src("fn main() { work(100000); }");
        assert!(b.profile.total_cost > a.profile.total_cost + 90_000);
    }

    #[test]
    fn profile_counts_statement_hits() {
        let src = "fn main() { foreach (i in range(0, 7)) { var x = i; } }";
        let out = run_src(src);
        // one statement ran 7 times
        assert!(out.profile.stmt_hits.values().any(|&h| h == 7));
    }

    #[test]
    fn profile_records_call_edges() {
        let src = "fn helper() { return 1; } fn main() { helper(); }";
        let out = run_src(src);
        assert!(out
            .profile
            .call_edges
            .contains(&("main".to_string(), "helper".to_string())));
    }

    #[test]
    fn loop_trace_sees_accumulator_carried_dep() {
        let src = "fn main() { var s = 0; foreach (i in range(0, 5)) { s = s + i; } print(s); }";
        let out = run_src(src);
        let trace = out.profile.loop_traces.values().next().unwrap();
        let deps = trace.carried_deps();
        assert!(deps.iter().any(|d| d.kind == DepKind::Flow));
    }

    #[test]
    fn loop_trace_doall_has_no_carried_deps() {
        let src = r#"
            fn main() {
                var a = [0, 0, 0, 0, 0];
                var b = [1, 2, 3, 4, 5];
                for (var i = 0; i < 5; i = i + 1) {
                    a[i] = b[i] * 2;
                }
                print(a[4]);
            }
        "#;
        let out = run_src(src);
        assert_eq!(out.output, vec!["10"]);
        // Find the for loop's trace: its body statement writes Elem locs.
        let trace = out
            .profile
            .loop_traces
            .values()
            .find(|t| t.iterations == 5)
            .unwrap();
        // The loop induction variable i produces carried deps via the
        // header, but the single *body* statement's accesses must show no
        // cross-iteration conflicts on the arrays.
        let deps = trace.carried_deps();
        assert!(deps
            .iter()
            .all(|d| !matches!(d.loc, DynLoc::Elem(_, _))));
    }

    #[test]
    fn pipelineable_loop_has_per_statement_intra_deps() {
        let src = r#"
            class Filter { var gain = 2; fn apply(x) { work(10); return x * this.gain; } }
            fn main() {
                var f = new Filter();
                var g = new Filter();
                var out = [];
                foreach (x in range(0, 6)) {
                    var a = f.apply(x);
                    var b = g.apply(a);
                    out.add(b);
                }
                print(len(out));
            }
        "#;
        let o = run_src(src);
        assert_eq!(o.output, vec!["6"]);
        let trace = o
            .profile
            .loop_traces
            .values()
            .find(|t| t.iterations == 6)
            .unwrap();
        // three direct statements traced
        assert_eq!(trace.traced[0].len(), 3);
        // flow deps a -> b -> out within an iteration
        let intra = trace.intra_deps();
        assert!(intra.iter().filter(|d| d.kind == DepKind::Flow).count() >= 2);
        // the two filter stages carry cost
        let costs: Vec<u64> = trace.stmt_cost.values().copied().collect();
        assert!(costs.iter().filter(|&&c| c > 50).count() >= 2);
    }

    #[test]
    fn rand_is_deterministic_per_seed() {
        let src = "fn main() { print(rand(100), rand(100), rand(100)); }";
        let a = run_src(src);
        let b = run_src(src);
        assert_eq!(a.output, b.output);
    }

    #[test]
    fn region_statements_execute_transparently() {
        let src = "fn main() {\n#region A:\nvar x = 21;\n#endregion\nprint(x * 2);\n}";
        assert_eq!(run_src(src).output, vec!["42"]);
    }

    #[test]
    fn assert_builtin() {
        assert!(run_err(r#"fn main() { assert(false, "boom"); }"#)
            .message
            .contains("boom"));
        let ok = run_src("fn main() { assert(true); print(1); }");
        assert_eq!(ok.output, vec!["1"]);
    }

    #[test]
    fn string_split_and_substr() {
        let src = r#"fn main() {
            var parts = "a,b,c".split(",");
            print(parts.len(), parts[1]);
            print("hello".substr(1, 3));
        }"#;
        assert_eq!(run_src(src).output, vec!["3 b", "el"]);
    }

    #[test]
    fn positional_constructor_arity_mismatch_errors() {
        let err = run_err("class P { var x = 0; } fn main() { var p = new P(1, 2); }");
        assert!(err.message.contains("argument"));
    }

    #[test]
    fn call_depth_limit() {
        let err = run_err("fn f() { return f(); } fn main() { f(); }");
        assert!(err.message.contains("depth"));
    }

    #[test]
    fn trace_iters_caps_recording_but_not_execution() {
        let p = parse("fn main() { var s = 0; foreach (i in range(0, 100)) { s += i; } print(s); }").unwrap();
        let out = run(
            &p,
            InterpOptions { trace_iters: 4, ..InterpOptions::default() },
        )
        .unwrap();
        assert_eq!(out.output, vec!["4950"]);
        let t = out.profile.loop_traces.values().next().unwrap();
        assert_eq!(t.iterations, 100);
        assert_eq!(t.traced.len(), 4);
    }
}

#[cfg(test)]
mod line_number_tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn runtime_errors_carry_the_statement_line() {
        let src = "fn main() {\n    var a = 1;\n    var b = 2;\n    var c = a / (b - 2);\n}";
        let p = parse(src).unwrap();
        let err = run(&p, InterpOptions::default()).unwrap_err();
        assert_eq!(err.line, 4, "{err}");
        assert!(err.to_string().contains("line 4"));
    }

    #[test]
    fn error_inside_callee_points_at_callee_statement() {
        let src = "fn boom(x) {\n    return 1 / x;\n}\nfn main() {\n    boom(0);\n}";
        let p = parse(src).unwrap();
        let err = run(&p, InterpOptions::default()).unwrap_err();
        assert_eq!(err.line, 2, "{err}");
    }
}
