//! Source positions, spans and AST node identities.
//!
//! Every AST node carries a [`NodeId`] (stable within one parsed program)
//! and a [`Span`] pointing back into the original source text. Patty uses
//! node ids as the join key between the static analyses, the dynamic
//! profile, the pattern detector and the source rewriter, and spans to
//! render pattern overlays over the original source (paper Fig. 4b).

use std::fmt;

/// Identity of an AST node within a single parsed [`crate::ast::Program`].
///
/// Ids are dense and allocated in parse order, so they are usable as vector
/// indices. `NodeId(0)` is reserved for the program root.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Reserved id of the program root.
    pub const ROOT: NodeId = NodeId(0);

    /// The id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A half-open byte range `[lo, hi)` into the source text, plus the
/// 1-based line of `lo` for human-readable locations.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub lo: u32,
    /// Byte offset one past the last character.
    pub hi: u32,
    /// 1-based line number of `lo`.
    pub line: u32,
}

impl Span {
    /// A span covering nothing, used for synthesized nodes.
    pub const DUMMY: Span = Span { lo: 0, hi: 0, line: 0 };

    /// Create a new span.
    pub fn new(lo: u32, hi: u32, line: u32) -> Span {
        debug_assert!(lo <= hi);
        Span { lo, hi, line }
    }

    /// Smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
            line: if self.lo <= other.lo { self.line } else { other.line },
        }
    }

    /// Extract the spanned text from the source it was produced from.
    pub fn text<'s>(&self, source: &'s str) -> &'s str {
        &source[self.lo as usize..self.hi as usize]
    }

    /// Whether this span fully contains `other`.
    pub fn contains(&self, other: Span) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// Length in bytes.
    pub fn len(&self) -> u32 {
        self.hi - self.lo
    }

    /// True for zero-length spans.
    pub fn is_empty(&self) -> bool {
        self.lo == self.hi
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {} [{}..{})", self.line, self.lo, self.hi)
    }
}

/// Allocates dense [`NodeId`]s during parsing.
#[derive(Debug, Default)]
pub struct NodeIdGen {
    next: u32,
}

impl NodeIdGen {
    /// Fresh generator; the first id handed out is `NodeId(1)` because
    /// `NodeId(0)` is the program root.
    pub fn new() -> NodeIdGen {
        NodeIdGen { next: 1 }
    }

    /// Allocate the next id.
    pub fn fresh(&mut self) -> NodeId {
        let id = NodeId(self.next);
        self.next += 1;
        id
    }

    /// Number of ids allocated so far (including the root).
    pub fn count(&self) -> usize {
        self.next as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_join_orders_lines() {
        let a = Span::new(10, 14, 2);
        let b = Span::new(20, 30, 4);
        let j = a.to(b);
        assert_eq!(j, Span::new(10, 30, 2));
        let k = b.to(a);
        assert_eq!(k, Span::new(10, 30, 2));
    }

    #[test]
    fn span_contains_and_len() {
        let outer = Span::new(0, 100, 1);
        let inner = Span::new(10, 20, 2);
        assert!(outer.contains(inner));
        assert!(!inner.contains(outer));
        assert_eq!(inner.len(), 10);
        assert!(!inner.is_empty());
        assert!(Span::DUMMY.is_empty());
    }

    #[test]
    fn span_text_slices_source() {
        let src = "hello world";
        let s = Span::new(6, 11, 1);
        assert_eq!(s.text(src), "world");
    }

    #[test]
    fn node_id_gen_is_dense_and_skips_root() {
        let mut g = NodeIdGen::new();
        assert_eq!(g.fresh(), NodeId(1));
        assert_eq!(g.fresh(), NodeId(2));
        assert_eq!(g.count(), 3);
        assert_eq!(NodeId::ROOT.index(), 0);
    }
}
