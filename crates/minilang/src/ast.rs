//! Abstract syntax tree for minilang.
//!
//! Node granularity matters for Patty: the pipeline detector initially
//! turns *each statement of a loop body* into a pipeline stage (rule PLPL),
//! so statements are the unit that carries identity ([`crate::span::NodeId`])
//! and that the analyses, detectors and rewriters all speak about.

use crate::span::{NodeId, Span};
use std::collections::HashMap;
use std::sync::OnceLock;

/// A parsed program: classes, free functions, and the original source text
/// (kept so spans can be rendered as overlays, paper Fig. 4b).
#[derive(Clone, Debug)]
pub struct Program {
    pub classes: Vec<ClassDecl>,
    pub funcs: Vec<FuncDecl>,
    /// Total number of allocated node ids (ids are dense in `0..node_count`).
    pub node_count: usize,
    /// The source text this program was parsed from.
    pub source: String,
    /// Lazily-built name→index maps backing [`Program::func`],
    /// [`Program::class`] and [`Program::method`]. Built once on first
    /// lookup; cloning a program clones the built index.
    index: OnceLock<NameIndex>,
}

/// Name→index maps for O(1) function/class/method lookup. Duplicate names
/// keep the *first* declaration, matching the linear-scan semantics the
/// index replaced.
#[derive(Clone, Debug, Default)]
struct NameIndex {
    funcs: HashMap<String, usize>,
    classes: HashMap<String, usize>,
    /// Per-class method name→index, parallel to `Program::classes`.
    methods: Vec<HashMap<String, usize>>,
}

impl NameIndex {
    fn build(program: &Program) -> NameIndex {
        let mut index = NameIndex::default();
        for (i, f) in program.funcs.iter().enumerate() {
            index.funcs.entry(f.name.clone()).or_insert(i);
        }
        for (i, c) in program.classes.iter().enumerate() {
            index.classes.entry(c.name.clone()).or_insert(i);
            let mut methods = HashMap::new();
            for (j, m) in c.methods.iter().enumerate() {
                methods.entry(m.name.clone()).or_insert(j);
            }
            index.methods.push(methods);
        }
        index
    }
}

/// A class declaration with fields and methods.
#[derive(Clone, Debug)]
pub struct ClassDecl {
    pub id: NodeId,
    pub span: Span,
    pub name: String,
    pub fields: Vec<FieldDecl>,
    pub methods: Vec<FuncDecl>,
}

/// A field declaration, optionally initialized.
#[derive(Clone, Debug)]
pub struct FieldDecl {
    pub id: NodeId,
    pub span: Span,
    pub name: String,
    pub init: Option<Expr>,
}

/// A free function or a method (methods have an implicit `this`).
#[derive(Clone, Debug)]
pub struct FuncDecl {
    pub id: NodeId,
    pub span: Span,
    pub name: String,
    pub params: Vec<String>,
    pub body: Block,
}

/// A `{ ... }` statement sequence.
#[derive(Clone, Debug)]
pub struct Block {
    pub id: NodeId,
    pub span: Span,
    pub stmts: Vec<Stmt>,
}

/// A statement.
#[derive(Clone, Debug)]
pub struct Stmt {
    pub id: NodeId,
    pub span: Span,
    pub kind: StmtKind,
}

/// Compound assignment operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AssignOp {
    /// `=`
    Set,
    /// `+=`
    Add,
    /// `-=`
    Sub,
    /// `*=`
    Mul,
}

/// Statement kinds.
#[derive(Clone, Debug)]
pub enum StmtKind {
    /// `var x = e;`
    VarDecl { name: String, init: Expr },
    /// `lv = e;`, `lv += e;`, ...
    Assign { target: LValue, op: AssignOp, value: Expr },
    /// An expression evaluated for its effects, e.g. a call.
    Expr(Expr),
    /// `if (c) { .. } else { .. }`
    If { cond: Expr, then_blk: Block, else_blk: Option<Block> },
    /// `while (c) { .. }`
    While { cond: Expr, body: Block },
    /// `for (init; cond; update) { .. }`
    For {
        init: Option<Box<Stmt>>,
        cond: Option<Expr>,
        update: Option<Box<Stmt>>,
        body: Block,
    },
    /// `foreach (x in e) { .. }`
    Foreach { var: String, iter: Expr, body: Block },
    /// `break;`
    Break,
    /// `continue;`
    Continue,
    /// `return e?;`
    Return(Option<Expr>),
    /// A nested `{ .. }` block.
    Block(Block),
    /// `#region <label> ... #endregion` — carries TADL annotations through
    /// the AST exactly like the paper's preprocessor-directive encoding.
    Region { label: String, body: Block },
}

/// Assignment target.
#[derive(Clone, Debug)]
pub struct LValue {
    pub span: Span,
    pub kind: LValueKind,
}

/// Assignment target kinds.
#[derive(Clone, Debug)]
pub enum LValueKind {
    /// `x = ..`
    Var(String),
    /// `e.f = ..`
    Field { base: Expr, field: String },
    /// `e[i] = ..`
    Index { base: Expr, index: Expr },
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnOp {
    Neg,
    Not,
}

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

/// An expression.
#[derive(Clone, Debug)]
pub struct Expr {
    pub id: NodeId,
    pub span: Span,
    pub kind: ExprKind,
}

/// Expression kinds.
#[derive(Clone, Debug)]
pub enum ExprKind {
    Int(i64),
    Float(f64),
    Str(String),
    Bool(bool),
    Null,
    /// A variable (or `this`).
    Var(String),
    Unary { op: UnOp, expr: Box<Expr> },
    Binary { op: BinOp, lhs: Box<Expr>, rhs: Box<Expr> },
    /// `e.f`
    Field { base: Box<Expr>, field: String },
    /// `e[i]`
    Index { base: Box<Expr>, index: Box<Expr> },
    /// `f(a, b)` — free function or builtin.
    Call { callee: String, args: Vec<Expr> },
    /// `e.m(a, b)` — method or builtin method on a value.
    MethodCall { base: Box<Expr>, method: String, args: Vec<Expr> },
    /// `new C(a, b)`
    New { class: String, args: Vec<Expr> },
    /// `[a, b, c]`
    ListLit(Vec<Expr>),
}

impl Expr {
    /// The syntactic access path of this expression if it is a chain of
    /// variables and field accesses (`a`, `a.b`, `a.b.c`), else `None`.
    ///
    /// Patty's *optimistic* static analysis identifies heap locations by
    /// their syntactic path — distinct paths are assumed not to alias.
    pub fn path(&self) -> Option<String> {
        match &self.kind {
            ExprKind::Var(name) => Some(name.clone()),
            ExprKind::Field { base, field } => Some(format!("{}.{}", base.path()?, field)),
            _ => None,
        }
    }
}

impl Stmt {
    /// Short one-line description used in diagnostics and overlays.
    pub fn describe(&self, source: &str) -> String {
        let text = if self.span.is_empty() { "" } else { self.span.text(source) };
        let first = text.lines().next().unwrap_or("").trim();
        if first.len() > 60 {
            format!("{}…", &first[..59])
        } else {
            first.to_string()
        }
    }

    /// True for statements that affect control flow across iterations
    /// (rule PLCD cares about these).
    pub fn is_jump(&self) -> bool {
        matches!(
            self.kind,
            StmtKind::Break | StmtKind::Continue | StmtKind::Return(_)
        )
    }

    /// True for loop statements (rule PLPL: every loop is a pipeline
    /// candidate).
    pub fn is_loop(&self) -> bool {
        matches!(
            self.kind,
            StmtKind::While { .. } | StmtKind::For { .. } | StmtKind::Foreach { .. }
        )
    }

    /// The loop body, for loop statements.
    pub fn loop_body(&self) -> Option<&Block> {
        match &self.kind {
            StmtKind::While { body, .. }
            | StmtKind::For { body, .. }
            | StmtKind::Foreach { body, .. } => Some(body),
            _ => None,
        }
    }
}

impl Program {
    /// Build a program from its parts (the name index is built lazily).
    pub fn new(classes: Vec<ClassDecl>, funcs: Vec<FuncDecl>, node_count: usize, source: String) -> Program {
        Program { classes, funcs, node_count, source, index: OnceLock::new() }
    }

    fn index(&self) -> &NameIndex {
        self.index.get_or_init(|| NameIndex::build(self))
    }

    /// Iterate over every function and method in the program.
    pub fn all_funcs(&self) -> impl Iterator<Item = &FuncDecl> {
        self.funcs
            .iter()
            .chain(self.classes.iter().flat_map(|c| c.methods.iter()))
    }

    /// Look up a free function by name (O(1) after the first lookup).
    pub fn func(&self, name: &str) -> Option<&FuncDecl> {
        self.funcs.get(*self.index().funcs.get(name)?)
    }

    /// Look up a class by name (O(1) after the first lookup).
    pub fn class(&self, name: &str) -> Option<&ClassDecl> {
        self.classes.get(*self.index().classes.get(name)?)
    }

    /// Look up a method on a class (O(1) after the first lookup).
    pub fn method(&self, class: &str, method: &str) -> Option<&FuncDecl> {
        let class_idx = *self.index().classes.get(class)?;
        let method_idx = *self.index().methods.get(class_idx)?.get(method)?;
        self.classes[class_idx].methods.get(method_idx)
    }

    /// Visit every statement in the program (pre-order, including nested).
    pub fn for_each_stmt<'a>(&'a self, f: &mut impl FnMut(&'a Stmt)) {
        for func in self.all_funcs() {
            visit_block(&func.body, f);
        }
    }

    /// Find a statement by node id anywhere in the program.
    pub fn find_stmt(&self, id: NodeId) -> Option<&Stmt> {
        let mut found = None;
        self.for_each_stmt(&mut |s| {
            if s.id == id && found.is_none() {
                found = Some(s);
            }
        });
        found
    }

    /// Collect every loop statement in the program together with the name
    /// of the enclosing function.
    pub fn loops(&self) -> Vec<(&str, &Stmt)> {
        let mut out = Vec::new();
        for func in self.all_funcs() {
            let mut collect = |s: &Stmt| {
                if s.is_loop() {
                    // raw pointer trick not needed: restrict lifetime by
                    // re-finding below
                }
            };
            // Simple two-pass: gather ids first, then resolve.
            let _ = &mut collect;
            let mut ids = Vec::new();
            visit_block(&func.body, &mut |s: &Stmt| {
                if s.is_loop() {
                    ids.push(s.id);
                }
            });
            for id in ids {
                let mut hit: Option<&Stmt> = None;
                visit_block(&func.body, &mut |s: &Stmt| {
                    if s.id == id && hit.is_none() {
                        hit = Some(s);
                    }
                });
                if let Some(s) = hit {
                    out.push((func.name.as_str(), s));
                }
            }
        }
        out
    }
}

/// Visit every statement in a block (pre-order, including nested blocks).
pub fn visit_block<'a>(block: &'a Block, f: &mut impl FnMut(&'a Stmt)) {
    for stmt in &block.stmts {
        visit_stmt(stmt, f);
    }
}

/// Visit `stmt` and all statements nested inside it (pre-order).
pub fn visit_stmt<'a>(stmt: &'a Stmt, f: &mut impl FnMut(&'a Stmt)) {
    f(stmt);
    match &stmt.kind {
        StmtKind::If { then_blk, else_blk, .. } => {
            visit_block(then_blk, f);
            if let Some(e) = else_blk {
                visit_block(e, f);
            }
        }
        StmtKind::While { body, .. } | StmtKind::Foreach { body, .. } => visit_block(body, f),
        StmtKind::For { init, update, body, .. } => {
            if let Some(i) = init {
                visit_stmt(i, f);
            }
            if let Some(u) = update {
                visit_stmt(u, f);
            }
            visit_block(body, f);
        }
        StmtKind::Block(b) | StmtKind::Region { body: b, .. } => visit_block(b, f),
        _ => {}
    }
}

/// Visit every expression inside a statement (pre-order), *not* descending
/// into nested statements.
pub fn visit_stmt_exprs<'a>(stmt: &'a Stmt, f: &mut impl FnMut(&'a Expr)) {
    match &stmt.kind {
        StmtKind::VarDecl { init, .. } => visit_expr(init, f),
        StmtKind::Assign { target, value, .. } => {
            match &target.kind {
                LValueKind::Var(_) => {}
                LValueKind::Field { base, .. } => visit_expr(base, f),
                LValueKind::Index { base, index } => {
                    visit_expr(base, f);
                    visit_expr(index, f);
                }
            }
            visit_expr(value, f);
        }
        StmtKind::Expr(e) => visit_expr(e, f),
        StmtKind::If { cond, .. } => visit_expr(cond, f),
        StmtKind::While { cond, .. } => visit_expr(cond, f),
        StmtKind::For { cond: Some(c), .. } => visit_expr(c, f),
        StmtKind::Foreach { iter, .. } => visit_expr(iter, f),
        StmtKind::Return(Some(e)) => visit_expr(e, f),
        _ => {}
    }
}

/// Visit `expr` and all its sub-expressions (pre-order).
pub fn visit_expr<'a>(expr: &'a Expr, f: &mut impl FnMut(&'a Expr)) {
    f(expr);
    match &expr.kind {
        ExprKind::Unary { expr: e, .. } => visit_expr(e, f),
        ExprKind::Binary { lhs, rhs, .. } => {
            visit_expr(lhs, f);
            visit_expr(rhs, f);
        }
        ExprKind::Field { base, .. } => visit_expr(base, f),
        ExprKind::Index { base, index } => {
            visit_expr(base, f);
            visit_expr(index, f);
        }
        ExprKind::Call { args, .. } => {
            for a in args {
                visit_expr(a, f);
            }
        }
        ExprKind::MethodCall { base, args, .. } => {
            visit_expr(base, f);
            for a in args {
                visit_expr(a, f);
            }
        }
        ExprKind::New { args, .. } => {
            for a in args {
                visit_expr(a, f);
            }
        }
        ExprKind::ListLit(items) => {
            for a in items {
                visit_expr(a, f);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    #[test]
    fn path_of_field_chain() {
        let prog = parse("fn main() { var x = a.b.c; }").unwrap();
        let mut paths = Vec::new();
        prog.for_each_stmt(&mut |s| {
            visit_stmt_exprs(s, &mut |e| {
                if let Some(p) = e.path() {
                    paths.push(p);
                }
            });
        });
        assert!(paths.contains(&"a.b.c".to_string()));
        assert!(paths.contains(&"a.b".to_string()));
        assert!(paths.contains(&"a".to_string()));
    }

    #[test]
    fn loops_finds_all_loops() {
        let src = "fn main() { while (true) { } foreach (x in xs) { for (var i = 0; i < 3; i = i + 1) { } } }";
        let prog = parse(src).unwrap();
        let loops = prog.loops();
        assert_eq!(loops.len(), 3);
        assert!(loops.iter().all(|(f, _)| *f == "main"));
    }

    #[test]
    fn find_stmt_resolves_ids() {
        let prog = parse("fn main() { var x = 1; var y = 2; }").unwrap();
        let mut ids = Vec::new();
        prog.for_each_stmt(&mut |s| ids.push(s.id));
        for id in ids {
            assert_eq!(prog.find_stmt(id).unwrap().id, id);
        }
    }

    #[test]
    fn describe_truncates_long_statements() {
        let long_name = "x".repeat(100);
        let src = format!("fn main() {{ var {long_name} = 1; }}");
        let prog = parse(&src).unwrap();
        let mut descr = String::new();
        prog.for_each_stmt(&mut |s| descr = s.describe(&prog.source));
        assert!(descr.len() < 70);
        assert!(descr.ends_with('…'));
    }
}
